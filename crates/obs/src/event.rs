//! The structured protocol event stream.
//!
//! One [`EventStream`] is shared by every instrumented component of a run
//! (leader core, member sessions, runtimes): events are appended under a
//! single lock, so the stream order is a real happened-before order for
//! the emitting call sites — a delivery can never precede the send that
//! caused it, because sends are emitted while the sender still holds its
//! state lock, before any frame reaches a wire.
//!
//! The vocabulary mirrors `enclaves-verify::live::LiveEvent` (plus the
//! leader-internal `Retransmit`/`SealBatch` operational events), so the
//! §5.4 oracle can check a run from its observability stream alone.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What happened, in protocol vocabulary.
///
/// Actor names are plain strings and payloads plain bytes, keeping the
/// stream transport- and wire-format-free (same rationale as the live
/// trace vocabulary in `enclaves-verify`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A member (re)started its authentication handshake.
    JoinStarted {
        /// Member name.
        member: String,
    },
    /// The leader accepted a member's `AuthInitReq` and sent the session
    /// key.
    AuthAccepted {
        /// Member name.
        member: String,
    },
    /// The member accepted the session key and acknowledged it.
    SessionEstablished {
        /// Member name.
        member: String,
    },
    /// The leader committed the member into the group.
    MemberJoined {
        /// Member name.
        member: String,
        /// Group-key epoch at (or created by) the join.
        epoch: u64,
    },
    /// The member accepted the welcome (roster + group key).
    Welcomed {
        /// Member name.
        member: String,
        /// Group-key epoch installed.
        epoch: u64,
    },
    /// The leader rotated the group key.
    Rekeyed {
        /// The new epoch.
        epoch: u64,
    },
    /// A member installed a rotated group key.
    KeyChanged {
        /// Member name.
        member: String,
        /// The new epoch.
        epoch: u64,
    },
    /// The leader staged an admin-channel application broadcast.
    AdminSend {
        /// Application payload.
        payload: Vec<u8>,
        /// The exact roster addressed, captured under the core lock.
        recipients: Vec<String>,
    },
    /// A member accepted an admin-channel application payload.
    AdminDeliver {
        /// Member name.
        member: String,
        /// Application payload.
        payload: Vec<u8>,
    },
    /// The leader accepted a member's stop-and-wait admin acknowledgment.
    AdminAcked {
        /// Member name.
        member: String,
    },
    /// The leader sealed a data-plane broadcast into `(epoch, seq)`.
    DataSend {
        /// Group-key epoch sealed under.
        epoch: u64,
        /// Broadcast sequence number within the epoch.
        seq: u64,
        /// Application payload.
        payload: Vec<u8>,
        /// The exact roster addressed.
        recipients: Vec<String>,
    },
    /// A member opened a data-plane broadcast.
    DataDeliver {
        /// Member name.
        member: String,
        /// Epoch the frame claimed.
        epoch: u64,
        /// Sequence number the frame claimed.
        seq: u64,
        /// Decrypted payload.
        payload: Vec<u8>,
    },
    /// A member initiated a voluntary close.
    CloseRequested {
        /// Member name.
        member: String,
    },
    /// The leader observed the member depart (close accepted).
    MemberClosed {
        /// Member name.
        member: String,
    },
    /// The leader expelled the member.
    Expelled {
        /// Member name.
        member: String,
    },
    /// The liveness layer evicted the member (ARQ budget exhausted or
    /// heartbeat deadline missed) — the timeout-driven `Oops(Ka)` path.
    Evicted {
        /// Member name.
        member: String,
    },
    /// A member's runtime presumed its leader dead (heartbeat silence or
    /// repeated send failures).
    LeaderLost {
        /// Member name.
        member: String,
    },
    /// An ARQ layer re-sent in-flight frames.
    Retransmit {
        /// Who retransmitted (leader or member name).
        actor: String,
        /// How many frames went out.
        frames: u64,
    },
    /// The leader committed a batch of out-of-lock admin seals.
    SealBatch {
        /// Frames sealed in the batch.
        frames: u64,
        /// Wall-clock nanoseconds the sealing took.
        elapsed_ns: u64,
    },
}

impl EventKind {
    /// The variant name, stable across releases (used by the
    /// model-to-event conformance contract).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::JoinStarted { .. } => "JoinStarted",
            EventKind::AuthAccepted { .. } => "AuthAccepted",
            EventKind::SessionEstablished { .. } => "SessionEstablished",
            EventKind::MemberJoined { .. } => "MemberJoined",
            EventKind::Welcomed { .. } => "Welcomed",
            EventKind::Rekeyed { .. } => "Rekeyed",
            EventKind::KeyChanged { .. } => "KeyChanged",
            EventKind::AdminSend { .. } => "AdminSend",
            EventKind::AdminDeliver { .. } => "AdminDeliver",
            EventKind::AdminAcked { .. } => "AdminAcked",
            EventKind::DataSend { .. } => "DataSend",
            EventKind::DataDeliver { .. } => "DataDeliver",
            EventKind::CloseRequested { .. } => "CloseRequested",
            EventKind::MemberClosed { .. } => "MemberClosed",
            EventKind::Expelled { .. } => "Expelled",
            EventKind::Evicted { .. } => "Evicted",
            EventKind::LeaderLost { .. } => "LeaderLost",
            EventKind::Retransmit { .. } => "Retransmit",
            EventKind::SealBatch { .. } => "SealBatch",
        }
    }
}

/// One timestamped, sequenced protocol event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolEvent {
    /// Monotonic nanoseconds since the stream was created.
    pub at_ns: u64,
    /// Position in the stream (0-based, gap-free).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
}

struct StreamInner {
    start: Instant,
    seq: AtomicU64,
    buf: Mutex<Vec<ProtocolEvent>>,
}

/// A shared, ordered buffer of [`ProtocolEvent`]s.
///
/// Clones share the buffer. Emission locks the buffer briefly; components
/// hold an `Option<EventStream>` and skip the whole call when detached,
/// so an uninstrumented run pays one branch per would-be event.
#[derive(Clone)]
pub struct EventStream {
    inner: Arc<StreamInner>,
}

impl Default for EventStream {
    fn default() -> Self {
        EventStream::new()
    }
}

impl std::fmt::Debug for EventStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventStream")
            .field("len", &self.len())
            .finish()
    }
}

impl EventStream {
    /// Creates an empty stream; timestamps count from now.
    #[must_use]
    pub fn new() -> Self {
        EventStream {
            inner: Arc::new(StreamInner {
                start: Instant::now(),
                seq: AtomicU64::new(0),
                buf: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Monotonic nanoseconds since the stream was created.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.inner.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Appends one event, stamping it with the stream clock and the next
    /// sequence number. The stamp is taken under the buffer lock, so
    /// sequence order, timestamp order, and buffer order all agree.
    pub fn emit(&self, kind: EventKind) {
        let mut buf = self.inner.buf.lock().expect("event stream lock");
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        buf.push(ProtocolEvent {
            at_ns: self.now_ns(),
            seq,
            kind,
        });
    }

    /// Number of events currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.buf.lock().expect("event stream lock").len()
    }

    /// Whether the stream holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of every buffered event.
    #[must_use]
    pub fn events(&self) -> Vec<ProtocolEvent> {
        self.inner.buf.lock().expect("event stream lock").clone()
    }

    /// Removes and returns every buffered event. Sequence numbers keep
    /// counting, so a later drain can be concatenated with this one.
    #[must_use]
    pub fn drain(&self) -> Vec<ProtocolEvent> {
        std::mem::take(&mut *self.inner.buf.lock().expect("event stream lock"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emission_is_sequenced_and_monotonic() {
        let stream = EventStream::new();
        for i in 0..5 {
            stream.emit(EventKind::Rekeyed { epoch: i });
        }
        let events = stream.events();
        assert_eq!(events.len(), 5);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        assert!(events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
    }

    #[test]
    fn drain_keeps_the_sequence_counter() {
        let stream = EventStream::new();
        stream.emit(EventKind::Rekeyed { epoch: 1 });
        let first = stream.drain();
        stream.emit(EventKind::Rekeyed { epoch: 2 });
        let second = stream.drain();
        assert_eq!(first[0].seq, 0);
        assert_eq!(second[0].seq, 1);
        assert!(stream.is_empty());
    }

    #[test]
    fn every_variant_has_a_distinct_name() {
        let kinds = [
            EventKind::JoinStarted { member: "a".into() },
            EventKind::AuthAccepted { member: "a".into() },
            EventKind::SessionEstablished { member: "a".into() },
            EventKind::MemberJoined {
                member: "a".into(),
                epoch: 0,
            },
            EventKind::Welcomed {
                member: "a".into(),
                epoch: 0,
            },
            EventKind::Rekeyed { epoch: 0 },
            EventKind::KeyChanged {
                member: "a".into(),
                epoch: 0,
            },
            EventKind::AdminSend {
                payload: vec![],
                recipients: vec![],
            },
            EventKind::AdminDeliver {
                member: "a".into(),
                payload: vec![],
            },
            EventKind::AdminAcked { member: "a".into() },
            EventKind::DataSend {
                epoch: 0,
                seq: 0,
                payload: vec![],
                recipients: vec![],
            },
            EventKind::DataDeliver {
                member: "a".into(),
                epoch: 0,
                seq: 0,
                payload: vec![],
            },
            EventKind::CloseRequested { member: "a".into() },
            EventKind::MemberClosed { member: "a".into() },
            EventKind::Expelled { member: "a".into() },
            EventKind::Evicted { member: "a".into() },
            EventKind::LeaderLost { member: "a".into() },
            EventKind::Retransmit {
                actor: "a".into(),
                frames: 0,
            },
            EventKind::SealBatch {
                frames: 0,
                elapsed_ns: 0,
            },
        ];
        let names: std::collections::BTreeSet<&str> = kinds.iter().map(EventKind::name).collect();
        assert_eq!(names.len(), kinds.len());
    }
}
