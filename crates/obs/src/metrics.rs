//! Typed metrics: counters, gauges, and fixed-bucket histograms behind a
//! name registry.
//!
//! Handles are `Arc`s onto atomic cells: cloning a handle is cheap,
//! recording through one is a single relaxed atomic RMW, and concurrent
//! writers — e.g. seal workers committing from several threads — can never
//! lose an increment the way a plain `u64 += 1` read-modify-write can.

use crate::snapshot::{HistogramSnapshot, Snapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default histogram bucket upper bounds, in nanoseconds: a base-4
/// exponential ladder from 256 ns to ~4.3 s, plus the implicit overflow
/// bucket. Thirteen buckets cover everything from a single AEAD seal to a
/// stalled lock with ~2 bits of resolution per decade.
pub const DEFAULT_NS_BOUNDS: &[u64] = &[
    256,
    1_024,
    4_096,
    16_384,
    65_536,
    262_144,
    1_048_576,
    4_194_304,
    16_777_216,
    67_108_864,
    268_435_456,
    1_073_741_824,
    4_294_967_296,
];

/// A monotonically increasing counter.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (wrapping, like the underlying atomic).
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (e.g. a queue depth).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

pub(crate) struct HistogramCore {
    /// Sorted inclusive upper bounds; `counts` has one extra slot for
    /// values above the last bound.
    bounds: Box<[u64]>,
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram of `u64` samples (typically nanoseconds).
///
/// Bucket `i` holds samples `v` with `v <= bounds[i]` (and greater than
/// the previous bound); the final bucket holds everything above the last
/// bound. Every recorded sample lands in exactly one bucket, so the
/// bucket counts always sum to the total sample count.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        let mut sorted: Vec<u64> = bounds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut counts = Vec::with_capacity(sorted.len() + 1);
        counts.resize_with(sorted.len() + 1, AtomicU64::default);
        Histogram {
            core: Arc::new(HistogramCore {
                bounds: sorted.into_boxed_slice(),
                counts: counts.into_boxed_slice(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        let idx = self.core.bounds.partition_point(|b| value > *b);
        self.core.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(value, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.core.sum.load(Ordering::Relaxed)
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        // Read `count`/`sum` first: a racing `record` bumps buckets before
        // the totals, so totals can only under-report relative to buckets,
        // never claim samples the buckets lack.
        let count = self.core.count.load(Ordering::Acquire);
        let sum = self.core.sum.load(Ordering::Acquire);
        HistogramSnapshot {
            bounds: self.core.bounds.to_vec(),
            counts: self
                .core
                .counts
                .iter()
                .map(|c| c.load(Ordering::Acquire))
                .collect(),
            count,
            sum,
        }
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// A registry of named metrics.
///
/// Get-or-create registration locks a map briefly; the returned handles
/// record lock-free. Cloning the registry clones the `Arc` — all clones
/// see the same metrics.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field(
                "counters",
                &self.inner.counters.lock().expect("registry lock").len(),
            )
            .finish_non_exhaustive()
    }
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter named `name`, creating it at zero on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock().expect("registry lock");
        map.entry(name.to_string())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Returns the gauge named `name`, creating it at zero on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock().expect("registry lock");
        map.entry(name.to_string())
            .or_insert_with(|| Gauge(Arc::new(AtomicI64::new(0))))
            .clone()
    }

    /// Returns the histogram named `name` with the default nanosecond
    /// buckets ([`DEFAULT_NS_BOUNDS`]), creating it on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with_bounds(name, DEFAULT_NS_BOUNDS)
    }

    /// Returns the histogram named `name`, creating it with `bounds` on
    /// first use. An existing histogram keeps its original buckets —
    /// bounds are part of the registration, not of each lookup.
    #[must_use]
    pub fn histogram_with_bounds(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut map = self.inner.histograms.lock().expect("registry lock");
        map.entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .clone()
    }

    /// A point-in-time copy of every metric in the registry.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .inner
                .counters
                .lock()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .inner
                .gauges
                .lock()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .inner
                .histograms
                .lock()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_the_cell() {
        let registry = Registry::new();
        let a = registry.counter("x");
        let b = registry.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(registry.counter("x").get(), 3);
        assert_eq!(registry.counter("y").get(), 0);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Registry::new().gauge("depth");
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn histogram_buckets_partition_the_domain() {
        let registry = Registry::new();
        let h = registry.histogram_with_bounds("h", &[10, 100]);
        for v in [0, 10, 11, 100, 101, u64::MAX] {
            h.record(v);
        }
        let snap = registry.snapshot();
        let hs = &snap.histograms["h"];
        assert_eq!(hs.counts, vec![2, 2, 2]); // <=10, <=100, overflow
        assert_eq!(hs.count, 6);
        assert_eq!(hs.counts.iter().sum::<u64>(), hs.count);
    }

    #[test]
    fn concurrent_increments_are_never_lost() {
        // The bug this registry exists to prevent: plain `u64 += 1`
        // read-modify-writes from concurrent seal workers drop updates.
        let registry = Registry::new();
        let c = registry.counter("seals");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn default_bounds_are_sorted_and_distinct() {
        let mut sorted = DEFAULT_NS_BOUNDS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.as_slice(), DEFAULT_NS_BOUNDS);
    }
}
