//! A deliberately tiny JSON subset: objects, arrays, strings, and
//! *integers only*.
//!
//! Snapshots are all-integer by construction (counters, bucket counts,
//! nanosecond sums), and keeping floats out of the format is part of the
//! schema contract — a dashboard summing counters must never see `1e6` or
//! a precision-lossy `.0`. The writer emits sorted-key objects (callers
//! iterate `BTreeMap`s) and the reader rejects anything outside the
//! subset, so encode → decode is loss-free and byte-stable.

use std::fmt::Write as _;

/// A parsed JSON value from the integer-only subset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Value {
    /// Key-value pairs in document order.
    Object(Vec<(String, Value)>),
    Array(Vec<Value>),
    Str(String),
    /// Any integer; negatives only appear for gauges.
    Int(i128),
}

impl Value {
    pub(crate) fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub(crate) fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    pub(crate) fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }
}

/// Appends `s` as a JSON string literal.
pub(crate) fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses `input` as one value from the subset; trailing non-whitespace
/// is an error.
pub(crate) fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {pos}",
            char::from(c),
            pos = *pos
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'-' | b'0'..=b'9') => parse_int(bytes, pos),
        Some(other) => Err(format!(
            "unexpected {:?} at byte {}",
            char::from(*other),
            pos
        )),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("non-scalar \\u escape {hex:?}"))?,
                        );
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input came from &str, so the
                // byte stream is valid UTF-8).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
            None => return Err("unterminated string".to_string()),
        }
    }
}

fn parse_int(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if matches!(bytes.get(*pos), Some(b'.' | b'e' | b'E')) {
        return Err(format!(
            "floats are outside the snapshot schema (byte {pos})",
            pos = *pos
        ));
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<i128>()
        .map(Value::Int)
        .map_err(|_| format!("bad integer {text:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_subset() {
        let v = parse(r#"{"a":[1,-2,3],"b":"x\"y","c":{}}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].0, "a");
        assert_eq!(obj[0].1.as_array().unwrap()[1].as_i64(), Some(-2));
        assert_eq!(obj[1].1, Value::Str("x\"y".to_string()));
    }

    #[test]
    fn rejects_floats_and_trailing_data() {
        assert!(parse("1.5").is_err());
        assert!(parse("1e6").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("true").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\nbreak \"quote\" back\\slash \u{1} tab\t";
        let mut encoded = String::new();
        write_string(&mut encoded, original);
        assert_eq!(parse(&encoded).unwrap(), Value::Str(original.to_string()));
    }
}
