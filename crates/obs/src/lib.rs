//! Observability for the Enclaves runtimes: typed metrics, structured
//! protocol events, and stable snapshots.
//!
//! A production operator of an intrusion-tolerant group (the ROADMAP
//! north-star) needs to *see* a rekey storm, a stuck retransmit loop, or a
//! seal-time regression as it happens — not reconstruct it afterwards from
//! a chaos trace. This crate provides the three pieces the rest of the
//! workspace wires together:
//!
//! * [`Registry`] — a registry of named [`Counter`]s, [`Gauge`]s, and
//!   fixed-bucket [`Histogram`]s. Registration takes a short lock;
//!   recording is a relaxed atomic operation on a shared cell, so the hot
//!   paths (one increment per accepted frame, per seal, per broadcast)
//!   stay lock-free and cost nanoseconds. The tree-rekey control plane
//!   reports through the same registry: `leader.rekey_seals` counts
//!   copath-node seals per rotation (the `O(log N)` bound the bench
//!   report enforces) and `leader.path_depth` histograms the refreshed
//!   path depths.
//! * [`EventStream`] — an ordered, timestamped stream of
//!   [`ProtocolEvent`]s (join/auth/rekey/expel/retransmit/seal, each
//!   carrying epoch, channel sequence numbers, and monotonic timestamps).
//!   The vocabulary deliberately mirrors `enclaves-verify::live`'s
//!   `LiveEvent`, so the §5.4 oracle can ingest an observability stream
//!   directly — divergence between the metrics view and the trace view of
//!   a run is itself a test failure. A component without an attached
//!   stream pays one `Option` check per would-be event.
//! * [`Snapshot`] — a point-in-time copy of a registry with a *stable*
//!   JSON encoding (sorted keys, integers only — dashboards can depend on
//!   the schema), a decoder, a merge operation (union of disjoint names,
//!   sum of shared ones), and a human `fmt` renderer.
//!
//! The dependency surface is intentionally zero: every other crate in the
//! workspace can depend on this one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod json;
mod metrics;
mod snapshot;

pub use event::{EventKind, EventStream, ProtocolEvent};
pub use metrics::{Counter, Gauge, Histogram, Registry, DEFAULT_NS_BOUNDS};
pub use snapshot::{HistogramSnapshot, Snapshot, SnapshotError};
