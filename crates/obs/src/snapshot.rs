//! Point-in-time metric snapshots: stable JSON in and out, merging, and a
//! human renderer.

use crate::json::{self, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Errors from decoding or merging snapshots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The input is not valid integer-only JSON.
    Parse(String),
    /// The JSON is valid but does not match the snapshot schema.
    Schema(String),
    /// Two snapshots disagree on a histogram's bucket bounds.
    BucketMismatch(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Parse(e) => write!(f, "snapshot parse error: {e}"),
            SnapshotError::Schema(e) => write!(f, "snapshot schema error: {e}"),
            SnapshotError::BucketMismatch(name) => {
                write!(f, "histogram {name:?} has mismatched bucket bounds")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A copy of one histogram's state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Sorted inclusive upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket sample counts; one more entry than `bounds` (the last
    /// is the overflow bucket).
    pub counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wrapping).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Adds `other`'s samples into `self`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::BucketMismatch`] (with an empty name — callers
    /// attach theirs) if the bucket bounds differ.
    fn merge_from(&mut self, other: &HistogramSnapshot) -> Result<(), SnapshotError> {
        if self.bounds != other.bounds {
            return Err(SnapshotError::BucketMismatch(String::new()));
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine = mine.wrapping_add(*theirs);
        }
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        Ok(())
    }
}

/// A point-in-time copy of a [`crate::Registry`] (or a merge of several).
///
/// The JSON encoding is a schema contract: top-level keys `counters`,
/// `gauges`, `histograms` in that order; metric names sorted
/// lexicographically; histogram fields `bounds`, `count`, `counts`, `sum`
/// in that order; every number an integer (no floats, ever). Encoding the
/// same snapshot twice yields identical bytes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Convenience lookup: the counter's value, or 0 if absent.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Convenience lookup: the gauge's value, or 0 if absent.
    #[must_use]
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Adds every metric of `other` into `self`: names unique to either
    /// side are unioned, shared counters/gauges/histogram buckets are
    /// summed. Summation matches what recording both runs into one
    /// registry would have produced, so merging per-component snapshots
    /// (leader, members, network) yields the whole-world snapshot.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::BucketMismatch`] if a shared histogram name has
    /// different bucket bounds on the two sides; `self` keeps all merges
    /// applied before the mismatch was hit.
    pub fn merge_from(&mut self, other: &Snapshot) -> Result<(), SnapshotError> {
        for (name, value) in &other.counters {
            let slot = self.counters.entry(name.clone()).or_insert(0);
            *slot = slot.wrapping_add(*value);
        }
        for (name, value) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(0);
            *slot = slot.wrapping_add(*value);
        }
        for (name, hist) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine
                    .merge_from(hist)
                    .map_err(|_| SnapshotError::BucketMismatch(name.clone()))?,
                None => {
                    self.histograms.insert(name.clone(), hist.clone());
                }
            }
        }
        Ok(())
    }

    /// Returns a copy with every metric name prefixed by `label` and a
    /// dot: `leader.rekeys` under label `group.ops` becomes
    /// `group.ops.leader.rekeys`. A multi-enclave service uses this to
    /// merge its per-group registries into one snapshot whose names stay
    /// disjoint per group — unlike a bare [`Snapshot::merge_from`], which
    /// would sum same-named metrics across groups.
    #[must_use]
    pub fn with_prefix(&self, label: &str) -> Snapshot {
        let rename = |name: &String| format!("{label}.{name}");
        Snapshot {
            counters: self.counters.iter().map(|(n, v)| (rename(n), *v)).collect(),
            gauges: self.gauges.iter().map(|(n, v)| (rename(n), *v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(n, h)| (rename(n), h.clone()))
                .collect(),
        }
    }

    /// Encodes the snapshot as stable, integer-only JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(&mut out, name);
            let _ = write!(out, ":{value}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(&mut out, name);
            let _ = write!(out, ":{value}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, hist)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(&mut out, name);
            out.push_str(":{\"bounds\":[");
            for (j, b) in hist.bounds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{b}");
            }
            let _ = write!(out, "],\"count\":{}", hist.count);
            out.push_str(",\"counts\":[");
            for (j, c) in hist.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            let _ = write!(out, "],\"sum\":{}}}", hist.sum);
        }
        out.push_str("}}");
        out
    }

    /// Decodes a snapshot from its JSON encoding.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Parse`] for malformed (or float-bearing) JSON,
    /// [`SnapshotError::Schema`] for structure outside the snapshot
    /// schema.
    pub fn from_json(input: &str) -> Result<Snapshot, SnapshotError> {
        let value = json::parse(input).map_err(SnapshotError::Parse)?;
        let top = value
            .as_object()
            .ok_or_else(|| SnapshotError::Schema("top level must be an object".into()))?;
        let mut snapshot = Snapshot::default();
        for (key, section) in top {
            match key.as_str() {
                "counters" => {
                    for (name, v) in object_of(section, "counters")? {
                        let value = v.as_u64().ok_or_else(|| {
                            SnapshotError::Schema(format!("counter {name:?} must be a u64"))
                        })?;
                        snapshot.counters.insert(name.clone(), value);
                    }
                }
                "gauges" => {
                    for (name, v) in object_of(section, "gauges")? {
                        let value = v.as_i64().ok_or_else(|| {
                            SnapshotError::Schema(format!("gauge {name:?} must be an i64"))
                        })?;
                        snapshot.gauges.insert(name.clone(), value);
                    }
                }
                "histograms" => {
                    for (name, v) in object_of(section, "histograms")? {
                        snapshot
                            .histograms
                            .insert(name.clone(), decode_histogram(name, v)?);
                    }
                }
                other => {
                    return Err(SnapshotError::Schema(format!("unknown section {other:?}")));
                }
            }
        }
        Ok(snapshot)
    }
}

fn object_of<'v>(value: &'v Value, section: &str) -> Result<&'v [(String, Value)], SnapshotError> {
    value
        .as_object()
        .ok_or_else(|| SnapshotError::Schema(format!("{section} must be an object")))
}

fn u64_array(value: &Value, what: &str) -> Result<Vec<u64>, SnapshotError> {
    value
        .as_array()
        .ok_or_else(|| SnapshotError::Schema(format!("{what} must be an array")))?
        .iter()
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| SnapshotError::Schema(format!("{what} entries must be u64")))
        })
        .collect()
}

fn decode_histogram(name: &str, value: &Value) -> Result<HistogramSnapshot, SnapshotError> {
    let fields = object_of(value, "histogram")?;
    let mut bounds = None;
    let mut counts = None;
    let mut count = None;
    let mut sum = None;
    for (key, v) in fields {
        match key.as_str() {
            "bounds" => bounds = Some(u64_array(v, "bounds")?),
            "counts" => counts = Some(u64_array(v, "counts")?),
            "count" => count = v.as_u64(),
            "sum" => sum = v.as_u64(),
            other => {
                return Err(SnapshotError::Schema(format!(
                    "histogram {name:?} has unknown field {other:?}"
                )));
            }
        }
    }
    let (Some(bounds), Some(counts), Some(count), Some(sum)) = (bounds, counts, count, sum) else {
        return Err(SnapshotError::Schema(format!(
            "histogram {name:?} is missing a field"
        )));
    };
    if counts.len() != bounds.len() + 1 {
        return Err(SnapshotError::Schema(format!(
            "histogram {name:?} needs exactly bounds+1 buckets"
        )));
    }
    Ok(HistogramSnapshot {
        bounds,
        counts,
        count,
        sum,
    })
}

impl std::fmt::Display for Snapshot {
    /// A human rendering: aligned counters and gauges, then one line per
    /// histogram with its non-empty buckets.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(String::len)
            .max()
            .unwrap_or(0);
        if !self.counters.is_empty() {
            writeln!(f, "counters:")?;
            for (name, value) in &self.counters {
                writeln!(f, "  {name:<width$}  {value}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "gauges:")?;
            for (name, value) in &self.gauges {
                writeln!(f, "  {name:<width$}  {value}")?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(f, "histograms:")?;
            for (name, hist) in &self.histograms {
                let mean = hist.sum.checked_div(hist.count).unwrap_or(0);
                write!(f, "  {name:<width$}  count={} mean={mean}", hist.count)?;
                for (i, c) in hist.counts.iter().enumerate() {
                    if *c == 0 {
                        continue;
                    }
                    match hist.bounds.get(i) {
                        Some(b) => write!(f, " <={b}:{c}")?,
                        None => write!(f, " >{}:{c}", hist.bounds.last().unwrap_or(&0))?,
                    }
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> Snapshot {
        let registry = Registry::new();
        registry.counter("a.count").add(7);
        registry.gauge("b.depth").set(-3);
        let h = registry.histogram_with_bounds("c.ns", &[10, 100]);
        h.record(5);
        h.record(50);
        h.record(500);
        registry.snapshot()
    }

    #[test]
    fn encode_is_deterministic_and_round_trips() {
        let snap = sample();
        let json = snap.to_json();
        assert_eq!(json, snap.to_json());
        assert_eq!(Snapshot::from_json(&json).unwrap(), snap);
    }

    #[test]
    fn merge_unions_and_sums() {
        let mut a = sample();
        let b = sample();
        a.merge_from(&b).unwrap();
        assert_eq!(a.counter("a.count"), 14);
        assert_eq!(a.gauge("b.depth"), -6);
        assert_eq!(a.histograms["c.ns"].count, 6);
        assert_eq!(a.histograms["c.ns"].counts, vec![2, 2, 2]);
    }

    #[test]
    fn with_prefix_relabels_every_section() {
        let snap = sample().with_prefix("group.ops");
        assert_eq!(snap.counter("group.ops.a.count"), 7);
        assert_eq!(snap.gauge("group.ops.b.depth"), -3);
        assert_eq!(snap.histograms["group.ops.c.ns"].count, 3);
        assert!(snap.counters.keys().all(|k| k.starts_with("group.ops.")));
    }

    #[test]
    fn prefixed_merge_keeps_groups_disjoint() {
        let mut service = sample().with_prefix("group.ops");
        service
            .merge_from(&sample().with_prefix("group.eng"))
            .unwrap();
        assert_eq!(service.counter("group.ops.a.count"), 7);
        assert_eq!(service.counter("group.eng.a.count"), 7);
        assert_eq!(service.counter("a.count"), 0, "unprefixed name absent");
    }

    #[test]
    fn merge_rejects_mismatched_buckets() {
        let registry = Registry::new();
        registry.histogram_with_bounds("c.ns", &[1]).record(1);
        let mut other = registry.snapshot();
        assert_eq!(
            other.merge_from(&sample()),
            Err(SnapshotError::BucketMismatch("c.ns".to_string()))
        );
    }

    #[test]
    fn display_renders_every_section() {
        let text = sample().to_string();
        assert!(text.contains("a.count"));
        assert!(text.contains("b.depth"));
        assert!(text.contains("c.ns"));
        assert!(text.contains("count=3"));
        assert!(text.contains(">100:1"), "overflow bucket rendered: {text}");
    }
}
