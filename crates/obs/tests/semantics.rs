//! Property tests for counter/histogram semantics: merging snapshots is
//! indistinguishable from recording the interleaved stream, bucket counts
//! are permutation-invariant, and no sample is ever lost.

use enclaves_obs::{Registry, Snapshot};
use proptest::collection::vec;
use proptest::prelude::*;

/// Deterministic in-place Fisher-Yates driven by a splitmix-style step,
/// so permutation cases are reproducible from the proptest seed.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let j = (seed >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

/// Records `samples` into a fresh registry under one histogram and one
/// counter, returning its snapshot.
fn record_all(samples: &[u64], bounds: &[u64]) -> Snapshot {
    let registry = Registry::new();
    let hist = registry.histogram_with_bounds("h", bounds);
    let count = registry.counter("n");
    for &s in samples {
        hist.record(s);
        count.inc();
    }
    registry.snapshot()
}

const BOUNDS: &[u64] = &[10, 1_000, 100_000, u64::MAX - 1];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging the snapshots of two independent recorders equals
    /// recording any interleaving of both streams into one registry.
    #[test]
    fn merge_equals_interleaved_recording(
        a in vec(any::<u64>(), 0..48),
        b in vec(any::<u64>(), 0..48),
        seed in any::<u64>(),
    ) {
        let mut merged = record_all(&a, BOUNDS);
        merged.merge_from(&record_all(&b, BOUNDS)).unwrap();

        let mut interleaved: Vec<u64> = a.iter().chain(&b).copied().collect();
        shuffle(&mut interleaved, seed);
        prop_assert_eq!(merged, record_all(&interleaved, BOUNDS));
    }

    /// Bucket counts, totals, and sums are invariant under permutation of
    /// the sample stream.
    #[test]
    fn histogram_is_permutation_invariant(
        samples in vec(any::<u64>(), 0..64),
        seed in any::<u64>(),
    ) {
        let mut permuted = samples.clone();
        shuffle(&mut permuted, seed);
        prop_assert_eq!(record_all(&samples, BOUNDS), record_all(&permuted, BOUNDS));
    }

    /// Every sample lands in exactly one bucket: bucket counts sum to the
    /// total count, which is the stream length, and the sum matches the
    /// wrapping sum of the stream.
    #[test]
    fn no_sample_is_ever_lost(samples in vec(any::<u64>(), 0..64)) {
        let snap = record_all(&samples, BOUNDS);
        let hist = &snap.histograms["h"];
        prop_assert_eq!(hist.counts.iter().sum::<u64>(), hist.count);
        prop_assert_eq!(hist.count, samples.len() as u64);
        prop_assert_eq!(snap.counter("n"), samples.len() as u64);
        let expected_sum = samples.iter().fold(0u64, |acc, &s| acc.wrapping_add(s));
        prop_assert_eq!(hist.sum, expected_sum);
    }

    /// Merge is commutative and associative on counters and histograms —
    /// chaos runs merge per-component snapshots in arbitrary order.
    #[test]
    fn merge_order_is_irrelevant(
        a in vec(any::<u64>(), 0..32),
        b in vec(any::<u64>(), 0..32),
        c in vec(any::<u64>(), 0..32),
    ) {
        let (sa, sb, sc) = (
            record_all(&a, BOUNDS),
            record_all(&b, BOUNDS),
            record_all(&c, BOUNDS),
        );
        let mut left = sa.clone();
        left.merge_from(&sb).unwrap();
        left.merge_from(&sc).unwrap();
        let mut right = sc;
        right.merge_from(&sa).unwrap();
        right.merge_from(&sb).unwrap();
        prop_assert_eq!(left, right);
    }

    /// Encode → decode is lossless for arbitrary recorded contents.
    #[test]
    fn json_round_trips_arbitrary_snapshots(samples in vec(any::<u64>(), 0..64)) {
        let snap = record_all(&samples, BOUNDS);
        prop_assert_eq!(Snapshot::from_json(&snap.to_json()).unwrap(), snap);
    }
}
