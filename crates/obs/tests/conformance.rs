//! Snapshot encoding conformance: the JSON schema is a contract.
//!
//! A golden literal pins the exact byte encoding (field order, sorted
//! metric names, integer-only numbers); a round-trip test pins the
//! decoder to the encoder; rejection tests pin what the schema excludes.
//! Any change to the wire shape must consciously edit the golden string.

use enclaves_obs::{Registry, Snapshot, SnapshotError};

/// A registry populated the way a small run would populate it, with names
/// registered in deliberately unsorted order.
fn sample_registry() -> Registry {
    let registry = Registry::new();
    registry.counter("net.dropped").add(12);
    registry.counter("leader.rekeys").add(3);
    registry.gauge("net.holdback_depth").set(2);
    let h = registry.histogram_with_bounds("leader.seal_batch_ns", &[1_000, 1_000_000]);
    h.record(500);
    h.record(250_000);
    h.record(2_000_000);
    registry
}

/// The pinned encoding of [`sample_registry`]. Sections appear as
/// `counters`, `gauges`, `histograms`; names sort lexicographically
/// regardless of registration order; histogram fields appear as `bounds`,
/// `count`, `counts`, `sum`; every number is a bare integer.
const GOLDEN: &str = concat!(
    r#"{"counters":{"leader.rekeys":3,"net.dropped":12},"#,
    r#""gauges":{"net.holdback_depth":2},"#,
    r#""histograms":{"leader.seal_batch_ns":"#,
    r#"{"bounds":[1000,1000000],"count":3,"counts":[1,1,1],"sum":2250500}}}"#
);

#[test]
fn encoding_matches_the_golden_literal() {
    assert_eq!(sample_registry().snapshot().to_json(), GOLDEN);
}

#[test]
fn golden_decodes_back_to_the_snapshot() {
    let snap = sample_registry().snapshot();
    let decoded = Snapshot::from_json(GOLDEN).expect("golden must decode");
    assert_eq!(decoded, snap);
    // And the decoder's output re-encodes to the same bytes.
    assert_eq!(decoded.to_json(), GOLDEN);
}

#[test]
fn empty_snapshot_has_a_stable_shape() {
    let json = Registry::new().snapshot().to_json();
    assert_eq!(json, r#"{"counters":{},"gauges":{},"histograms":{}}"#);
    assert_eq!(Snapshot::from_json(&json).unwrap(), Snapshot::default());
}

#[test]
fn floats_are_rejected_on_decode() {
    let with_float = GOLDEN.replace("\"leader.rekeys\":3", "\"leader.rekeys\":3.0");
    match Snapshot::from_json(&with_float) {
        Err(SnapshotError::Parse(msg)) => {
            assert!(msg.contains("float"), "error names the cause: {msg}");
        }
        other => panic!("float must be a parse error, got {other:?}"),
    }
}

#[test]
fn schema_violations_are_rejected_on_decode() {
    // Unknown top-level section.
    assert!(matches!(
        Snapshot::from_json(r#"{"counters":{},"extras":{}}"#),
        Err(SnapshotError::Schema(_))
    ));
    // Negative counter.
    assert!(matches!(
        Snapshot::from_json(r#"{"counters":{"x":-1}}"#),
        Err(SnapshotError::Schema(_))
    ));
    // Histogram with the wrong bucket arity.
    assert!(matches!(
        Snapshot::from_json(
            r#"{"histograms":{"h":{"bounds":[10],"count":0,"counts":[0],"sum":0}}}"#
        ),
        Err(SnapshotError::Schema(_))
    ));
}

#[test]
fn metric_names_needing_escapes_round_trip() {
    let registry = Registry::new();
    registry.counter("weird \"name\"\nwith\tescapes").add(7);
    let snap = registry.snapshot();
    assert_eq!(Snapshot::from_json(&snap.to_json()).unwrap(), snap);
}

#[test]
fn display_mentions_every_metric() {
    let text = sample_registry().snapshot().to_string();
    for name in [
        "leader.rekeys",
        "net.dropped",
        "net.holdback_depth",
        "leader.seal_batch_ns",
    ] {
        assert!(text.contains(name), "{name} missing from:\n{text}");
    }
}
