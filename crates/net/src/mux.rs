//! Readiness-loop TCP transport: every socket owned by **one** event-loop
//! thread.
//!
//! The threaded backend in [`crate::tcp`] spends a reader thread per
//! connection, which caps realistic scale far below what the protocol
//! benchmarks measure in-process. This module replaces thread-per-link
//! with a nonblocking readiness loop over a vendored mio-style poller
//! (`polling`: epoll on Linux, a portable probe fallback elsewhere):
//!
//! * one loop thread owns every socket (connections *and* listeners),
//! * per-connection state machines reassemble length-prefixed frames
//!   across arbitrary read boundaries,
//! * outbound frames go into **bounded** per-connection queues; a partial
//!   write arms writable-interest and the loop resumes exactly where the
//!   kernel stopped — a slow consumer is disconnected (or shed) at the
//!   queue cap instead of wedging the loop or other connections,
//! * runtime threads enqueue frames through a command channel plus a
//!   wakeup token ([`polling::Poller::notify`]), coalesced so a burst of
//!   sends costs one wakeup.
//!
//! Two consumption modes:
//!
//! * **Link mode** — [`MuxNet::connect`] / [`MuxNet::listen`] return
//!   [`MuxLink`] / [`MuxAcceptor`] implementing the same [`Link`] /
//!   [`Listener`] contract as the threaded transport, so
//!   `LeaderRuntime`, `MemberRuntime`, and the chaos fabrics run
//!   unchanged on either backend.
//! * **Event mode** — [`MuxNet::listen_events`] delivers
//!   [`MuxEvent`]s into a fixed set of sharded channels (one shard per
//!   connection, chosen by token, so per-connection frame order is
//!   preserved) for consumers that must stay at a bounded thread count
//!   regardless of connection count: the multi-enclave leader service's
//!   event-driven mode and the 10k-member load-test swarm.
//!
//! Loop health is observable through `enclaves-obs` as `net.loop.*`:
//! poll iterations, readiness events, wakeups, frames in/out, partial
//! writes, queue depth, and the overflow counters backing the
//! slow-consumer policy.

use crate::{Frame, Link, Listener, NetError};
use crossbeam_channel::{unbounded, Receiver, Sender};
use enclaves_obs::{Counter, Gauge, Registry};
use enclaves_wire::framing::MAX_FRAME_LEN;
use parking_lot::Mutex;
use polling::{Event, Poller};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identifies one connection inside a [`MuxNet`] (also its poller key).
pub type MuxToken = usize;

/// Maintenance cadence of the loop: closing-connection deadlines are
/// enforced at this granularity even with no I/O readiness.
const MAINTENANCE_TICK: Duration = Duration::from_millis(100);

/// A connection in graceful close drains its outbound queue for at most
/// this long before the socket is dropped regardless.
const CLOSING_GRACE: Duration = Duration::from_secs(5);

/// Frames whose prefix+payload fit the scratch buffer are written with a
/// single syscall; larger ones take a prefix write then zero-copy payload
/// writes.
const SCRATCH_LEN: usize = 64 * 1024;

/// Per readiness event, at most this many scratch-buffer fills are read
/// from one connection before the loop moves on (level-triggered polling
/// re-reports the remainder), so a firehose peer cannot starve others.
const READS_PER_EVENT: usize = 4;

/// What to do when a connection's outbound queue would exceed
/// [`MuxConfig::max_outbound_bytes`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MuxOverflow {
    /// Sever the slow consumer (counted as `net.loop.overflow_disconnects`).
    /// The protocol layer treats it like any other crash: the member can
    /// rejoin, the leader can evict. This is the default: a reader that
    /// stopped draining is indistinguishable from a dead one.
    Disconnect,
    /// Shed the newest frame (counted as `net.loop.overflow_drops`) and
    /// keep the connection; retransmission layers above recover.
    DropNewest,
}

/// Tuning for a [`MuxNet`].
#[derive(Clone, Debug)]
pub struct MuxConfig {
    /// Per-connection outbound queue cap in bytes (frame payloads plus
    /// their 4-byte prefixes). A queue always admits at least one frame
    /// regardless of the cap, so a single oversized frame cannot wedge.
    pub max_outbound_bytes: usize,
    /// Slow-consumer policy at the cap.
    pub overflow: MuxOverflow,
    /// Force the portable probe poller instead of the platform backend —
    /// used by tests to prove the loop does not depend on epoll
    /// semantics.
    pub probe_poller: bool,
}

impl Default for MuxConfig {
    fn default() -> Self {
        MuxConfig {
            max_outbound_bytes: 4 * (MAX_FRAME_LEN + 4),
            overflow: MuxOverflow::Disconnect,
            probe_poller: false,
        }
    }
}

/// Loop-health metrics, registered as `net.loop.*`.
#[derive(Clone)]
struct MuxObs {
    polls: Counter,
    readiness_events: Counter,
    wakeups: Counter,
    frames_in: Counter,
    frames_out: Counter,
    partial_writes: Counter,
    accepted: Counter,
    accept_errors: Counter,
    closed: Counter,
    overflow_disconnects: Counter,
    overflow_drops: Counter,
    oversize_frames: Counter,
    conns: Gauge,
    queued_bytes: Gauge,
}

impl MuxObs {
    fn new(registry: &Registry) -> Self {
        MuxObs {
            polls: registry.counter("net.loop.polls"),
            readiness_events: registry.counter("net.loop.readiness_events"),
            wakeups: registry.counter("net.loop.wakeups"),
            frames_in: registry.counter("net.loop.frames_in"),
            frames_out: registry.counter("net.loop.frames_out"),
            partial_writes: registry.counter("net.loop.partial_writes"),
            accepted: registry.counter("net.loop.accepted"),
            accept_errors: registry.counter("net.loop.accept_errors"),
            closed: registry.counter("net.loop.closed"),
            overflow_disconnects: registry.counter("net.loop.overflow_disconnects"),
            overflow_drops: registry.counter("net.loop.overflow_drops"),
            oversize_frames: registry.counter("net.loop.oversize_frames"),
            conns: registry.gauge("net.loop.conns"),
            queued_bytes: registry.gauge("net.loop.queued_bytes"),
        }
    }
}

/// An event from the loop, delivered on a shard channel in event mode.
/// All events for one connection arrive on one shard in wire order.
#[derive(Clone, Debug)]
pub enum MuxEvent {
    /// A listener in event mode accepted a connection.
    Accepted {
        /// The new connection's token.
        token: MuxToken,
        /// The peer address (untrusted routing hint).
        peer: SocketAddr,
    },
    /// A complete frame arrived.
    Frame {
        /// The connection it arrived on.
        token: MuxToken,
        /// The reassembled payload.
        frame: Frame,
    },
    /// The connection is gone (EOF, error, overflow disconnect, or
    /// explicit close). No further events for this token follow.
    Closed {
        /// The closed connection's token.
        token: MuxToken,
    },
}

/// Where a connection's inbound frames go.
enum Delivery {
    /// Link mode: a per-connection channel drained by
    /// [`MuxLink::recv_timeout`].
    Channel(Sender<Frame>),
    /// Event mode: the shard channel this connection was assigned to.
    Events(Sender<MuxEvent>),
}

/// How a listener hands out accepted connections.
enum AcceptMode {
    /// Link mode: accepted connections become [`MuxLink`]s on this queue.
    Links(Sender<MuxLink>),
    /// Event mode: accepted connections are announced and delivered on
    /// `shards[token % shards.len()]`.
    Shards(Vec<Sender<MuxEvent>>),
}

/// Commands from runtime threads to the loop.
enum Cmd {
    /// Adopt an already-connected nonblocking stream.
    Register {
        token: MuxToken,
        stream: TcpStream,
        delivery: Delivery,
    },
    /// Adopt a nonblocking listener.
    Listen {
        token: MuxToken,
        listener: TcpListener,
        accept: AcceptMode,
    },
    /// Enqueue one frame on a connection's outbound queue.
    Send { token: MuxToken, frame: Frame },
    /// Gracefully close: drain outbound (bounded by [`CLOSING_GRACE`]),
    /// then drop the socket.
    Close { token: MuxToken },
    /// Stop the loop: best-effort flush, then drop everything.
    Shutdown,
}

/// One outbound frame with its write progress (offset counts over the
/// 4-byte prefix plus the payload).
struct OutFrame {
    frame: Frame,
    written: usize,
}

impl OutFrame {
    fn total(&self) -> usize {
        4 + self.frame.len()
    }
}

/// Frame-reassembly state: a length prefix then a payload, filled across
/// arbitrary read boundaries.
struct ReadState {
    hdr: [u8; 4],
    hdr_got: usize,
    body: Vec<u8>,
    body_got: usize,
}

impl ReadState {
    fn new() -> Self {
        ReadState {
            hdr: [0; 4],
            hdr_got: 0,
            body: Vec::new(),
            body_got: 0,
        }
    }
}

struct Conn {
    stream: TcpStream,
    delivery: Delivery,
    read: ReadState,
    out: VecDeque<OutFrame>,
    out_bytes: usize,
    writable_interest: bool,
    /// Set by [`Cmd::Close`]: stop reading, drain outbound, then drop.
    closing_since: Option<Instant>,
}

enum Entry {
    Conn(Conn),
    Listener {
        listener: TcpListener,
        accept: AcceptMode,
    },
}

struct MuxShared {
    cmd_tx: Sender<Cmd>,
    /// Send-side wakeup coalescing: a sender only notifies the poller
    /// when it moves this counter off zero; the loop swaps it back to
    /// zero before draining, so a burst of sends costs one wakeup.
    cmd_pending: AtomicUsize,
    poller: Poller,
    next_token: AtomicUsize,
    running: AtomicBool,
    registry: Registry,
    obs: MuxObs,
    loop_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl MuxShared {
    fn push_cmd(&self, cmd: Cmd) {
        if self.cmd_tx.send(cmd).is_err() {
            return; // loop already gone
        }
        if self.cmd_pending.fetch_add(1, Ordering::AcqRel) == 0 {
            let _ = self.poller.notify();
        }
    }
}

/// A readiness-loop transport instance: one event-loop thread, any
/// number of connections and listeners. Handles are cheaply cloneable.
#[derive(Clone)]
pub struct MuxNet {
    shared: Arc<MuxShared>,
}

impl std::fmt::Debug for MuxNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MuxNet")
            .field("conns", &self.shared.obs.conns.get())
            .finish_non_exhaustive()
    }
}

impl MuxNet {
    /// Starts the event loop with a private metric registry.
    #[must_use]
    pub fn spawn(config: MuxConfig) -> Self {
        Self::spawn_with_registry(config, &Registry::new())
    }

    /// Starts the event loop, mirroring loop health into `registry` as
    /// `net.loop.*`.
    ///
    /// # Panics
    ///
    /// Panics if the poller or the loop thread cannot be created.
    #[must_use]
    pub fn spawn_with_registry(config: MuxConfig, registry: &Registry) -> Self {
        let poller = if config.probe_poller {
            Poller::with_probe_backend()
        } else {
            Poller::new().expect("create poller")
        };
        let (cmd_tx, cmd_rx) = unbounded();
        let shared = Arc::new(MuxShared {
            cmd_tx,
            cmd_pending: AtomicUsize::new(0),
            poller,
            next_token: AtomicUsize::new(0),
            running: AtomicBool::new(true),
            registry: registry.clone(),
            obs: MuxObs::new(registry),
            loop_thread: Mutex::new(None),
        });
        let loop_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("enclaves-mux-loop".into())
            .spawn(move || event_loop(&loop_shared, &cmd_rx, &config))
            .expect("spawn mux event loop");
        *shared.loop_thread.lock() = Some(handle);
        MuxNet { shared }
    }

    fn alloc_token(&self) -> MuxToken {
        self.shared.next_token.fetch_add(1, Ordering::Relaxed)
    }

    fn prepare_stream(addr: SocketAddr) -> Result<(TcpStream, SocketAddr), NetError> {
        let stream = TcpStream::connect(addr).map_err(|e| NetError::Io(e.to_string()))?;
        let peer = stream
            .peer_addr()
            .map_err(|e| NetError::Io(e.to_string()))?;
        stream
            .set_nodelay(true)
            .map_err(|e| NetError::Io(e.to_string()))?;
        stream
            .set_nonblocking(true)
            .map_err(|e| NetError::Io(e.to_string()))?;
        Ok((stream, peer))
    }

    /// Connects to `addr` in Link mode: the returned [`MuxLink`] speaks
    /// the same [`Link`] contract as [`crate::tcp::TcpLink`], with the
    /// socket owned by the loop instead of a reader thread.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] on connection failure, [`NetError::Disconnected`]
    /// if the loop has shut down.
    pub fn connect(&self, addr: SocketAddr) -> Result<MuxLink, NetError> {
        if !self.shared.running.load(Ordering::Relaxed) {
            return Err(NetError::Disconnected);
        }
        let (stream, peer) = Self::prepare_stream(addr)?;
        let token = self.alloc_token();
        let (tx, rx) = unbounded();
        self.shared.push_cmd(Cmd::Register {
            token,
            stream,
            delivery: Delivery::Channel(tx),
        });
        Ok(MuxLink {
            net: self.clone(),
            token,
            incoming: rx,
            peer,
        })
    }

    /// Connects to `addr` in event mode: frames and the close arrive as
    /// [`MuxEvent`]s on `events`, outbound goes through
    /// [`MuxNet::send_to`]. Used by consumers multiplexing many
    /// connections onto few threads (the load-test swarm).
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] on connection failure, [`NetError::Disconnected`]
    /// if the loop has shut down.
    pub fn connect_routed(
        &self,
        addr: SocketAddr,
        events: &Sender<MuxEvent>,
    ) -> Result<MuxToken, NetError> {
        if !self.shared.running.load(Ordering::Relaxed) {
            return Err(NetError::Disconnected);
        }
        let (stream, _peer) = Self::prepare_stream(addr)?;
        let token = self.alloc_token();
        self.shared.push_cmd(Cmd::Register {
            token,
            stream,
            delivery: Delivery::Events(events.clone()),
        });
        Ok(token)
    }

    fn bind(addr: SocketAddr) -> Result<(TcpListener, SocketAddr), NetError> {
        let listener = TcpListener::bind(addr).map_err(|e| NetError::Io(e.to_string()))?;
        let local = listener
            .local_addr()
            .map_err(|e| NetError::Io(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| NetError::Io(e.to_string()))?;
        Ok((listener, local))
    }

    /// Binds a Link-mode listener: accepted connections surface as
    /// boxed [`MuxLink`]s through the [`Listener`] contract.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the bind fails.
    pub fn listen(&self, addr: SocketAddr) -> Result<MuxAcceptor, NetError> {
        let (listener, local) = Self::bind(addr)?;
        let token = self.alloc_token();
        let (tx, rx) = unbounded();
        self.shared.push_cmd(Cmd::Listen {
            token,
            listener,
            accept: AcceptMode::Links(tx),
        });
        Ok(MuxAcceptor {
            accepted: rx,
            local,
        })
    }

    /// Binds an event-mode listener with `shards` delivery channels.
    /// Every connection is pinned to `shards[token % shards]`, so one
    /// shard sees all of a connection's events in order; a fixed pool of
    /// consumer threads (one per shard) therefore serves any number of
    /// connections.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the bind fails.
    pub fn listen_events(&self, addr: SocketAddr, shards: usize) -> Result<MuxEndpoint, NetError> {
        let (listener, local) = Self::bind(addr)?;
        let token = self.alloc_token();
        let shards = shards.max(1);
        let mut txs = Vec::with_capacity(shards);
        let mut rxs = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        self.shared.push_cmd(Cmd::Listen {
            token,
            listener,
            accept: AcceptMode::Shards(txs),
        });
        Ok(MuxEndpoint {
            net: self.clone(),
            local,
            shards: rxs,
        })
    }

    /// Enqueues `frame` on `token`'s outbound queue (event-mode sends;
    /// Link mode goes through [`MuxLink::send`]). Fire-and-forget past
    /// the loop-liveness check: backpressure is enforced *inside* the
    /// loop by the configured [`MuxOverflow`] policy.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] if the loop has shut down.
    pub fn send_to(&self, token: MuxToken, frame: Frame) -> Result<(), NetError> {
        if !self.shared.running.load(Ordering::Relaxed) {
            return Err(NetError::Disconnected);
        }
        self.shared.push_cmd(Cmd::Send { token, frame });
        Ok(())
    }

    /// Requests a graceful close of `token`: pending outbound frames are
    /// flushed (bounded grace), then the socket drops and a
    /// [`MuxEvent::Closed`] / channel disconnect is delivered.
    pub fn close(&self, token: MuxToken) {
        self.shared.push_cmd(Cmd::Close { token });
    }

    /// The registry loop-health metrics are written to.
    #[must_use]
    pub fn obs_registry(&self) -> Registry {
        self.shared.registry.clone()
    }

    /// Stops the loop thread, dropping every connection after a
    /// best-effort flush. Idempotent; safe from any handle clone.
    pub fn shutdown(&self) {
        if self.shared.running.swap(false, Ordering::Relaxed) {
            self.shared.push_cmd(Cmd::Shutdown);
            // push_cmd only notifies on the 0→1 edge; a shutdown must
            // always wake the loop.
            let _ = self.shared.poller.notify();
        }
        let handle = self.shared.loop_thread.lock().take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

/// A duplex link whose socket lives on the [`MuxNet`] event loop —
/// no per-connection threads.
pub struct MuxLink {
    net: MuxNet,
    token: MuxToken,
    incoming: Receiver<Frame>,
    peer: SocketAddr,
}

impl std::fmt::Debug for MuxLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MuxLink")
            .field("token", &self.token)
            .field("peer", &self.peer)
            .finish()
    }
}

impl MuxLink {
    /// This link's loop token.
    #[must_use]
    pub fn token(&self) -> MuxToken {
        self.token
    }
}

impl Link for MuxLink {
    fn send(&self, frame: Frame) -> Result<(), NetError> {
        self.net.send_to(self.token, frame)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Frame, NetError> {
        self.incoming.recv_timeout(timeout).map_err(|e| match e {
            crossbeam_channel::RecvTimeoutError::Timeout => NetError::Timeout,
            crossbeam_channel::RecvTimeoutError::Disconnected => NetError::Disconnected,
        })
    }

    fn peer_hint(&self) -> Option<String> {
        Some(self.peer.to_string())
    }
}

impl Drop for MuxLink {
    fn drop(&mut self) {
        // Mirror TcpLink: dropping the handle closes the connection
        // (after the loop drains anything already queued).
        self.net.close(self.token);
    }
}

/// Link-mode acceptor over a loop-owned listener.
pub struct MuxAcceptor {
    accepted: Receiver<MuxLink>,
    local: SocketAddr,
}

impl std::fmt::Debug for MuxAcceptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MuxAcceptor")
            .field("local", &self.local)
            .finish()
    }
}

impl MuxAcceptor {
    /// The bound address (useful with ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }
}

impl Listener for MuxAcceptor {
    fn accept_timeout(&self, timeout: Duration) -> Result<Box<dyn Link>, NetError> {
        match self.accepted.recv_timeout(timeout) {
            Ok(link) => Ok(Box::new(link)),
            Err(crossbeam_channel::RecvTimeoutError::Timeout) => Err(NetError::Timeout),
            Err(crossbeam_channel::RecvTimeoutError::Disconnected) => Err(NetError::Disconnected),
        }
    }
}

/// An event-mode endpoint: the bound address plus the sharded event
/// receivers. Outbound frames go through [`MuxEndpoint::net`] /
/// [`MuxNet::send_to`].
pub struct MuxEndpoint {
    net: MuxNet,
    local: SocketAddr,
    shards: Vec<Receiver<MuxEvent>>,
}

impl std::fmt::Debug for MuxEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MuxEndpoint")
            .field("local", &self.local)
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl MuxEndpoint {
    /// The bound address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// A handle to the owning loop (for sends and shutdown).
    #[must_use]
    pub fn net(&self) -> MuxNet {
        self.net.clone()
    }

    /// Takes the shard receivers (once); consumers spawn one thread per
    /// shard.
    pub fn take_shards(&mut self) -> Vec<Receiver<MuxEvent>> {
        std::mem::take(&mut self.shards)
    }
}

// ---------------------------------------------------------------------------
// The loop
// ---------------------------------------------------------------------------

fn event_loop(shared: &Arc<MuxShared>, cmd_rx: &Receiver<Cmd>, config: &MuxConfig) {
    let obs = shared.obs.clone();
    let mut entries: HashMap<MuxToken, Entry> = HashMap::new();
    let mut events: Vec<Event> = Vec::with_capacity(1024);
    let mut scratch = vec![0u8; SCRATCH_LEN];

    'outer: loop {
        // Drain commands first: sends enqueued while we slept must hit
        // the sockets before the next wait.
        while shared.cmd_pending.swap(0, Ordering::AcqRel) > 0 {
            while let Ok(cmd) = cmd_rx.try_recv() {
                if !apply_cmd(shared, &obs, &mut entries, &mut scratch, cmd, config) {
                    break 'outer;
                }
            }
        }

        events.clear();
        match shared.poller.wait(&mut events, Some(MAINTENANCE_TICK)) {
            Ok(n) => {
                obs.polls.inc();
                obs.readiness_events.add(n as u64);
                if n == 0 && shared.cmd_pending.load(Ordering::Acquire) > 0 {
                    obs.wakeups.inc();
                }
            }
            Err(_) => break,
        }

        for ev in events.drain(..) {
            match entries.get_mut(&ev.key) {
                Some(Entry::Listener { .. }) if ev.readable => {
                    accept_ready(shared, &obs, &mut entries, ev.key, config);
                }
                Some(Entry::Listener { .. }) => {}
                Some(Entry::Conn(conn)) => {
                    let mut dead = false;
                    if ev.writable {
                        dead = !write_conn(shared, &obs, conn, ev.key, &mut scratch);
                    }
                    if !dead && ev.readable && conn.closing_since.is_none() {
                        dead = !read_conn(shared, &obs, conn, ev.key, &mut scratch);
                    }
                    if !dead && conn.closing_since.is_some() && conn.out.is_empty() {
                        dead = true;
                    }
                    if dead {
                        close_entry(shared, &obs, &mut entries, ev.key);
                    }
                }
                None => {} // closed while events were in flight
            }
        }

        // Maintenance: force-close connections whose graceful drain
        // overstayed its grace period.
        let now = Instant::now();
        let overdue: Vec<MuxToken> = entries
            .iter()
            .filter_map(|(t, e)| match e {
                Entry::Conn(c) => c
                    .closing_since
                    .filter(|s| now.duration_since(*s) >= CLOSING_GRACE)
                    .map(|_| *t),
                Entry::Listener { .. } => None,
            })
            .collect();
        for token in overdue {
            close_entry(shared, &obs, &mut entries, token);
        }
    }

    // Shutdown: best-effort flush, then drop everything (channel senders
    // drop with the map, surfacing disconnects to link holders).
    let tokens: Vec<MuxToken> = entries.keys().copied().collect();
    for token in tokens {
        if let Some(Entry::Conn(conn)) = entries.get_mut(&token) {
            let _ = write_conn(shared, &obs, conn, token, &mut scratch);
        }
        close_entry(shared, &obs, &mut entries, token);
    }
}

/// Applies one command; returns `false` on [`Cmd::Shutdown`].
fn apply_cmd(
    shared: &Arc<MuxShared>,
    obs: &MuxObs,
    entries: &mut HashMap<MuxToken, Entry>,
    scratch: &mut [u8],
    cmd: Cmd,
    config: &MuxConfig,
) -> bool {
    match cmd {
        Cmd::Register {
            token,
            stream,
            delivery,
        } => {
            if shared.poller.add(&stream, Event::readable(token)).is_err() {
                // Registration failed (fd exhaustion): surface as an
                // immediate close.
                deliver_closed(&delivery, token);
                return true;
            }
            entries.insert(
                token,
                Entry::Conn(Conn {
                    stream,
                    delivery,
                    read: ReadState::new(),
                    out: VecDeque::new(),
                    out_bytes: 0,
                    writable_interest: false,
                    closing_since: None,
                }),
            );
            obs.conns.add(1);
        }
        Cmd::Listen {
            token,
            listener,
            accept,
        } => {
            if shared.poller.add(&listener, Event::readable(token)).is_ok() {
                entries.insert(token, Entry::Listener { listener, accept });
            }
        }
        Cmd::Send { token, frame } => {
            let Some(Entry::Conn(conn)) = entries.get_mut(&token) else {
                return true; // connection already gone: drop silently
            };
            let size = 4 + frame.len();
            if !conn.out.is_empty() && conn.out_bytes + size > config.max_outbound_bytes {
                match config.overflow {
                    MuxOverflow::Disconnect => {
                        obs.overflow_disconnects.inc();
                        close_entry(shared, obs, entries, token);
                    }
                    MuxOverflow::DropNewest => obs.overflow_drops.inc(),
                }
                return true;
            }
            conn.out.push_back(OutFrame { frame, written: 0 });
            conn.out_bytes += size;
            obs.queued_bytes.add(size as i64);
            if !write_conn(shared, obs, conn, token, scratch) {
                close_entry(shared, obs, entries, token);
            }
        }
        Cmd::Close { token } => {
            let Some(Entry::Conn(conn)) = entries.get_mut(&token) else {
                return true;
            };
            if !write_conn(shared, obs, conn, token, scratch) || conn.out.is_empty() {
                close_entry(shared, obs, entries, token);
            } else {
                conn.closing_since = Some(Instant::now());
            }
        }
        Cmd::Shutdown => return false,
    }
    true
}

fn deliver_closed(delivery: &Delivery, token: MuxToken) {
    if let Delivery::Events(tx) = delivery {
        let _ = tx.send(MuxEvent::Closed { token });
    }
    // Channel mode: dropping the sender (with the conn) disconnects the
    // receiver, which is the Link-contract close signal.
}

fn close_entry(
    shared: &Arc<MuxShared>,
    obs: &MuxObs,
    entries: &mut HashMap<MuxToken, Entry>,
    token: MuxToken,
) {
    let Some(entry) = entries.remove(&token) else {
        return;
    };
    match entry {
        Entry::Conn(conn) => {
            let _ = shared.poller.delete(&conn.stream);
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            obs.conns.sub(1);
            obs.closed.inc();
            obs.queued_bytes.sub(conn.out_bytes as i64);
            deliver_closed(&conn.delivery, token);
        }
        Entry::Listener { listener, .. } => {
            let _ = shared.poller.delete(&listener);
        }
    }
}

/// Accepts until `WouldBlock`. Accept errors are counted, never
/// swallowed silently.
fn accept_ready(
    shared: &Arc<MuxShared>,
    obs: &MuxObs,
    entries: &mut HashMap<MuxToken, Entry>,
    listener_token: MuxToken,
    _config: &MuxConfig,
) {
    // Take the listener out while accepting so new connections can be
    // inserted into the same map.
    let Some(Entry::Listener { listener, accept }) = entries.remove(&listener_token) else {
        return;
    };
    loop {
        match listener.accept() {
            Ok((stream, peer)) => {
                if stream.set_nodelay(true).is_err() || stream.set_nonblocking(true).is_err() {
                    obs.accept_errors.inc();
                    continue;
                }
                let token = shared.next_token.fetch_add(1, Ordering::Relaxed);
                let delivery = match &accept {
                    AcceptMode::Links(tx) => {
                        let (frame_tx, frame_rx) = unbounded();
                        let link = MuxLink {
                            net: MuxNet {
                                shared: Arc::clone(shared),
                            },
                            token,
                            incoming: frame_rx,
                            peer,
                        };
                        if tx.send(link).is_err() {
                            // Acceptor dropped: refuse the connection.
                            continue;
                        }
                        Delivery::Channel(frame_tx)
                    }
                    AcceptMode::Shards(txs) => {
                        let tx = txs[token % txs.len()].clone();
                        let _ = tx.send(MuxEvent::Accepted { token, peer });
                        Delivery::Events(tx)
                    }
                };
                if shared.poller.add(&stream, Event::readable(token)).is_err() {
                    obs.accept_errors.inc();
                    deliver_closed(&delivery, token);
                    continue;
                }
                entries.insert(
                    token,
                    Entry::Conn(Conn {
                        stream,
                        delivery,
                        read: ReadState::new(),
                        out: VecDeque::new(),
                        out_bytes: 0,
                        writable_interest: false,
                        closing_since: None,
                    }),
                );
                obs.conns.add(1);
                obs.accepted.inc();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                obs.accept_errors.inc();
                break;
            }
        }
    }
    entries.insert(listener_token, Entry::Listener { listener, accept });
}

/// Updates the poller interest to match `conn`'s outbound state.
fn update_interest(shared: &Arc<MuxShared>, conn: &mut Conn, token: MuxToken) {
    let want_writable = !conn.out.is_empty();
    if want_writable != conn.writable_interest {
        let interest = if want_writable {
            Event::all(token)
        } else {
            Event::readable(token)
        };
        if shared.poller.modify(&conn.stream, interest).is_ok() {
            conn.writable_interest = want_writable;
        }
    }
}

/// Flushes as much outbound as the socket accepts. Returns `false` if
/// the connection died.
fn write_conn(
    shared: &Arc<MuxShared>,
    obs: &MuxObs,
    conn: &mut Conn,
    token: MuxToken,
    scratch: &mut [u8],
) -> bool {
    loop {
        let Some(head) = conn.out.front() else {
            update_interest(shared, conn, token);
            return true;
        };
        let len = head.frame.len();
        let total = head.total();
        let prefix = (len as u32).to_be_bytes();
        let result = if head.written == 0 && total <= scratch.len() {
            // Small frame, nothing written yet: one syscall for
            // prefix + payload.
            scratch[..4].copy_from_slice(&prefix);
            scratch[4..total].copy_from_slice(&head.frame);
            conn.stream.write(&scratch[..total])
        } else if head.written < 4 {
            conn.stream.write(&prefix[head.written..])
        } else {
            // Zero-copy payload write straight from the shared frame.
            conn.stream.write(&head.frame[head.written - 4..])
        };
        match result {
            Ok(0) => return false,
            Ok(n) => {
                let head = conn.out.front_mut().expect("head still queued");
                head.written += n;
                if head.written >= total {
                    conn.out.pop_front();
                    conn.out_bytes -= total;
                    obs.queued_bytes.sub(total as i64);
                    obs.frames_out.inc();
                } else {
                    obs.partial_writes.inc();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Kernel buffer full: arm writable-interest and resume
                // exactly here when the poller reports progress.
                obs.partial_writes.inc();
                update_interest(shared, conn, token);
                return true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
}

/// Reads and reassembles frames until `WouldBlock` (bounded per event
/// for fairness). Returns `false` if the connection died or violated
/// framing.
fn read_conn(
    shared: &Arc<MuxShared>,
    obs: &MuxObs,
    conn: &mut Conn,
    token: MuxToken,
    scratch: &mut [u8],
) -> bool {
    let _ = shared;
    for _ in 0..READS_PER_EVENT {
        match conn.stream.read(scratch) {
            Ok(0) => return false, // EOF
            Ok(n) => {
                if !feed_read(obs, conn, token, &scratch[..n]) {
                    return false;
                }
                if n < scratch.len() {
                    return true; // drained
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    true // fairness bound hit; level-triggered poll re-reports the rest
}

/// Feeds raw bytes through the frame-reassembly state machine,
/// delivering every completed frame. Returns `false` on a framing
/// violation or a dead consumer.
fn feed_read(obs: &MuxObs, conn: &mut Conn, token: MuxToken, mut buf: &[u8]) -> bool {
    loop {
        let read = &mut conn.read;
        if read.hdr_got < 4 {
            if buf.is_empty() {
                return true;
            }
            let take = (4 - read.hdr_got).min(buf.len());
            read.hdr[read.hdr_got..read.hdr_got + take].copy_from_slice(&buf[..take]);
            read.hdr_got += take;
            buf = &buf[take..];
            if read.hdr_got < 4 {
                return true;
            }
            let len = u32::from_be_bytes(read.hdr) as usize;
            if len > MAX_FRAME_LEN {
                // Reject before allocating, like the threaded reader.
                obs.oversize_frames.inc();
                return false;
            }
            read.body = vec![0u8; len];
            read.body_got = 0;
        }
        let need = read.body.len() - read.body_got;
        let take = need.min(buf.len());
        read.body[read.body_got..read.body_got + take].copy_from_slice(&buf[..take]);
        read.body_got += take;
        buf = &buf[take..];
        if read.body_got < read.body.len() {
            return true; // body incomplete; buf exhausted
        }
        let frame: Frame = std::mem::take(&mut read.body).into();
        read.hdr_got = 0;
        read.body_got = 0;
        obs.frames_in.inc();
        let alive = match &conn.delivery {
            Delivery::Channel(tx) => tx.send(frame).is_ok(),
            Delivery::Events(tx) => tx.send(MuxEvent::Frame { token, frame }).is_ok(),
        };
        if !alive {
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TO: Duration = Duration::from_secs(5);

    fn loopback() -> SocketAddr {
        "127.0.0.1:0".parse().unwrap()
    }

    fn spawn_net(probe: bool) -> MuxNet {
        MuxNet::spawn(MuxConfig {
            probe_poller: probe,
            ..MuxConfig::default()
        })
    }

    /// One accepted/connected pair on a fresh net.
    fn pair(net: &MuxNet) -> (MuxLink, Box<dyn Link>) {
        let acceptor = net.listen(loopback()).unwrap();
        let addr = acceptor.local_addr();
        let client = net.connect(addr).unwrap();
        let server = acceptor.accept_timeout(TO).unwrap();
        (client, server)
    }

    fn exchange_on(probe: bool) {
        let net = spawn_net(probe);
        let (client, server) = pair(&net);
        client.send(Frame::from(&b"ping"[..])).unwrap();
        assert_eq!(&*server.recv_timeout(TO).unwrap(), b"ping");
        server.send(Frame::from(&b"pong"[..])).unwrap();
        assert_eq!(&*client.recv_timeout(TO).unwrap(), b"pong");
        net.shutdown();
    }

    #[test]
    fn connect_and_exchange() {
        exchange_on(false);
    }

    #[test]
    fn connect_and_exchange_probe_backend() {
        exchange_on(true);
    }

    #[test]
    fn accept_times_out() {
        let net = spawn_net(false);
        let acceptor = net.listen(loopback()).unwrap();
        let err = match acceptor.accept_timeout(Duration::from_millis(50)) {
            Ok(_) => panic!("unexpected accept"),
            Err(e) => e,
        };
        assert!(matches!(err, NetError::Timeout));
        net.shutdown();
    }

    #[test]
    fn recv_times_out() {
        let net = spawn_net(false);
        let (client, _server) = pair(&net);
        let err = client.recv_timeout(Duration::from_millis(50)).unwrap_err();
        assert!(matches!(err, NetError::Timeout));
        net.shutdown();
    }

    #[test]
    fn disconnect_is_detected() {
        let net = spawn_net(false);
        let (client, server) = pair(&net);
        drop(client);
        let err = loop {
            match server.recv_timeout(TO) {
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert!(matches!(err, NetError::Disconnected));
        net.shutdown();
    }

    #[test]
    fn close_flushes_queued_frames_first() {
        // A send immediately followed by dropping the link must still
        // deliver the frame: Cmd::Close drains outbound before closing.
        let net = spawn_net(false);
        let (client, server) = pair(&net);
        client.send(Frame::from(&b"last words"[..])).unwrap();
        drop(client);
        assert_eq!(&*server.recv_timeout(TO).unwrap(), b"last words");
        assert!(matches!(
            server.recv_timeout(TO).unwrap_err(),
            NetError::Disconnected
        ));
        net.shutdown();
    }

    fn large_frames_on(probe: bool) {
        let net = spawn_net(probe);
        let (client, server) = pair(&net);
        // Larger than the 64 KiB scratch buffer: exercises partial
        // reassembly and the zero-copy write path.
        let big: Frame = vec![0xA7u8; 600 * 1024].into();
        client.send(Frame::clone(&big)).unwrap();
        let got = server.recv_timeout(TO).unwrap();
        assert_eq!(&*got, &*big);
        server.send(Frame::clone(&big)).unwrap();
        assert_eq!(&*client.recv_timeout(TO).unwrap(), &*big);
        net.shutdown();
    }

    #[test]
    fn large_frames_roundtrip() {
        large_frames_on(false);
    }

    #[test]
    fn large_frames_roundtrip_probe_backend() {
        large_frames_on(true);
    }

    #[test]
    fn frames_arrive_in_order() {
        let net = spawn_net(false);
        let (client, server) = pair(&net);
        for i in 0..500u32 {
            client.send(i.to_be_bytes().to_vec().into()).unwrap();
        }
        for i in 0..500u32 {
            let frame = server.recv_timeout(TO).unwrap();
            assert_eq!(u32::from_be_bytes(frame[..4].try_into().unwrap()), i);
        }
        net.shutdown();
    }

    #[test]
    fn loop_metrics_are_counted() {
        let registry = Registry::new();
        let net = MuxNet::spawn_with_registry(MuxConfig::default(), &registry);
        let (client, server) = pair(&net);
        client.send(Frame::from(&b"x"[..])).unwrap();
        let _ = server.recv_timeout(TO).unwrap();
        let snap = registry.snapshot();
        assert!(snap.counter("net.loop.frames_in") >= 1);
        assert!(snap.counter("net.loop.frames_out") >= 1);
        assert_eq!(snap.counter("net.loop.accepted"), 1);
        drop(client);
        drop(server);
        let deadline = Instant::now() + TO;
        while registry.snapshot().gauge("net.loop.conns") != 0 {
            assert!(Instant::now() < deadline, "conns gauge never drained");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(registry.snapshot().counter("net.loop.closed") >= 2);
        net.shutdown();
    }

    #[test]
    fn overflow_disconnects_slow_consumer() {
        let registry = Registry::new();
        let net = MuxNet::spawn_with_registry(
            MuxConfig {
                max_outbound_bytes: 64 * 1024,
                overflow: MuxOverflow::Disconnect,
                ..MuxConfig::default()
            },
            &registry,
        );
        let (client, server) = pair(&net);
        // `server` never reads. Push until the kernel buffers fill and
        // the bounded queue trips the disconnect policy.
        let chunk: Frame = vec![0u8; 32 * 1024].into();
        for _ in 0..4096 {
            client.send(Frame::clone(&chunk)).unwrap();
            if registry.snapshot().counter("net.loop.overflow_disconnects") > 0 {
                break;
            }
        }
        assert!(
            registry.snapshot().counter("net.loop.overflow_disconnects") >= 1,
            "slow consumer was never disconnected"
        );
        // The severed client observes the close as a disconnect.
        let err = loop {
            match client.recv_timeout(TO) {
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert!(matches!(err, NetError::Disconnected));
        drop(server);
        net.shutdown();
    }

    #[test]
    fn overflow_drop_newest_keeps_connection() {
        let registry = Registry::new();
        let net = MuxNet::spawn_with_registry(
            MuxConfig {
                max_outbound_bytes: 64 * 1024,
                overflow: MuxOverflow::DropNewest,
                ..MuxConfig::default()
            },
            &registry,
        );
        let (client, server) = pair(&net);
        let chunk: Frame = vec![0u8; 32 * 1024].into();
        for _ in 0..4096 {
            client.send(Frame::clone(&chunk)).unwrap();
            if registry.snapshot().counter("net.loop.overflow_drops") > 0 {
                break;
            }
        }
        assert!(
            registry.snapshot().counter("net.loop.overflow_drops") >= 1,
            "no frame was shed"
        );
        // The connection survives: drain what got through, then a fresh
        // round-trip still works.
        while server.recv_timeout(Duration::from_millis(200)).is_ok() {}
        client.send(Frame::from(&b"still here"[..])).unwrap();
        let got = loop {
            let f = server.recv_timeout(TO).unwrap();
            if &*f == b"still here" {
                break f;
            }
        };
        assert_eq!(&*got, b"still here");
        net.shutdown();
    }

    fn event_mode_on(probe: bool) {
        let net = spawn_net(probe);
        let mut endpoint = net.listen_events(loopback(), 2).unwrap();
        let addr = endpoint.local_addr();
        let shards = endpoint.take_shards();

        let (client_events_tx, client_events_rx) = unbounded();
        let token = net.connect_routed(addr, &client_events_tx).unwrap();
        net.send_to(token, Frame::from(&b"hello"[..])).unwrap();

        // The server sees Accepted then Frame on one shard, in order.
        let deadline = Instant::now() + TO;
        let mut server_token = None;
        let mut got_frame = false;
        while !(server_token.is_some() && got_frame) {
            assert!(Instant::now() < deadline, "server events never arrived");
            for shard in &shards {
                while let Ok(ev) = shard.try_recv() {
                    match ev {
                        MuxEvent::Accepted { token, .. } => server_token = Some(token),
                        MuxEvent::Frame { frame, .. } => {
                            assert_eq!(&*frame, b"hello");
                            got_frame = true;
                        }
                        MuxEvent::Closed { .. } => panic!("premature close"),
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }

        // Reply travels back to the routed client, then close surfaces
        // as a Closed event.
        net.send_to(server_token.unwrap(), Frame::from(&b"world"[..]))
            .unwrap();
        match client_events_rx.recv_timeout(TO).unwrap() {
            MuxEvent::Frame { frame, token: t } => {
                assert_eq!(&*frame, b"world");
                assert_eq!(t, token);
            }
            other => panic!("expected frame, got {other:?}"),
        }
        net.close(server_token.unwrap());
        match client_events_rx.recv_timeout(TO).unwrap() {
            MuxEvent::Closed { token: t } => assert_eq!(t, token),
            other => panic!("expected close, got {other:?}"),
        }
        net.shutdown();
    }

    #[test]
    fn event_mode_roundtrip() {
        event_mode_on(false);
    }

    #[test]
    fn event_mode_roundtrip_probe_backend() {
        event_mode_on(true);
    }

    #[test]
    fn shutdown_disconnects_links() {
        let net = spawn_net(false);
        let (client, _server) = pair(&net);
        net.shutdown();
        let err = loop {
            match client.recv_timeout(TO) {
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert!(matches!(err, NetError::Disconnected));
        assert!(client.send(Frame::from(&b"x"[..])).is_err());
    }
}
