//! Deterministic simulated network with fault injection and a Dolev-Yao
//! adversary tap.
//!
//! A [`SimNet`] hosts named endpoints. A member connects to a listener by
//! name; each connection becomes a pair of [`SimLink`]s joined by two
//! fault-injecting directed "wires". All frames (including dropped ones)
//! are copied to the [`Adversary`], which can also inject arbitrary frames
//! into either end of any connection — exactly the attacker of
//! Section 3.1: "compromised participants and outsiders can read all the
//! messages exchanged, replay old messages, and send arbitrary messages
//! they can construct".
//!
//! Beyond the probabilistic faults in [`SimConfig`] (drop, duplicate,
//! reorder, corrupt, delay), the network supports *scheduled* outages used
//! by the chaos harness:
//!
//! * **asymmetric partitions** — [`SimNet::set_blocked`] silences one
//!   direction of one connection until healed; frames sent into the
//!   outage are observed on the tap but never delivered;
//! * **endpoint kill** — [`SimNet::kill`] severs a connection: both ends
//!   see [`NetError::Disconnected`], held frames are discarded, and
//!   nothing ever flows again (a crash mid-handshake or mid-session).
//!
//! Determinism: all fault decisions come from a single seeded RNG, and
//! in-process channels preserve per-wire FIFO order (modulo the faults the
//! RNG decides), so a fixed seed and a fixed schedule of calls reproduce a
//! run exactly. "Delay" is virtual: a delayed frame is held back for a
//! jittered number of *subsequent transmissions on the same wire* rather
//! than wall-clock time, which keeps runs seed-reproducible.
//!
//! Held-back frames (reorder holdbacks and delayed frames) are flushed to
//! their receiver when the sending link is dropped or when
//! [`SimNet::flush_all`] is called, so the tail frame of a burst is never
//! stranded behind a fault that only releases on the next send.

use crate::{Frame, Link, Listener, NetError};
use crossbeam_channel::{unbounded, Receiver, Sender, TrySendError};
use enclaves_obs::{Counter, Gauge, Registry};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// Fault-injection configuration for every wire in a [`SimNet`].
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Probability a frame is silently dropped.
    pub drop_prob: f64,
    /// Probability a delivered frame is delivered twice.
    pub duplicate_prob: f64,
    /// Probability a frame is held back and delivered after the next one
    /// (pairwise reorder).
    pub reorder_prob: f64,
    /// Probability a delivered frame has one random bit flipped (link
    /// corruption; the AEAD layer must reject such frames).
    pub corrupt_prob: f64,
    /// Probability a frame is delayed: parked on the wire and released
    /// only after a jittered number of subsequent transmissions on the
    /// same wire (virtual delay, deterministic under the seed).
    pub delay_prob: f64,
    /// Maximum virtual delay, in subsequent same-wire transmissions; the
    /// actual delay of each delayed frame is drawn uniformly from
    /// `1..=max_delay_ticks`. Zero disables delay regardless of
    /// `delay_prob`.
    pub max_delay_ticks: u32,
    /// RNG seed for all fault decisions.
    pub seed: u64,
}

impl Default for SimConfig {
    /// A perfectly reliable network (no faults), seed 0.
    fn default() -> Self {
        SimConfig {
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            reorder_prob: 0.0,
            corrupt_prob: 0.0,
            delay_prob: 0.0,
            max_delay_ticks: 0,
            seed: 0,
        }
    }
}

impl SimConfig {
    /// A lossy configuration useful for robustness tests.
    #[must_use]
    pub fn lossy(seed: u64) -> Self {
        SimConfig {
            drop_prob: 0.10,
            duplicate_prob: 0.10,
            reorder_prob: 0.15,
            seed,
            ..SimConfig::default()
        }
    }

    /// Every probabilistic fault at once: loss, duplication, reordering,
    /// corruption, and delay/jitter. The chaos harness's default weather.
    #[must_use]
    pub fn chaotic(seed: u64) -> Self {
        SimConfig {
            drop_prob: 0.05,
            duplicate_prob: 0.05,
            reorder_prob: 0.10,
            corrupt_prob: 0.05,
            delay_prob: 0.10,
            max_delay_ticks: 4,
            seed,
        }
    }
}

/// Direction of a frame on a connection.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Direction {
    /// From the connecting side (member) to the listening side (leader).
    ToListener,
    /// From the listening side (leader) to the connecting side (member).
    ToConnector,
}

/// A frame observed by the adversary.
#[derive(Clone, Debug)]
pub struct TappedFrame {
    /// Connection identifier (assigned in connect order, starting at 0).
    pub conn: usize,
    /// Direction of travel.
    pub dir: Direction,
    /// The frame bytes (shared with the delivered copy — observing a
    /// frame does not deep-copy it). For corrupted frames this is the
    /// corrupted copy: the tap sees what was on the wire.
    pub frame: Frame,
    /// Whether the network actually delivered it (dropped, partitioned,
    /// and severed frames are still observed — the wire is public).
    pub delivered: bool,
}

/// Counters describing what the network did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Frames submitted by endpoints.
    pub sent: usize,
    /// Frames delivered (including duplicates).
    pub delivered: usize,
    /// Frames dropped by the probabilistic loss fault.
    pub dropped: usize,
    /// Extra deliveries due to duplication.
    pub duplicated: usize,
    /// Frames that were held back for reordering.
    pub reordered: usize,
    /// Frames with a corrupted bit.
    pub corrupted: usize,
    /// Frames parked by the virtual-delay fault.
    pub delayed: usize,
    /// Frames swallowed by an active partition.
    pub partitioned: usize,
    /// Frames swallowed by a severed (killed) connection.
    pub severed: usize,
    /// Connections severed by [`SimNet::kill`].
    pub killed: usize,
    /// Frames injected by the adversary.
    pub injected: usize,
}

/// Registry mirrors of [`SimStats`], attached via
/// [`SimNet::attach_registry`]. Every bump of a stats field bumps its
/// `net.*` counter in the same critical section, so the two views can
/// never diverge — a chaos test asserts exactly that. The gauge tracks
/// frames currently held by the reorder/delay faults.
struct NetObs {
    sent: Counter,
    delivered: Counter,
    dropped: Counter,
    duplicated: Counter,
    reordered: Counter,
    corrupted: Counter,
    delayed: Counter,
    partitioned: Counter,
    severed: Counter,
    killed: Counter,
    injected: Counter,
    holdback_depth: Gauge,
}

impl NetObs {
    fn new(registry: &Registry) -> Self {
        NetObs {
            sent: registry.counter("net.sent"),
            delivered: registry.counter("net.delivered"),
            dropped: registry.counter("net.dropped"),
            duplicated: registry.counter("net.duplicated"),
            reordered: registry.counter("net.reordered"),
            corrupted: registry.counter("net.corrupted"),
            delayed: registry.counter("net.delayed"),
            partitioned: registry.counter("net.partitioned"),
            severed: registry.counter("net.severed"),
            killed: registry.counter("net.killed"),
            injected: registry.counter("net.injected"),
            holdback_depth: registry.gauge("net.holdback_depth"),
        }
    }
}

struct Wire {
    tx: Sender<Frame>,
    /// Held-back frame for pairwise reordering.
    holdback: Option<Frame>,
    /// Frames under virtual delay, each with its remaining tick count.
    delayed: Vec<(Frame, u32)>,
    /// Partition switch: while set, frames in this direction vanish.
    blocked: bool,
}

impl Wire {
    fn new(tx: Sender<Frame>) -> Self {
        Wire {
            tx,
            holdback: None,
            delayed: Vec::new(),
            blocked: false,
        }
    }

    /// Takes every held frame (delayed first, in age order, then the
    /// reorder holdback) for immediate delivery.
    fn take_held(&mut self) -> Vec<Frame> {
        let mut held: Vec<Frame> = self.delayed.drain(..).map(|(f, _)| f).collect();
        held.extend(self.holdback.take());
        held
    }
}

struct Connection {
    /// Wire toward the listener end.
    to_listener: Wire,
    /// Wire toward the connector end.
    to_connector: Wire,
    /// Whether the connection has been severed by [`SimNet::kill`].
    killed: bool,
    /// Untrusted peer name given at connect time (kept for diagnostics).
    #[allow(dead_code)]
    connector_name: String,
}

impl Connection {
    fn wire_mut(&mut self, dir: Direction) -> &mut Wire {
        match dir {
            Direction::ToListener => &mut self.to_listener,
            Direction::ToConnector => &mut self.to_connector,
        }
    }
}

struct SimInner {
    config: SimConfig,
    rng: StdRng,
    connections: Vec<Connection>,
    listeners: std::collections::HashMap<String, Sender<PendingAccept>>,
    tap: Vec<TappedFrame>,
    stats: SimStats,
    obs: Option<NetObs>,
}

impl SimInner {
    /// Pushes every frame held on `(conn, dir)` to its receiver.
    fn flush_wire(&mut self, conn: usize, dir: Direction) {
        let Some(connection) = self.connections.get_mut(conn) else {
            return;
        };
        if connection.killed {
            return;
        }
        let wire = connection.wire_mut(dir);
        let held = wire.take_held();
        let released = held.len();
        let tx = wire.tx.clone();
        let mut delivered = 0;
        for frame in held {
            if let Err(TrySendError::Disconnected(_)) = tx.try_send(frame) {
                break;
            }
            delivered += 1;
        }
        self.stats.delivered += delivered;
        if let Some(obs) = &self.obs {
            obs.delivered.add(delivered as u64);
            obs.holdback_depth.sub(released as i64);
        }
    }
}

struct PendingAccept {
    conn: usize,
    link: SimLink,
}

/// A deterministic in-process network.
#[derive(Clone)]
pub struct SimNet {
    inner: Arc<Mutex<SimInner>>,
}

impl std::fmt::Debug for SimNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("SimNet")
            .field("connections", &inner.connections.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl SimNet {
    /// Creates a network with the given fault configuration.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        SimNet {
            inner: Arc::new(Mutex::new(SimInner {
                rng: StdRng::seed_from_u64(config.seed),
                config,
                connections: Vec::new(),
                listeners: std::collections::HashMap::new(),
                tap: Vec::new(),
                stats: SimStats::default(),
                obs: None,
            })),
        }
    }

    /// Registers a named listener (the leader).
    ///
    /// # Errors
    ///
    /// [`NetError::AcceptFailed`] if the name is already taken.
    pub fn listen(&self, name: &str) -> Result<SimListener, NetError> {
        let mut inner = self.inner.lock();
        if inner.listeners.contains_key(name) {
            return Err(NetError::AcceptFailed(format!(
                "listener {name} already registered"
            )));
        }
        let (tx, rx) = unbounded();
        inner.listeners.insert(name.to_string(), tx);
        Ok(SimListener {
            incoming: rx,
            net: self.clone(),
        })
    }

    /// Deregisters a listener name, freeing it for a fresh [`listen`]
    /// (`SimListener` has no drop-deregistration — a crashed process's
    /// name must be reclaimed explicitly before its replacement binds).
    /// Returns whether the name was registered.
    ///
    /// [`listen`]: SimNet::listen
    pub fn unlisten(&self, name: &str) -> bool {
        self.inner.lock().listeners.remove(name).is_some()
    }

    /// Connects `from_name` to the listener `to_name`, returning the
    /// member-side link.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownPeer`] if no such listener exists.
    pub fn connect(&self, from_name: &str, to_name: &str) -> Result<SimLink, NetError> {
        let mut inner = self.inner.lock();
        let Some(accept_tx) = inner.listeners.get(to_name).cloned() else {
            return Err(NetError::UnknownPeer(to_name.to_string()));
        };
        let (to_listener_tx, to_listener_rx) = unbounded();
        let (to_connector_tx, to_connector_rx) = unbounded();
        let conn = inner.connections.len();
        inner.connections.push(Connection {
            to_listener: Wire::new(to_listener_tx),
            to_connector: Wire::new(to_connector_tx),
            killed: false,
            connector_name: from_name.to_string(),
        });
        let member_link = SimLink {
            net: self.clone(),
            conn,
            send_dir: Direction::ToListener,
            rx: to_connector_rx,
            peer: to_name.to_string(),
        };
        let leader_link = SimLink {
            net: self.clone(),
            conn,
            send_dir: Direction::ToConnector,
            rx: to_listener_rx,
            peer: from_name.to_string(),
        };
        accept_tx
            .send(PendingAccept {
                conn,
                link: leader_link,
            })
            .map_err(|_| NetError::Disconnected)?;
        Ok(member_link)
    }

    /// Replaces the fault configuration at runtime (the RNG stream is
    /// kept). Useful for joining over a clean network and then injecting
    /// faults, or vice versa.
    pub fn set_config(&self, config: SimConfig) {
        self.inner.lock().config = config;
    }

    /// Blocks (`true`) or unblocks (`false`) one direction of one
    /// connection: an asymmetric partition. Frames sent into a blocked
    /// direction are observed on the adversary tap but never delivered;
    /// nothing is queued, so healing restores the link without a burst of
    /// stale traffic (retransmission layers recover what mattered).
    pub fn set_blocked(&self, conn: usize, dir: Direction, blocked: bool) {
        let mut inner = self.inner.lock();
        if let Some(connection) = inner.connections.get_mut(conn) {
            connection.wire_mut(dir).blocked = blocked;
        }
    }

    /// Heals every partition on every connection.
    pub fn heal_all(&self) {
        let mut inner = self.inner.lock();
        for connection in &mut inner.connections {
            connection.to_listener.blocked = false;
            connection.to_connector.blocked = false;
        }
    }

    /// Severs connection `conn` permanently: both endpoints observe
    /// [`NetError::Disconnected`] once their receive queues drain, held
    /// frames are discarded, and all future sends vanish. Models an
    /// endpoint crash or a connection reset mid-handshake or mid-session.
    pub fn kill(&self, conn: usize) {
        let mut inner = self.inner.lock();
        let Some(connection) = inner.connections.get_mut(conn) else {
            return;
        };
        if connection.killed {
            return;
        }
        connection.killed = true;
        let mut discarded = 0usize;
        for dir in [Direction::ToListener, Direction::ToConnector] {
            let wire = connection.wire_mut(dir);
            discarded += wire.delayed.len() + usize::from(wire.holdback.is_some());
            wire.holdback = None;
            wire.delayed.clear();
            // Replace the sender with one whose receiver is already gone:
            // the endpoint's receive loop sees Disconnected after draining.
            let (dead_tx, _) = unbounded();
            wire.tx = dead_tx;
        }
        inner.stats.killed += 1;
        if let Some(obs) = &inner.obs {
            obs.killed.inc();
            obs.holdback_depth.sub(discarded as i64);
        }
    }

    /// Delivers every held-back frame (reorder holdbacks and delayed
    /// frames) on every wire. The chaos harness calls this while
    /// quiescing so the tail frame of a burst cannot stay stranded behind
    /// a fault that only releases on the next send.
    pub fn flush_all(&self) {
        let mut inner = self.inner.lock();
        for conn in 0..inner.connections.len() {
            inner.flush_wire(conn, Direction::ToListener);
            inner.flush_wire(conn, Direction::ToConnector);
        }
    }

    /// An adversary handle observing and injecting on every connection.
    #[must_use]
    pub fn adversary(&self) -> Adversary {
        Adversary { net: self.clone() }
    }

    /// Snapshot of network counters.
    #[must_use]
    pub fn stats(&self) -> SimStats {
        self.inner.lock().stats
    }

    /// Mirrors every [`SimStats`] field into `registry` as a `net.*`
    /// counter, plus a `net.holdback_depth` gauge tracking frames
    /// currently parked by the reorder/delay faults. Mirrors attached
    /// mid-run are seeded from the current totals, so the registry view
    /// and [`SimNet::stats`] agree from the moment of attachment.
    pub fn attach_registry(&self, registry: &Registry) {
        let mut inner = self.inner.lock();
        let obs = NetObs::new(registry);
        let stats = inner.stats;
        obs.sent.add(stats.sent as u64);
        obs.delivered.add(stats.delivered as u64);
        obs.dropped.add(stats.dropped as u64);
        obs.duplicated.add(stats.duplicated as u64);
        obs.reordered.add(stats.reordered as u64);
        obs.corrupted.add(stats.corrupted as u64);
        obs.delayed.add(stats.delayed as u64);
        obs.partitioned.add(stats.partitioned as u64);
        obs.severed.add(stats.severed as u64);
        obs.killed.add(stats.killed as u64);
        obs.injected.add(stats.injected as u64);
        let held: usize = inner
            .connections
            .iter()
            .filter(|c| !c.killed)
            .map(|c| {
                c.to_listener.delayed.len()
                    + usize::from(c.to_listener.holdback.is_some())
                    + c.to_connector.delayed.len()
                    + usize::from(c.to_connector.holdback.is_some())
            })
            .sum();
        obs.holdback_depth.set(held as i64);
        inner.obs = Some(obs);
    }

    /// Transmits a frame over connection `conn` in direction `dir`,
    /// applying fault injection. `forced` bypasses faults — including
    /// partitions — and is used by the adversary, whose injections are not
    /// subject to the lossy wire (only a severed connection stops it:
    /// there is no wire left to inject into).
    fn transmit(&self, conn: usize, dir: Direction, frame: Frame, forced: bool) {
        let mut inner = self.inner.lock();
        inner.stats.sent += usize::from(!forced);
        if let Some(obs) = &inner.obs {
            if forced {
                obs.injected.inc();
            } else {
                obs.sent.inc();
            }
        }
        if forced {
            inner.stats.injected += 1;
        }

        if inner.connections[conn].killed {
            inner.stats.severed += 1;
            if let Some(obs) = &inner.obs {
                obs.severed.inc();
            }
            inner.tap.push(TappedFrame {
                conn,
                dir,
                frame,
                delivered: false,
            });
            return;
        }

        // Draw every fault roll up front so the RNG stream depends only on
        // the sequence of transmissions, not on which faults fire.
        let (drop_roll, dup_roll, reorder_roll, corrupt_roll, delay_roll) = {
            let r = &mut inner.rng;
            (
                r.gen::<f64>(),
                r.gen::<f64>(),
                r.gen::<f64>(),
                r.gen::<f64>(),
                r.gen::<f64>(),
            )
        };
        let config = inner.config;

        let blocked = inner.connections[conn].wire_mut(dir).blocked && !forced;
        let dropped = !forced && drop_roll < config.drop_prob;
        if blocked || dropped {
            if blocked {
                inner.stats.partitioned += 1;
            } else {
                inner.stats.dropped += 1;
            }
            if let Some(obs) = &inner.obs {
                if blocked {
                    obs.partitioned.inc();
                } else {
                    obs.dropped.inc();
                }
            }
            inner.tap.push(TappedFrame {
                conn,
                dir,
                frame,
                delivered: false,
            });
            return;
        }

        // Link corruption: flip one bit of a private copy. The tap (below)
        // observes the corrupted bytes — that is what was on the wire.
        let frame = if !forced && corrupt_roll < config.corrupt_prob && !frame.is_empty() {
            let mut bytes = frame.to_vec();
            let idx = inner.rng.gen_range(0..bytes.len());
            let bit = inner.rng.gen_range(0..8u32);
            bytes[idx] ^= 1 << bit;
            inner.stats.corrupted += 1;
            if let Some(obs) = &inner.obs {
                obs.corrupted.inc();
            }
            Frame::from(bytes)
        } else {
            frame
        };

        inner.tap.push(TappedFrame {
            conn,
            dir,
            frame: frame.clone(),
            delivered: true,
        });

        let delay_ticks = if !forced && config.max_delay_ticks > 0 && delay_roll < config.delay_prob
        {
            Some(inner.rng.gen_range(1..config.max_delay_ticks.max(1) + 1))
        } else {
            None
        };

        // Collect deliveries first to keep the borrow on `wire` short.
        // Each entry is a refcount bump, not a copy.
        let mut deliveries: Vec<Frame> = Vec::with_capacity(3);
        let mut reordered = 0usize;
        let mut duplicated = 0usize;
        let mut parked = 0usize;
        // Previously-held frames (delayed or reorder-holdback) released by
        // this transmission; they leave the holdback-depth gauge.
        let mut released = 0usize;
        {
            let wire = inner.connections[conn].wire_mut(dir);
            // Age every delayed frame by one tick; expired ones ride along
            // behind this transmission (they are late, after all).
            let mut expired: Vec<Frame> = Vec::new();
            wire.delayed.retain_mut(|entry| {
                entry.1 -= 1;
                if entry.1 == 0 {
                    expired.push(entry.0.clone());
                    false
                } else {
                    true
                }
            });

            if let Some(ticks) = delay_ticks {
                wire.delayed.push((frame, ticks));
                parked = 1;
            } else if let Some(held) = wire.holdback.take() {
                // Deliver the new frame first, then the held one: the pair
                // arrives swapped.
                released += 1;
                deliveries.push(frame.clone());
                deliveries.push(held);
                if !forced && dup_roll < config.duplicate_prob {
                    deliveries.push(frame);
                    duplicated = 1;
                }
            } else if !forced && reorder_roll < config.reorder_prob {
                wire.holdback = Some(frame);
                reordered = 1;
            } else {
                deliveries.push(frame.clone());
                if !forced && dup_roll < config.duplicate_prob {
                    deliveries.push(frame);
                    duplicated = 1;
                }
            }
            released += expired.len();
            deliveries.extend(expired);
        }
        inner.stats.reordered += reordered;
        inner.stats.duplicated += duplicated;
        inner.stats.delayed += parked;
        if let Some(obs) = &inner.obs {
            obs.reordered.add(reordered as u64);
            obs.duplicated.add(duplicated as u64);
            obs.delayed.add(parked as u64);
            obs.holdback_depth
                .add((parked + reordered) as i64 - released as i64);
        }

        let wire = match dir {
            Direction::ToListener => &inner.connections[conn].to_listener,
            Direction::ToConnector => &inner.connections[conn].to_connector,
        };
        let tx = wire.tx.clone();
        let mut delivered = 0;
        for d in deliveries {
            if let Err(TrySendError::Disconnected(_)) = tx.try_send(d) {
                break;
            }
            delivered += 1;
        }
        inner.stats.delivered += delivered;
        if let Some(obs) = &inner.obs {
            obs.delivered.add(delivered as u64);
        }
    }
}

/// One end of a simulated connection.
pub struct SimLink {
    net: SimNet,
    conn: usize,
    send_dir: Direction,
    rx: Receiver<Frame>,
    peer: String,
}

impl std::fmt::Debug for SimLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimLink")
            .field("conn", &self.conn)
            .field("send_dir", &self.send_dir)
            .field("peer", &self.peer)
            .finish()
    }
}

impl SimLink {
    /// The connection index this link belongs to (matches the adversary's
    /// and the partition/kill APIs' numbering).
    #[must_use]
    pub fn conn_id(&self) -> usize {
        self.conn
    }
}

impl Drop for SimLink {
    /// Closing a link flushes any frames this endpoint sent that a fault
    /// was still holding (reorder holdback, virtual delay): the bytes were
    /// committed to the wire before the close, so the network eventually
    /// delivers them rather than stranding the tail of a burst.
    fn drop(&mut self) {
        self.net.inner.lock().flush_wire(self.conn, self.send_dir);
    }
}

impl Link for SimLink {
    fn send(&self, frame: Frame) -> Result<(), NetError> {
        self.net.transmit(self.conn, self.send_dir, frame, false);
        Ok(())
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Frame, NetError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            crossbeam_channel::RecvTimeoutError::Timeout => NetError::Timeout,
            crossbeam_channel::RecvTimeoutError::Disconnected => NetError::Disconnected,
        })
    }

    fn peer_hint(&self) -> Option<String> {
        Some(self.peer.clone())
    }
}

/// The leader-side acceptor for a [`SimNet`] listener.
pub struct SimListener {
    incoming: Receiver<PendingAccept>,
    #[allow(dead_code)]
    net: SimNet,
}

impl std::fmt::Debug for SimListener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimListener").finish_non_exhaustive()
    }
}

impl Listener for SimListener {
    fn accept_timeout(&self, timeout: Duration) -> Result<Box<dyn Link>, NetError> {
        let pending = self.incoming.recv_timeout(timeout).map_err(|e| match e {
            crossbeam_channel::RecvTimeoutError::Timeout => NetError::Timeout,
            crossbeam_channel::RecvTimeoutError::Disconnected => NetError::Disconnected,
        })?;
        let _ = pending.conn;
        Ok(Box::new(pending.link))
    }
}

/// The Dolev-Yao adversary: sees every frame, injects at will.
#[derive(Clone)]
pub struct Adversary {
    net: SimNet,
}

impl std::fmt::Debug for Adversary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Adversary")
            .field("observed", &self.observed().len())
            .finish()
    }
}

impl Adversary {
    /// All frames observed so far (including dropped ones).
    #[must_use]
    pub fn observed(&self) -> Vec<TappedFrame> {
        self.net.inner.lock().tap.clone()
    }

    /// Frames observed on a specific connection and direction.
    #[must_use]
    pub fn observed_on(&self, conn: usize, dir: Direction) -> Vec<Frame> {
        self.net
            .inner
            .lock()
            .tap
            .iter()
            .filter(|t| t.conn == conn && t.dir == dir)
            .map(|t| t.frame.clone())
            .collect()
    }

    /// Injects a frame into connection `conn` traveling in `dir`; the
    /// receiving end cannot distinguish it from a genuine frame.
    pub fn inject(&self, conn: usize, dir: Direction, frame: Frame) {
        self.net.transmit(conn, dir, frame, true);
    }

    /// Replays the `index`-th observed frame of the given connection and
    /// direction.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownPeer`] if no such frame was observed.
    pub fn replay(&self, conn: usize, dir: Direction, index: usize) -> Result<(), NetError> {
        let frames = self.observed_on(conn, dir);
        let frame = frames
            .get(index)
            .cloned()
            .ok_or_else(|| NetError::UnknownPeer(format!("frame {index} on conn {conn}")))?;
        self.inject(conn, dir, frame);
        Ok(())
    }

    /// Number of connections established so far.
    #[must_use]
    pub fn connections(&self) -> usize {
        self.net.inner.lock().connections.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TO: Duration = Duration::from_millis(200);

    fn reliable() -> SimNet {
        SimNet::new(SimConfig::default())
    }

    #[test]
    fn registry_mirrors_stats_exactly() {
        let net = SimNet::new(SimConfig {
            seed: 7,
            drop_prob: 0.2,
            duplicate_prob: 0.2,
            reorder_prob: 0.2,
            corrupt_prob: 0.2,
            delay_prob: 0.2,
            max_delay_ticks: 3,
        });
        let registry = Registry::default();
        net.attach_registry(&registry);
        let listener = net.listen("leader").unwrap();
        let member = net.connect("alice", "leader").unwrap();
        let leader_side = listener.accept_timeout(TO).unwrap();
        for i in 0..200u8 {
            member.send(vec![i; 16].into()).unwrap();
            leader_side.send(vec![i; 16].into()).unwrap();
        }
        net.flush_all();
        let stats = net.stats();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("net.sent"), stats.sent as u64);
        assert_eq!(snap.counter("net.delivered"), stats.delivered as u64);
        assert_eq!(snap.counter("net.dropped"), stats.dropped as u64);
        assert_eq!(snap.counter("net.duplicated"), stats.duplicated as u64);
        assert_eq!(snap.counter("net.reordered"), stats.reordered as u64);
        assert_eq!(snap.counter("net.corrupted"), stats.corrupted as u64);
        assert_eq!(snap.counter("net.delayed"), stats.delayed as u64);
        // Fault probabilities are high enough that a 400-frame exchange
        // exercises every branch with this seed.
        assert!(stats.dropped > 0 && stats.reordered > 0 && stats.delayed > 0);
        // flush_all released every held frame.
        assert_eq!(snap.gauge("net.holdback_depth"), 0);
    }

    #[test]
    fn registry_attached_mid_run_seeds_current_totals() {
        let net = reliable();
        let listener = net.listen("leader").unwrap();
        let member = net.connect("alice", "leader").unwrap();
        let leader_side = listener.accept_timeout(TO).unwrap();
        member.send(b"before"[..].into()).unwrap();
        let registry = Registry::default();
        net.attach_registry(&registry);
        member.send(b"after"[..].into()).unwrap();
        let _ = leader_side;
        let stats = net.stats();
        let snap = registry.snapshot();
        assert_eq!(stats.sent, 2);
        assert_eq!(snap.counter("net.sent"), 2);
        assert_eq!(snap.counter("net.delivered"), stats.delivered as u64);
    }

    #[test]
    fn kill_discards_held_frames_from_gauge() {
        let net = SimNet::new(SimConfig {
            seed: 3,
            delay_prob: 1.0,
            max_delay_ticks: 10,
            ..SimConfig::default()
        });
        let registry = Registry::default();
        net.attach_registry(&registry);
        let listener = net.listen("leader").unwrap();
        let member = net.connect("alice", "leader").unwrap();
        let _leader_side = listener.accept_timeout(TO).unwrap();
        member.send(b"a"[..].into()).unwrap();
        member.send(b"b"[..].into()).unwrap();
        assert!(registry.snapshot().gauge("net.holdback_depth") > 0);
        net.kill(member.conn_id());
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("net.holdback_depth"), 0);
        assert_eq!(snap.counter("net.killed"), 1);
    }

    #[test]
    fn connect_and_exchange() {
        let net = reliable();
        let listener = net.listen("leader").unwrap();
        let member = net.connect("alice", "leader").unwrap();
        let leader_side = listener.accept_timeout(TO).unwrap();

        member.send(b"hello"[..].into()).unwrap();
        assert_eq!(&leader_side.recv_timeout(TO).unwrap()[..], b"hello");
        leader_side.send(b"welcome"[..].into()).unwrap();
        assert_eq!(&member.recv_timeout(TO).unwrap()[..], b"welcome");
        assert_eq!(leader_side.peer_hint().as_deref(), Some("alice"));
        assert_eq!(member.peer_hint().as_deref(), Some("leader"));
    }

    #[test]
    fn duplicate_listener_names_rejected() {
        let net = reliable();
        let _l = net.listen("leader").unwrap();
        assert!(matches!(
            net.listen("leader"),
            Err(NetError::AcceptFailed(_))
        ));
    }

    #[test]
    fn connect_to_unknown_listener_fails() {
        let net = reliable();
        assert_eq!(
            net.connect("alice", "nobody").unwrap_err(),
            NetError::UnknownPeer("nobody".to_string())
        );
    }

    #[test]
    fn recv_times_out() {
        let net = reliable();
        let _listener = net.listen("leader").unwrap();
        let member = net.connect("alice", "leader").unwrap();
        assert_eq!(
            member.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            NetError::Timeout
        );
    }

    #[test]
    fn adversary_observes_everything() {
        let net = reliable();
        let listener = net.listen("leader").unwrap();
        let member = net.connect("alice", "leader").unwrap();
        let leader_side = listener.accept_timeout(TO).unwrap();
        let adv = net.adversary();

        member.send(b"secret-looking"[..].into()).unwrap();
        leader_side.send(b"reply"[..].into()).unwrap();
        let _ = leader_side.recv_timeout(TO).unwrap();
        let _ = member.recv_timeout(TO).unwrap();

        let tapped = adv.observed();
        assert_eq!(tapped.len(), 2);
        assert_eq!(&tapped[0].frame[..], b"secret-looking");
        assert_eq!(tapped[0].dir, Direction::ToListener);
        assert_eq!(&tapped[1].frame[..], b"reply");
        assert_eq!(tapped[1].dir, Direction::ToConnector);
        assert_eq!(adv.connections(), 1);
    }

    #[test]
    fn adversary_injects_and_replays() {
        let net = reliable();
        let listener = net.listen("leader").unwrap();
        let member = net.connect("alice", "leader").unwrap();
        let _leader_side = listener.accept_timeout(TO).unwrap();
        let adv = net.adversary();

        adv.inject(0, Direction::ToConnector, b"forged"[..].into());
        assert_eq!(&member.recv_timeout(TO).unwrap()[..], b"forged");

        // Replay it.
        adv.replay(0, Direction::ToConnector, 0).unwrap();
        assert_eq!(&member.recv_timeout(TO).unwrap()[..], b"forged");
        assert!(adv.replay(0, Direction::ToConnector, 99).is_err());
        assert_eq!(net.stats().injected, 2);
    }

    #[test]
    fn drops_are_observed_but_not_delivered() {
        let net = SimNet::new(SimConfig {
            drop_prob: 1.0,
            ..SimConfig::default()
        });
        let listener = net.listen("leader").unwrap();
        let member = net.connect("alice", "leader").unwrap();
        let leader_side = listener.accept_timeout(TO).unwrap();
        member.send(b"doomed"[..].into()).unwrap();
        assert_eq!(
            leader_side
                .recv_timeout(Duration::from_millis(20))
                .unwrap_err(),
            NetError::Timeout
        );
        let adv = net.adversary();
        let tapped = adv.observed();
        assert_eq!(tapped.len(), 1);
        assert!(!tapped[0].delivered);
        assert_eq!(net.stats().dropped, 1);
        // The adversary can resurrect a dropped frame.
        adv.inject(0, Direction::ToListener, tapped[0].frame.clone());
        assert_eq!(&leader_side.recv_timeout(TO).unwrap()[..], b"doomed");
    }

    #[test]
    fn duplication_delivers_twice() {
        let net = SimNet::new(SimConfig {
            duplicate_prob: 1.0,
            ..SimConfig::default()
        });
        let listener = net.listen("leader").unwrap();
        let member = net.connect("alice", "leader").unwrap();
        let leader_side = listener.accept_timeout(TO).unwrap();
        member.send(b"twice"[..].into()).unwrap();
        assert_eq!(&leader_side.recv_timeout(TO).unwrap()[..], b"twice");
        assert_eq!(&leader_side.recv_timeout(TO).unwrap()[..], b"twice");
        assert_eq!(net.stats().duplicated, 1);
    }

    #[test]
    fn reordering_swaps_adjacent_frames() {
        let net = SimNet::new(SimConfig {
            reorder_prob: 1.0,
            ..SimConfig::default()
        });
        let listener = net.listen("leader").unwrap();
        let member = net.connect("alice", "leader").unwrap();
        let leader_side = listener.accept_timeout(TO).unwrap();
        member.send(b"first"[..].into()).unwrap();
        member.send(b"second"[..].into()).unwrap();
        // With reorder_prob = 1.0, frame 1 is held and frame 2 triggers the
        // swapped flush.
        assert_eq!(&leader_side.recv_timeout(TO).unwrap()[..], b"second");
        assert_eq!(&leader_side.recv_timeout(TO).unwrap()[..], b"first");
    }

    #[test]
    fn same_seed_same_fault_pattern() {
        let run = |seed| {
            let net = SimNet::new(SimConfig {
                drop_prob: 0.5,
                seed,
                ..SimConfig::default()
            });
            let listener = net.listen("leader").unwrap();
            let member = net.connect("alice", "leader").unwrap();
            let _l = listener.accept_timeout(TO).unwrap();
            for i in 0..32u8 {
                member.send(vec![i].into()).unwrap();
            }
            net.stats().dropped
        };
        assert_eq!(run(7), run(7));
        // Different seeds should (overwhelmingly) differ somewhere; allow
        // equality of counts but check a couple of seeds.
        let counts: Vec<usize> = (0..4).map(run).collect();
        assert!(counts.iter().any(|&c| c != counts[0]) || counts[0] > 0);
    }

    #[test]
    fn multiple_members_multiplex() {
        let net = reliable();
        let listener = net.listen("leader").unwrap();
        let alice = net.connect("alice", "leader").unwrap();
        let bob = net.connect("bob", "leader").unwrap();
        let l_alice = listener.accept_timeout(TO).unwrap();
        let l_bob = listener.accept_timeout(TO).unwrap();

        alice.send(b"from-alice"[..].into()).unwrap();
        bob.send(b"from-bob"[..].into()).unwrap();
        assert_eq!(&l_alice.recv_timeout(TO).unwrap()[..], b"from-alice");
        assert_eq!(&l_bob.recv_timeout(TO).unwrap()[..], b"from-bob");
        assert_eq!(l_alice.peer_hint().as_deref(), Some("alice"));
        assert_eq!(l_bob.peer_hint().as_deref(), Some("bob"));
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let net = SimNet::new(SimConfig {
            corrupt_prob: 1.0,
            ..SimConfig::default()
        });
        let listener = net.listen("leader").unwrap();
        let member = net.connect("alice", "leader").unwrap();
        let leader_side = listener.accept_timeout(TO).unwrap();
        let original = b"pristine bytes".to_vec();
        member.send(original.clone().into()).unwrap();
        let received = leader_side.recv_timeout(TO).unwrap();
        assert_eq!(received.len(), original.len());
        let flipped: u32 = received
            .iter()
            .zip(&original)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1, "exactly one bit differs");
        assert_eq!(net.stats().corrupted, 1);
        // The tap observed the corrupted copy, not the original.
        let tapped = net.adversary().observed();
        assert_eq!(tapped[0].frame, received);
    }

    #[test]
    fn delay_parks_frames_and_later_traffic_releases_them() {
        let net = SimNet::new(SimConfig {
            delay_prob: 1.0,
            max_delay_ticks: 1,
            ..SimConfig::default()
        });
        let listener = net.listen("leader").unwrap();
        let member = net.connect("alice", "leader").unwrap();
        let leader_side = listener.accept_timeout(TO).unwrap();

        // Every frame is delayed one tick: frame N is released by the
        // transmission of frame N+1 (which itself parks).
        member.send(b"one"[..].into()).unwrap();
        assert!(leader_side.recv_timeout(Duration::from_millis(20)).is_err());
        member.send(b"two"[..].into()).unwrap();
        assert_eq!(&leader_side.recv_timeout(TO).unwrap()[..], b"one");
        member.send(b"three"[..].into()).unwrap();
        assert_eq!(&leader_side.recv_timeout(TO).unwrap()[..], b"two");
        assert_eq!(net.stats().delayed, 3);
    }

    #[test]
    fn asymmetric_partition_blocks_one_direction_until_healed() {
        let net = reliable();
        let listener = net.listen("leader").unwrap();
        let member = net.connect("alice", "leader").unwrap();
        let leader_side = listener.accept_timeout(TO).unwrap();

        // Block member → leader only; the reverse direction still works.
        net.set_blocked(0, Direction::ToListener, true);
        member.send(b"swallowed"[..].into()).unwrap();
        assert!(leader_side.recv_timeout(Duration::from_millis(20)).is_err());
        leader_side.send(b"downstream ok"[..].into()).unwrap();
        assert_eq!(&member.recv_timeout(TO).unwrap()[..], b"downstream ok");
        assert_eq!(net.stats().partitioned, 1);
        // Partitioned frames are still on the public wire.
        assert!(!net.adversary().observed()[0].delivered);

        // Heal: traffic flows again (the swallowed frame is gone for good).
        net.set_blocked(0, Direction::ToListener, false);
        member.send(b"after heal"[..].into()).unwrap();
        assert_eq!(&leader_side.recv_timeout(TO).unwrap()[..], b"after heal");
    }

    #[test]
    fn kill_severs_both_ends() {
        let net = reliable();
        let listener = net.listen("leader").unwrap();
        let member = net.connect("alice", "leader").unwrap();
        let leader_side = listener.accept_timeout(TO).unwrap();
        member.send(b"pre-kill"[..].into()).unwrap();
        assert_eq!(&leader_side.recv_timeout(TO).unwrap()[..], b"pre-kill");

        net.kill(0);
        // Both directions are dead: senders succeed (fire and forget) but
        // nothing arrives and receivers see Disconnected.
        member.send(b"lost"[..].into()).unwrap();
        leader_side.send(b"also lost"[..].into()).unwrap();
        assert_eq!(
            leader_side.recv_timeout(TO).unwrap_err(),
            NetError::Disconnected
        );
        assert_eq!(member.recv_timeout(TO).unwrap_err(), NetError::Disconnected);
        assert_eq!(net.stats().severed, 2);
        // Idempotent.
        net.kill(0);
    }

    /// The satellite bug fix: with reordering, the last frame of a burst
    /// used to be stranded in the holdback slot until the *next* send —
    /// which, for a final frame, never came. Closing the sending link (or
    /// calling [`SimNet::flush_all`]) now flushes held frames.
    #[test]
    fn held_tail_frame_is_flushed_on_link_close() {
        let net = SimNet::new(SimConfig {
            reorder_prob: 1.0,
            ..SimConfig::default()
        });
        let listener = net.listen("leader").unwrap();
        let member = net.connect("alice", "leader").unwrap();
        let leader_side = listener.accept_timeout(TO).unwrap();

        // A one-frame "burst": the frame goes straight into the holdback
        // slot and nothing is deliverable.
        member.send(b"tail"[..].into()).unwrap();
        assert!(leader_side.recv_timeout(Duration::from_millis(20)).is_err());

        // Closing the sending link flushes the stranded frame.
        drop(member);
        assert_eq!(&leader_side.recv_timeout(TO).unwrap()[..], b"tail");
    }

    #[test]
    fn flush_all_releases_holdbacks_and_delays() {
        let net = SimNet::new(SimConfig {
            reorder_prob: 1.0,
            ..SimConfig::default()
        });
        let listener = net.listen("leader").unwrap();
        let member = net.connect("alice", "leader").unwrap();
        let leader_side = listener.accept_timeout(TO).unwrap();
        member.send(b"stuck"[..].into()).unwrap();
        assert!(leader_side.recv_timeout(Duration::from_millis(20)).is_err());
        net.flush_all();
        assert_eq!(&leader_side.recv_timeout(TO).unwrap()[..], b"stuck");

        // Delay holdbacks flush the same way.
        net.set_config(SimConfig {
            delay_prob: 1.0,
            max_delay_ticks: 8,
            ..SimConfig::default()
        });
        member.send(b"parked"[..].into()).unwrap();
        assert!(leader_side.recv_timeout(Duration::from_millis(20)).is_err());
        net.flush_all();
        assert_eq!(&leader_side.recv_timeout(TO).unwrap()[..], b"parked");
    }

    #[test]
    fn conn_ids_match_connect_order() {
        let net = reliable();
        let _listener = net.listen("leader").unwrap();
        let a = net.connect("alice", "leader").unwrap();
        let b = net.connect("bob", "leader").unwrap();
        assert_eq!(a.conn_id(), 0);
        assert_eq!(b.conn_id(), 1);
    }
}
