use std::error::Error;
use std::fmt;

/// Errors from the network substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// No frame arrived within the timeout.
    Timeout,
    /// The peer end of the link is gone.
    Disconnected,
    /// The named peer does not exist.
    UnknownPeer(String),
    /// The listener rejected or cannot accept a connection.
    AcceptFailed(String),
    /// An underlying I/O failure (message preserved).
    Io(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Timeout => write!(f, "receive timed out"),
            NetError::Disconnected => write!(f, "peer disconnected"),
            NetError::UnknownPeer(name) => write!(f, "unknown peer {name}"),
            NetError::AcceptFailed(why) => write!(f, "accept failed: {why}"),
            NetError::Io(why) => write!(f, "i/o failure: {why}"),
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert_eq!(NetError::Timeout.to_string(), "receive timed out");
        assert!(NetError::UnknownPeer("bob".into())
            .to_string()
            .contains("bob"));
        assert!(NetError::Io("broken pipe".into())
            .to_string()
            .contains("broken pipe"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
    }
}
