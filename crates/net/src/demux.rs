//! Transport-level group demultiplexing.
//!
//! A multi-enclave service carries frames for many independent groups
//! over one listener. [`GroupDemux`] routes raw frames to per-group
//! queues by *peeking* the group tag from the envelope header
//! ([`enclaves_wire::message::Envelope::peek_group`]) — no body parse, no
//! AEAD work, no allocation beyond the queue send — so a transport shard
//! or proxy can fan frames out to per-group workers without touching the
//! protocol layer.
//!
//! The header tag is **unauthenticated**: demux placement is a routing
//! hint, never a security boundary. Isolation is enforced downstream by
//! each group's core (explicit enclave check plus the AEAD header-AAD
//! binding); a mislabeled frame simply arrives at a core that rejects it.

use crate::link::Frame;
use crossbeam_channel::{unbounded, Receiver, Sender};
use enclaves_wire::message::Envelope;
use enclaves_wire::GroupId;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Routes raw frames to per-group queues by their (unauthenticated)
/// envelope group tag. `None` is the legacy untagged group.
#[derive(Default)]
pub struct GroupDemux {
    queues: RwLock<HashMap<Option<GroupId>, Sender<Frame>>>,
    /// Frames whose header failed to parse.
    malformed: AtomicU64,
    /// Well-formed frames whose tag matched no registered queue (or whose
    /// queue's receiver was dropped).
    unroutable: AtomicU64,
}

impl std::fmt::Debug for GroupDemux {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupDemux")
            .field("queues", &self.queues.read().len())
            .field("malformed", &self.malformed.load(Ordering::Relaxed))
            .field("unroutable", &self.unroutable.load(Ordering::Relaxed))
            .finish()
    }
}

impl GroupDemux {
    /// An empty demux: every frame is unroutable until queues register.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a queue for `group`, returning its receiving end. A
    /// previous queue for the same tag (if any) is replaced; its receiver
    /// starts reporting disconnection once drained.
    pub fn register(&self, group: Option<GroupId>) -> Receiver<Frame> {
        let (tx, rx) = unbounded();
        self.queues.write().insert(group, tx);
        rx
    }

    /// Removes the queue for `group`. Returns whether one was registered.
    pub fn unregister(&self, group: Option<&GroupId>) -> bool {
        self.queues.write().remove(&group.cloned()).is_some()
    }

    /// Routes one frame to the queue registered for its group tag.
    /// Returns `true` if the frame was enqueued; malformed and unroutable
    /// frames are counted and dropped.
    pub fn route(&self, frame: Frame) -> bool {
        let Ok(group) = Envelope::peek_group(&frame) else {
            self.malformed.fetch_add(1, Ordering::Relaxed);
            return false;
        };
        let queues = self.queues.read();
        match queues.get(&group) {
            Some(tx) if tx.send(frame).is_ok() => true,
            _ => {
                self.unroutable.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Number of registered queues.
    #[must_use]
    pub fn queue_count(&self) -> usize {
        self.queues.read().len()
    }

    /// Frames dropped because the envelope header failed to parse.
    #[must_use]
    pub fn malformed_frames(&self) -> u64 {
        self.malformed.load(Ordering::Relaxed)
    }

    /// Well-formed frames dropped because no live queue matched their tag.
    #[must_use]
    pub fn unroutable_frames(&self) -> u64 {
        self.unroutable.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enclaves_wire::codec::encode;
    use enclaves_wire::message::MsgType;
    use enclaves_wire::ActorId;

    fn frame(group: Option<&str>) -> Frame {
        let env = Envelope {
            msg_type: MsgType::GroupData,
            sender: ActorId::new("alice").unwrap(),
            recipient: ActorId::new("leader").unwrap(),
            group: group.map(|g| GroupId::new(g).unwrap()),
            body: vec![0xAB; 16],
        };
        encode(&env).into()
    }

    #[test]
    fn routes_by_group_tag() {
        let demux = GroupDemux::new();
        let red = demux.register(Some(GroupId::new("red").unwrap()));
        let blue = demux.register(Some(GroupId::new("blue").unwrap()));
        let legacy = demux.register(None);

        assert!(demux.route(frame(Some("red"))));
        assert!(demux.route(frame(Some("blue"))));
        assert!(demux.route(frame(Some("red"))));
        assert!(demux.route(frame(None)));

        assert_eq!(red.len(), 2);
        assert_eq!(blue.len(), 1);
        assert_eq!(legacy.len(), 1);
        assert_eq!(demux.unroutable_frames(), 0);
        assert_eq!(demux.malformed_frames(), 0);
    }

    #[test]
    fn unknown_tag_and_garbage_are_counted_drops() {
        let demux = GroupDemux::new();
        let _red = demux.register(Some(GroupId::new("red").unwrap()));

        assert!(!demux.route(frame(Some("green"))), "unregistered tag");
        assert!(!demux.route(frame(None)), "no legacy queue registered");
        assert_eq!(demux.unroutable_frames(), 2);

        assert!(!demux.route(vec![0xFF, 0x00, 0x01].into()), "garbage");
        assert_eq!(demux.malformed_frames(), 1);
    }

    #[test]
    fn unregister_stops_routing() {
        let demux = GroupDemux::new();
        let red_id = GroupId::new("red").unwrap();
        let red = demux.register(Some(red_id.clone()));
        assert!(demux.route(frame(Some("red"))));
        assert!(demux.unregister(Some(&red_id)));
        assert!(!demux.unregister(Some(&red_id)), "already gone");
        assert!(!demux.route(frame(Some("red"))));
        assert_eq!(red.len(), 1, "frames routed before unregister remain");
    }

    #[test]
    fn dropped_receiver_counts_as_unroutable() {
        let demux = GroupDemux::new();
        let rx = demux.register(None);
        drop(rx);
        assert!(!demux.route(frame(None)));
        assert_eq!(demux.unroutable_frames(), 1);
    }
}
