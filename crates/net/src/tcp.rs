//! Real TCP transport: threads plus length-prefixed frames.
//!
//! Used by the runnable examples so the system is demonstrably a working
//! network application, not only a simulation. Frames use the
//! `enclaves-wire` framing format.

use crate::{Frame, Link, Listener, NetError};
use crossbeam_channel::{unbounded, Receiver};
use enclaves_obs::{Counter, Registry};
use enclaves_wire::framing::{read_frame, write_frame};
use parking_lot::Mutex;
use polling::{Event, Poller};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Frame counters for the TCP transport, registered as
/// `net.tcp_frames_in` / `net.tcp_frames_out`.
#[derive(Clone)]
struct TcpObs {
    frames_in: Counter,
    frames_out: Counter,
}

impl TcpObs {
    fn new(registry: &Registry) -> Self {
        TcpObs {
            frames_in: registry.counter("net.tcp_frames_in"),
            frames_out: registry.counter("net.tcp_frames_out"),
        }
    }
}

/// A duplex TCP link carrying length-prefixed frames.
///
/// A background thread reads frames into a channel, so
/// [`Link::recv_timeout`] composes with the event loops in
/// `enclaves-core`.
pub struct TcpLink {
    writer: Mutex<TcpStream>,
    incoming: Receiver<Frame>,
    peer: SocketAddr,
    obs: Option<TcpObs>,
}

impl std::fmt::Debug for TcpLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpLink").field("peer", &self.peer).finish()
    }
}

impl TcpLink {
    /// Connects to a leader at `addr`.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] on connection failure.
    pub fn connect(addr: SocketAddr) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr).map_err(|e| NetError::Io(e.to_string()))?;
        Self::from_stream(stream, None)
    }

    /// Connects like [`TcpLink::connect`] and mirrors frame traffic into
    /// `registry` as `net.tcp_frames_in` / `net.tcp_frames_out`.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] on connection failure.
    pub fn connect_with_registry(addr: SocketAddr, registry: &Registry) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr).map_err(|e| NetError::Io(e.to_string()))?;
        Self::from_stream(stream, Some(TcpObs::new(registry)))
    }

    /// Wraps an accepted stream.
    fn from_stream(stream: TcpStream, obs: Option<TcpObs>) -> Result<Self, NetError> {
        let peer = stream
            .peer_addr()
            .map_err(|e| NetError::Io(e.to_string()))?;
        stream
            .set_nodelay(true)
            .map_err(|e| NetError::Io(e.to_string()))?;
        let reader = stream
            .try_clone()
            .map_err(|e| NetError::Io(e.to_string()))?;
        let (tx, rx) = unbounded();
        let frames_in = obs.as_ref().map(|o| o.frames_in.clone());
        std::thread::Builder::new()
            .name(format!("tcp-reader-{peer}"))
            .spawn(move || {
                let mut reader = reader;
                while let Ok(frame) = read_frame(&mut reader) {
                    if let Some(counter) = &frames_in {
                        counter.inc();
                    }
                    if tx.send(frame.into()).is_err() {
                        break;
                    }
                }
                // Dropping tx disconnects the receiver, surfacing EOF.
            })
            .map_err(|e| NetError::Io(e.to_string()))?;
        Ok(TcpLink {
            writer: Mutex::new(stream),
            incoming: rx,
            peer,
            obs,
        })
    }
}

impl Drop for TcpLink {
    fn drop(&mut self) {
        // The reader thread holds a cloned handle to the same socket;
        // shutting down here unblocks it and sends FIN to the peer.
        let _ = self.writer.lock().shutdown(std::net::Shutdown::Both);
    }
}

impl Link for TcpLink {
    fn send(&self, frame: Frame) -> Result<(), NetError> {
        let mut w = self.writer.lock();
        write_frame(&mut *w, &frame).map_err(|e| NetError::Io(e.to_string()))?;
        if let Some(obs) = &self.obs {
            obs.frames_out.inc();
        }
        Ok(())
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Frame, NetError> {
        self.incoming.recv_timeout(timeout).map_err(|e| match e {
            crossbeam_channel::RecvTimeoutError::Timeout => NetError::Timeout,
            crossbeam_channel::RecvTimeoutError::Disconnected => NetError::Disconnected,
        })
    }

    fn peer_hint(&self) -> Option<String> {
        Some(self.peer.to_string())
    }
}

/// A TCP acceptor for the leader side.
///
/// The listener stays permanently nonblocking and accept readiness is
/// awaited through a poller, so [`Listener::accept_timeout`] neither
/// busy-sleeps nor toggles the socket's blocking mode per call.
pub struct TcpAcceptor {
    listener: TcpListener,
    local: SocketAddr,
    poller: Poller,
    obs: Option<TcpObs>,
    /// Accept-path failures, visible as `net.tcp_accept_errors` when
    /// bound with a registry (a private registry otherwise) — never
    /// silently swallowed.
    accept_errors: Counter,
}

impl std::fmt::Debug for TcpAcceptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpAcceptor")
            .field("local", &self.local)
            .finish()
    }
}

impl TcpAcceptor {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the bind fails.
    pub fn bind(addr: SocketAddr) -> Result<Self, NetError> {
        Self::bind_inner(addr, None, Registry::new().counter("net.tcp_accept_errors"))
    }

    /// Binds like [`TcpAcceptor::bind`]; every accepted link mirrors its
    /// frame traffic into `registry` as `net.tcp_frames_in` /
    /// `net.tcp_frames_out` (shared across all accepted links), and
    /// accept-path failures count into `net.tcp_accept_errors`.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the bind fails.
    pub fn bind_with_registry(addr: SocketAddr, registry: &Registry) -> Result<Self, NetError> {
        Self::bind_inner(
            addr,
            Some(TcpObs::new(registry)),
            registry.counter("net.tcp_accept_errors"),
        )
    }

    fn bind_inner(
        addr: SocketAddr,
        obs: Option<TcpObs>,
        accept_errors: Counter,
    ) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr).map_err(|e| NetError::Io(e.to_string()))?;
        let local = listener
            .local_addr()
            .map_err(|e| NetError::Io(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| NetError::Io(e.to_string()))?;
        let poller = Poller::new().map_err(|e| NetError::Io(e.to_string()))?;
        poller
            .add(&listener, Event::readable(0))
            .map_err(|e| NetError::Io(e.to_string()))?;
        Ok(TcpAcceptor {
            listener,
            local,
            poller,
            obs,
            accept_errors,
        })
    }

    /// The bound address (useful with ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }
}

impl Listener for TcpAcceptor {
    fn accept_timeout(&self, timeout: Duration) -> Result<Box<dyn Link>, NetError> {
        // std's TcpListener has no accept timeout; wait for accept
        // readiness through the poller instead of busy-polling.
        let deadline = Instant::now() + timeout;
        let mut events = Vec::with_capacity(1);
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // The link side runs blocking reader threads; the
                    // listener itself stays nonblocking.
                    stream.set_nonblocking(false).map_err(|e| {
                        self.accept_errors.inc();
                        NetError::AcceptFailed(e.to_string())
                    })?;
                    return Ok(Box::new(TcpLink::from_stream(stream, self.obs.clone())?));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(NetError::Timeout);
                    }
                    events.clear();
                    self.poller
                        .wait(&mut events, Some(deadline - now))
                        .map_err(|e| {
                            self.accept_errors.inc();
                            NetError::AcceptFailed(e.to_string())
                        })?;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.accept_errors.inc();
                    return Err(NetError::AcceptFailed(e.to_string()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TO: Duration = Duration::from_secs(2);

    fn loopback() -> SocketAddr {
        "127.0.0.1:0".parse().unwrap()
    }

    #[test]
    fn connect_and_exchange_frames() {
        let acceptor = TcpAcceptor::bind(loopback()).unwrap();
        let addr = acceptor.local_addr();
        let client_thread = std::thread::spawn(move || {
            let link = TcpLink::connect(addr).unwrap();
            link.send(b"ping"[..].into()).unwrap();
            link.recv_timeout(TO).unwrap()
        });
        let server_link = acceptor.accept_timeout(TO).unwrap();
        assert_eq!(&server_link.recv_timeout(TO).unwrap()[..], b"ping");
        server_link.send(b"pong"[..].into()).unwrap();
        assert_eq!(&client_thread.join().unwrap()[..], b"pong");
    }

    #[test]
    fn accept_times_out_without_clients() {
        let acceptor = TcpAcceptor::bind(loopback()).unwrap();
        let start = std::time::Instant::now();
        let result = acceptor.accept_timeout(Duration::from_millis(50));
        assert_eq!(
            result.err().map(|e| matches!(e, NetError::Timeout)),
            Some(true)
        );
        assert!(start.elapsed() >= Duration::from_millis(45));
    }

    #[test]
    fn recv_times_out_on_idle_link() {
        let acceptor = TcpAcceptor::bind(loopback()).unwrap();
        let addr = acceptor.local_addr();
        let client = TcpLink::connect(addr).unwrap();
        let _server = acceptor.accept_timeout(TO).unwrap();
        assert_eq!(
            client.recv_timeout(Duration::from_millis(30)).unwrap_err(),
            NetError::Timeout
        );
    }

    #[test]
    fn disconnect_is_detected() {
        let acceptor = TcpAcceptor::bind(loopback()).unwrap();
        let addr = acceptor.local_addr();
        let client = TcpLink::connect(addr).unwrap();
        let server = acceptor.accept_timeout(TO).unwrap();
        drop(server);
        // After the peer closes, receive eventually reports disconnection.
        let mut saw_disconnect = false;
        for _ in 0..50 {
            match client.recv_timeout(Duration::from_millis(20)) {
                Err(NetError::Disconnected) => {
                    saw_disconnect = true;
                    break;
                }
                Err(NetError::Timeout) => continue,
                other => panic!("unexpected: {other:?}"),
            }
        }
        assert!(saw_disconnect);
    }

    #[test]
    fn registry_counts_frames_both_ways() {
        let registry = Registry::default();
        let acceptor = TcpAcceptor::bind_with_registry(loopback(), &registry).unwrap();
        let addr = acceptor.local_addr();
        let client_registry = Registry::default();
        let client_thread = {
            let client_registry = client_registry.clone();
            std::thread::spawn(move || {
                let link = TcpLink::connect_with_registry(addr, &client_registry).unwrap();
                link.send(b"ping"[..].into()).unwrap();
                link.recv_timeout(TO).unwrap()
            })
        };
        let server_link = acceptor.accept_timeout(TO).unwrap();
        assert_eq!(&server_link.recv_timeout(TO).unwrap()[..], b"ping");
        server_link.send(b"pong"[..].into()).unwrap();
        client_thread.join().unwrap();
        let server = registry.snapshot();
        assert_eq!(server.counter("net.tcp_frames_in"), 1);
        assert_eq!(server.counter("net.tcp_frames_out"), 1);
        let client = client_registry.snapshot();
        assert_eq!(client.counter("net.tcp_frames_out"), 1);
        assert_eq!(client.counter("net.tcp_frames_in"), 1);
    }

    #[test]
    fn large_frames_roundtrip() {
        let acceptor = TcpAcceptor::bind(loopback()).unwrap();
        let addr = acceptor.local_addr();
        let payload: Frame = vec![0xCDu8; 200_000].into();
        let expect = payload.clone();
        let client_thread = std::thread::spawn(move || {
            let link = TcpLink::connect(addr).unwrap();
            link.send(payload).unwrap();
        });
        let server = acceptor.accept_timeout(TO).unwrap();
        assert_eq!(server.recv_timeout(TO).unwrap(), expect);
        client_thread.join().unwrap();
    }

    #[test]
    fn multiple_sequential_frames_preserve_order() {
        let acceptor = TcpAcceptor::bind(loopback()).unwrap();
        let addr = acceptor.local_addr();
        let client_thread = std::thread::spawn(move || {
            let link = TcpLink::connect(addr).unwrap();
            for i in 0..20u8 {
                link.send(vec![i].into()).unwrap();
            }
        });
        let server = acceptor.accept_timeout(TO).unwrap();
        for i in 0..20u8 {
            assert_eq!(&server.recv_timeout(TO).unwrap()[..], &[i]);
        }
        client_thread.join().unwrap();
    }
}
