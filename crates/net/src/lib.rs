//! Insecure asynchronous network substrate for the Enclaves reproduction.
//!
//! The paper assumes "a set of agents connected via an insecure
//! asynchronous network": messages can be observed, dropped, duplicated,
//! reordered, replayed, and forged. This crate provides that network in two
//! forms:
//!
//! * [`sim`] — an in-process, deterministic (seeded) simulated network with
//!   configurable fault injection and a Dolev-Yao [`sim::Adversary`] tap
//!   that observes every frame and can inject arbitrary frames. All attack
//!   demonstrations run on this substrate.
//! * [`tcp`] — a real TCP transport (threads + length-prefixed frames) for
//!   the runnable examples.
//! * [`mux`] — a real TCP transport where **one** readiness-loop thread
//!   owns every socket (vendored mio-style poller): bounded thread count
//!   independent of connection count, bounded outbound queues with an
//!   explicit slow-consumer policy. This is the backend the 10k-member
//!   load rig runs on.
//!
//! All of them implement the [`link::Link`] / [`link::Listener`] traits
//! consumed by the runtime in `enclaves-core`, so the same leader/member
//! code runs on any backend.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod demux;
pub mod link;
pub mod mux;
pub mod sim;
pub mod tcp;

mod error;

pub use demux::GroupDemux;
pub use error::NetError;
pub use link::{Frame, Link, Listener};
pub use mux::{
    MuxAcceptor, MuxConfig, MuxEndpoint, MuxEvent, MuxLink, MuxNet, MuxOverflow, MuxToken,
};
