//! Transport abstraction: duplex links and listeners.
//!
//! Enclaves uses a star topology (Figure 1): every member holds one
//! bidirectional point-to-point link to the leader. A [`Link`] is one end
//! of such a connection; a [`Listener`] is the leader-side acceptor. Both
//! the deterministic simulator ([`crate::sim`]) and the TCP transport
//! ([`crate::tcp`]) implement these traits, so the protocol runtime is
//! transport-agnostic.

use crate::NetError;
use std::sync::Arc;
use std::time::Duration;

/// A frame on the wire: shared, immutable bytes.
///
/// Frames are reference-counted so a broadcast can hand the *same* encoded
/// frame to N links (and the simulator's adversary tap, duplicator, and
/// hold-back queue) without one deep copy per recipient.
pub type Frame = Arc<[u8]>;

/// One end of a duplex, frame-oriented, *insecure* connection.
///
/// Frames are opaque shared byte buffers; the transport guarantees nothing
/// about confidentiality, integrity, or even delivery — that is the
/// protocol layer's job.
pub trait Link: Send {
    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] if the peer is gone, [`NetError::Io`] on
    /// transport failure.
    fn send(&self, frame: Frame) -> Result<(), NetError>;

    /// Receives one frame, waiting up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] if nothing arrived, [`NetError::Disconnected`]
    /// if the peer is gone.
    fn recv_timeout(&self, timeout: Duration) -> Result<Frame, NetError>;

    /// A transport-level hint about who the peer is (e.g. the name used at
    /// connect time, or a TCP address). Untrusted — authentication happens
    /// in the protocol.
    fn peer_hint(&self) -> Option<String>;
}

/// A leader-side acceptor of new links.
pub trait Listener: Send {
    /// Accepts one new link, waiting up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] if no connection arrived,
    /// [`NetError::AcceptFailed`] if the transport cannot accept.
    fn accept_timeout(&self, timeout: Duration) -> Result<Box<dyn Link>, NetError>;
}

impl Link for Box<dyn Link> {
    fn send(&self, frame: Frame) -> Result<(), NetError> {
        (**self).send(frame)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Frame, NetError> {
        (**self).recv_timeout(timeout)
    }

    fn peer_hint(&self) -> Option<String> {
        (**self).peer_hint()
    }
}
