//! Model-checking and verification harness cost (system evaluation,
//! table S6): exploration throughput of the Section 4 model and the cost
//! of the Section 5 checkers — the figures F2/F3/F4 reproduction engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enclaves_model::closure::{analz, parts, synth_contains};
use enclaves_model::explore::{Bounds, Explorer, RandomWalker};
use enclaves_model::field::{AgentId, Field, KeyId, NonceId};
use enclaves_model::system::{Scenario, SystemState};
use enclaves_verify::diagram::Diagram;
use std::hint::black_box;

fn bench_closure_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("term_closures");
    // A representative trace-sized field set.
    let pa = KeyId::LongTerm(AgentId::ALICE);
    let ka = KeyId::Session(0);
    let fields: Vec<Field> = (0..24)
        .map(|i| {
            Field::enc(
                Field::concat(vec![
                    Field::Agent(AgentId::LEADER),
                    Field::Agent(AgentId::ALICE),
                    Field::Nonce(NonceId(i)),
                    Field::Nonce(NonceId(i + 100)),
                    Field::Key(ka),
                ]),
                if i % 2 == 0 { pa } else { ka },
            )
        })
        .collect();
    group.bench_function("parts_24_messages", |b| {
        b.iter(|| parts(black_box(&fields)));
    });
    group.bench_function("analz_24_messages", |b| {
        b.iter(|| analz(black_box(&fields)));
    });
    let base = analz(&fields);
    let target = Field::enc(Field::Nonce(NonceId(3)), ka);
    group.bench_function("synth_membership", |b| {
        b.iter(|| synth_contains(black_box(&base), black_box(&target)));
    });
    group.finish();
}

fn bench_exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_exploration");
    group.sample_size(10);
    for (name, scenario) in [
        ("honest_pair", Scenario::honest_pair()),
        ("with_insider", Scenario::tight()),
    ] {
        group.bench_with_input(BenchmarkId::new("bfs_smoke", name), &scenario, |b, s| {
            b.iter(|| {
                let mut ex = Explorer::new(s.clone(), Bounds::smoke());
                let stats = ex.run();
                black_box(stats.states_visited)
            });
        });
    }
    group.bench_function("random_walk_20x40", |b| {
        b.iter(|| {
            let mut w = RandomWalker::new(Scenario::default(), 20, 40, 7);
            black_box(w.run())
        });
    });
    group.finish();
}

fn bench_diagram_eval(c: &mut Criterion) {
    // Cost of evaluating the Figure 4 box predicates on a mid-session
    // state.
    let scenario = Scenario::honest_pair();
    let mut state = SystemState::initial(&scenario);
    // Drive a few steps to get trace content.
    for _ in 0..6 {
        let Some(mv) = state.enumerate_moves(&scenario).into_iter().next() else {
            break;
        };
        state = state.apply(&scenario, &mv);
    }
    let diagram = Diagram::default();
    c.bench_function("diagram_box_of", |b| {
        b.iter(|| diagram.box_of(black_box(&state)).unwrap());
    });
}

fn bench_state_ops(c: &mut Criterion) {
    let scenario = Scenario::default();
    let state = SystemState::initial(&scenario);
    let mut mid = state.clone();
    for _ in 0..8 {
        let Some(mv) = mid.enumerate_moves(&scenario).into_iter().next() else {
            break;
        };
        mid = mid.apply(&scenario, &mv);
    }
    let mut group = c.benchmark_group("state_ops");
    group.bench_function("enumerate_moves_mid_session", |b| {
        b.iter(|| black_box(mid.enumerate_moves(&scenario)).len());
    });
    group.bench_function("canonical_key_mid_session", |b| {
        b.iter(|| black_box(mid.canonical_key()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_closure_ops,
    bench_exploration,
    bench_diagram_eval,
    bench_state_ops
);
criterion_main!(benches);
