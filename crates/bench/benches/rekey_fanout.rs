//! Rekey fan-out: serial sealing vs the staged out-of-lock parallel path
//! (EXPERIMENTS.md row S11), and both against the MLS-style rekey tree
//! (row S14).
//!
//! A *flat* rekey is irreducibly O(N) AEAD seals on the admin channel —
//! every member must receive the new group key under its own pairwise
//! `K_a` — but the seals need not run serially under the leader's lock.
//! The staged path draws all nonces under the lock in roster order, then
//! shards the seals across `std::thread::scope` workers. Only the
//! stage+seal+commit pipeline is timed (`iter_custom`); draining the
//! stop-and-wait acknowledgments between rekeys happens off the clock, so
//! the serial-vs-parallel difference is not washed out by ARQ traffic.
//!
//! The *tree* rekey removes the O(N) term altogether: one leaf-to-root
//! path refresh sealed once per copath resolution node — at most
//! `2·ceil(log2 N)+1` seals — fanned out as a single `PathUpdate`
//! multicast with no per-member admin traffic to drain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use enclaves_bench::FanoutGroup;
use std::time::{Duration, Instant};

const GROUP_SIZES: [usize; 4] = [8, 64, 512, 4096];

fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn bench_rekey_serial(c: &mut Criterion) {
    let mut group = c.benchmark_group("rekey_fanout/serial");
    group.sample_size(10);
    for n in GROUP_SIZES {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut world = FanoutGroup::new(n);
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let start = Instant::now();
                    let outgoing = world.rekey_serial();
                    total += start.elapsed();
                    world.settle(outgoing);
                }
                total
            });
        });
    }
    group.finish();
}

fn bench_rekey_parallel(c: &mut Criterion) {
    let threads = available_threads();
    let mut group = c.benchmark_group("rekey_fanout/parallel");
    group.sample_size(10);
    for n in GROUP_SIZES {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut world = FanoutGroup::new(n);
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let start = Instant::now();
                    let outgoing = world.rekey_parallel(threads);
                    total += start.elapsed();
                    world.settle(outgoing);
                }
                total
            });
        });
    }
    group.finish();
}

fn bench_rekey_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("rekey_fanout/tree");
    group.sample_size(10);
    for n in GROUP_SIZES {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut world = FanoutGroup::new_tree(n);
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let start = Instant::now();
                    let frame = world.rekey_tree();
                    total += start.elapsed();
                    std::hint::black_box(&frame);
                }
                total
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rekey_serial,
    bench_rekey_parallel,
    bench_rekey_tree
);
criterion_main!(benches);
