//! Rekey fan-out: serial sealing vs the staged out-of-lock parallel path
//! (EXPERIMENTS.md row S11).
//!
//! A rekey is irreducibly O(N) AEAD seals on the admin channel — every
//! member must receive the new group key under its own pairwise `K_a` —
//! but the seals need not run serially under the leader's lock. The
//! staged path draws all nonces under the lock in roster order, then
//! shards the seals across `std::thread::scope` workers. Only the
//! stage+seal+commit pipeline is timed (`iter_custom`); draining the
//! stop-and-wait acknowledgments between rekeys happens off the clock, so
//! the serial-vs-parallel difference is not washed out by ARQ traffic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use enclaves_bench::FanoutGroup;
use std::time::{Duration, Instant};

const GROUP_SIZES: [usize; 4] = [8, 64, 512, 4096];

fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn bench_rekey_serial(c: &mut Criterion) {
    let mut group = c.benchmark_group("rekey_fanout/serial");
    group.sample_size(10);
    for n in GROUP_SIZES {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut world = FanoutGroup::new(n);
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let start = Instant::now();
                    let outgoing = world.rekey_serial();
                    total += start.elapsed();
                    world.settle(outgoing);
                }
                total
            });
        });
    }
    group.finish();
}

fn bench_rekey_parallel(c: &mut Criterion) {
    let threads = available_threads();
    let mut group = c.benchmark_group("rekey_fanout/parallel");
    group.sample_size(10);
    for n in GROUP_SIZES {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut world = FanoutGroup::new(n);
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let start = Instant::now();
                    let outgoing = world.rekey_parallel(threads);
                    total += start.elapsed();
                    world.settle(outgoing);
                }
                total
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rekey_serial, bench_rekey_parallel);
criterion_main!(benches);
