//! Authentication handshake cost (system evaluation, table S2):
//! the improved 3-message protocol vs the legacy 5-message
//! (pre-auth + 3-message) protocol, end to end over real crypto.
//!
//! Expected shape: the improved handshake is not slower than legacy —
//! the hardening removed a round trip (the pre-auth exchange) while
//! adding only one nonce to message 3.

use criterion::{criterion_group, criterion_main, Criterion};
use enclaves_bench::{improved_handshake_once, legacy_handshake_once};
use std::hint::black_box;

fn bench_handshakes(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_handshake");
    group.sample_size(20);
    let mut seed = 0u64;
    group.bench_function("improved_3msg", |b| {
        b.iter(|| {
            seed += 1;
            improved_handshake_once(black_box(seed));
        });
    });
    let mut seed2 = 0u64;
    group.bench_function("legacy_5msg", |b| {
        b.iter(|| {
            seed2 += 1;
            legacy_handshake_once(black_box(seed2));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_handshakes);
criterion_main!(benches);
