//! Group-management operation cost vs group size (system evaluation,
//! figures S3–S5): the O(n) leader cost the paper's architecture accepts
//! for integrity.
//!
//! Expected shapes:
//! * admin broadcast and rekey scale linearly in member count (per-member
//!   unicast under `K_a`);
//! * group-data relay is cheaper per member (one seal, n-1 verbatim
//!   relays) — the crossover justifying the two-channel design;
//! * the improved protocol's rekey costs more than legacy's per member
//!   (nonce chain + acknowledgments), the price of replay protection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use enclaves_bench::{ImprovedGroup, LegacyGroup};
use enclaves_core::config::RekeyPolicy;
use std::hint::black_box;

const GROUP_SIZES: [usize; 5] = [1, 2, 4, 8, 16];

fn bench_admin_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("admin_broadcast");
    group.sample_size(20);
    for n in GROUP_SIZES {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut world = ImprovedGroup::new(n, RekeyPolicy::Manual);
            b.iter(|| {
                let out = world
                    .leader
                    .broadcast_admin_data(black_box(b"tick"))
                    .unwrap();
                world.settle(out.outgoing);
            });
        });
    }
    group.finish();
}

fn bench_rekey_improved(c: &mut Criterion) {
    let mut group = c.benchmark_group("rekey_improved");
    group.sample_size(20);
    for n in GROUP_SIZES {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut world = ImprovedGroup::new(n, RekeyPolicy::Manual);
            b.iter(|| {
                let out = world.leader.rekey_now().unwrap();
                world.settle(out.outgoing);
            });
        });
    }
    group.finish();
}

fn bench_rekey_legacy(c: &mut Criterion) {
    let mut group = c.benchmark_group("rekey_legacy");
    group.sample_size(20);
    for n in GROUP_SIZES {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut world = LegacyGroup::new(n);
            b.iter(|| {
                let out = world.leader.rekey().unwrap();
                // Deliver new_key to each member (no acknowledgment chain
                // in legacy — that is exactly the missing protection).
                for env in out.outgoing {
                    if let Some(idx) = env
                        .recipient
                        .as_str()
                        .strip_prefix('m')
                        .and_then(|s| s.parse::<usize>().ok())
                    {
                        let _ = world.members[idx].handle(&env);
                    }
                }
            });
        });
    }
    group.finish();
}

fn bench_group_data_relay(c: &mut Criterion) {
    let mut group = c.benchmark_group("group_data_relay");
    group.sample_size(20);
    for n in GROUP_SIZES.iter().filter(|&&n| n >= 2) {
        group.throughput(Throughput::Elements(*n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), n, |b, &n| {
            let mut world = ImprovedGroup::new(n, RekeyPolicy::Manual);
            b.iter(|| {
                let env = world.members[0]
                    .send_group_data(black_box(b"hello group"))
                    .unwrap();
                let out = world.leader.handle(&env).unwrap();
                for relay in out.outgoing {
                    if let Some(idx) = relay
                        .recipient
                        .as_str()
                        .strip_prefix('m')
                        .and_then(|s| s.parse::<usize>().ok())
                    {
                        let _ = world.members[idx].handle(&relay);
                    }
                }
            });
        });
    }
    group.finish();
}

fn bench_join_nth_member(c: &mut Criterion) {
    // Cost of the n-th join under rekey-on-join: grows with n because the
    // whole group must be rekeyed and notified.
    let mut group = c.benchmark_group("join_with_rekey_policy");
    group.sample_size(10);
    for n in [2usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let world = ImprovedGroup::new(black_box(n), RekeyPolicy::OnJoin);
                assert_eq!(world.leader.roster().len(), n);
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_admin_broadcast,
    bench_rekey_improved,
    bench_rekey_legacy,
    bench_group_data_relay,
    bench_join_nth_member
);
criterion_main!(benches);
