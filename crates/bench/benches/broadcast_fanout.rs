//! Broadcast fan-out: legacy per-member sealing vs the single-seal group-key
//! data plane (EXPERIMENTS.md row S9).
//!
//! The legacy path (`broadcast_admin_data`) seals the payload once per member
//! under each pairwise `K_a` and must drain the stop-and-wait acknowledgment
//! queues between iterations, so its cost is O(N) AEAD seals plus O(N)
//! envelope encodes. The single-seal path (`broadcast_group_data`) seals once
//! under the epoch group key and encodes one shared frame; fan-out is a
//! refcount bump per recipient. Expected shape: the legacy curve grows
//! linearly in N while single-seal stays flat, crossing the 10× mark well
//! before N = 512.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use enclaves_bench::FanoutGroup;
use std::hint::black_box;

const GROUP_SIZES: [usize; 4] = [8, 64, 512, 4096];
const PAYLOAD: [u8; 256] = [0x42; 256];

fn bench_legacy_per_member(c: &mut Criterion) {
    let mut group = c.benchmark_group("broadcast_fanout/legacy_per_member");
    group.sample_size(10);
    for n in GROUP_SIZES {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut world = FanoutGroup::new(n);
            b.iter(|| {
                let out = world
                    .leader
                    .broadcast_admin_data(black_box(&PAYLOAD))
                    .unwrap();
                world.settle(out.outgoing);
            });
        });
    }
    group.finish();
}

fn bench_single_seal(c: &mut Criterion) {
    let mut group = c.benchmark_group("broadcast_fanout/single_seal");
    group.sample_size(10);
    for n in GROUP_SIZES {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut world = FanoutGroup::new(n);
            b.iter(|| {
                let bc = world
                    .leader
                    .broadcast_group_data(black_box(&PAYLOAD))
                    .unwrap();
                black_box(&bc.frame);
            });
        });
    }
    group.finish();
}

fn bench_single_seal_delivery(c: &mut Criterion) {
    // End-to-end variant: every member decodes and opens the shared frame.
    // Still one seal on the leader; the per-member cost is one AEAD open.
    let mut group = c.benchmark_group("broadcast_fanout/single_seal_delivered");
    group.sample_size(10);
    for n in GROUP_SIZES.iter().filter(|&&n| n <= 512) {
        group.throughput(Throughput::Elements(*n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), n, |b, &n| {
            let mut world = FanoutGroup::new(n);
            b.iter(|| {
                let bc = world
                    .leader
                    .broadcast_group_data(black_box(&PAYLOAD))
                    .unwrap();
                let delivered = world.deliver_broadcast(&bc.frame);
                assert_eq!(delivered.len(), n);
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_legacy_per_member,
    bench_single_seal,
    bench_single_seal_delivery
);
criterion_main!(benches);
