//! Crypto substrate microbenchmarks (system evaluation, table S1 in
//! EXPERIMENTS.md): throughput of the primitives behind `{X}_K`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use enclaves_crypto::aead::ChaCha20Poly1305;
use enclaves_crypto::chacha20;
use enclaves_crypto::hmac::HmacSha256;
use enclaves_crypto::keys::LongTermKey;
use enclaves_crypto::nonce::AeadNonce;
use enclaves_crypto::pbkdf2::pbkdf2;
use enclaves_crypto::poly1305::Poly1305;
use enclaves_crypto::sha256::sha256;
use std::hint::black_box;

const SIZES: [usize; 4] = [64, 256, 1024, 8192];

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in SIZES {
        let data = vec![0xABu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| sha256(black_box(data)));
        });
    }
    group.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let mut group = c.benchmark_group("hmac_sha256");
    let key = [7u8; 32];
    for size in SIZES {
        let data = vec![0xCDu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| HmacSha256::mac(black_box(&key), black_box(data)));
        });
    }
    group.finish();
}

fn bench_chacha20(c: &mut Criterion) {
    let mut group = c.benchmark_group("chacha20");
    let key = [9u8; 32];
    let nonce = [1u8; 12];
    for size in SIZES {
        let data = vec![0u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| chacha20::encrypt(black_box(&key), 1, black_box(&nonce), black_box(data)));
        });
    }
    group.finish();
}

fn bench_poly1305(c: &mut Criterion) {
    let mut group = c.benchmark_group("poly1305");
    let key = [3u8; 32];
    for size in SIZES {
        let data = vec![0x55u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| Poly1305::mac(black_box(&key), black_box(data)));
        });
    }
    group.finish();
}

fn bench_aead(c: &mut Criterion) {
    let mut group = c.benchmark_group("chacha20poly1305");
    let cipher = ChaCha20Poly1305::new(&[5u8; 32]);
    let nonce = AeadNonce::from_bytes([0; 12]);
    for size in SIZES {
        let data = vec![0u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("seal", size), &data, |b, data| {
            b.iter(|| cipher.seal(black_box(&nonce), black_box(data), b"aad"));
        });
        let sealed = cipher.seal(&nonce, &data, b"aad");
        group.bench_with_input(BenchmarkId::new("open", size), &sealed, |b, sealed| {
            b.iter(|| {
                cipher
                    .open(black_box(&nonce), black_box(sealed), b"aad")
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_x25519(c: &mut Criterion) {
    use enclaves_crypto::x25519::{x25519, x25519_base, BASE_POINT};
    let mut group = c.benchmark_group("x25519");
    group.sample_size(20);
    let scalar = [0x42u8; 32];
    let point = x25519_base(&scalar);
    group.bench_function("scalar_mult", |b| {
        b.iter(|| x25519(black_box(&scalar), black_box(&point)));
    });
    group.bench_function("base_point_mult", |b| {
        b.iter(|| x25519(black_box(&scalar), black_box(&BASE_POINT)));
    });
    group.finish();
}

fn bench_key_derivation(c: &mut Criterion) {
    let mut group = c.benchmark_group("key_derivation");
    group.sample_size(10);
    group.bench_function("pbkdf2_4096_iters", |b| {
        b.iter(|| {
            let mut out = [0u8; 32];
            pbkdf2(black_box(b"password"), b"enclaves:alice", 4096, &mut out).unwrap();
            out
        });
    });
    group.bench_function("long_term_key_from_password", |b| {
        b.iter(|| LongTermKey::derive_from_password(black_box("password"), "alice").unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sha256,
    bench_hmac,
    bench_chacha20,
    bench_poly1305,
    bench_aead,
    bench_x25519,
    bench_key_derivation
);
criterion_main!(benches);
