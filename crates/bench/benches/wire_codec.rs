//! Wire codec cost (system evaluation, table S7): envelope encode/decode
//! and sealed-message build/open, the per-message fixed costs of the
//! hardened protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use enclaves_crypto::nonce::{AeadNonce, ProtocolNonce};
use enclaves_wire::codec::{decode, encode};
use enclaves_wire::message::{
    open, seal, AdminPayload, AdminPlain, Envelope, MsgType, NonceAckPlain,
};
use enclaves_wire::ActorId;
use std::hint::black_box;

fn ids() -> (ActorId, ActorId) {
    (
        ActorId::new("alice").unwrap(),
        ActorId::new("leader").unwrap(),
    )
}

fn bench_envelope_codec(c: &mut Criterion) {
    let (alice, leader) = ids();
    let mut group = c.benchmark_group("envelope_codec");
    for size in [32usize, 256, 4096] {
        let env = Envelope {
            msg_type: MsgType::AdminMsg,
            sender: leader.clone(),
            recipient: alice.clone(),
            group: None,
            body: vec![0xAB; size],
        };
        let bytes = encode(&env);
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode", size), &env, |b, env| {
            b.iter(|| encode(black_box(env)));
        });
        group.bench_with_input(BenchmarkId::new("decode", size), &bytes, |b, bytes| {
            b.iter(|| decode::<Envelope>(black_box(bytes)).unwrap());
        });
    }
    group.finish();
}

fn bench_sealed_messages(c: &mut Criterion) {
    let (alice, leader) = ids();
    let key = [0x42u8; 32];
    let nonce = AeadNonce::from_bytes([1; 12]);
    let mut group = c.benchmark_group("sealed_messages");

    let admin = AdminPlain {
        leader: leader.clone(),
        user: alice.clone(),
        user_nonce: ProtocolNonce::from_bytes([2; 16]),
        leader_nonce: ProtocolNonce::from_bytes([3; 16]),
        payload: AdminPayload::NewGroupKey {
            epoch: 7,
            key: [9; 32],
            iv: [1; 12],
        },
    };
    group.bench_function("seal_admin_msg", |b| {
        b.iter(|| seal(black_box(&key), nonce, b"hdr", black_box(&admin)));
    });
    let body = seal(&key, nonce, b"hdr", &admin);
    group.bench_function("open_admin_msg", |b| {
        b.iter(|| open::<AdminPlain>(black_box(&key), b"hdr", black_box(&body)).unwrap());
    });

    let ack = NonceAckPlain {
        user: alice,
        leader,
        acked_nonce: ProtocolNonce::from_bytes([4; 16]),
        next_nonce: ProtocolNonce::from_bytes([5; 16]),
    };
    group.bench_function("seal_ack", |b| {
        b.iter(|| seal(black_box(&key), nonce, b"hdr", black_box(&ack)));
    });
    group.finish();
}

criterion_group!(benches, bench_envelope_codec, bench_sealed_messages);
criterion_main!(benches);
