//! Workload builders shared by the Criterion benches and the report
//! binary.
//!
//! Every experiment row in `EXPERIMENTS.md` maps to one function here plus
//! one bench target; the report binary (`cargo run -p enclaves-bench --bin
//! report`) regenerates the qualitative tables (verification results and
//! the attack matrix), while `cargo bench` regenerates the quantitative
//! series.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use enclaves_core::config::{LeaderConfig, RekeyPolicy};
use enclaves_core::directory::Directory;
use enclaves_core::legacy::{LegacyLeaderCore, LegacyMemberSession};
use enclaves_core::protocol::{LeaderCore, MemberSession};
use enclaves_crypto::keys::LongTermKey;
use enclaves_crypto::rng::SeededRng;
use enclaves_wire::message::Envelope;
use enclaves_wire::{ActorId, GroupId};

/// Builds an actor id `m<i>`.
///
/// # Panics
///
/// Never for reasonable `i` (the generated name is always valid).
#[must_use]
pub fn member_id(i: usize) -> ActorId {
    ActorId::new(format!("m{i}")).expect("valid id")
}

/// The leader id used by all workloads.
///
/// # Panics
///
/// Never (the name is statically valid).
#[must_use]
pub fn leader_id() -> ActorId {
    ActorId::new("leader").expect("valid id")
}

/// Deterministic long-term key for member `i`.
///
/// # Panics
///
/// Propagates key-derivation failure (cannot happen with valid inputs).
#[must_use]
pub fn member_key(i: usize) -> LongTermKey {
    LongTermKey::derive_from_password(&format!("pw-{i}"), &format!("m{i}")).expect("derive")
}

/// A fully joined improved-protocol world with `n` members.
pub struct ImprovedGroup {
    /// The leader core.
    pub leader: LeaderCore,
    /// Member sessions, index-aligned with [`member_id`].
    pub members: Vec<MemberSession>,
}

/// Routes all outgoing leader traffic until quiescent (used after
/// broadcast/rekey operations so stop-and-wait acks are drained).
pub fn settle(leader: &mut LeaderCore, members: &mut [MemberSession], outgoing: Vec<Envelope>) {
    let mut queue = outgoing;
    while let Some(env) = queue.pop() {
        if env.recipient == *leader.leader_id() {
            if let Ok(out) = leader.handle(&env) {
                queue.extend(out.outgoing);
            }
        } else if let Some(idx) = index_of(&env.recipient) {
            if idx < members.len() {
                if let Ok(out) = members[idx].handle(&env) {
                    queue.extend(out.reply);
                }
            }
        }
    }
}

impl ImprovedGroup {
    /// Builds and fully joins an `n`-member group.
    ///
    /// # Panics
    ///
    /// Panics if the deterministic handshake fails (a bug, not an input
    /// condition).
    #[must_use]
    pub fn new(n: usize, policy: RekeyPolicy) -> Self {
        let mut directory = Directory::new();
        for i in 0..n {
            directory.register_key(&member_id(i), member_key(i));
        }
        let mut leader = LeaderCore::with_rng(
            leader_id(),
            directory,
            LeaderConfig {
                rekey_policy: policy,
                ..LeaderConfig::default()
            },
            Box::new(SeededRng::from_seed(42)),
        );
        let mut members = Vec::with_capacity(n);
        for i in 0..n {
            let (session, init) = MemberSession::start_with_key(
                member_id(i),
                leader_id(),
                member_key(i),
                Box::new(SeededRng::from_seed(1000 + i as u64)),
            );
            members.push(session);
            pump(&mut leader, &mut members, init);
        }
        ImprovedGroup { leader, members }
    }

    /// Routes all outgoing leader traffic until quiescent (used after
    /// broadcast/rekey operations in benches).
    pub fn settle(&mut self, outgoing: Vec<Envelope>) {
        settle(&mut self.leader, &mut self.members, outgoing);
    }
}

/// Deterministic cheap long-term key for member `i` (no PBKDF2 — at
/// N=4096 password derivation would dominate world setup by orders of
/// magnitude).
#[must_use]
pub fn cheap_member_key(i: usize) -> LongTermKey {
    let mut bytes = [0x5Au8; 32];
    bytes[..8].copy_from_slice(&(i as u64).to_le_bytes());
    LongTermKey::from_bytes(bytes)
}

/// A fully joined improved-protocol world specialized for broadcast
/// fan-out experiments: cheap long-term keys, manual rekey policy, and
/// membership notices suppressed so building the roster costs O(N)
/// messages instead of the O(N²) join-notice storm.
pub struct FanoutGroup {
    /// The leader core.
    pub leader: LeaderCore,
    /// Member sessions, index-aligned with [`member_id`].
    pub members: Vec<MemberSession>,
}

impl FanoutGroup {
    /// Builds and fully joins an `n`-member group with the flat
    /// per-member rekey fan-out.
    ///
    /// # Panics
    ///
    /// Panics if the deterministic handshake fails (a bug, not an input
    /// condition).
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self::new_with(n, false)
    }

    /// Builds and fully joins an `n`-member group with the MLS-style
    /// rekey tree enabled (`O(log N)` copath seals per rekey). The
    /// `PathUpdate` multicasts produced during the build are not routed
    /// back to the members — delivering every join's broadcast to the
    /// whole roster would cost `O(N²)` message handling, and the
    /// leader-side seal counts and wall clock measured by the rekey
    /// experiments do not depend on member delivery (which the core
    /// integration tests cover end to end).
    ///
    /// # Panics
    ///
    /// Panics if the deterministic handshake fails (a bug, not an input
    /// condition).
    #[must_use]
    pub fn new_tree(n: usize) -> Self {
        Self::new_with(n, true)
    }

    /// Builds and fully joins an `n`-member group inside the enclave
    /// `tag` of a multi-enclave service: every envelope (and every seal's
    /// header AAD) carries the group tag. Used by the multigroup
    /// aggregate-throughput experiment.
    ///
    /// # Panics
    ///
    /// Panics if the tag is invalid or the deterministic handshake fails.
    #[must_use]
    pub fn new_in_enclave(n: usize, tag: &str) -> Self {
        let group = GroupId::new(tag).expect("valid enclave tag");
        Self::build(n, false, Some(group))
    }

    fn new_with(n: usize, tree_rekey: bool) -> Self {
        Self::build(n, tree_rekey, None)
    }

    fn build(n: usize, tree_rekey: bool, group: Option<GroupId>) -> Self {
        let mut directory = Directory::new();
        for i in 0..n {
            directory.register_key(&member_id(i), cheap_member_key(i));
        }
        let mut leader = LeaderCore::with_rng(
            leader_id(),
            directory,
            LeaderConfig {
                rekey_policy: RekeyPolicy::Manual,
                max_members: n.max(2),
                membership_notices: false,
                tree_rekey,
                group: group.clone(),
                ..LeaderConfig::default()
            },
            Box::new(SeededRng::from_seed(42)),
        );
        let mut members = Vec::with_capacity(n);
        for i in 0..n {
            let (session, init) = MemberSession::start_with_key_in_group(
                member_id(i),
                leader_id(),
                cheap_member_key(i),
                Box::new(SeededRng::from_seed(3000 + i as u64)),
                group.clone(),
            );
            members.push(session);
            pump(&mut leader, &mut members, init);
        }
        FanoutGroup { leader, members }
    }

    /// Drains admin-path acks (needed between legacy broadcasts — the
    /// stop-and-wait channel queues the next payload otherwise).
    pub fn settle(&mut self, outgoing: Vec<Envelope>) {
        settle(&mut self.leader, &mut self.members, outgoing);
    }

    /// Runs one staged rekey end to end — stage, seal, commit — sealing
    /// on the calling thread. Returns the sealed envelopes so the caller
    /// can [`FanoutGroup::settle`] the stop-and-wait acks outside any
    /// timed region.
    ///
    /// # Panics
    ///
    /// Panics if staging fails (a bug, not an input condition).
    pub fn rekey_serial(&mut self) -> Vec<Envelope> {
        let fanout = self.leader.begin_rekey().expect("rekey stages");
        let batch = LeaderCore::seal_admin_jobs(&fanout.jobs);
        self.leader.commit_admin_frames(&batch);
        batch.frames.into_iter().map(|f| f.env).collect()
    }

    /// Runs one staged rekey end to end, sealing across `threads` scoped
    /// workers (the runtime's out-of-lock path). Byte-identical output to
    /// [`FanoutGroup::rekey_serial`].
    ///
    /// # Panics
    ///
    /// Panics if staging fails (a bug, not an input condition).
    pub fn rekey_parallel(&mut self, threads: usize) -> Vec<Envelope> {
        let fanout = self.leader.begin_rekey().expect("rekey stages");
        let batch = LeaderCore::seal_admin_jobs_parallel(&fanout.jobs, threads);
        self.leader.commit_admin_frames(&batch);
        batch.frames.into_iter().map(|f| f.env).collect()
    }

    /// Runs one tree-mode rekey: refreshes the next leaf path and builds
    /// the `PathUpdate` multicast (`O(log N)` copath seals, zero admin
    /// seals). Returns the broadcast frame so callers can black-box or
    /// deliver it; there are no stop-and-wait acks to settle.
    ///
    /// # Panics
    ///
    /// Panics if the world was not built with [`FanoutGroup::new_tree`]
    /// or staging fails.
    pub fn rekey_tree(&mut self) -> enclaves_core::protocol::BroadcastFrame {
        let fanout = self.leader.begin_rekey().expect("rekey stages");
        assert!(
            fanout.jobs.is_empty(),
            "tree rekey must not stage admin seal jobs"
        );
        fanout.broadcast.expect("tree rekey emits a PathUpdate")
    }

    /// Delivers one shared single-seal broadcast frame to every member,
    /// returning the decrypted payloads (one per member, in member
    /// order). The frame is decoded once and the identical envelope is
    /// handed to each session, mirroring the runtime's refcounted
    /// dispatch.
    ///
    /// # Panics
    ///
    /// Panics if the frame does not decode or any member rejects it.
    pub fn deliver_broadcast(&mut self, frame: &[u8]) -> Vec<Vec<u8>> {
        let env: Envelope = enclaves_wire::codec::decode(frame).expect("valid broadcast frame");
        self.members
            .iter_mut()
            .map(|m| {
                let out = m.handle(&env).expect("member accepts broadcast");
                match out.events.into_iter().next() {
                    Some(enclaves_core::protocol::MemberEvent::Broadcast { data, .. }) => data,
                    other => panic!("expected Broadcast event, got {other:?}"),
                }
            })
            .collect()
    }
}

fn index_of(id: &ActorId) -> Option<usize> {
    id.as_str().strip_prefix('m')?.parse().ok()
}

/// Pumps envelopes between the leader and members until quiescent.
pub fn pump(leader: &mut LeaderCore, members: &mut [MemberSession], first: Envelope) {
    let mut queue = vec![first];
    while let Some(env) = queue.pop() {
        if env.recipient == *leader.leader_id() {
            if let Ok(out) = leader.handle(&env) {
                queue.extend(out.outgoing);
            }
        } else if let Some(idx) = index_of(&env.recipient) {
            if idx < members.len() {
                if let Ok(out) = members[idx].handle(&env) {
                    queue.extend(out.reply);
                }
            }
        }
    }
}

/// A fully joined legacy world with `n` members.
pub struct LegacyGroup {
    /// The legacy leader core.
    pub leader: LegacyLeaderCore,
    /// Member sessions.
    pub members: Vec<LegacyMemberSession>,
}

impl LegacyGroup {
    /// Builds and fully joins an `n`-member legacy group.
    ///
    /// # Panics
    ///
    /// Panics if the deterministic handshake fails.
    #[must_use]
    pub fn new(n: usize) -> Self {
        let mut directory = Directory::new();
        for i in 0..n {
            directory.register_key(&member_id(i), member_key(i));
        }
        let mut leader =
            LegacyLeaderCore::with_rng(leader_id(), directory, Box::new(SeededRng::from_seed(42)));
        let mut members: Vec<LegacyMemberSession> = Vec::with_capacity(n);
        for i in 0..n {
            let (session, open) = LegacyMemberSession::start(
                member_id(i),
                leader_id(),
                member_key(i),
                Box::new(SeededRng::from_seed(2000 + i as u64)),
            );
            members.push(session);
            // Pump the legacy handshake.
            let mut queue = vec![open];
            while let Some(env) = queue.pop() {
                if env.recipient == leader_id() {
                    if let Ok(out) = leader.handle(&env) {
                        queue.extend(out.outgoing);
                    }
                } else if let Some(idx) = index_of(&env.recipient) {
                    if idx < members.len() {
                        if let Ok(out) = members[idx].handle(&env) {
                            queue.extend(out.reply);
                        }
                    }
                }
            }
        }
        LegacyGroup { leader, members }
    }
}

/// Runs one complete improved-protocol join handshake (the "handshake
/// latency" workload).
///
/// # Panics
///
/// Panics if the handshake fails.
pub fn improved_handshake_once(seed: u64) {
    let mut directory = Directory::new();
    directory.register_key(&member_id(0), member_key(0));
    let mut leader = LeaderCore::with_rng(
        leader_id(),
        directory,
        LeaderConfig {
            rekey_policy: RekeyPolicy::Manual,
            ..LeaderConfig::default()
        },
        Box::new(SeededRng::from_seed(seed)),
    );
    let (session, init) = MemberSession::start_with_key(
        member_id(0),
        leader_id(),
        member_key(0),
        Box::new(SeededRng::from_seed(seed + 1)),
    );
    let mut members = vec![session];
    pump(&mut leader, &mut members, init);
    assert_eq!(leader.roster().len(), 1);
}

/// Runs one complete legacy join handshake.
///
/// # Panics
///
/// Panics if the handshake fails.
pub fn legacy_handshake_once(seed: u64) {
    let mut directory = Directory::new();
    directory.register_key(&member_id(0), member_key(0));
    let mut leader =
        LegacyLeaderCore::with_rng(leader_id(), directory, Box::new(SeededRng::from_seed(seed)));
    let (mut session, open) = LegacyMemberSession::start(
        member_id(0),
        leader_id(),
        member_key(0),
        Box::new(SeededRng::from_seed(seed + 1)),
    );
    let mut queue = vec![open];
    while let Some(env) = queue.pop() {
        if env.recipient == leader_id() {
            if let Ok(out) = leader.handle(&env) {
                queue.extend(out.outgoing);
            }
        } else if let Ok(out) = session.handle(&env) {
            queue.extend(out.reply);
        }
    }
    assert_eq!(leader.roster().len(), 1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improved_group_builds_at_various_sizes() {
        for n in [1usize, 2, 5, 9] {
            let g = ImprovedGroup::new(n, RekeyPolicy::Manual);
            assert_eq!(g.leader.roster().len(), n, "n={n}");
            for (i, m) in g.members.iter().enumerate() {
                assert_eq!(
                    m.roster().len(),
                    n,
                    "member {i} sees wrong roster in group of {n}: {:?}",
                    m.roster()
                );
            }
        }
    }

    #[test]
    fn improved_group_with_rekey_policy_converges() {
        let g = ImprovedGroup::new(4, RekeyPolicy::OnJoin);
        // After 4 joins with rekey-on-join (first join does not rekey),
        // the epoch is 4; every member must hold it.
        let epoch = g.leader.epoch().unwrap();
        assert_eq!(epoch, 4);
        for m in &g.members {
            assert_eq!(m.group_epoch(), Some(epoch));
        }
    }

    #[test]
    fn legacy_group_builds() {
        let g = LegacyGroup::new(3);
        assert_eq!(g.leader.roster().len(), 3);
    }

    #[test]
    fn handshakes_run() {
        improved_handshake_once(7);
        legacy_handshake_once(8);
    }

    #[test]
    fn broadcast_and_settle() {
        let mut g = ImprovedGroup::new(3, RekeyPolicy::Manual);
        let out = g.leader.broadcast_admin_data(b"tick").unwrap();
        g.settle(out.outgoing);
        // Stop-and-wait: after settle, everything is acknowledged, so a
        // second broadcast goes straight out to all members.
        let out2 = g.leader.broadcast_admin_data(b"tock").unwrap();
        assert_eq!(out2.outgoing.len(), 3);
    }

    #[test]
    fn fanout_group_tree_rekey_costs_log_seals() {
        let mut g = FanoutGroup::new_tree(33);
        assert_eq!(g.leader.roster().len(), 33);
        let admin_before = g.leader.stats().admin_seals;
        let seals_before = g.leader.stats().rekey_seals;
        for _ in 0..3 {
            let b = g.leader.rekey_now().unwrap();
            std::hint::black_box(&b);
        }
        let per_rekey = (g.leader.stats().rekey_seals - seals_before) / 3;
        // 2*ceil(log2 33) + 1 = 13.
        assert!(
            per_rekey <= 13,
            "tree rekey at n=33 took {per_rekey} seals, bound is 13"
        );
        assert_eq!(
            g.leader.stats().admin_seals,
            admin_before,
            "tree rekeys stay off the admin plane"
        );
        let frame = g.rekey_tree();
        assert_eq!(frame.recipients.len(), 33);
    }

    #[test]
    fn fanout_group_single_seal_roundtrip() {
        let mut g = FanoutGroup::new(17);
        assert_eq!(g.leader.roster().len(), 17);
        let bc = g.leader.broadcast_group_data(b"one seal").unwrap();
        let payloads = g.deliver_broadcast(&bc.frame);
        assert_eq!(payloads.len(), 17);
        assert!(payloads.iter().all(|p| p == b"one seal"));
        assert_eq!(g.leader.stats().data_seals, 1);
        // Legacy path still works in the same world (for the comparison
        // bench) and costs one seal per member.
        let out = g.leader.broadcast_admin_data(b"n seals").unwrap();
        assert_eq!(out.outgoing.len(), 17);
        g.settle(out.outgoing);
        assert_eq!(
            g.leader.stats().data_seals,
            1,
            "admin path is control plane"
        );
    }
}
