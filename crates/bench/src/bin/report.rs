//! Regenerates the qualitative experiment tables of `EXPERIMENTS.md`:
//!
//! * the verification results table (F4, P1–P6 over the improved model;
//!   attack searches over the legacy model);
//! * the attack matrix (A1–A5 against both protocol implementations);
//! * exploration statistics (the F2/F3 state machines driven
//!   exhaustively).
//!
//! Run with `cargo run --release -p enclaves-bench --bin report`.
//!
//! With `--fanout` it instead measures the broadcast fan-out experiment
//! (EXPERIMENTS.md row S9) and writes `BENCH_fanout.json` at the workspace
//! root: legacy per-member sealing vs the single-seal group-key data plane,
//! asserting exactly one AEAD seal per broadcast and a ≥10× wall-clock win
//! at N = 512.

use enclaves_bench::FanoutGroup;
use enclaves_core::attacks;
use enclaves_model::explore::Bounds;
use enclaves_verify::runner;
use std::fmt::Write as _;
use std::time::Instant;

/// One measured fan-out size.
struct FanoutRow {
    n: usize,
    legacy_ns: u128,
    single_seal_ns: u128,
    seals_per_broadcast: u64,
}

impl FanoutRow {
    fn speedup(&self) -> f64 {
        self.legacy_ns as f64 / self.single_seal_ns as f64
    }
}

/// Median-of-`iters` wall-clock time per call of `f`, in nanoseconds.
fn median_ns(iters: usize, mut f: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn measure_fanout(n: usize, iters: usize) -> FanoutRow {
    let payload = [0x42u8; 256];

    let mut world = FanoutGroup::new(n);
    let legacy_ns = median_ns(iters, || {
        let out = world.leader.broadcast_admin_data(&payload).unwrap();
        world.settle(out.outgoing);
    });

    let mut world = FanoutGroup::new(n);
    let seals_before = world.leader.stats().data_seals;
    let broadcasts_before = world.leader.stats().broadcasts;
    let single_seal_ns = median_ns(iters, || {
        let bc = world.leader.broadcast_group_data(&payload).unwrap();
        std::hint::black_box(&bc.frame);
    });
    let seals = world.leader.stats().data_seals - seals_before;
    let broadcasts = world.leader.stats().broadcasts - broadcasts_before;
    assert_eq!(
        seals, broadcasts,
        "single-seal invariant: exactly one AEAD seal per broadcast"
    );

    FanoutRow {
        n,
        legacy_ns,
        single_seal_ns,
        seals_per_broadcast: seals / broadcasts,
    }
}

fn run_fanout() {
    println!("-- Broadcast fan-out (row S9): legacy vs single-seal -----------");
    println!();
    println!(
        "  {:>6} {:>14} {:>14} {:>9} {:>6}",
        "N", "legacy", "single-seal", "speedup", "seals"
    );
    let rows: Vec<FanoutRow> = [8usize, 64, 512, 4096]
        .iter()
        .map(|&n| {
            let iters = if n >= 4096 { 5 } else { 11 };
            let row = measure_fanout(n, iters);
            println!(
                "  {:>6} {:>12.2}us {:>12.2}us {:>8.1}x {:>6}",
                row.n,
                row.legacy_ns as f64 / 1e3,
                row.single_seal_ns as f64 / 1e3,
                row.speedup(),
                row.seals_per_broadcast,
            );
            row
        })
        .collect();

    let at_512 = rows.iter().find(|r| r.n == 512).expect("512 is measured");
    assert!(
        at_512.speedup() >= 10.0,
        "expected >=10x at N=512, got {:.1}x",
        at_512.speedup()
    );
    assert!(rows.iter().all(|r| r.seals_per_broadcast == 1));

    let mut json = String::from("{\n  \"experiment\": \"broadcast_fanout\",\n");
    json.push_str("  \"payload_bytes\": 256,\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"legacy_ns\": {}, \"single_seal_ns\": {}, \
             \"speedup\": {:.1}, \"seals_per_broadcast\": {}}}{}",
            row.n,
            row.legacy_ns,
            row.single_seal_ns,
            row.speedup(),
            row.seals_per_broadcast,
            if i + 1 == rows.len() { "" } else { "," },
        );
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fanout.json");
    std::fs::write(path, json).expect("write BENCH_fanout.json");
    println!();
    println!("  single-seal invariant holds; >=10x at N=512; wrote BENCH_fanout.json");
}

fn main() {
    if std::env::args().any(|a| a == "--fanout") {
        run_fanout();
        return;
    }
    let deep = std::env::args().any(|a| a == "--deep");
    let bounds = if deep {
        Bounds {
            max_events: 11,
            max_states: 5_000_000,
        }
    } else {
        Bounds {
            max_events: 9,
            max_states: 500_000,
        }
    };

    println!("================================================================");
    println!(" Enclaves reproduction report (DSN 2001)");
    println!("================================================================");
    println!();
    println!("-- Verification suite (Section 5, bounded model checking) ------");
    println!(
        "   bounds: max_events={} max_states={}",
        bounds.max_events, bounds.max_states
    );
    println!();
    let start = std::time::Instant::now();
    let mut results = runner::run_full_suite(bounds);
    if deep {
        results.push(runner::verify_improved_parallel(
            enclaves_model::system::Scenario::tight(),
            enclaves_model::explore::Bounds {
                max_events: bounds.max_events + 1,
                max_states: bounds.max_states,
            },
            0,
        ));
    }
    for r in &results {
        println!("  {r}");
    }
    let all_passed = results.iter().all(|r| r.passed);
    println!();
    println!(
        "  verification suite: {} in {:.1?}",
        if all_passed { "ALL PASS" } else { "FAILURES" },
        start.elapsed()
    );
    println!();

    println!("-- Attack matrix (Section 2.3, byte-level implementations) -----");
    println!();
    println!(
        "  {:4} {:38} {:9} {:10}",
        "id", "attack", "legacy", "improved"
    );
    let reports = attacks::run_all();
    for pair in reports.chunks(2) {
        let legacy = &pair[0];
        let improved = &pair[1];
        println!(
            "  {:4} {:38} {:9} {:10}",
            legacy.id,
            legacy.name,
            if legacy.succeeded { "BROKEN" } else { "held" },
            if improved.succeeded {
                "BROKEN"
            } else {
                "resists"
            },
        );
    }
    let matrix_ok = reports.iter().all(|r| match r.against {
        attacks::ProtocolKind::Legacy => r.succeeded,
        attacks::ProtocolKind::Improved => !r.succeeded,
    });
    println!();
    println!(
        "  attack matrix: {}",
        if matrix_ok {
            "matches the paper (legacy broken, improved resists)"
        } else {
            "MISMATCH with the paper"
        }
    );
    println!();
    println!("================================================================");
    if !(all_passed && matrix_ok) {
        std::process::exit(1);
    }
}
