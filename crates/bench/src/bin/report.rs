//! Regenerates the qualitative experiment tables of `EXPERIMENTS.md`:
//!
//! * the verification results table (F4, P1–P6 over the improved model;
//!   attack searches over the legacy model);
//! * the attack matrix (A1–A5 against both protocol implementations);
//! * exploration statistics (the F2/F3 state machines driven
//!   exhaustively).
//!
//! Run with `cargo run --release -p enclaves-bench --bin report`.

use enclaves_core::attacks;
use enclaves_model::explore::Bounds;
use enclaves_verify::runner;

fn main() {
    let deep = std::env::args().any(|a| a == "--deep");
    let bounds = if deep {
        Bounds {
            max_events: 11,
            max_states: 5_000_000,
        }
    } else {
        Bounds {
            max_events: 9,
            max_states: 500_000,
        }
    };

    println!("================================================================");
    println!(" Enclaves reproduction report (DSN 2001)");
    println!("================================================================");
    println!();
    println!("-- Verification suite (Section 5, bounded model checking) ------");
    println!("   bounds: max_events={} max_states={}", bounds.max_events, bounds.max_states);
    println!();
    let start = std::time::Instant::now();
    let mut results = runner::run_full_suite(bounds);
    if deep {
        results.push(runner::verify_improved_parallel(
            enclaves_model::system::Scenario::tight(),
            enclaves_model::explore::Bounds {
                max_events: bounds.max_events + 1,
                max_states: bounds.max_states,
            },
            0,
        ));
    }
    for r in &results {
        println!("  {r}");
    }
    let all_passed = results.iter().all(|r| r.passed);
    println!();
    println!(
        "  verification suite: {} in {:.1?}",
        if all_passed { "ALL PASS" } else { "FAILURES" },
        start.elapsed()
    );
    println!();

    println!("-- Attack matrix (Section 2.3, byte-level implementations) -----");
    println!();
    println!("  {:4} {:38} {:9} {:10}", "id", "attack", "legacy", "improved");
    let reports = attacks::run_all();
    for pair in reports.chunks(2) {
        let legacy = &pair[0];
        let improved = &pair[1];
        println!(
            "  {:4} {:38} {:9} {:10}",
            legacy.id,
            legacy.name,
            if legacy.succeeded { "BROKEN" } else { "held" },
            if improved.succeeded { "BROKEN" } else { "resists" },
        );
    }
    let matrix_ok = reports.iter().all(|r| match r.against {
        attacks::ProtocolKind::Legacy => r.succeeded,
        attacks::ProtocolKind::Improved => !r.succeeded,
    });
    println!();
    println!(
        "  attack matrix: {}",
        if matrix_ok {
            "matches the paper (legacy broken, improved resists)"
        } else {
            "MISMATCH with the paper"
        }
    );
    println!();
    println!("================================================================");
    if !(all_passed && matrix_ok) {
        std::process::exit(1);
    }
}
