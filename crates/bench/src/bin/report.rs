//! Regenerates the qualitative experiment tables of `EXPERIMENTS.md`:
//!
//! * the verification results table (F4, P1–P6 over the improved model;
//!   attack searches over the legacy model);
//! * the attack matrix (A1–A5 against both protocol implementations);
//! * exploration statistics (the F2/F3 state machines driven
//!   exhaustively).
//!
//! Run with `cargo run --release -p enclaves-bench --bin report`.
//!
//! With `--fanout` it instead measures the broadcast fan-out experiment
//! (EXPERIMENTS.md row S9) and writes `BENCH_fanout.json` at the workspace
//! root: legacy per-member sealing vs the single-seal group-key data plane,
//! asserting exactly one AEAD seal per broadcast and a ≥10× wall-clock win
//! at N = 512.
//!
//! With `--rekey` it measures the control-plane rekey fan-out experiments
//! (EXPERIMENTS.md rows S11 and S14) and writes `BENCH_rekey.json`: the
//! flat per-member fan-out (serial vs staged out-of-lock parallel
//! sealing) against the MLS-style rekey tree. Two host-independent gates
//! always run: tree-mode `seals_per_rekey ≤ 2·ceil(log2 N)+1` at every
//! measured N, and tree-mode wall clock beating the flat N-seal path at
//! N = 4096. The flat serial-vs-parallel ≥2× gate additionally arms on
//! multicore hosts.
//!
//! With `--multigroup` it measures the multi-enclave aggregate-throughput
//! experiment (EXPERIMENTS.md row S15) and writes `BENCH_multigroup.json`:
//! the same total membership hosted as 1000 × 32-member enclaves versus
//! one 32 000-member group, gated at the sharded side staying within 2×
//! of the monolith per sealed byte.
//!
//! With `--load` it runs the real-socket load rig (EXPERIMENTS.md row
//! S16) and writes `BENCH_load.json`: a leader service on the
//! readiness-loop transport driven by a swarm child process
//! (re-executing this binary with the internal `--load-swarm` flag)
//! hosting 10 000 virtual members — one real TCP connection each —
//! through a join storm, broadcast waves, a full rekey, and churn.
//! Gated on both processes staying under 64 threads regardless of member
//! count, plus join/broadcast p99 ceilings. `--load-members N` overrides
//! the member count (the CI smoke step runs N = 1000).
//!
//! With `--recovery` it runs the durable-restart experiment
//! (EXPERIMENTS.md row S17) and writes `BENCH_recovery.json`: 1000
//! journaled enclaves built through real handshakes, torn down, and
//! recovered with one cold `open_with_journal` — gated on every stream
//! replaying, every epoch landing strictly past its pre-shutdown value,
//! and the whole replay staying inside a loose wall-clock ceiling.
//! `--recovery-groups N` overrides the enclave count (the CI smoke step
//! runs N = 100).

use enclaves_bench::FanoutGroup;
use enclaves_core::attacks;
use enclaves_model::explore::Bounds;
use enclaves_verify::runner;
use enclaves_wire::message::Envelope;
use std::fmt::Write as _;
use std::time::Instant;

/// One measured fan-out size.
struct FanoutRow {
    n: usize,
    legacy_ns: u128,
    single_seal_ns: u128,
    seals_per_broadcast: u64,
}

impl FanoutRow {
    fn speedup(&self) -> f64 {
        self.legacy_ns as f64 / self.single_seal_ns as f64
    }
}

/// Median-of-`iters` wall-clock time per call of `f`, in nanoseconds.
fn median_ns(iters: usize, mut f: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn measure_fanout(n: usize, iters: usize) -> FanoutRow {
    let payload = [0x42u8; 256];

    let mut world = FanoutGroup::new(n);
    let legacy_ns = median_ns(iters, || {
        let out = world.leader.broadcast_admin_data(&payload).unwrap();
        world.settle(out.outgoing);
    });

    let mut world = FanoutGroup::new(n);
    let seals_before = world.leader.stats().data_seals;
    let broadcasts_before = world.leader.stats().broadcasts;
    let single_seal_ns = median_ns(iters, || {
        let bc = world.leader.broadcast_group_data(&payload).unwrap();
        std::hint::black_box(&bc.frame);
    });
    let seals = world.leader.stats().data_seals - seals_before;
    let broadcasts = world.leader.stats().broadcasts - broadcasts_before;
    assert_eq!(
        seals, broadcasts,
        "single-seal invariant: exactly one AEAD seal per broadcast"
    );
    // The compatibility stats view is a projection of the atomic
    // registry; any drift between them is an instrumentation bug.
    let stats = world.leader.stats();
    let snap = world.leader.obs_registry().snapshot();
    assert_eq!(snap.counter("leader.data_seals"), stats.data_seals);
    assert_eq!(snap.counter("leader.broadcasts"), stats.broadcasts);

    FanoutRow {
        n,
        legacy_ns,
        single_seal_ns,
        seals_per_broadcast: seals / broadcasts,
    }
}

fn run_fanout() {
    println!("-- Broadcast fan-out (row S9): legacy vs single-seal -----------");
    println!();
    println!(
        "  {:>6} {:>14} {:>14} {:>9} {:>6}",
        "N", "legacy", "single-seal", "speedup", "seals"
    );
    let rows: Vec<FanoutRow> = [8usize, 64, 512, 4096]
        .iter()
        .map(|&n| {
            let iters = if n >= 4096 { 5 } else { 11 };
            let row = measure_fanout(n, iters);
            println!(
                "  {:>6} {:>12.2}us {:>12.2}us {:>8.1}x {:>6}",
                row.n,
                row.legacy_ns as f64 / 1e3,
                row.single_seal_ns as f64 / 1e3,
                row.speedup(),
                row.seals_per_broadcast,
            );
            row
        })
        .collect();

    let at_512 = rows.iter().find(|r| r.n == 512).expect("512 is measured");
    assert!(
        at_512.speedup() >= 10.0,
        "expected >=10x at N=512, got {:.1}x",
        at_512.speedup()
    );
    assert!(rows.iter().all(|r| r.seals_per_broadcast == 1));

    let mut json = String::from("{\n  \"experiment\": \"broadcast_fanout\",\n");
    json.push_str("  \"payload_bytes\": 256,\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"legacy_ns\": {}, \"single_seal_ns\": {}, \
             \"speedup\": {:.1}, \"seals_per_broadcast\": {}}}{}",
            row.n,
            row.legacy_ns,
            row.single_seal_ns,
            row.speedup(),
            row.seals_per_broadcast,
            if i + 1 == rows.len() { "" } else { "," },
        );
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fanout.json");
    std::fs::write(path, json).expect("write BENCH_fanout.json");
    println!();
    println!("  single-seal invariant holds; >=10x at N=512; wrote BENCH_fanout.json");
}

/// One measured rekey fan-out size: the flat per-member fan-out (serial
/// and out-of-lock parallel sealing) against the `O(log N)` rekey tree.
struct RekeyRow {
    n: usize,
    serial_ns: u128,
    parallel_ns: u128,
    tree_ns: u128,
    seals_per_rekey: u64,
    tree_seals_per_rekey: u64,
}

impl RekeyRow {
    fn speedup(&self) -> f64 {
        self.serial_ns as f64 / self.parallel_ns as f64
    }

    fn tree_speedup(&self) -> f64 {
        self.serial_ns as f64 / self.tree_ns as f64
    }

    /// The `O(log N)` acceptance bound: `2·ceil(log2 n) + 1` copath seals.
    fn tree_seal_bound(&self) -> u64 {
        let n = u32::try_from(self.n.max(2)).expect("bench sizes fit u32");
        u64::from(2 * (32 - (n - 1).leading_zeros()) + 1)
    }
}

/// Median-of-`iters` wall-clock time of the staged rekey pipeline alone:
/// the stop-and-wait acknowledgments are drained *outside* the timed
/// region so ARQ traffic does not wash out the serial-vs-parallel
/// difference.
fn median_rekey_ns(
    world: &mut FanoutGroup,
    iters: usize,
    mut rekey: impl FnMut(&mut FanoutGroup) -> Vec<Envelope>,
) -> u128 {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        let outgoing = rekey(world);
        samples.push(start.elapsed().as_nanos());
        world.settle(outgoing);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn measure_rekey(n: usize, iters: usize, threads: usize) -> RekeyRow {
    let mut world = FanoutGroup::new(n);
    let serial_ns = median_rekey_ns(&mut world, iters, FanoutGroup::rekey_serial);

    let mut world = FanoutGroup::new(n);
    let seals_before = world.leader.stats().admin_seals;
    let rekeys_before = world.leader.stats().rekeys;
    let parallel_ns = median_rekey_ns(&mut world, iters, |w| w.rekey_parallel(threads));
    let seals = world.leader.stats().admin_seals - seals_before;
    let rekeys = world.leader.stats().rekeys - rekeys_before;
    assert_eq!(
        seals,
        rekeys * n as u64,
        "control-plane invariant: exactly n admin seals per rekey (n={n})"
    );
    let stats = world.leader.stats();
    let snap = world.leader.obs_registry().snapshot();
    assert_eq!(snap.counter("leader.admin_seals"), stats.admin_seals);
    assert_eq!(snap.counter("leader.rekeys"), stats.rekeys);
    assert_eq!(snap.counter("leader.admin_seal_ns"), stats.admin_seal_ns);

    // Tree mode: same roster, O(log N) copath seals, no admin traffic.
    let mut world = FanoutGroup::new_tree(n);
    let tree_seals_before = world.leader.stats().rekey_seals;
    let tree_rekeys_before = world.leader.stats().rekeys;
    let tree_admin_before = world.leader.stats().admin_seals;
    let tree_ns = median_ns(iters, || {
        let frame = world.rekey_tree();
        std::hint::black_box(&frame);
    });
    let tree_seals = world.leader.stats().rekey_seals - tree_seals_before;
    let tree_rekeys = world.leader.stats().rekeys - tree_rekeys_before;
    assert_eq!(
        world.leader.stats().admin_seals,
        tree_admin_before,
        "tree rekeys must stay off the per-member admin plane (n={n})"
    );
    let snap = world.leader.obs_registry().snapshot();
    assert_eq!(
        snap.counter("leader.rekey_seals"),
        world.leader.stats().rekey_seals
    );

    RekeyRow {
        n,
        serial_ns,
        parallel_ns,
        tree_ns,
        seals_per_rekey: seals / rekeys,
        tree_seals_per_rekey: tree_seals / tree_rekeys,
    }
}

fn run_rekey() {
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    // The flat serial-vs-parallel ≥2× gate needs real cores to
    // parallelize across, so it only arms on multicore. The headline
    // acceptance gates are host-independent and always run: tree-mode
    // seals_per_rekey ≤ 2·ceil(log2 N)+1 at every N, and tree-mode wall
    // clock beating the flat N-seal path at N=4096 (an algorithmic win,
    // not a parallelism win).
    let flat_gate_armed = threads >= 4;
    // ONE label, printed verbatim on the console and in the JSON, so the
    // two outputs can never disagree about whether the gate was enforced.
    let flat_gate_label = if flat_gate_armed {
        "enforced (>=2x at N=4096)"
    } else {
        "informational (host has <4 cores; parallel seal falls back toward serial)"
    };
    println!("-- Rekey fan-out (rows S11/S14): flat serial/parallel vs tree --");
    println!();
    println!("  seal worker threads: {threads}");
    println!();
    println!(
        "  {:>6} {:>12} {:>12} {:>12} {:>8} {:>7} {:>11}",
        "N", "serial", "parallel", "tree", "tree-x", "seals", "tree-seals"
    );
    let rows: Vec<RekeyRow> = [8usize, 64, 512, 4096]
        .iter()
        .map(|&n| {
            let iters = if n >= 4096 { 5 } else { 11 };
            let row = measure_rekey(n, iters, threads);
            println!(
                "  {:>6} {:>10.2}us {:>10.2}us {:>10.2}us {:>7.1}x {:>7} {:>5} <= {:>2}",
                row.n,
                row.serial_ns as f64 / 1e3,
                row.parallel_ns as f64 / 1e3,
                row.tree_ns as f64 / 1e3,
                row.tree_speedup(),
                row.seals_per_rekey,
                row.tree_seals_per_rekey,
                row.tree_seal_bound(),
            );
            row
        })
        .collect();

    assert!(
        rows.iter().all(|r| r.seals_per_rekey == r.n as u64),
        "every flat rekey must cost exactly n admin seals"
    );
    // Always-run, host-independent: the O(log N) copath-seal bound.
    for row in &rows {
        assert!(
            row.tree_seals_per_rekey <= row.tree_seal_bound(),
            "tree rekey at N={} took {} seals, bound is {}",
            row.n,
            row.tree_seals_per_rekey,
            row.tree_seal_bound()
        );
    }
    let at_4096 = rows.iter().find(|r| r.n == 4096).expect("4096 is measured");
    // Always-run, host-independent: ~12 seals must beat 4096 seals.
    assert!(
        at_4096.tree_ns < at_4096.serial_ns,
        "tree rekey must beat the flat N-seal path at N=4096: {}ns vs {}ns",
        at_4096.tree_ns,
        at_4096.serial_ns
    );
    if flat_gate_armed {
        assert!(
            at_4096.speedup() >= 2.0,
            "expected >=2x at N=4096 with {threads} threads, got {:.1}x",
            at_4096.speedup()
        );
    }

    let mut json = String::from("{\n  \"experiment\": \"rekey_fanout\",\n");
    let _ = writeln!(json, "  \"seal_threads\": {threads},");
    let _ = writeln!(
        json,
        "  \"tree_seal_gate\": \"enforced (seals_per_rekey <= 2*ceil(log2 N)+1 at every N)\","
    );
    let _ = writeln!(
        json,
        "  \"tree_speed_gate\": \"enforced (tree beats flat serial at N=4096)\","
    );
    let _ = writeln!(json, "  \"flat_parallel_gate\": \"{flat_gate_label}\",");
    json.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"serial_ns\": {}, \"parallel_ns\": {}, \"tree_ns\": {}, \
             \"speedup\": {:.2}, \"tree_speedup\": {:.2}, \"seals_per_rekey\": {}, \
             \"tree_seals_per_rekey\": {}, \"tree_seal_bound\": {}}}{}",
            row.n,
            row.serial_ns,
            row.parallel_ns,
            row.tree_ns,
            row.speedup(),
            row.tree_speedup(),
            row.seals_per_rekey,
            row.tree_seals_per_rekey,
            row.tree_seal_bound(),
            if i + 1 == rows.len() { "" } else { "," },
        );
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_rekey.json");
    std::fs::write(path, json).expect("write BENCH_rekey.json");
    println!();
    println!(
        "  flat n-seal invariant holds; tree O(log N) gates enforced; \
         flat parallel gate {flat_gate_label}; wrote BENCH_rekey.json"
    );
}

/// The multi-enclave aggregate-throughput experiment (EXPERIMENTS.md row
/// S15): the same total membership hosted as one thousand 32-member
/// enclaves versus one 32 000-member group. Each measured round seals the
/// same payload once per enclave on the multi side and the same number of
/// times on the single side, so both sides perform identical AEAD work
/// per round; the gate demands the sharded side stays within 2× of the
/// monolith per sealed byte (the cost of hosting a thousand cores —
/// registry indirection, per-group sequence state, tagged headers — must
/// be marginal against the seal itself).
fn run_multigroup() {
    const GROUPS: usize = 1000;
    const SMALL: usize = 32;
    const LARGE: usize = GROUPS * SMALL;
    const PAYLOAD: [u8; 256] = [0x42u8; 256];
    let iters = 5;

    println!("-- Multi-enclave aggregate throughput (row S15) ----------------");
    println!();
    println!("  building {GROUPS} x {SMALL}-member enclaves and 1 x {LARGE}-member group...");
    let mut small: Vec<FanoutGroup> = (0..GROUPS)
        .map(|g| FanoutGroup::new_in_enclave(SMALL, &format!("g{g:04}")))
        .collect();
    let mut large = FanoutGroup::new(LARGE);

    let multi_seals_before: u64 = small.iter().map(|w| w.leader.stats().data_seals).sum();
    let mut multi_frame_bytes = 0usize;
    let multi_ns = median_ns(iters, || {
        for w in &mut small {
            let bc = w.leader.broadcast_group_data(&PAYLOAD).unwrap();
            multi_frame_bytes = bc.frame.len();
            std::hint::black_box(&bc.frame);
        }
    });
    let multi_seals: u64 = small
        .iter()
        .map(|w| w.leader.stats().data_seals)
        .sum::<u64>()
        - multi_seals_before;
    assert_eq!(
        multi_seals,
        (GROUPS * iters) as u64,
        "one seal per enclave per round"
    );

    let single_seals_before = large.leader.stats().data_seals;
    let mut single_frame_bytes = 0usize;
    let single_ns = median_ns(iters, || {
        for _ in 0..GROUPS {
            let bc = large.leader.broadcast_group_data(&PAYLOAD).unwrap();
            single_frame_bytes = bc.frame.len();
            std::hint::black_box(&bc.frame);
        }
    });
    let single_seals = large.leader.stats().data_seals - single_seals_before;
    assert_eq!(
        single_seals,
        (GROUPS * iters) as u64,
        "same seal count on the monolith side"
    );

    // Normalize per sealed byte: tagged envelopes carry the group id, so
    // the sharded side's frames are a few bytes longer per seal.
    let multi_ns_per_byte = multi_ns as f64 / (GROUPS * multi_frame_bytes) as f64;
    let single_ns_per_byte = single_ns as f64 / (GROUPS * single_frame_bytes) as f64;
    let ratio = multi_ns_per_byte / single_ns_per_byte;

    println!();
    println!(
        "  {:>28} {:>14} {:>12} {:>12}",
        "shape", "round", "frame", "ns/byte"
    );
    println!(
        "  {:>28} {:>12.2}us {:>11}B {:>12.3}",
        format!("{GROUPS} groups x {SMALL}"),
        multi_ns as f64 / 1e3,
        multi_frame_bytes,
        multi_ns_per_byte,
    );
    println!(
        "  {:>28} {:>12.2}us {:>11}B {:>12.3}",
        format!("1 group x {LARGE}"),
        single_ns as f64 / 1e3,
        single_frame_bytes,
        single_ns_per_byte,
    );
    println!();
    assert!(
        ratio <= 2.0,
        "hosting {GROUPS} enclaves must stay within 2x of one monolith \
         per sealed byte, got {ratio:.2}x"
    );

    let mut json = String::from("{\n  \"experiment\": \"multigroup_broadcast\",\n");
    let _ = writeln!(json, "  \"groups\": {GROUPS},");
    let _ = writeln!(json, "  \"members_per_group\": {SMALL},");
    let _ = writeln!(json, "  \"single_group_members\": {LARGE},");
    let _ = writeln!(json, "  \"payload_bytes\": {},", PAYLOAD.len());
    let _ = writeln!(json, "  \"multi_round_ns\": {multi_ns},");
    let _ = writeln!(json, "  \"single_round_ns\": {single_ns},");
    let _ = writeln!(json, "  \"multi_frame_bytes\": {multi_frame_bytes},");
    let _ = writeln!(json, "  \"single_frame_bytes\": {single_frame_bytes},");
    let _ = writeln!(
        json,
        "  \"multi_ns_per_sealed_byte\": {multi_ns_per_byte:.4},"
    );
    let _ = writeln!(
        json,
        "  \"single_ns_per_sealed_byte\": {single_ns_per_byte:.4},"
    );
    let _ = writeln!(json, "  \"ratio\": {ratio:.3},");
    let _ = writeln!(
        json,
        "  \"gate\": \"enforced (multi within 2x of single per sealed byte)\""
    );
    json.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_multigroup.json");
    std::fs::write(path, json).expect("write BENCH_multigroup.json");
    println!(
        "  aggregate throughput within 2x per sealed byte ({ratio:.3}x); \
         wrote BENCH_multigroup.json"
    );
}

/// Hard ceilings for the load-rig gates. Thread counts are the headline
/// claim (connection count must not leak into thread count); the latency
/// ceilings are deliberately loose — they catch wedges and quadratic
/// blowups, not micro-regressions, because CI hosts vary wildly.
const LOAD_MAX_THREADS: u64 = 64;
const LOAD_MAX_JOIN_P99_NS: u64 = 120_000_000_000;
const LOAD_MAX_BROADCAST_P99_NS: u64 = 30_000_000_000;

fn flag_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn run_load() {
    let members = flag_value("--load-members")
        .map(|v| v.parse().expect("--load-members takes a number"))
        .unwrap_or(10_000);
    let cfg = enclaves_load_test::LoadConfig {
        members,
        // Churn a fixed 1% of the fleet (min 1) so small smoke runs and
        // the 10k design point exercise the same relative churn.
        churn: (members / 100).max(1),
        ..enclaves_load_test::LoadConfig::default()
    };

    println!("-- Load rig: readiness-loop transport at scale (row S16) -------");
    println!();
    println!(
        "  {} members x 1 TCP connection, {} broadcast waves, {}-member churn",
        cfg.members, cfg.waves, cfg.churn
    );

    let exe = std::env::current_exe().expect("current exe");
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("--load-swarm");
    let mut coord =
        enclaves_load_test::ProcessCoordinator::spawn(&mut cmd).expect("spawn swarm child");

    let registry = enclaves_obs::Registry::new();
    let start = Instant::now();
    let outcome =
        enclaves_load_test::run_leader(&cfg, &registry, &mut coord).expect("load rig run");
    let wall = start.elapsed();

    let row = |name: &str, s: &enclaves_load_test::Summary| {
        println!(
            "  {name:>10} {:>7} samples  p50 {:>9.3}ms  p99 {:>9.3}ms  p999 {:>9.3}ms",
            s.count,
            s.p50 as f64 / 1e6,
            s.p99 as f64 / 1e6,
            s.p999 as f64 / 1e6,
        );
    };
    println!();
    row("join", &outcome.join);
    row("broadcast", &outcome.broadcast);
    row("rekey", &outcome.rekey);
    row("rejoin", &outcome.rejoin);
    println!();
    println!(
        "  threads: leader {} / swarm {} (gate < {LOAD_MAX_THREADS}); wall {:.1}s",
        outcome.leader_threads,
        outcome.swarm_threads,
        wall.as_secs_f64()
    );

    // `>=`, not `==`: the swarm self-heals dropped connections by
    // rejoining, and a healed member legitimately contributes an extra
    // join (and, mid-rotation, an extra rekey) sample.
    assert!(outcome.join.count >= cfg.members, "every member joined");
    assert!(
        outcome.broadcast.count >= cfg.members * cfg.waves,
        "every broadcast delivered"
    );
    assert!(outcome.rekey.count >= cfg.members, "every member rekeyed");
    assert!(outcome.rejoin.count >= cfg.churn, "churn cohort joined");
    assert!(
        outcome.leader_threads < LOAD_MAX_THREADS,
        "leader threads {} must stay under {LOAD_MAX_THREADS} regardless of member count",
        outcome.leader_threads
    );
    assert!(
        outcome.swarm_threads < LOAD_MAX_THREADS,
        "swarm threads {} must stay under {LOAD_MAX_THREADS} regardless of member count",
        outcome.swarm_threads
    );
    assert!(
        outcome.join.p99 < LOAD_MAX_JOIN_P99_NS,
        "join p99 {}ns over ceiling",
        outcome.join.p99
    );
    assert!(
        outcome.broadcast.p99 < LOAD_MAX_BROADCAST_P99_NS,
        "broadcast p99 {}ns over ceiling",
        outcome.broadcast.p99
    );

    let snap = registry.snapshot();
    let mut json = String::from("{\n  \"experiment\": \"load_rig\",\n");
    let _ = writeln!(json, "  \"members\": {},", outcome.members);
    let _ = writeln!(json, "  \"waves\": {},", outcome.waves);
    let _ = writeln!(json, "  \"churn\": {},", outcome.churn);
    let _ = writeln!(json, "  \"wall_ns\": {},", wall.as_nanos());
    let _ = writeln!(json, "  \"leader_threads\": {},", outcome.leader_threads);
    let _ = writeln!(json, "  \"swarm_threads\": {},", outcome.swarm_threads);
    for (name, s) in [
        ("join", &outcome.join),
        ("broadcast", &outcome.broadcast),
        ("rekey", &outcome.rekey),
        ("rejoin", &outcome.rejoin),
    ] {
        let _ = writeln!(json, "  \"{name}\": {{");
        let _ = writeln!(json, "    \"count\": {},", s.count);
        let _ = writeln!(json, "    \"min_ns\": {},", s.min);
        let _ = writeln!(json, "    \"p50_ns\": {},", s.p50);
        let _ = writeln!(json, "    \"p99_ns\": {},", s.p99);
        let _ = writeln!(json, "    \"p999_ns\": {},", s.p999);
        let _ = writeln!(json, "    \"max_ns\": {}", s.max);
        let _ = writeln!(json, "  }},");
    }
    let _ = writeln!(
        json,
        "  \"loop_frames_in\": {},",
        snap.counter("net.loop.frames_in")
    );
    let _ = writeln!(
        json,
        "  \"loop_frames_out\": {},",
        snap.counter("net.loop.frames_out")
    );
    let _ = writeln!(
        json,
        "  \"loop_partial_writes\": {},",
        snap.counter("net.loop.partial_writes")
    );
    let _ = writeln!(
        json,
        "  \"gate\": \"enforced (threads < {LOAD_MAX_THREADS}, join p99 < {}s, broadcast p99 < {}s)\"",
        LOAD_MAX_JOIN_P99_NS / 1_000_000_000,
        LOAD_MAX_BROADCAST_P99_NS / 1_000_000_000
    );
    json.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_load.json");
    std::fs::write(path, json).expect("write BENCH_load.json");
    println!("  all load gates passed; wrote BENCH_load.json");
}

/// Hard ceiling for the recovery-rig gate: the whole journal replay —
/// every stream decoded, verified, re-executed, and re-registered — must
/// finish inside this budget. Deliberately loose for the same reason as
/// the load gates: it catches wedges and quadratic blowups across CI
/// hosts, not micro-regressions.
const RECOVERY_MAX_WALL_NS: u128 = 120_000_000_000;

/// Members journaled into every recovery-rig group.
const RECOVERY_MEMBERS: usize = 3;

fn run_recovery() {
    use enclaves_bench::{leader_id, member_id, member_key, pump, settle};
    use enclaves_core::config::{LeaderConfig, RekeyPolicy};
    use enclaves_core::directory::Directory;
    use enclaves_core::journal::{genesis_for, label_for, JournalDir};
    use enclaves_core::protocol::{LeaderCore, MemberSession};
    use enclaves_core::runtime::{LeaderService, ServiceConfig};
    use enclaves_crypto::rng::SeededRng;
    use enclaves_net::sim::{SimConfig, SimNet};
    use enclaves_wire::GroupId;

    let groups: usize = flag_value("--recovery-groups")
        .map(|v| v.parse().expect("--recovery-groups takes a number"))
        .unwrap_or(1000);

    println!("-- Recovery rig: sealed-journal replay at scale (row S17) ------");
    println!();
    println!(
        "  {groups} enclaves x {RECOVERY_MEMBERS} members, every transition journaled, \
         then one cold restart"
    );

    let dir = std::env::temp_dir().join(format!("enclaves-bench-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create recovery dir");
    let journal = JournalDir::open_or_init(&dir).expect("init journal dir");

    // Build phase: one journaled core per enclave, driven through real
    // handshakes so every stream holds genesis + N joins + a rekey.
    let build_start = Instant::now();
    let mut built_epochs = vec![0u64; groups];
    for (g, built_epoch) in built_epochs.iter_mut().enumerate() {
        let tag = GroupId::new(format!("g{g}")).expect("generated tag");
        let mut directory = Directory::new();
        for i in 0..RECOVERY_MEMBERS {
            directory.register_key(&member_id(i), member_key(i));
        }
        let config = LeaderConfig {
            rekey_policy: RekeyPolicy::OnJoinAndLeave,
            group: Some(tag.clone()),
            ..LeaderConfig::default()
        };
        let label = label_for(Some(&tag));
        let genesis = genesis_for(&leader_id(), &directory, &config);
        let writer = journal
            .create_stream(&label, &genesis)
            .expect("fresh stream");
        let mut leader = LeaderCore::with_rng(
            leader_id(),
            directory,
            config,
            Box::new(SeededRng::from_seed(g as u64)),
        );
        leader.attach_journal(writer);
        let mut members = Vec::new();
        for i in 0..RECOVERY_MEMBERS {
            let (session, init) = MemberSession::start_with_key_in_group(
                member_id(i),
                leader_id(),
                member_key(i),
                Box::new(SeededRng::from_seed((g * RECOVERY_MEMBERS + i) as u64)),
                Some(tag.clone()),
            );
            members.push(session);
            pump(&mut leader, &mut members, init);
        }
        let out = leader.rekey_now().expect("populated group rekeys");
        settle(&mut leader, &mut members, out.outgoing);
        *built_epoch = leader.epoch().expect("epoch established");
    }
    let build_wall = build_start.elapsed();

    // The measured restart: one cold `open_with_journal` over every
    // stream the dead service left behind.
    let net = SimNet::new(SimConfig::default());
    let listener = net.listen("recovery-leader").expect("fresh sim net");
    let start = Instant::now();
    let (service, report) =
        LeaderService::open_with_journal(Box::new(listener), &dir, ServiceConfig::default())
            .expect("journal directory replays");
    let recover_wall = start.elapsed();

    let records_per_group = (1 + RECOVERY_MEMBERS + 1) as u64; // genesis + joins + rekey
    println!();
    println!(
        "  build {:>9.1}ms   replay {:>9.1}ms   {:.3}ms/group   {} records",
        build_wall.as_secs_f64() * 1e3,
        recover_wall.as_secs_f64() * 1e3,
        recover_wall.as_secs_f64() * 1e3 / groups.max(1) as f64,
        records_per_group * groups as u64,
    );

    assert!(
        report.failed.is_empty(),
        "no stream may fail replay: {:?}",
        report.failed.iter().map(|f| &f.stream).collect::<Vec<_>>()
    );
    assert_eq!(report.recovered.len(), groups, "every enclave recovers");
    for recovered in &report.recovered {
        let g: usize = recovered
            .group
            .as_ref()
            .and_then(|t| t.as_str().strip_prefix('g'))
            .and_then(|n| n.parse().ok())
            .expect("recovered tag names a built group");
        assert_eq!(recovered.members, RECOVERY_MEMBERS, "roster rebuilt");
        assert_eq!(recovered.records, records_per_group, "full stream replayed");
        assert!(recovered.fenced, "the rekeys left a fence");
        let epoch = recovered.epoch.expect("epoch recovered");
        assert!(
            epoch > built_epochs[g],
            "group g{g} must recover strictly past its pre-shutdown epoch \
             ({epoch} vs {})",
            built_epochs[g]
        );
    }
    let snap = service.snapshot();
    assert_eq!(snap.counter("recovery.groups_ok"), groups as u64);
    assert_eq!(snap.counter("recovery.groups_failed"), 0);
    assert_eq!(
        snap.counter("recovery.records_replayed"),
        records_per_group * groups as u64
    );
    assert!(
        recover_wall.as_nanos() < RECOVERY_MAX_WALL_NS,
        "replay wall {}ns over the {}s ceiling",
        recover_wall.as_nanos(),
        RECOVERY_MAX_WALL_NS / 1_000_000_000
    );
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let mut json = String::from("{\n  \"experiment\": \"recovery_rig\",\n");
    let _ = writeln!(json, "  \"groups\": {groups},");
    let _ = writeln!(json, "  \"members_per_group\": {RECOVERY_MEMBERS},");
    let _ = writeln!(
        json,
        "  \"records_replayed\": {},",
        records_per_group * groups as u64
    );
    let _ = writeln!(json, "  \"build_wall_ns\": {},", build_wall.as_nanos());
    let _ = writeln!(json, "  \"replay_wall_ns\": {},", recover_wall.as_nanos());
    let _ = writeln!(
        json,
        "  \"replay_ns_per_group\": {},",
        recover_wall.as_nanos() / groups.max(1) as u128
    );
    let _ = writeln!(
        json,
        "  \"gate\": \"enforced (all {groups} groups recovered, epochs strictly \
         advanced, wall < {}s)\"",
        RECOVERY_MAX_WALL_NS / 1_000_000_000
    );
    json.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recovery.json");
    std::fs::write(path, json).expect("write BENCH_recovery.json");
    println!("  all recovery gates passed; wrote BENCH_recovery.json");
}

fn main() {
    // Internal: this process is a swarm child spawned by `--load`. Stdio
    // belongs to the rig protocol, so print nothing and exit on result.
    if std::env::args().any(|a| a == "--load-swarm") {
        let mut coord = enclaves_load_test::StdioCoordinator;
        if let Err(e) = enclaves_load_test::run_swarm(&mut coord) {
            eprintln!("swarm child failed: {e}");
            std::process::exit(1);
        }
        return;
    }
    if std::env::args().any(|a| a == "--load") {
        run_load();
        return;
    }
    if std::env::args().any(|a| a == "--recovery") {
        run_recovery();
        return;
    }
    if std::env::args().any(|a| a == "--fanout") {
        run_fanout();
        return;
    }
    if std::env::args().any(|a| a == "--rekey") {
        run_rekey();
        return;
    }
    if std::env::args().any(|a| a == "--multigroup") {
        run_multigroup();
        return;
    }
    let deep = std::env::args().any(|a| a == "--deep");
    let bounds = if deep {
        Bounds {
            max_events: 11,
            max_states: 5_000_000,
        }
    } else {
        Bounds {
            max_events: 9,
            max_states: 500_000,
        }
    };

    println!("================================================================");
    println!(" Enclaves reproduction report (DSN 2001)");
    println!("================================================================");
    println!();
    println!("-- Verification suite (Section 5, bounded model checking) ------");
    println!(
        "   bounds: max_events={} max_states={}",
        bounds.max_events, bounds.max_states
    );
    println!();
    let start = std::time::Instant::now();
    let mut results = runner::run_full_suite(bounds);
    if deep {
        results.push(runner::verify_improved_parallel(
            enclaves_model::system::Scenario::tight(),
            enclaves_model::explore::Bounds {
                max_events: bounds.max_events + 1,
                max_states: bounds.max_states,
            },
            0,
        ));
    }
    for r in &results {
        println!("  {r}");
    }
    let all_passed = results.iter().all(|r| r.passed);
    println!();
    println!(
        "  verification suite: {} in {:.1?}",
        if all_passed { "ALL PASS" } else { "FAILURES" },
        start.elapsed()
    );
    println!();

    println!("-- Attack matrix (Section 2.3, byte-level implementations) -----");
    println!();
    println!(
        "  {:4} {:38} {:9} {:10}",
        "id", "attack", "legacy", "improved"
    );
    let reports = attacks::run_all();
    for pair in reports.chunks(2) {
        let legacy = &pair[0];
        let improved = &pair[1];
        println!(
            "  {:4} {:38} {:9} {:10}",
            legacy.id,
            legacy.name,
            if legacy.succeeded { "BROKEN" } else { "held" },
            if improved.succeeded {
                "BROKEN"
            } else {
                "resists"
            },
        );
    }
    let matrix_ok = reports.iter().all(|r| match r.against {
        attacks::ProtocolKind::Legacy => r.succeeded,
        attacks::ProtocolKind::Improved => !r.succeeded,
    });
    println!();
    println!(
        "  attack matrix: {}",
        if matrix_ok {
            "matches the paper (legacy broken, improved resists)"
        } else {
            "MISMATCH with the paper"
        }
    );
    println!();
    println!("================================================================");
    if !(all_passed && matrix_ok) {
        std::process::exit(1);
    }
}
