//! 10k-member real-socket load-test rig for the enclaves leader service.
//!
//! The rig runs as **two processes** so neither side's file-descriptor
//! budget is shared with the other: a *leader* process hosting one
//! [`LeaderService`] on the readiness-loop ([`MuxNet`]) backend, and a
//! *swarm* process driving thousands of virtual members — each a real
//! sans-io [`MemberSession`] on its own real TCP connection, multiplexed
//! through the swarm's own readiness loop so the member count never shows
//! up in the thread count.
//!
//! The two processes speak a tiny line protocol over stdio (abstracted as
//! [`Coordinator`] so the whole rig also runs in-process for tests):
//!
//! ```text
//! L -> S   hello <addr> <members> <waves> <churn> <payload_len> <shards>
//! S -> L   ready                      (all members joined)
//! S -> L   wave done                  (once per broadcast wave, counted)
//! L -> S   rekey <t0_unix_ns>
//! S -> L   armed                      (t0 recorded; safe to rekey)
//! S -> L   rekey done                 (every member saw the new epoch)
//! L -> S   churn <k>
//! S -> L   left                       (k leave envelopes sent + closed)
//! L -> S   rejoin                     (leader roster drained; admit cohort)
//! S -> L   churn done                 (k churn members welcomed)
//! L -> S   report
//! S -> L   stat <phase> <count> <min> <p50> <p99> <p999> <max>   (x4)
//! S -> L   threads <n>
//! S -> L   done
//! L -> S   exit
//! ```
//!
//! The explicit `left` / `rejoin` barrier exists because the wire format
//! bounds `Welcome` rosters at 10 000 entries: at the 10k design point the
//! churn cohort may only join after the leavers have actually left the
//! roster.
//!
//! Latency clocks: join/rejoin latencies are swarm-local (`Instant` from
//! session start to `Welcomed`); broadcast latencies ride in-band (the
//! payload's first 8 bytes are the send time as big-endian unix
//! nanoseconds); rekey latency uses the `rekey <t0>` control line, armed
//! *before* the leader rotates so no `KeyDist` can outrun its epoch.
//! Cross-process clocks are both `SystemTime` on the same host.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use enclaves_core::config::{LeaderConfig, RekeyPolicy};
use enclaves_core::directory::Directory;
use enclaves_core::liveness::LivenessConfig;
use enclaves_core::protocol::{MemberEvent, MemberSession};
use enclaves_core::runtime::{LeaderService, ServiceConfig};
use enclaves_crypto::keys::LongTermKey;
use enclaves_crypto::rng::OsEntropyRng;
use enclaves_net::{MuxConfig, MuxEvent, MuxNet, MuxOverflow, MuxToken};
use enclaves_obs::Registry;
use enclaves_wire::codec::{decode, encode};
use enclaves_wire::message::Envelope;
use enclaves_wire::ActorId;

/// How long any single rig phase (join storm, wave, rekey, churn) may
/// take before the rig declares the run wedged. Generous: the 10k design
/// point moves ~400 MB of welcome rosters through one core.
const PHASE_DEADLINE: Duration = Duration::from_secs(600);

/// Poll cadence for "wait until counter reaches N" loops.
const POLL: Duration = Duration::from_millis(2);

/// How long a broadcast wave may stall before the swarm asks the leader
/// to re-send the wave payload (same t0; members dedup, so re-sends are
/// idempotent).
const WAVE_RESEND_ASK: Duration = Duration::from_secs(5);

// ---------------------------------------------------------------------------
// Identity and key helpers
// ---------------------------------------------------------------------------

/// Actor id for initial swarm member `i` (`m00042`-style, zero-padded so
/// logs sort).
///
/// # Panics
///
/// Never for reasonable `i` (the generated name is always a valid id).
#[must_use]
pub fn swarm_member_id(i: usize) -> ActorId {
    ActorId::new(format!("m{i:05}")).expect("valid member id")
}

/// Actor id for churn-cohort member `i`.
///
/// # Panics
///
/// Never for reasonable `i`.
#[must_use]
pub fn churn_member_id(i: usize) -> ActorId {
    ActorId::new(format!("c{i:05}")).expect("valid churn id")
}

/// Deterministic cheap long-term key for key-slot `i` — no PBKDF2, which
/// would dominate a 10k join storm by orders of magnitude. Churn members
/// use slots offset by [`CHURN_KEY_BASE`] so the cohorts never collide.
#[must_use]
pub fn cheap_key(i: usize) -> LongTermKey {
    let mut bytes = [0x5Au8; 32];
    bytes[..8].copy_from_slice(&(i as u64).to_le_bytes());
    LongTermKey::from_bytes(bytes)
}

/// Key-slot offset for the churn cohort.
pub const CHURN_KEY_BASE: usize = 1 << 20;

/// The leader id used by the rig.
///
/// # Panics
///
/// Never (the name is statically valid).
#[must_use]
pub fn leader_id() -> ActorId {
    ActorId::new("leader").expect("valid leader id")
}

fn unix_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
}

fn bad(context: &str, e: impl std::fmt::Display) -> io::Error {
    io::Error::other(format!("{context}: {e}"))
}

/// Live thread count of the calling process, from `/proc/self/status`
/// (`0` if the file is unavailable, e.g. off Linux).
#[must_use]
pub fn process_threads() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Latency summaries
// ---------------------------------------------------------------------------

/// Nearest-rank latency summary over a sample set, in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Minimum.
    pub min: u64,
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Maximum.
    pub max: u64,
}

impl Summary {
    /// Builds a summary from raw samples (sorted internally). Empty input
    /// yields the all-zero summary.
    #[must_use]
    pub fn from_samples(mut samples: Vec<u64>) -> Summary {
        if samples.is_empty() {
            return Summary::default();
        }
        samples.sort_unstable();
        let n = samples.len();
        // Nearest-rank: ceil(q * n) as a 1-based rank.
        let rank = |num: usize, den: usize| samples[((n * num).div_ceil(den)).clamp(1, n) - 1];
        Summary {
            count: n,
            min: samples[0],
            p50: rank(1, 2),
            p99: rank(99, 100),
            p999: rank(999, 1000),
            max: samples[n - 1],
        }
    }

    /// Renders the wire form used by the rig's `stat` lines.
    #[must_use]
    pub fn to_line(&self, phase: &str) -> String {
        format!(
            "stat {phase} {} {} {} {} {} {}",
            self.count, self.min, self.p50, self.p99, self.p999, self.max
        )
    }

    /// Parses the payload of a `stat` line (the tokens after the phase
    /// name).
    ///
    /// # Errors
    ///
    /// [`io::Error`] if any field is missing or non-numeric.
    pub fn parse_fields(fields: &[&str]) -> io::Result<Summary> {
        if fields.len() != 6 {
            return Err(bad(
                "stat line",
                format!("want 6 fields, got {}", fields.len()),
            ));
        }
        let num = |s: &str| s.parse::<u64>().map_err(|e| bad("stat field", e));
        Ok(Summary {
            count: usize::try_from(num(fields[0])?).unwrap_or(usize::MAX),
            min: num(fields[1])?,
            p50: num(fields[2])?,
            p99: num(fields[3])?,
            p999: num(fields[4])?,
            max: num(fields[5])?,
        })
    }
}

// ---------------------------------------------------------------------------
// Coordinator: the leader<->swarm control channel
// ---------------------------------------------------------------------------

/// Line-oriented control channel between the leader and swarm halves of
/// the rig. Implementations: in-process channels (tests), stdio (the
/// swarm child), a child process's pipes (the leader parent).
pub trait Coordinator {
    /// Sends one line (no trailing newline).
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the peer is gone.
    fn send_line(&mut self, line: &str) -> io::Result<()>;

    /// Receives one line, blocking up to the rig's phase deadline.
    ///
    /// # Errors
    ///
    /// [`io::Error`] on EOF, disconnect, or deadline.
    fn recv_line(&mut self) -> io::Result<String>;
}

/// In-process [`Coordinator`]: a crossbeam channel pair, for running both
/// rig halves inside one test process.
#[derive(Debug)]
pub struct ChannelCoordinator {
    tx: Sender<String>,
    rx: Receiver<String>,
}

impl ChannelCoordinator {
    /// Builds a connected pair; give one end to each rig half.
    #[must_use]
    pub fn pair() -> (ChannelCoordinator, ChannelCoordinator) {
        let (a_tx, a_rx) = unbounded();
        let (b_tx, b_rx) = unbounded();
        (
            ChannelCoordinator { tx: a_tx, rx: b_rx },
            ChannelCoordinator { tx: b_tx, rx: a_rx },
        )
    }
}

impl Coordinator for ChannelCoordinator {
    fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.tx
            .send(line.to_string())
            .map_err(|_| bad("coordinator send", "peer hung up"))
    }

    fn recv_line(&mut self) -> io::Result<String> {
        self.rx
            .recv_timeout(PHASE_DEADLINE)
            .map_err(|e| bad("coordinator recv", format!("{e:?}")))
    }
}

/// Stdio [`Coordinator`] for the swarm child process: reads commands from
/// stdin, writes replies to stdout.
#[derive(Debug, Default)]
pub struct StdioCoordinator;

impl Coordinator for StdioCoordinator {
    fn send_line(&mut self, line: &str) -> io::Result<()> {
        let mut out = io::stdout().lock();
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
        out.flush()
    }

    fn recv_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if io::stdin().lock().read_line(&mut line)? == 0 {
            return Err(bad("coordinator recv", "stdin closed"));
        }
        Ok(line.trim_end().to_string())
    }
}

/// Parent-side [`Coordinator`] wrapping a spawned swarm child's pipes.
/// Kills the child on drop so a wedged run cannot leak a 10k-socket
/// process.
#[derive(Debug)]
pub struct ProcessCoordinator {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl ProcessCoordinator {
    /// Spawns `cmd` with piped stdio and wraps its pipes.
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the spawn fails.
    pub fn spawn(cmd: &mut Command) -> io::Result<ProcessCoordinator> {
        let mut child = cmd.stdin(Stdio::piped()).stdout(Stdio::piped()).spawn()?;
        let stdin = child.stdin.take().ok_or_else(|| bad("spawn", "no stdin"))?;
        let stdout = child
            .stdout
            .take()
            .map(BufReader::new)
            .ok_or_else(|| bad("spawn", "no stdout"))?;
        Ok(ProcessCoordinator {
            child,
            stdin,
            stdout,
        })
    }
}

impl Coordinator for ProcessCoordinator {
    fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.stdin.write_all(line.as_bytes())?;
        self.stdin.write_all(b"\n")?;
        self.stdin.flush()
    }

    fn recv_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.stdout.read_line(&mut line)? == 0 {
            return Err(bad("coordinator recv", "swarm child closed stdout"));
        }
        Ok(line.trim_end().to_string())
    }
}

impl Drop for ProcessCoordinator {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

// ---------------------------------------------------------------------------
// Rig configuration and outcome
// ---------------------------------------------------------------------------

/// Load-rig shape.
#[derive(Clone, Copy, Debug)]
pub struct LoadConfig {
    /// Initial member count (the join storm).
    pub members: usize,
    /// Broadcast waves after the join storm.
    pub waves: usize,
    /// Churn size: `churn` members leave, a fresh cohort of `churn` joins.
    pub churn: usize,
    /// Broadcast payload length in bytes (min 8; the timestamp rides in
    /// the first 8).
    pub payload_len: usize,
    /// Event shards on each side (leader service shards and swarm worker
    /// threads).
    pub shards: usize,
}

impl Default for LoadConfig {
    /// The 10k design point from the issue: 10 000 members, 5 broadcast
    /// waves, 100-member churn, 256-byte payloads, 4 shards.
    fn default() -> Self {
        LoadConfig {
            members: 10_000,
            waves: 5,
            churn: 100,
            payload_len: 256,
            shards: 4,
        }
    }
}

/// What a rig run measured.
#[derive(Clone, Copy, Debug)]
pub struct LoadOutcome {
    /// Join-storm latency (session start to `Welcomed`), swarm-side clock.
    pub join: Summary,
    /// Broadcast delivery latency (leader seal to member decrypt).
    pub broadcast: Summary,
    /// Rekey propagation latency (leader rotate to member epoch switch).
    pub rekey: Summary,
    /// Churn-cohort join latency.
    pub rejoin: Summary,
    /// Leader-process thread count at end of run.
    pub leader_threads: u64,
    /// Swarm-process thread count at end of run.
    pub swarm_threads: u64,
    /// Config echo: members driven.
    pub members: usize,
    /// Config echo: broadcast waves.
    pub waves: usize,
    /// Config echo: churn size.
    pub churn: usize,
}

// ---------------------------------------------------------------------------
// Leader half
// ---------------------------------------------------------------------------

/// Runs the leader half of the rig: hosts one [`LeaderService`] on the
/// readiness-loop backend, drives the phase protocol over `coord`, and
/// collects the swarm's measurements. Loop metrics land in `registry`
/// (`net.loop.*` from the mux, `load.*` gauges from the rig).
///
/// # Errors
///
/// [`io::Error`] if the swarm disconnects, a phase deadline passes, or
/// the protocol desynchronizes.
///
/// # Panics
///
/// Never for valid configs (group registration cannot collide — the
/// service is freshly spawned).
pub fn run_leader(
    cfg: &LoadConfig,
    registry: &Registry,
    coord: &mut dyn Coordinator,
) -> io::Result<LoadOutcome> {
    // Overflow policy: DropNewest, not the default Disconnect. Late in a
    // 10k join storm a Welcome carries a multi-thousand-member roster
    // (~100KB sealed) and thousands are outstanding at once on one CPU;
    // under the Disconnect policy the ARQ's re-enqueued retransmits blow
    // the per-conn cap and sever exactly the members slowest to ack —
    // a rejoin cascade. Shedding a retransmit is harmless (the ARQ
    // resends it); data-plane wave frames are a few hundred bytes and
    // never queue behind anything once joins settle.
    let net = MuxNet::spawn_with_registry(
        MuxConfig {
            overflow: MuxOverflow::DropNewest,
            ..MuxConfig::default()
        },
        registry,
    );
    let endpoint = net
        .listen_events("127.0.0.1:0".parse().expect("literal addr"), cfg.shards)
        .map_err(|e| bad("listen", e))?;
    let addr = endpoint.local_addr();
    let service = LeaderService::spawn_mux(endpoint, ServiceConfig::default());

    let mut directory = Directory::new();
    for i in 0..cfg.members {
        directory.register_key(&swarm_member_id(i), cheap_key(i));
    }
    for i in 0..cfg.churn {
        directory.register_key(&churn_member_id(i), cheap_key(CHURN_KEY_BASE + i));
    }
    let handle = service
        .add_group(
            leader_id(),
            directory,
            LeaderConfig {
                rekey_policy: RekeyPolicy::Manual,
                max_members: cfg.members + cfg.churn + 16,
                membership_notices: false,
                // The historical flat 400ms retry-forever cadence melts
                // down at 10k: with thousands of un-acked Welcomes in
                // flight, re-enqueueing every cached frame every 400ms is
                // hundreds of MB/s of queue pressure. Exponential backoff
                // (0.5s..16s, jittered) keeps the retransmit load
                // proportional to what the swarm can actually drain.
                liveness: LivenessConfig {
                    retransmit_base: Duration::from_millis(500),
                    retransmit_max: Duration::from_secs(16),
                    jitter_pct: 20,
                    jitter_seed: 0x10ad,
                    ..LivenessConfig::default()
                },
                ..LeaderConfig::default()
            },
        )
        .map_err(|e| bad("add group", e))?;

    coord.send_line(&format!(
        "hello {addr} {} {} {} {} {}",
        cfg.members, cfg.waves, cfg.churn, cfg.payload_len, cfg.shards
    ))?;
    expect(coord, "ready")?;

    // Let the transport drain the join storm's admin tail (welcome
    // retransmits are ~100KB at 10k and queue ahead of everything) before
    // measuring the data plane: a wave frame shed behind a lingering
    // welcome inflates broadcast p99 by whole re-ask periods.
    let deadline = Instant::now() + PHASE_DEADLINE;
    while registry.snapshot().gauge("net.loop.queued_bytes") > 0 {
        if Instant::now() > deadline {
            return Err(bad("post-join drain", "outbound queues never drained"));
        }
        std::thread::sleep(Duration::from_millis(25));
    }

    // Broadcast waves: the timestamp rides in-band, the swarm acks each
    // wave once every member decrypted it. A stalled swarm asks "again"
    // and the leader re-sends the identical payload (same t0) to fill
    // delivery holes — members dedup by t0, so latency is still measured
    // from the wave's original send.
    for _ in 0..cfg.waves {
        let mut payload = vec![0u8; cfg.payload_len.max(8)];
        payload[..8].copy_from_slice(&unix_ns().to_be_bytes());
        handle
            .broadcast_data(&payload)
            .map_err(|e| bad("broadcast", e))?;
        loop {
            let line = coord.recv_line()?;
            match line.trim() {
                "wave done" => break,
                "again" => {
                    handle
                        .broadcast_data(&payload)
                        .map_err(|e| bad("broadcast resend", e))?;
                }
                other => return Err(bad("wave", format!("expected wave done, got {other}"))),
            }
        }
    }

    // Rekey: arm the swarm's clock first so no KeyDist can outrun its t0.
    coord.send_line(&format!("rekey {}", unix_ns()))?;
    expect(coord, "armed")?;
    handle.rekey().map_err(|e| bad("rekey", e))?;
    expect(coord, "rekey done")?;

    // Churn: leavers must drain from the roster before the cohort joins
    // (the wire bounds Welcome rosters at 10k entries).
    coord.send_line(&format!("churn {}", cfg.churn))?;
    expect(coord, "left")?;
    let deadline = Instant::now() + PHASE_DEADLINE;
    while handle.roster().len() > cfg.members - cfg.churn {
        if Instant::now() > deadline {
            return Err(bad("churn", "leavers never drained from roster"));
        }
        std::thread::sleep(POLL);
    }
    coord.send_line("rejoin")?;
    expect(coord, "churn done")?;

    // Collect the swarm's measurements.
    coord.send_line("report")?;
    let mut outcome = LoadOutcome {
        join: Summary::default(),
        broadcast: Summary::default(),
        rekey: Summary::default(),
        rejoin: Summary::default(),
        leader_threads: 0,
        swarm_threads: 0,
        members: cfg.members,
        waves: cfg.waves,
        churn: cfg.churn,
    };
    loop {
        let line = coord.recv_line()?;
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            ["done"] => break,
            ["threads", n] => {
                outcome.swarm_threads = n.parse().map_err(|e| bad("threads line", e))?;
            }
            ["stat", phase, rest @ ..] => {
                let summary = Summary::parse_fields(rest)?;
                match *phase {
                    "join" => outcome.join = summary,
                    "broadcast" => outcome.broadcast = summary,
                    "rekey" => outcome.rekey = summary,
                    "rejoin" => outcome.rejoin = summary,
                    other => return Err(bad("stat line", format!("unknown phase {other}"))),
                }
            }
            _ => return Err(bad("report", format!("unexpected line: {line}"))),
        }
    }
    outcome.leader_threads = process_threads();
    coord.send_line("exit")?;

    // Publish the headline numbers as gauges so obs snapshots (and the
    // CI artifact) carry them alongside the net.loop.* counters.
    let set = |name: &str, v: u64| {
        registry
            .gauge(name)
            .set(i64::try_from(v).unwrap_or(i64::MAX));
    };
    set("load.members", outcome.members as u64);
    set("load.leader_threads", outcome.leader_threads);
    set("load.swarm_threads", outcome.swarm_threads);
    set("load.join_p99_ns", outcome.join.p99);
    set("load.broadcast_p99_ns", outcome.broadcast.p99);
    set("load.rekey_p99_ns", outcome.rekey.p99);

    service.shutdown();
    net.shutdown();
    Ok(outcome)
}

fn expect(coord: &mut dyn Coordinator, want: &str) -> io::Result<()> {
    let got = coord.recv_line()?;
    if got != want {
        return Err(bad("protocol", format!("expected {want:?}, got {got:?}")));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Swarm half
// ---------------------------------------------------------------------------

/// Counters and sample sinks shared by the swarm's shard workers.
#[derive(Default)]
struct SwarmState {
    /// Total mux events processed by shard workers — a quiescence probe:
    /// when this stops moving, the storm's backlog (duplicate
    /// challenges, welcome retransmits) has fully drained.
    events: AtomicUsize,
    joined: AtomicUsize,
    rejoined: AtomicUsize,
    broadcasts: AtomicUsize,
    rekeys: AtomicUsize,
    /// Armed by the control thread before the leader rotates; `0` means
    /// "no rekey in flight" and suppresses sample recording.
    rekey_t0: AtomicU64,
    join_lat: Mutex<Vec<u64>>,
    rejoin_lat: Mutex<Vec<u64>>,
    bcast_lat: Mutex<Vec<u64>>,
    rekey_lat: Mutex<Vec<u64>>,
}

/// One virtual member: a sans-io session plus its measurement anchors.
struct VMember {
    session: MemberSession,
    started: Instant,
    /// Cohort index (original member or churn slot), for self-healing.
    index: usize,
    churn: bool,
    welcomed: bool,
    /// Last handshake (re)send, so the sweep retransmits at most once
    /// per `RETRANSMIT_AFTER` — not once per 5s sweep, which at storm
    /// scale would amplify thousands of duplicate inits into the leader.
    last_sent: Instant,
    /// t0 stamps of waves already counted, so leader re-sends (hole
    /// filling) are idempotent. At most `waves` entries.
    seen_waves: Vec<u64>,
}

/// Commands from the swarm control thread to a shard worker.
enum ShardCmd {
    /// Leave the given original-member indices (phase 1 of churn).
    Leave(Vec<usize>),
    /// Join the given churn-cohort indices (phase 2 of churn).
    Join(Vec<usize>),
    Stop,
}

/// Runs the swarm half of the rig: reads the `hello` line from `coord`,
/// drives the configured number of virtual members through the
/// join/broadcast/rekey/churn phases, and reports latency summaries back.
///
/// # Errors
///
/// [`io::Error`] if the leader disconnects, a phase deadline passes, or
/// the protocol desynchronizes.
pub fn run_swarm(coord: &mut dyn Coordinator) -> io::Result<()> {
    let hello = coord.recv_line()?;
    let fields: Vec<&str> = hello.split_whitespace().collect();
    let [cmd, addr, members, waves, churn, payload_len, shards] = fields.as_slice() else {
        return Err(bad("hello", format!("malformed: {hello}")));
    };
    if *cmd != "hello" {
        return Err(bad("hello", format!("expected hello, got {cmd}")));
    }
    let addr: SocketAddr = addr.parse().map_err(|e| bad("hello addr", e))?;
    let parse = |s: &str| s.parse::<usize>().map_err(|e| bad("hello field", e));
    let (members, waves, churn) = (parse(members)?, parse(waves)?, parse(churn)?);
    let (_payload_len, shards) = (parse(payload_len)?, parse(shards)?.max(1));

    let net = MuxNet::spawn(MuxConfig::default());
    let state = Arc::new(SwarmState::default());
    let mut workers = Vec::new();
    let mut ctl_txs = Vec::new();
    for s in 0..shards {
        let (ctl_tx, ctl_rx) = unbounded();
        let idx: Vec<usize> = (s..members).step_by(shards).collect();
        let (w_net, w_state) = (net.clone(), Arc::clone(&state));
        let handle = std::thread::Builder::new()
            .name(format!("swarm-shard-{s}"))
            .spawn(move || shard_worker(&w_net, addr, &idx, &ctl_rx, &w_state))
            .map_err(|e| bad("spawn shard", e))?;
        workers.push(handle);
        ctl_txs.push(ctl_tx);
    }

    let _ = churn;
    let result = drive_swarm(coord, &state, &ctl_txs, members, waves, shards);

    for ctl in &ctl_txs {
        let _ = ctl.send(ShardCmd::Stop);
    }
    for w in workers {
        let _ = w.join();
    }
    net.shutdown();
    result
}

/// The swarm control loop: phases in lockstep with [`run_leader`].
fn drive_swarm(
    coord: &mut dyn Coordinator,
    state: &SwarmState,
    ctl_txs: &[Sender<ShardCmd>],
    members: usize,
    waves: usize,
    shards: usize,
) -> io::Result<()> {
    // Join storm.
    wait_for(&state.joined, members, "join storm")?;
    // Quiesce before declaring ready: the storm's tail leaves shard
    // channels full of duplicate challenges and welcome retransmits, and
    // a wave-1 frame queued behind that backlog would measure the
    // storm's hangover, not broadcast delivery. Wait until the shard
    // workers stop processing events for half a second.
    let deadline = Instant::now() + PHASE_DEADLINE;
    loop {
        let seen = state.events.load(Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(500));
        if state.events.load(Ordering::SeqCst) == seen {
            break;
        }
        if Instant::now() > deadline {
            return Err(bad("post-join quiesce", "event backlog never drained"));
        }
    }
    coord.send_line("ready")?;

    // Broadcast waves arrive unannounced; ack each one. Data-plane
    // frames have no ARQ, so a wave can wedge if a member misses its
    // frame (shed under backpressure, or a self-healed rejoin mid-wave):
    // after a stall, ask the leader to re-send the identical payload —
    // members dedup counted waves by the in-band t0, so re-sends only
    // ever fill holes.
    for w in 1..=waves {
        let target = members * w;
        let deadline = Instant::now() + PHASE_DEADLINE;
        let mut last_ask = Instant::now();
        while state.broadcasts.load(Ordering::SeqCst) < target {
            if Instant::now() > deadline {
                return Err(bad(
                    "broadcast wave",
                    format!(
                        "deadline: {}/{target}",
                        state.broadcasts.load(Ordering::SeqCst)
                    ),
                ));
            }
            if last_ask.elapsed() >= WAVE_RESEND_ASK {
                coord.send_line("again")?;
                last_ask = Instant::now();
            }
            std::thread::sleep(POLL);
        }
        coord.send_line("wave done")?;
    }

    // Rekey.
    let line = coord.recv_line()?;
    let t0 = line
        .strip_prefix("rekey ")
        .and_then(|t| t.parse::<u64>().ok())
        .ok_or_else(|| bad("protocol", format!("expected rekey <t0>, got {line}")))?;
    state.rekey_t0.store(t0, Ordering::SeqCst);
    coord.send_line("armed")?;
    wait_for(&state.rekeys, members, "rekey propagation")?;
    state.rekey_t0.store(0, Ordering::SeqCst);
    coord.send_line("rekey done")?;

    // Churn: leave phase, roster barrier (leader side), join phase.
    let line = coord.recv_line()?;
    let k = line
        .strip_prefix("churn ")
        .and_then(|t| t.parse::<usize>().ok())
        .ok_or_else(|| bad("protocol", format!("expected churn <k>, got {line}")))?;
    for (s, ctl) in ctl_txs.iter().enumerate() {
        let leave: Vec<usize> = (s..k).step_by(shards).collect();
        let _ = ctl.send(ShardCmd::Leave(leave));
    }
    coord.send_line("left")?;
    expect(coord, "rejoin")?;
    for (s, ctl) in ctl_txs.iter().enumerate() {
        let join: Vec<usize> = (s..k).step_by(shards).collect();
        let _ = ctl.send(ShardCmd::Join(join));
    }
    wait_for(&state.rejoined, k, "churn rejoin")?;
    coord.send_line("churn done")?;

    // Report.
    expect(coord, "report")?;
    let take =
        |m: &Mutex<Vec<u64>>| Summary::from_samples(std::mem::take(&mut m.lock().expect("lock")));
    coord.send_line(&take(&state.join_lat).to_line("join"))?;
    coord.send_line(&take(&state.bcast_lat).to_line("broadcast"))?;
    coord.send_line(&take(&state.rekey_lat).to_line("rekey"))?;
    coord.send_line(&take(&state.rejoin_lat).to_line("rejoin"))?;
    coord.send_line(&format!("threads {}", process_threads()))?;
    coord.send_line("done")?;
    expect(coord, "exit")?;
    Ok(())
}

fn wait_for(counter: &AtomicUsize, target: usize, what: &str) -> io::Result<()> {
    let deadline = Instant::now() + PHASE_DEADLINE;
    while counter.load(Ordering::SeqCst) < target {
        if Instant::now() > deadline {
            return Err(bad(
                what,
                format!("deadline: {}/{target}", counter.load(Ordering::SeqCst)),
            ));
        }
        std::thread::sleep(POLL);
    }
    Ok(())
}

/// One swarm shard: owns its members' sessions, their mux connections
/// (via `connect_routed` into this shard's event channel), and turns
/// incoming frames into protocol events and latency samples.
fn shard_worker(
    net: &MuxNet,
    addr: SocketAddr,
    initial: &[usize],
    ctl_rx: &Receiver<ShardCmd>,
    state: &Arc<SwarmState>,
) {
    /// Handshakes older than this with no `Welcomed` yet get their init
    /// frame re-sent (duplicates are ARQ-tolerated by the leader). Only
    /// genuinely wedged members hit this — the join-storm tail is long,
    /// so it errs generous.
    const RETRANSMIT_AFTER: Duration = Duration::from_secs(30);
    const SWEEP_EVERY: Duration = Duration::from_secs(5);

    let (ev_tx, ev_rx) = unbounded::<MuxEvent>();
    let mut conns: HashMap<MuxToken, VMember> = HashMap::new();
    let mut by_index: HashMap<usize, MuxToken> = HashMap::new();
    for &i in initial {
        join_one(net, addr, &ev_tx, i, false, &mut conns, &mut by_index);
    }
    let mut last_sweep = Instant::now();
    loop {
        if last_sweep.elapsed() >= SWEEP_EVERY {
            last_sweep = Instant::now();
            for (&token, vm) in &mut conns {
                if !vm.welcomed && vm.last_sent.elapsed() >= RETRANSMIT_AFTER {
                    if let Some(env) = vm.session.handshake_pending() {
                        let _ = net.send_to(token, encode(env).into());
                        vm.last_sent = Instant::now();
                    }
                }
            }
        }
        while let Ok(cmd) = ctl_rx.try_recv() {
            match cmd {
                ShardCmd::Leave(indices) => {
                    for i in indices {
                        let Some(token) = by_index.remove(&i) else {
                            continue;
                        };
                        if let Some(mut vm) = conns.remove(&token) {
                            if let Ok(env) = vm.session.leave() {
                                let _ = net.send_to(token, encode(&env).into());
                            }
                            // Graceful close: the mux flushes the leave
                            // envelope before the FIN.
                            net.close(token);
                        }
                    }
                }
                ShardCmd::Join(indices) => {
                    for i in indices {
                        join_one(net, addr, &ev_tx, i, true, &mut conns, &mut by_index);
                    }
                }
                ShardCmd::Stop => return,
            }
        }
        match ev_rx.recv_timeout(POLL) {
            Ok(MuxEvent::Frame { token, frame }) => {
                state.events.fetch_add(1, Ordering::SeqCst);
                let Some(vm) = conns.get_mut(&token) else {
                    continue;
                };
                let Ok(env) = decode::<Envelope>(&frame) else {
                    continue;
                };
                let Ok(output) = vm.session.handle(&env) else {
                    continue;
                };
                if let Some(reply) = output.reply {
                    let _ = net.send_to(token, encode(&reply).into());
                }
                for event in output.events {
                    record_event(state, vm, &event);
                }
            }
            Ok(MuxEvent::Closed { token }) => {
                state.events.fetch_add(1, Ordering::SeqCst);
                // Deliberate leavers were removed from the map before
                // their close, so anything still here died unexpectedly
                // (accept backlog overrun, slow-consumer policy, reset).
                // Self-heal: rejoin as a fresh session.
                if let Some(vm) = conns.remove(&token) {
                    eprintln!(
                        "swarm: member {} (churn={}) lost its connection, rejoining",
                        vm.index, vm.churn
                    );
                    join_one(
                        net,
                        addr,
                        &ev_tx,
                        vm.index,
                        vm.churn,
                        &mut conns,
                        &mut by_index,
                    );
                }
            }
            Ok(MuxEvent::Accepted { .. }) => {}
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn join_one(
    net: &MuxNet,
    addr: SocketAddr,
    ev_tx: &Sender<MuxEvent>,
    i: usize,
    churn: bool,
    conns: &mut HashMap<MuxToken, VMember>,
    by_index: &mut HashMap<usize, MuxToken>,
) {
    let (user, key) = if churn {
        (churn_member_id(i), cheap_key(CHURN_KEY_BASE + i))
    } else {
        (swarm_member_id(i), cheap_key(i))
    };
    let (session, init) = MemberSession::start_with_key_in_group(
        user,
        leader_id(),
        key,
        Box::new(OsEntropyRng::new()),
        None,
    );
    // A 10k-connection storm can overrun the listener's accept backlog;
    // transient connect failures are expected, so retry with backoff.
    let mut attempts = 0;
    let token = loop {
        match net.connect_routed(addr, ev_tx) {
            Ok(token) => break token,
            Err(e) if attempts < 100 => {
                attempts += 1;
                std::thread::sleep(Duration::from_millis(100));
                let _ = e;
            }
            Err(e) => {
                eprintln!("swarm: giving up on member {i} (churn={churn}): {e}");
                return;
            }
        }
    };
    let _ = net.send_to(token, encode(&init).into());
    conns.insert(
        token,
        VMember {
            session,
            started: Instant::now(),
            index: i,
            churn,
            welcomed: false,
            last_sent: Instant::now(),
            seen_waves: Vec::new(),
        },
    );
    if !churn {
        by_index.insert(i, token);
    }
}

fn record_event(state: &SwarmState, vm: &mut VMember, event: &MemberEvent) {
    match event {
        MemberEvent::Welcomed { .. } => {
            vm.welcomed = true;
            let ns = u64::try_from(vm.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            if vm.churn {
                state.rejoin_lat.lock().expect("lock").push(ns);
                state.rejoined.fetch_add(1, Ordering::SeqCst);
            } else {
                state.join_lat.lock().expect("lock").push(ns);
                state.joined.fetch_add(1, Ordering::SeqCst);
            }
            // A welcome delivers the *current* group key: a member that
            // self-healed mid-rotation got the new epoch here, not via
            // GroupKeyChanged, and must still count toward propagation.
            let t0 = state.rekey_t0.load(Ordering::SeqCst);
            if t0 != 0 {
                state
                    .rekey_lat
                    .lock()
                    .expect("lock")
                    .push(unix_ns().saturating_sub(t0));
                state.rekeys.fetch_add(1, Ordering::SeqCst);
            }
        }
        MemberEvent::Broadcast { data, .. } => {
            if data.len() >= 8 {
                let mut t0_bytes = [0u8; 8];
                t0_bytes.copy_from_slice(&data[..8]);
                let t0 = u64::from_be_bytes(t0_bytes);
                if vm.seen_waves.contains(&t0) {
                    return; // leader re-send filling someone else's hole
                }
                vm.seen_waves.push(t0);
                let ns = unix_ns().saturating_sub(t0);
                state.bcast_lat.lock().expect("lock").push(ns);
            }
            state.broadcasts.fetch_add(1, Ordering::SeqCst);
        }
        MemberEvent::GroupKeyChanged { .. } => {
            let t0 = state.rekey_t0.load(Ordering::SeqCst);
            if t0 != 0 {
                state
                    .rekey_lat
                    .lock()
                    .expect("lock")
                    .push(unix_ns().saturating_sub(t0));
                state.rekeys.fetch_add(1, Ordering::SeqCst);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_nearest_rank() {
        let s = Summary::from_samples((1..=100).collect());
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p99, 99);
        assert_eq!(s.p999, 100);
        assert_eq!(s.max, 100);
        assert_eq!(Summary::from_samples(vec![]), Summary::default());
        let one = Summary::from_samples(vec![7]);
        assert_eq!(
            (one.min, one.p50, one.p99, one.p999, one.max),
            (7, 7, 7, 7, 7)
        );
    }

    #[test]
    fn summary_line_roundtrip() {
        let s = Summary {
            count: 3,
            min: 1,
            p50: 2,
            p99: 3,
            p999: 3,
            max: 3,
        };
        let line = s.to_line("join");
        let fields: Vec<&str> = line.split_whitespace().collect();
        assert_eq!(fields[0], "stat");
        assert_eq!(fields[1], "join");
        assert_eq!(Summary::parse_fields(&fields[2..]).unwrap(), s);
    }

    /// End-to-end rig over real sockets, both halves in-process. Small
    /// scale (the 10k design point runs via `report --load`), but the
    /// full protocol: join storm, waves, rekey, churn, report.
    #[test]
    fn rig_runs_end_to_end_in_process() {
        let cfg = LoadConfig {
            members: 120,
            waves: 2,
            churn: 12,
            payload_len: 64,
            shards: 2,
        };
        let (mut leader_end, mut swarm_end) = ChannelCoordinator::pair();
        let swarm = std::thread::spawn(move || run_swarm(&mut swarm_end));
        let registry = Registry::new();
        let outcome = run_leader(&cfg, &registry, &mut leader_end).expect("leader run");
        swarm.join().expect("swarm thread").expect("swarm run");

        assert_eq!(outcome.join.count, 120);
        assert_eq!(outcome.broadcast.count, 240);
        assert_eq!(outcome.rekey.count, 120);
        assert_eq!(outcome.rejoin.count, 12);
        assert!(outcome.join.min > 0 && outcome.join.p99 >= outcome.join.p50);
        // Same process here, so the thread gate covers both halves at once.
        assert!(outcome.leader_threads > 0 && outcome.leader_threads < 64);
        let snap = registry.snapshot();
        assert!(snap.counter("net.loop.frames_in") > 0);
        assert_eq!(snap.gauge("load.members"), 120);
    }
}
