//! A small deterministic binary codec.
//!
//! All integers are big-endian; byte strings are `u32`-length-prefixed.
//! The codec is deliberately minimal: the protocol's security rests on the
//! AEAD layer, so the codec only needs to be unambiguous and total on
//! valid inputs, and to fail cleanly on malformed ones.

use std::error::Error;
use std::fmt;

/// Maximum length accepted for a single length-prefixed byte string.
pub const MAX_BYTES_LEN: usize = 1 << 20;

/// Errors from encoding, decoding, framing, or identifier validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// Input ended before a complete value was decoded.
    UnexpectedEnd,
    /// A length prefix exceeded [`MAX_BYTES_LEN`].
    LengthOverflow,
    /// An enum tag byte was not recognized.
    UnknownTag {
        /// The offending tag value.
        tag: u8,
    },
    /// Trailing bytes remained after a complete decode.
    TrailingBytes,
    /// An actor identifier was empty, too long, or contained control
    /// characters.
    InvalidActorId,
    /// A group identifier was empty, too long, or contained control
    /// characters.
    InvalidGroupId,
    /// A frame exceeded the transport's maximum frame size.
    FrameTooLarge,
    /// An I/O error occurred while framing (message preserved as text).
    Io,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEnd => write!(f, "unexpected end of input"),
            WireError::LengthOverflow => write!(f, "length prefix too large"),
            WireError::UnknownTag { tag } => write!(f, "unknown tag byte {tag:#04x}"),
            WireError::TrailingBytes => write!(f, "trailing bytes after message"),
            WireError::InvalidActorId => write!(f, "invalid actor identifier"),
            WireError::InvalidGroupId => write!(f, "invalid group identifier"),
            WireError::FrameTooLarge => write!(f, "frame exceeds maximum size"),
            WireError::Io => write!(f, "i/o error during framing"),
        }
    }
}

impl Error for WireError {}

/// An append-only encode buffer.
///
/// Backed by a plain `Vec<u8>` so [`finish`](Self::finish) is a move, not
/// a copy, and so a caller on a hot path can recycle one allocation across
/// encodes via [`with_buffer`](Self::with_buffer) / [`encode_into`].
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Creates a writer that reuses `buf`'s allocation, clearing any
    /// previous contents.
    #[must_use]
    pub fn with_buffer(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Writer { buf }
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        debug_assert!(v.len() <= MAX_BYTES_LEN);
        self.buf.extend_from_slice(&(v.len() as u32).to_be_bytes());
        self.buf.extend_from_slice(v);
    }

    /// Appends a fixed-size array with no length prefix.
    pub fn put_array(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Finishes encoding, returning the bytes (no copy).
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// A consuming decode cursor.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Remaining unread bytes.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEnd`] if the input is exhausted.
    pub fn take_u8(&mut self) -> Result<u8, WireError> {
        if self.buf.is_empty() {
            return Err(WireError::UnexpectedEnd);
        }
        let v = self.buf[0];
        self.buf = &self.buf[1..];
        Ok(v)
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEnd`] if fewer than four bytes remain.
    pub fn take_u32(&mut self) -> Result<u32, WireError> {
        if self.buf.len() < 4 {
            return Err(WireError::UnexpectedEnd);
        }
        let v = u32::from_be_bytes(self.buf[..4].try_into().expect("length checked"));
        self.buf = &self.buf[4..];
        Ok(v)
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEnd`] if fewer than eight bytes remain.
    pub fn take_u64(&mut self) -> Result<u64, WireError> {
        if self.buf.len() < 8 {
            return Err(WireError::UnexpectedEnd);
        }
        let v = u64::from_be_bytes(self.buf[..8].try_into().expect("length checked"));
        self.buf = &self.buf[8..];
        Ok(v)
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// [`WireError::LengthOverflow`] if the prefix exceeds
    /// [`MAX_BYTES_LEN`]; [`WireError::UnexpectedEnd`] if the input is
    /// shorter than the prefix promises.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.take_u32()? as usize;
        if len > MAX_BYTES_LEN {
            return Err(WireError::LengthOverflow);
        }
        if self.buf.len() < len {
            return Err(WireError::UnexpectedEnd);
        }
        let (head, tail) = self.buf.split_at(len);
        self.buf = tail;
        Ok(head)
    }

    /// Reads exactly `N` bytes with no length prefix.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEnd`] if fewer than `N` bytes remain.
    pub fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        if self.buf.len() < N {
            return Err(WireError::UnexpectedEnd);
        }
        let mut out = [0u8; N];
        out.copy_from_slice(&self.buf[..N]);
        self.buf = &self.buf[N..];
        Ok(out)
    }

    /// Asserts the input is fully consumed.
    ///
    /// # Errors
    ///
    /// [`WireError::TrailingBytes`] if bytes remain.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

/// A type with a deterministic binary encoding.
pub trait Encode {
    /// Appends this value to the writer.
    fn encode(&self, w: &mut Writer);
}

/// A type decodable from the binary encoding.
pub trait Decode: Sized {
    /// Reads one value from the reader.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] describing the malformation.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

/// Encodes a value to a fresh byte vector.
#[must_use]
pub fn encode<T: Encode>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    value.encode(&mut w);
    w.finish()
}

/// Encodes a value into `buf`, reusing its allocation.
///
/// The buffer is cleared first; on return it holds exactly the encoding.
/// This is the hot-path variant of [`encode`] — a broadcast loop can
/// encode thousands of frames without allocating once warm.
pub fn encode_into<T: Encode>(value: &T, buf: &mut Vec<u8>) {
    let mut w = Writer::with_buffer(std::mem::take(buf));
    value.encode(&mut w);
    *buf = w.finish();
}

/// Decodes a value, requiring the input to be fully consumed.
///
/// # Errors
///
/// Any [`WireError`] from the type's decoder, or
/// [`WireError::TrailingBytes`].
pub fn decode<T: Decode>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(bytes);
    let v = T::decode(&mut r)?;
    r.expect_end()?;
    Ok(v)
}

impl Encode for Vec<u8> {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self);
    }
}

impl Decode for Vec<u8> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(r.take_bytes()?.to_vec())
    }
}

impl Encode for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.take_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0102_0304_0506_0708);
        w.put_bytes(b"hello");
        w.put_array(&[1, 2, 3]);
        let bytes = w.finish();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), 0x0102_0304_0506_0708);
        assert_eq!(r.take_bytes().unwrap(), b"hello");
        assert_eq!(r.take_array::<3>().unwrap(), [1, 2, 3]);
        assert!(r.expect_end().is_ok());
    }

    #[test]
    fn short_input_errors() {
        let mut r = Reader::new(&[]);
        assert_eq!(r.take_u8(), Err(WireError::UnexpectedEnd));
        let mut r = Reader::new(&[0, 0]);
        assert_eq!(r.take_u32(), Err(WireError::UnexpectedEnd));
        let mut r = Reader::new(&[0, 0, 0, 9, 1, 2]);
        assert_eq!(r.take_bytes(), Err(WireError::UnexpectedEnd));
    }

    #[test]
    fn length_overflow_rejected() {
        let mut w = Writer::new();
        w.put_u32((MAX_BYTES_LEN + 1) as u32);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.take_bytes(), Err(WireError::LengthOverflow));
    }

    #[test]
    fn trailing_bytes_detected() {
        let bytes = encode(&42u64);
        let mut with_extra = bytes.clone();
        with_extra.push(0);
        assert_eq!(decode::<u64>(&bytes), Ok(42));
        assert_eq!(decode::<u64>(&with_extra), Err(WireError::TrailingBytes));
    }

    #[test]
    fn vec_roundtrip() {
        let v: Vec<u8> = (0..100).collect();
        assert_eq!(decode::<Vec<u8>>(&encode(&v)).unwrap(), v);
        let empty: Vec<u8> = vec![];
        assert_eq!(decode::<Vec<u8>>(&encode(&empty)).unwrap(), empty);
    }

    #[test]
    fn encode_into_reuses_allocation() {
        let v: Vec<u8> = (0..200).collect();
        let mut buf = Vec::with_capacity(1024);
        let cap_before = buf.capacity();
        for _ in 0..10 {
            encode_into(&v, &mut buf);
            assert_eq!(buf, encode(&v));
        }
        assert_eq!(buf.capacity(), cap_before, "hot-path encode reallocated");
    }

    #[test]
    fn with_buffer_clears_stale_contents() {
        let mut w = Writer::with_buffer(vec![9, 9, 9]);
        w.put_u8(1);
        assert_eq!(w.finish(), vec![1]);
    }

    #[test]
    fn error_display_messages() {
        assert_eq!(
            WireError::UnknownTag { tag: 0xAB }.to_string(),
            "unknown tag byte 0xab"
        );
        assert!(!WireError::Io.to_string().is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn bytes_roundtrip(v in proptest::collection::vec(any::<u8>(), 0..2048)) {
            prop_assert_eq!(decode::<Vec<u8>>(&encode(&v)).unwrap(), v);
        }

        #[test]
        fn u64_roundtrip(v in any::<u64>()) {
            prop_assert_eq!(decode::<u64>(&encode(&v)).unwrap(), v);
        }

        // Decoding arbitrary garbage never panics.
        #[test]
        fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode::<Vec<u8>>(&bytes);
            let _ = decode::<u64>(&bytes);
            let _ = decode::<crate::ActorId>(&bytes);
        }
    }
}
