//! The improved protocol of Section 3.2, at the byte level.
//!
//! Each message is an [`Envelope`] with a cleartext header and a body. For
//! the encrypted messages the body is a [`SealedBody`]: an AEAD nonce plus
//! a ChaCha20-Poly1305 seal of the encoded plaintext structure, with the
//! envelope header bound as associated data. The plaintext structures
//! mirror the paper's encrypted fields exactly — identities are *inside*
//! the encryption, which is what the verification of Section 5 relies on.

use crate::actor::ActorId;
use crate::codec::{decode, encode, Decode, Encode, Reader, WireError, Writer};
use crate::group::GroupId;
use enclaves_crypto::aead::ChaCha20Poly1305;
use enclaves_crypto::nonce::{AeadNonce, ProtocolNonce, AEAD_NONCE_LEN, PROTOCOL_NONCE_LEN};
use enclaves_crypto::CryptoError;
use std::sync::Arc;

/// Message types of the improved protocol.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum MsgType {
    /// `A → L`: authentication initiation.
    AuthInitReq = 1,
    /// `L → A`: session-key distribution.
    AuthKeyDist = 2,
    /// `A → L`: key acknowledgment.
    AuthAckKey = 3,
    /// `L → A`: group-management message.
    AdminMsg = 4,
    /// `A → L`: group-management acknowledgment.
    Ack = 5,
    /// `A → L`: session close request.
    ReqClose = 6,
    /// Member ↔ L: application data sealed under the group key; the leader
    /// relays it to every other member (Figure 1's leader-mediated
    /// multicast).
    GroupData = 7,
    /// `L → *`: leader-originated group broadcast sealed **once** under the
    /// group key and fanned out to the whole roster as the same frame. The
    /// nonce is derived from the epoch IV and the `seq` counter, so the
    /// body carries only `(epoch, seq, ciphertext)` — see
    /// [`GroupBroadcastWire`].
    GroupBroadcast = 8,
    /// Member ↔ L: liveness heartbeat (sealed under `K_a`). A member
    /// pings with an increasing sequence number; the leader echoes the
    /// same sequence back as a pong. Both directions refresh the peer's
    /// liveness deadline — see [`HeartbeatPlain`].
    Heartbeat = 9,
    /// `L → *`: a rekey-tree path update fanned out to the whole roster
    /// as one frame. The outer body is plaintext structure
    /// ([`PathUpdateWire`]); confidentiality lives in the per-copath-node
    /// AEAD seals inside it, each bound by [`path_update_aad`].
    PathUpdate = 10,
}

impl MsgType {
    /// Parses a tag byte.
    ///
    /// # Errors
    ///
    /// [`WireError::UnknownTag`] for unassigned values.
    pub fn from_u8(tag: u8) -> Result<Self, WireError> {
        Ok(match tag {
            1 => MsgType::AuthInitReq,
            2 => MsgType::AuthKeyDist,
            3 => MsgType::AuthAckKey,
            4 => MsgType::AdminMsg,
            5 => MsgType::Ack,
            6 => MsgType::ReqClose,
            7 => MsgType::GroupData,
            8 => MsgType::GroupBroadcast,
            9 => MsgType::Heartbeat,
            10 => MsgType::PathUpdate,
            tag => return Err(WireError::UnknownTag { tag }),
        })
    }
}

/// Flag bit set on the wire tag byte when the envelope carries a
/// [`GroupId`]. Envelopes without a group id (single-group deployments)
/// encode byte-identically to the pre-multigroup format, so legacy peers
/// interoperate unchanged.
const GROUP_TAG_FLAG: u8 = 0x80;

/// A protocol message: cleartext header plus opaque body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Envelope {
    /// Message type.
    pub msg_type: MsgType,
    /// Apparent sender.
    pub sender: ActorId,
    /// Intended recipient.
    pub recipient: ActorId,
    /// The enclave this frame belongs to, when addressed to (or sent by)
    /// a multi-enclave service. `None` is the legacy single-group wire
    /// form. The group id is part of [`Envelope::header_aad`], so every
    /// seal is cryptographically bound to its enclave: a frame sealed
    /// for enclave A can never verify in enclave B, even when both
    /// enclaves share a member name and password.
    pub group: Option<GroupId>,
    /// Body bytes (a [`SealedBody`] encoding for encrypted messages).
    pub body: Vec<u8>,
}

impl Envelope {
    /// The wire tag byte: the message type, with [`GROUP_TAG_FLAG`] set
    /// when a group id follows the recipient.
    fn tag_byte(&self) -> u8 {
        let tag = self.msg_type as u8;
        if self.group.is_some() {
            tag | GROUP_TAG_FLAG
        } else {
            tag
        }
    }

    /// The header bytes bound as AEAD associated data: re-labeling,
    /// re-addressing, or re-homing a sealed message into another enclave
    /// breaks authentication.
    #[must_use]
    pub fn header_aad(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(self.tag_byte());
        self.sender.encode(&mut w);
        self.recipient.encode(&mut w);
        if let Some(group) = &self.group {
            group.encode(&mut w);
        }
        w.finish()
    }

    /// Reads only the group id out of an encoded envelope, without
    /// copying the body — the cheap header peek a multi-enclave service
    /// uses to demux an incoming frame to its group before any
    /// cryptography runs.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] from the header fields (the body is not
    /// validated).
    pub fn peek_group(bytes: &[u8]) -> Result<Option<GroupId>, WireError> {
        let mut r = Reader::new(bytes);
        let tag = r.take_u8()?;
        MsgType::from_u8(tag & !GROUP_TAG_FLAG)?;
        let _sender = ActorId::decode(&mut r)?;
        let _recipient = ActorId::decode(&mut r)?;
        if tag & GROUP_TAG_FLAG != 0 {
            Ok(Some(GroupId::decode(&mut r)?))
        } else {
            Ok(None)
        }
    }
}

impl Encode for Envelope {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.tag_byte());
        self.sender.encode(w);
        self.recipient.encode(w);
        if let Some(group) = &self.group {
            group.encode(w);
        }
        w.put_bytes(&self.body);
    }
}

impl Decode for Envelope {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.take_u8()?;
        let msg_type = MsgType::from_u8(tag & !GROUP_TAG_FLAG)?;
        let sender = ActorId::decode(r)?;
        let recipient = ActorId::decode(r)?;
        let group = if tag & GROUP_TAG_FLAG != 0 {
            Some(GroupId::decode(r)?)
        } else {
            None
        };
        let body = r.take_bytes()?.to_vec();
        Ok(Envelope {
            msg_type,
            sender,
            recipient,
            group,
            body,
        })
    }
}

/// An AEAD-sealed body: the nonce used plus `ciphertext || tag`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SealedBody {
    /// The AEAD nonce the sender used.
    pub nonce: [u8; AEAD_NONCE_LEN],
    /// `ciphertext || tag`.
    pub ciphertext: Vec<u8>,
}

impl Encode for SealedBody {
    fn encode(&self, w: &mut Writer) {
        w.put_array(&self.nonce);
        w.put_bytes(&self.ciphertext);
    }
}

impl Decode for SealedBody {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let nonce = r.take_array::<AEAD_NONCE_LEN>()?;
        let ciphertext = r.take_bytes()?.to_vec();
        Ok(SealedBody { nonce, ciphertext })
    }
}

impl Encode for ProtocolNonce {
    fn encode(&self, w: &mut Writer) {
        w.put_array(self.as_bytes());
    }
}

impl Decode for ProtocolNonce {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let bytes = r.take_array::<PROTOCOL_NONCE_LEN>()?;
        Ok(ProtocolNonce::from_bytes(bytes))
    }
}

/// Errors when opening a sealed message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenError {
    /// The body was not a well-formed [`SealedBody`] or the plaintext was
    /// malformed.
    Malformed(WireError),
    /// AEAD authentication failed.
    Crypto(CryptoError),
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpenError::Malformed(e) => write!(f, "malformed sealed message: {e}"),
            OpenError::Crypto(e) => write!(f, "authentication failure: {e}"),
        }
    }
}

impl std::error::Error for OpenError {}

impl From<WireError> for OpenError {
    fn from(e: WireError) -> Self {
        OpenError::Malformed(e)
    }
}

impl From<CryptoError> for OpenError {
    fn from(e: CryptoError) -> Self {
        OpenError::Crypto(e)
    }
}

/// Seals an encodable plaintext under `key`, binding `aad`.
#[must_use]
pub fn seal<T: Encode>(key: &[u8; 32], nonce: AeadNonce, aad: &[u8], value: &T) -> Vec<u8> {
    let cipher = ChaCha20Poly1305::new(key);
    let plain = encode(value);
    let ciphertext = cipher.seal(&nonce, &plain, aad);
    encode(&SealedBody {
        nonce: *nonce.as_bytes(),
        ciphertext,
    })
}

/// Opens a sealed body under `key`, checking `aad`, and decodes the
/// plaintext.
///
/// # Errors
///
/// [`OpenError::Crypto`] if authentication fails; [`OpenError::Malformed`]
/// if either layer fails to parse.
pub fn open<T: Decode>(key: &[u8; 32], aad: &[u8], body: &[u8]) -> Result<T, OpenError> {
    let sealed: SealedBody = decode(body)?;
    let cipher = ChaCha20Poly1305::new(key);
    let nonce = AeadNonce::from_bytes(sealed.nonce);
    let plain = cipher.open(&nonce, &sealed.ciphertext, aad)?;
    Ok(decode(&plain)?)
}

/// Plaintext of `AuthInitReq`: `{A, L, N1}` (sealed under `P_a`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AuthInitPlain {
    /// The joining user.
    pub user: ActorId,
    /// The leader.
    pub leader: ActorId,
    /// Fresh user nonce `N1`.
    pub nonce: ProtocolNonce,
}

impl Encode for AuthInitPlain {
    fn encode(&self, w: &mut Writer) {
        self.user.encode(w);
        self.leader.encode(w);
        self.nonce.encode(w);
    }
}

impl Decode for AuthInitPlain {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(AuthInitPlain {
            user: ActorId::decode(r)?,
            leader: ActorId::decode(r)?,
            nonce: ProtocolNonce::decode(r)?,
        })
    }
}

/// Plaintext of `AuthKeyDist`: `{L, A, N1, N2, Ka}` (sealed under `P_a`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct KeyDistPlain {
    /// The leader.
    pub leader: ActorId,
    /// The joining user.
    pub user: ActorId,
    /// Echo of the user's nonce `N1`.
    pub user_nonce: ProtocolNonce,
    /// Fresh leader nonce `N2`.
    pub leader_nonce: ProtocolNonce,
    /// The fresh session key `K_a`.
    pub session_key: [u8; 32],
}

impl Encode for KeyDistPlain {
    fn encode(&self, w: &mut Writer) {
        self.leader.encode(w);
        self.user.encode(w);
        self.user_nonce.encode(w);
        self.leader_nonce.encode(w);
        w.put_array(&self.session_key);
    }
}

impl Decode for KeyDistPlain {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(KeyDistPlain {
            leader: ActorId::decode(r)?,
            user: ActorId::decode(r)?,
            user_nonce: ProtocolNonce::decode(r)?,
            leader_nonce: ProtocolNonce::decode(r)?,
            session_key: r.take_array::<32>()?,
        })
    }
}

/// Plaintext of `AuthAckKey` and `Ack`: `{A, L, N_prev, N_next}` (sealed
/// under `K_a`). The same shape serves both messages, exactly as in the
/// formal model.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NonceAckPlain {
    /// The user.
    pub user: ActorId,
    /// The leader.
    pub leader: ActorId,
    /// The nonce being acknowledged (the leader's most recent).
    pub acked_nonce: ProtocolNonce,
    /// The fresh user nonce for the next exchange.
    pub next_nonce: ProtocolNonce,
}

impl Encode for NonceAckPlain {
    fn encode(&self, w: &mut Writer) {
        self.user.encode(w);
        self.leader.encode(w);
        self.acked_nonce.encode(w);
        self.next_nonce.encode(w);
    }
}

impl Decode for NonceAckPlain {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NonceAckPlain {
            user: ActorId::decode(r)?,
            leader: ActorId::decode(r)?,
            acked_nonce: ProtocolNonce::decode(r)?,
            next_nonce: ProtocolNonce::decode(r)?,
        })
    }
}

/// A group-management payload `X` (Section 3.2: "X may specify a new group
/// key and initialization vector, or indicate that a member has joined or
/// left the session").
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AdminPayload {
    /// A new group key with its initialization vector.
    NewGroupKey {
        /// Monotone key epoch.
        epoch: u64,
        /// The group key `K_g`.
        key: [u8; 32],
        /// The initialization vector.
        iv: [u8; 12],
    },
    /// A member joined.
    MemberJoined(ActorId),
    /// A member left (or was expelled).
    MemberLeft(ActorId),
    /// Initial roster sent to a fresh member, with the current group key.
    Welcome {
        /// Current members, including the recipient.
        members: Vec<ActorId>,
        /// Current group-key epoch.
        epoch: u64,
        /// The current group key.
        group_key: [u8; 32],
        /// The current initialization vector.
        iv: [u8; 12],
    },
    /// Opaque application-level data. Shared (`Arc`) so a payload
    /// broadcast to the whole roster is encoded from one buffer instead
    /// of one deep copy per member.
    AppData(Arc<[u8]>),
    /// Tree-rekey resync: the member's full direct path in the leader's
    /// key tree, sealed under `K_a`. Sent to a joiner alongside its
    /// `Welcome`, to a member whose heartbeat reveals a stale epoch
    /// (a missed [`MsgType::PathUpdate`] broadcast), and to everyone on a
    /// full-tree reinit.
    PathSync {
        /// The epoch the tree root currently derives.
        epoch: u64,
        /// The member's leaf slot.
        leaf_index: u32,
        /// Leaf slots in the tree (fixes the path shape).
        leaf_count: u32,
        /// Node keys leaf-first up to and including the root.
        path_keys: Vec<[u8; 32]>,
    },
}

const TAG_NEW_GROUP_KEY: u8 = 1;
const TAG_MEMBER_JOINED: u8 = 2;
const TAG_MEMBER_LEFT: u8 = 3;
const TAG_WELCOME: u8 = 4;
const TAG_APP_DATA: u8 = 5;
const TAG_PATH_SYNC: u8 = 6;

/// Upper bound on the direct-path length in a `PathSync` (a tree with
/// `u32` leaf indices is at most 32 levels deep, plus the leaf).
const MAX_PATH_KEYS: usize = 33;

impl Encode for AdminPayload {
    fn encode(&self, w: &mut Writer) {
        match self {
            AdminPayload::NewGroupKey { epoch, key, iv } => {
                w.put_u8(TAG_NEW_GROUP_KEY);
                w.put_u64(*epoch);
                w.put_array(key);
                w.put_array(iv);
            }
            AdminPayload::MemberJoined(a) => {
                w.put_u8(TAG_MEMBER_JOINED);
                a.encode(w);
            }
            AdminPayload::MemberLeft(a) => {
                w.put_u8(TAG_MEMBER_LEFT);
                a.encode(w);
            }
            AdminPayload::Welcome {
                members,
                epoch,
                group_key,
                iv,
            } => {
                w.put_u8(TAG_WELCOME);
                w.put_u32(members.len() as u32);
                for m in members {
                    m.encode(w);
                }
                w.put_u64(*epoch);
                w.put_array(group_key);
                w.put_array(iv);
            }
            AdminPayload::AppData(data) => {
                w.put_u8(TAG_APP_DATA);
                w.put_bytes(data);
            }
            AdminPayload::PathSync {
                epoch,
                leaf_index,
                leaf_count,
                path_keys,
            } => {
                w.put_u8(TAG_PATH_SYNC);
                w.put_u64(*epoch);
                w.put_u32(*leaf_index);
                w.put_u32(*leaf_count);
                w.put_u32(path_keys.len() as u32);
                for k in path_keys {
                    w.put_array(k);
                }
            }
        }
    }
}

impl Decode for AdminPayload {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.take_u8()? {
            TAG_NEW_GROUP_KEY => AdminPayload::NewGroupKey {
                epoch: r.take_u64()?,
                key: r.take_array::<32>()?,
                iv: r.take_array::<12>()?,
            },
            TAG_MEMBER_JOINED => AdminPayload::MemberJoined(ActorId::decode(r)?),
            TAG_MEMBER_LEFT => AdminPayload::MemberLeft(ActorId::decode(r)?),
            TAG_WELCOME => {
                let n = r.take_u32()? as usize;
                if n > 10_000 {
                    return Err(WireError::LengthOverflow);
                }
                let mut members = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    members.push(ActorId::decode(r)?);
                }
                AdminPayload::Welcome {
                    members,
                    epoch: r.take_u64()?,
                    group_key: r.take_array::<32>()?,
                    iv: r.take_array::<12>()?,
                }
            }
            TAG_APP_DATA => AdminPayload::AppData(r.take_bytes()?.into()),
            TAG_PATH_SYNC => {
                let epoch = r.take_u64()?;
                let leaf_index = r.take_u32()?;
                let leaf_count = r.take_u32()?;
                let n = r.take_u32()? as usize;
                if n > MAX_PATH_KEYS {
                    return Err(WireError::LengthOverflow);
                }
                let mut path_keys = Vec::with_capacity(n);
                for _ in 0..n {
                    path_keys.push(r.take_array::<32>()?);
                }
                AdminPayload::PathSync {
                    epoch,
                    leaf_index,
                    leaf_count,
                    path_keys,
                }
            }
            tag => return Err(WireError::UnknownTag { tag }),
        })
    }
}

/// Plaintext of `AdminMsg`: `{L, A, N_user, N_leader, X}` (sealed under
/// `K_a`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AdminPlain {
    /// The leader.
    pub leader: ActorId,
    /// The member.
    pub user: ActorId,
    /// The member's most recent nonce (`N_{2i+1}`): replay proof.
    pub user_nonce: ProtocolNonce,
    /// The fresh leader nonce (`N_{2i+2}`).
    pub leader_nonce: ProtocolNonce,
    /// The group-management payload.
    pub payload: AdminPayload,
}

impl Encode for AdminPlain {
    fn encode(&self, w: &mut Writer) {
        self.leader.encode(w);
        self.user.encode(w);
        self.user_nonce.encode(w);
        self.leader_nonce.encode(w);
        self.payload.encode(w);
    }
}

impl Decode for AdminPlain {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(AdminPlain {
            leader: ActorId::decode(r)?,
            user: ActorId::decode(r)?,
            user_nonce: ProtocolNonce::decode(r)?,
            leader_nonce: ProtocolNonce::decode(r)?,
            payload: AdminPayload::decode(r)?,
        })
    }
}

/// Wire form of a `GroupData` body: the epoch tag plus the sealed
/// application payload.
///
/// Group data is sealed under the group key with
/// [`group_data_aad`]-derived associated data (sender + epoch, *not* the
/// recipient) so the leader can relay one sealed body to every member
/// without re-encryption.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GroupDataWire {
    /// The group-key epoch this data was sealed under.
    pub epoch: u64,
    /// The sealed application bytes.
    pub sealed: SealedBody,
}

impl Encode for GroupDataWire {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.epoch);
        self.sealed.encode(w);
    }
}

impl Decode for GroupDataWire {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(GroupDataWire {
            epoch: r.take_u64()?,
            sealed: SealedBody::decode(r)?,
        })
    }
}

/// Appends the multicast AAD group-binding suffix: a presence byte, then
/// the group id when there is one. Multicast receivers derive the group
/// from their *own* configuration (not from the attacker-controlled
/// header), so a frame sealed in enclave A fails authentication against
/// any member of enclave B.
fn put_group(w: &mut Writer, group: Option<&GroupId>) {
    match group {
        Some(g) => {
            w.put_u8(1);
            g.encode(w);
        }
        None => w.put_u8(0),
    }
}

/// Associated data for group-data seals: binds the original sender, the
/// key epoch, and the enclave — but not the recipient (group data is
/// multicast).
#[must_use]
pub fn group_data_aad(sender: &ActorId, epoch: u64, group: Option<&GroupId>) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(MsgType::GroupData as u8);
    sender.encode(&mut w);
    w.put_u64(epoch);
    put_group(&mut w, group);
    w.finish()
}

/// Wire form of a `GroupBroadcast` body: `(epoch, seq, ciphertext)`.
///
/// Unlike [`GroupDataWire`] there is no explicit nonce on the wire: both
/// sides derive it from the epoch IV and `seq` (see
/// `broadcast_nonce` in the core crate), so the frame carries only the
/// epoch tag, the per-epoch sequence number, and `ciphertext || tag`.
/// The leader seals the payload once and fans the identical encoded
/// frame out to the whole roster; `seq` doubles as the members'
/// replay/reordering watermark.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GroupBroadcastWire {
    /// The group-key epoch this broadcast was sealed under.
    pub epoch: u64,
    /// Per-epoch broadcast sequence number (starts at 0 after each rekey,
    /// strictly increasing within the epoch).
    pub seq: u64,
    /// `ciphertext || tag` under the epoch's group key.
    pub ciphertext: Vec<u8>,
}

impl Encode for GroupBroadcastWire {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.epoch);
        w.put_u64(self.seq);
        w.put_bytes(&self.ciphertext);
    }
}

impl Decode for GroupBroadcastWire {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(GroupBroadcastWire {
            epoch: r.take_u64()?,
            seq: r.take_u64()?,
            ciphertext: r.take_bytes()?.to_vec(),
        })
    }
}

/// Associated data for group-broadcast seals: binds the originating
/// leader, the key epoch, the sequence number, and the enclave — but not
/// the recipient, since the identical frame goes to every member.
#[must_use]
pub fn group_broadcast_aad(
    leader: &ActorId,
    epoch: u64,
    seq: u64,
    group: Option<&GroupId>,
) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(MsgType::GroupBroadcast as u8);
    leader.encode(&mut w);
    w.put_u64(epoch);
    w.put_u64(seq);
    put_group(&mut w, group);
    w.finish()
}

/// Wire form of a `PathUpdate` body: one rekey-tree path refresh, fanned
/// out to the whole roster as a single frame.
///
/// The outer structure is plaintext — an expelled member already knows
/// the retiring group key, so an outer seal under it would add nothing.
/// Confidentiality lives in `ciphers`: the fresh path secret sealed once
/// per copath resolution node, under that node's key, with
/// [`path_update_aad`] binding the leader, epoch, tree shape, and target
/// node so no field can be flipped without breaking authentication.
/// Exactly one entry is decryptable by any given member (the one whose
/// node lies on its direct path); from that secret the member derives
/// every rewritten key up to the root.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PathUpdateWire {
    /// The epoch the refreshed tree root derives (previous epoch + 1).
    pub epoch: u64,
    /// Leaf slots in the tree after the refresh.
    pub leaf_count: u32,
    /// The leaf slot whose path was refreshed.
    pub updated_leaf: u32,
    /// `(node_index, sealed path secret)` per copath resolution node.
    pub ciphers: Vec<(u32, SealedBody)>,
}

/// Upper bound on copath ciphers in one path update: a blank-heavy tree
/// can push resolutions past `log N`, but never past the leaf count the
/// `Welcome` roster bound already allows.
const MAX_PATH_CIPHERS: usize = 10_000;

impl Encode for PathUpdateWire {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.epoch);
        w.put_u32(self.leaf_count);
        w.put_u32(self.updated_leaf);
        w.put_u32(self.ciphers.len() as u32);
        for (node, sealed) in &self.ciphers {
            w.put_u32(*node);
            sealed.encode(w);
        }
    }
}

impl Decode for PathUpdateWire {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let epoch = r.take_u64()?;
        let leaf_count = r.take_u32()?;
        let updated_leaf = r.take_u32()?;
        let n = r.take_u32()? as usize;
        if n > MAX_PATH_CIPHERS {
            return Err(WireError::LengthOverflow);
        }
        let mut ciphers = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let node = r.take_u32()?;
            ciphers.push((node, SealedBody::decode(r)?));
        }
        Ok(PathUpdateWire {
            epoch,
            leaf_count,
            updated_leaf,
            ciphers,
        })
    }
}

/// Associated data for the per-node seals inside a [`PathUpdateWire`]:
/// binds the originating leader, the new epoch, the tree shape, the
/// refreshed leaf, and the target node. Tampering with `leaf_count` or
/// `updated_leaf` would silently change the member's derive-up walk, so
/// both are authenticated here rather than trusted from the plaintext
/// outer frame. The enclave is bound last, like the other multicast AADs.
#[must_use]
pub fn path_update_aad(
    leader: &ActorId,
    epoch: u64,
    leaf_count: u32,
    updated_leaf: u32,
    node_index: u32,
    group: Option<&GroupId>,
) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(MsgType::PathUpdate as u8);
    leader.encode(&mut w);
    w.put_u64(epoch);
    w.put_u32(leaf_count);
    w.put_u32(updated_leaf);
    w.put_u32(node_index);
    put_group(&mut w, group);
    w.finish()
}

/// Plaintext of `ReqClose`: `{A, L}` (sealed under `K_a`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClosePlain {
    /// The user.
    pub user: ActorId,
    /// The leader.
    pub leader: ActorId,
}

impl Encode for ClosePlain {
    fn encode(&self, w: &mut Writer) {
        self.user.encode(w);
        self.leader.encode(w);
    }
}

impl Decode for ClosePlain {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ClosePlain {
            user: ActorId::decode(r)?,
            leader: ActorId::decode(r)?,
        })
    }
}

/// Plaintext of `Heartbeat`: `{A, L, seq, epoch}` (sealed under `K_a`).
///
/// `seq` strictly increases per session in the member→leader direction;
/// the leader's pong echoes the ping's `seq`. Sealing the identities
/// keeps the heartbeat channel as intrusion-tolerant as the rest of the
/// admin plane: a forged or replayed ping cannot refresh a dead member's
/// liveness deadline.
///
/// `epoch` is the sender's current group-key epoch (0 before any key is
/// installed). Because the ping is authenticated under `K_a`, the leader
/// can trust a lagging epoch as evidence of a missed `PathUpdate`
/// broadcast and push an [`AdminPayload::PathSync`] over the reliable
/// admin channel — resync stays leader-driven, so forged traffic still
/// cannot elicit state changes or keep a dead session alive.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HeartbeatPlain {
    /// The user.
    pub user: ActorId,
    /// The leader.
    pub leader: ActorId,
    /// Ping sequence number (echoed verbatim in the pong).
    pub seq: u64,
    /// The sender's current group-key epoch (0 if none installed).
    pub epoch: u64,
}

impl Encode for HeartbeatPlain {
    fn encode(&self, w: &mut Writer) {
        self.user.encode(w);
        self.leader.encode(w);
        w.put_u64(self.seq);
        w.put_u64(self.epoch);
    }
}

impl Decode for HeartbeatPlain {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(HeartbeatPlain {
            user: ActorId::decode(r)?,
            leader: ActorId::decode(r)?,
            seq: r.take_u64()?,
            epoch: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alice() -> ActorId {
        ActorId::new("alice").unwrap()
    }

    fn leader() -> ActorId {
        ActorId::new("leader").unwrap()
    }

    fn nonce(b: u8) -> ProtocolNonce {
        ProtocolNonce::from_bytes([b; 16])
    }

    fn ops() -> GroupId {
        GroupId::new("ops").unwrap()
    }

    #[test]
    fn envelope_roundtrip() {
        let env = Envelope {
            msg_type: MsgType::AdminMsg,
            sender: leader(),
            recipient: alice(),
            group: None,
            body: vec![1, 2, 3],
        };
        let bytes = encode(&env);
        assert_eq!(decode::<Envelope>(&bytes).unwrap(), env);
    }

    #[test]
    fn grouped_envelope_roundtrip() {
        let env = Envelope {
            msg_type: MsgType::AdminMsg,
            sender: leader(),
            recipient: alice(),
            group: Some(ops()),
            body: vec![1, 2, 3],
        };
        let bytes = encode(&env);
        assert_eq!(decode::<Envelope>(&bytes).unwrap(), env);
    }

    #[test]
    fn ungrouped_envelope_is_byte_identical_to_legacy_format() {
        // The legacy (pre-multigroup) encoding: tag byte, sender,
        // recipient, body — no flag bit, no group field. A `group: None`
        // envelope must still produce exactly these bytes.
        let env = Envelope {
            msg_type: MsgType::GroupData,
            sender: alice(),
            recipient: leader(),
            group: None,
            body: vec![9, 8, 7],
        };
        let mut w = Writer::new();
        w.put_u8(MsgType::GroupData as u8);
        alice().encode(&mut w);
        leader().encode(&mut w);
        w.put_bytes(&[9, 8, 7]);
        assert_eq!(encode(&env), w.finish());
    }

    #[test]
    fn peek_group_reads_header_only() {
        let grouped = Envelope {
            msg_type: MsgType::Heartbeat,
            sender: alice(),
            recipient: leader(),
            group: Some(ops()),
            // Deliberately *not* a valid length-prefixed body: the peek
            // must not look at it.
            body: vec![],
        };
        let mut bytes = encode(&grouped);
        // Truncate into the body's length prefix; the header is intact.
        bytes.truncate(bytes.len() - 2);
        assert_eq!(Envelope::peek_group(&bytes).unwrap(), Some(ops()));

        let plain = Envelope {
            msg_type: MsgType::Heartbeat,
            sender: alice(),
            recipient: leader(),
            group: None,
            body: vec![1, 2, 3],
        };
        assert_eq!(Envelope::peek_group(&encode(&plain)).unwrap(), None);
        assert!(Envelope::peek_group(&[]).is_err());
        assert!(Envelope::peek_group(&[0x80]).is_err());
    }

    #[test]
    fn header_aad_binds_the_group() {
        let base = Envelope {
            msg_type: MsgType::AdminMsg,
            sender: leader(),
            recipient: alice(),
            group: Some(ops()),
            body: vec![],
        };
        let other_group = Envelope {
            group: Some(GroupId::new("eng").unwrap()),
            ..base.clone()
        };
        let no_group = Envelope {
            group: None,
            ..base.clone()
        };
        assert_ne!(base.header_aad(), other_group.header_aad());
        assert_ne!(base.header_aad(), no_group.header_aad());
        assert_ne!(other_group.header_aad(), no_group.header_aad());
    }

    #[test]
    fn sealed_frame_cannot_cross_enclaves() {
        // Same member name, same password (hence same key) registered in
        // two enclaves of one service: the group id in the AAD is the
        // *only* thing separating their seals, and it must be enough.
        let key = [0x5au8; 32];
        let n = AeadNonce::from_bytes([3; 12]);
        let init = AuthInitPlain {
            user: alice(),
            leader: leader(),
            nonce: nonce(7),
        };
        let env_a = Envelope {
            msg_type: MsgType::AuthInitReq,
            sender: alice(),
            recipient: leader(),
            group: Some(ops()),
            body: vec![],
        };
        let env_b = Envelope {
            group: Some(GroupId::new("eng").unwrap()),
            ..env_a.clone()
        };
        let body = seal(&key, n, &env_a.header_aad(), &init);
        assert!(open::<AuthInitPlain>(&key, &env_a.header_aad(), &body).is_ok());
        assert!(matches!(
            open::<AuthInitPlain>(&key, &env_b.header_aad(), &body),
            Err(OpenError::Crypto(_))
        ));
    }

    #[test]
    fn multicast_aads_bind_the_group() {
        let ops = ops();
        let eng = GroupId::new("eng").unwrap();
        assert_ne!(
            group_data_aad(&alice(), 3, Some(&ops)),
            group_data_aad(&alice(), 3, Some(&eng))
        );
        assert_ne!(
            group_data_aad(&alice(), 3, Some(&ops)),
            group_data_aad(&alice(), 3, None)
        );
        assert_ne!(
            group_broadcast_aad(&leader(), 3, 9, Some(&ops)),
            group_broadcast_aad(&leader(), 3, 9, Some(&eng))
        );
        assert_ne!(
            group_broadcast_aad(&leader(), 3, 9, Some(&ops)),
            group_broadcast_aad(&leader(), 3, 9, None)
        );
        assert_ne!(
            path_update_aad(&leader(), 5, 8, 3, 9, Some(&ops)),
            path_update_aad(&leader(), 5, 8, 3, 9, Some(&eng))
        );
        assert_ne!(
            path_update_aad(&leader(), 5, 8, 3, 9, Some(&ops)),
            path_update_aad(&leader(), 5, 8, 3, 9, None)
        );
    }

    #[test]
    fn msg_type_tags_are_stable() {
        for (t, v) in [
            (MsgType::AuthInitReq, 1u8),
            (MsgType::AuthKeyDist, 2),
            (MsgType::AuthAckKey, 3),
            (MsgType::AdminMsg, 4),
            (MsgType::Ack, 5),
            (MsgType::ReqClose, 6),
            (MsgType::GroupData, 7),
            (MsgType::GroupBroadcast, 8),
            (MsgType::Heartbeat, 9),
            (MsgType::PathUpdate, 10),
        ] {
            assert_eq!(t as u8, v);
            assert_eq!(MsgType::from_u8(v).unwrap(), t);
        }
        assert!(MsgType::from_u8(0).is_err());
        assert!(MsgType::from_u8(11).is_err());
    }

    #[test]
    fn seal_open_roundtrip_all_plaintexts() {
        let key = [0x11u8; 32];
        let aad = b"hdr";
        let n = AeadNonce::from_bytes([9; 12]);

        let init = AuthInitPlain {
            user: alice(),
            leader: leader(),
            nonce: nonce(1),
        };
        let body = seal(&key, n, aad, &init);
        assert_eq!(open::<AuthInitPlain>(&key, aad, &body).unwrap(), init);

        let kd = KeyDistPlain {
            leader: leader(),
            user: alice(),
            user_nonce: nonce(1),
            leader_nonce: nonce(2),
            session_key: [3; 32],
        };
        let body = seal(&key, n, aad, &kd);
        assert_eq!(open::<KeyDistPlain>(&key, aad, &body).unwrap(), kd);

        let ack = NonceAckPlain {
            user: alice(),
            leader: leader(),
            acked_nonce: nonce(2),
            next_nonce: nonce(3),
        };
        let body = seal(&key, n, aad, &ack);
        assert_eq!(open::<NonceAckPlain>(&key, aad, &body).unwrap(), ack);

        let admin = AdminPlain {
            leader: leader(),
            user: alice(),
            user_nonce: nonce(3),
            leader_nonce: nonce(4),
            payload: AdminPayload::NewGroupKey {
                epoch: 3,
                key: [7; 32],
                iv: [8; 12],
            },
        };
        let body = seal(&key, n, aad, &admin);
        assert_eq!(open::<AdminPlain>(&key, aad, &body).unwrap(), admin);

        let close = ClosePlain {
            user: alice(),
            leader: leader(),
        };
        let body = seal(&key, n, aad, &close);
        assert_eq!(open::<ClosePlain>(&key, aad, &body).unwrap(), close);

        let hb = HeartbeatPlain {
            user: alice(),
            leader: leader(),
            seq: 42,
            epoch: 6,
        };
        let body = seal(&key, n, aad, &hb);
        assert_eq!(open::<HeartbeatPlain>(&key, aad, &body).unwrap(), hb);
    }

    #[test]
    fn open_rejects_wrong_aad_relabeling() {
        // Re-labeling an AuthAckKey as an Ack changes the AAD and must be
        // rejected — the wire-level counterpart of the model's label
        // discipline.
        let key = [0x22u8; 32];
        let n = AeadNonce::from_bytes([1; 12]);
        let ack = NonceAckPlain {
            user: alice(),
            leader: leader(),
            acked_nonce: nonce(1),
            next_nonce: nonce(2),
        };
        let env1 = Envelope {
            msg_type: MsgType::AuthAckKey,
            sender: alice(),
            recipient: leader(),
            group: None,
            body: vec![],
        };
        let env2 = Envelope {
            msg_type: MsgType::Ack,
            ..env1.clone()
        };
        let body = seal(&key, n, &env1.header_aad(), &ack);
        assert!(open::<NonceAckPlain>(&key, &env1.header_aad(), &body).is_ok());
        assert!(matches!(
            open::<NonceAckPlain>(&key, &env2.header_aad(), &body),
            Err(OpenError::Crypto(_))
        ));
    }

    #[test]
    fn open_rejects_wrong_key() {
        let n = AeadNonce::from_bytes([1; 12]);
        let close = ClosePlain {
            user: alice(),
            leader: leader(),
        };
        let body = seal(&[1; 32], n, b"", &close);
        assert!(matches!(
            open::<ClosePlain>(&[2; 32], b"", &body),
            Err(OpenError::Crypto(_))
        ));
    }

    #[test]
    fn payload_roundtrips() {
        let payloads = vec![
            AdminPayload::NewGroupKey {
                epoch: 1,
                key: [1; 32],
                iv: [2; 12],
            },
            AdminPayload::MemberJoined(alice()),
            AdminPayload::MemberLeft(leader()),
            AdminPayload::Welcome {
                members: vec![alice(), leader()],
                epoch: 9,
                group_key: [3; 32],
                iv: [4; 12],
            },
            AdminPayload::AppData(b"hello group"[..].into()),
            AdminPayload::AppData([][..].into()),
            AdminPayload::Welcome {
                members: vec![],
                epoch: 0,
                group_key: [0; 32],
                iv: [0; 12],
            },
            AdminPayload::PathSync {
                epoch: 12,
                leaf_index: 5,
                leaf_count: 9,
                path_keys: vec![[1; 32], [2; 32], [3; 32], [4; 32], [5; 32]],
            },
            AdminPayload::PathSync {
                epoch: 1,
                leaf_index: 0,
                leaf_count: 1,
                path_keys: vec![[9; 32]],
            },
        ];
        for p in payloads {
            let bytes = encode(&p);
            assert_eq!(decode::<AdminPayload>(&bytes).unwrap(), p);
        }
    }

    #[test]
    fn payload_rejects_unknown_tag_and_huge_roster() {
        assert!(matches!(
            decode::<AdminPayload>(&[99]),
            Err(WireError::UnknownTag { tag: 99 })
        ));
        let mut w = Writer::new();
        w.put_u8(TAG_WELCOME);
        w.put_u32(1_000_000);
        assert!(decode::<AdminPayload>(&w.finish()).is_err());
        // PathSync path length is bounded by the 32-level tree depth.
        let mut w = Writer::new();
        w.put_u8(TAG_PATH_SYNC);
        w.put_u64(1);
        w.put_u32(0);
        w.put_u32(1);
        w.put_u32(1_000);
        assert!(matches!(
            decode::<AdminPayload>(&w.finish()),
            Err(WireError::LengthOverflow)
        ));
    }

    #[test]
    fn path_update_wire_roundtrip_and_bounds() {
        let wire = PathUpdateWire {
            epoch: 8,
            leaf_count: 70,
            updated_leaf: 33,
            ciphers: vec![
                (
                    66,
                    SealedBody {
                        nonce: [1; 12],
                        ciphertext: vec![0xaa; 48],
                    },
                ),
                (
                    131,
                    SealedBody {
                        nonce: [2; 12],
                        ciphertext: vec![0xbb; 48],
                    },
                ),
            ],
        };
        let bytes = encode(&wire);
        assert_eq!(decode::<PathUpdateWire>(&bytes).unwrap(), wire);
        // Empty cipher list is legal (a one-member tree join).
        let empty = PathUpdateWire {
            epoch: 1,
            leaf_count: 1,
            updated_leaf: 0,
            ciphers: vec![],
        };
        assert_eq!(decode::<PathUpdateWire>(&encode(&empty)).unwrap(), empty);
        // A claimed cipher count past the cap is rejected before allocation.
        let mut w = Writer::new();
        w.put_u64(1);
        w.put_u32(4096);
        w.put_u32(0);
        w.put_u32(1_000_000);
        assert!(matches!(
            decode::<PathUpdateWire>(&w.finish()),
            Err(WireError::LengthOverflow)
        ));
    }

    #[test]
    fn path_update_aad_binds_every_field() {
        let base = path_update_aad(&leader(), 5, 8, 3, 9, None);
        assert_ne!(base, path_update_aad(&alice(), 5, 8, 3, 9, None));
        assert_ne!(base, path_update_aad(&leader(), 6, 8, 3, 9, None));
        assert_ne!(base, path_update_aad(&leader(), 5, 9, 3, 9, None));
        assert_ne!(base, path_update_aad(&leader(), 5, 8, 4, 9, None));
        assert_ne!(base, path_update_aad(&leader(), 5, 8, 3, 10, None));
        // Distinct domain from the broadcast AAD.
        assert_ne!(base, group_broadcast_aad(&leader(), 5, 9, None));
    }

    #[test]
    fn group_broadcast_wire_roundtrip() {
        let wire = GroupBroadcastWire {
            epoch: 7,
            seq: 41,
            ciphertext: vec![0xde, 0xad, 0xbe, 0xef],
        };
        let bytes = encode(&wire);
        assert_eq!(decode::<GroupBroadcastWire>(&bytes).unwrap(), wire);
    }

    #[test]
    fn group_broadcast_aad_binds_leader_epoch_and_seq() {
        let base = group_broadcast_aad(&leader(), 3, 9, None);
        assert_ne!(base, group_broadcast_aad(&alice(), 3, 9, None));
        assert_ne!(base, group_broadcast_aad(&leader(), 4, 9, None));
        assert_ne!(base, group_broadcast_aad(&leader(), 3, 10, None));
        // Distinct from the member-originated group-data AAD domain.
        assert_ne!(base, group_data_aad(&leader(), 3, None));
    }

    #[test]
    fn open_rejects_garbage_body() {
        assert!(open::<ClosePlain>(&[0; 32], b"", &[1, 2, 3]).is_err());
        assert!(open::<ClosePlain>(&[0; 32], b"", &[]).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_actor() -> impl Strategy<Value = ActorId> {
        "[a-z][a-z0-9]{0,15}".prop_map(|s| ActorId::new(s).unwrap())
    }

    proptest! {
        #[test]
        fn admin_plain_roundtrip(
            user in arb_actor(),
            leader in arb_actor(),
            un in proptest::array::uniform16(any::<u8>()),
            ln in proptest::array::uniform16(any::<u8>()),
            data in proptest::collection::vec(any::<u8>(), 0..128),
        ) {
            let plain = AdminPlain {
                leader,
                user,
                user_nonce: ProtocolNonce::from_bytes(un),
                leader_nonce: ProtocolNonce::from_bytes(ln),
                payload: AdminPayload::AppData(data.into()),
            };
            let bytes = encode(&plain);
            prop_assert_eq!(decode::<AdminPlain>(&bytes).unwrap(), plain);
        }

        #[test]
        fn envelope_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = decode::<Envelope>(&bytes);
            let _ = decode::<AdminPayload>(&bytes);
            let _ = decode::<SealedBody>(&bytes);
            let _ = decode::<PathUpdateWire>(&bytes);
        }
    }
}
