//! Actor identifiers.

use crate::codec::{Decode, Encode, Reader, WireError, Writer};
use std::fmt;

/// Maximum length of an actor identifier in bytes.
pub const MAX_ACTOR_ID_LEN: usize = 64;

/// An actor (user or leader) identifier: a short UTF-8 string.
///
/// # Example
///
/// ```
/// use enclaves_wire::ActorId;
/// let alice = ActorId::new("alice")?;
/// assert_eq!(alice.as_str(), "alice");
/// # Ok::<(), enclaves_wire::WireError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(String);

impl ActorId {
    /// Creates an identifier after validating length and characters.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::InvalidActorId`] if the name is empty, longer
    /// than [`MAX_ACTOR_ID_LEN`] bytes, or contains control characters.
    pub fn new(name: impl Into<String>) -> Result<Self, WireError> {
        let name = name.into();
        if name.is_empty() || name.len() > MAX_ACTOR_ID_LEN {
            return Err(WireError::InvalidActorId);
        }
        if name.chars().any(char::is_control) {
            return Err(WireError::InvalidActorId);
        }
        Ok(ActorId(name))
    }

    /// The identifier as a string slice.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ActorId({})", self.0)
    }
}

impl std::str::FromStr for ActorId {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ActorId::new(s)
    }
}

impl Encode for ActorId {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self.0.as_bytes());
    }
}

impl Decode for ActorId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let bytes = r.take_bytes()?;
        let s = std::str::from_utf8(bytes).map_err(|_| WireError::InvalidActorId)?;
        ActorId::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode, encode};

    #[test]
    fn valid_ids() {
        assert!(ActorId::new("alice").is_ok());
        assert!(ActorId::new("group-leader.example.org").is_ok());
        assert!(ActorId::new("日本語ユーザー").is_ok());
    }

    #[test]
    fn invalid_ids() {
        assert_eq!(ActorId::new(""), Err(WireError::InvalidActorId));
        assert_eq!(ActorId::new("a\nb"), Err(WireError::InvalidActorId));
        assert_eq!(ActorId::new("x\u{0}"), Err(WireError::InvalidActorId));
        let long = "x".repeat(MAX_ACTOR_ID_LEN + 1);
        assert_eq!(ActorId::new(long), Err(WireError::InvalidActorId));
        let max = "x".repeat(MAX_ACTOR_ID_LEN);
        assert!(ActorId::new(max).is_ok());
    }

    #[test]
    fn roundtrip_encoding() {
        let id = ActorId::new("carol").unwrap();
        let bytes = encode(&id);
        let back: ActorId = decode(&bytes).unwrap();
        assert_eq!(back, id);
    }

    #[test]
    fn decode_rejects_invalid_utf8() {
        // Length-prefix 2 then invalid UTF-8.
        let bytes = vec![0, 0, 0, 2, 0xFF, 0xFE];
        assert!(decode::<ActorId>(&bytes).is_err());
    }

    #[test]
    fn from_str_parses() {
        let id: ActorId = "dave".parse().unwrap();
        assert_eq!(id.as_str(), "dave");
        assert!("".parse::<ActorId>().is_err());
    }
}
