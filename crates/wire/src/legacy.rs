//! Wire format of the *original* Enclaves protocols (Section 2.2).
//!
//! Kept for the baseline implementation and the attack demonstrations in
//! `enclaves-core::attacks`. The weaknesses are intentional and faithful to
//! the paper:
//!
//! * the pre-authentication exchange is cleartext;
//! * `new_key` carries no freshness evidence;
//! * `mem_removed` is protected only by the shared group key.

use crate::actor::ActorId;
use crate::codec::{Decode, Encode, Reader, WireError, Writer};
use enclaves_crypto::nonce::ProtocolNonce;

/// Message types of the legacy protocol.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum LegacyMsgType {
    /// `A → L`: `req_open` (cleartext).
    ReqOpen = 0x10,
    /// `L → A`: `ack_open` (cleartext).
    AckOpen = 0x11,
    /// `L → A`: `connection_denied` (cleartext).
    ConnectionDenied = 0x12,
    /// `A → L`: authentication message 1, `{A, L, N1}_Pa`.
    Auth1 = 0x13,
    /// `L → A`: authentication message 2, `{L, A, N1, N2, Ka, IV, Kg}_Pa`.
    Auth2 = 0x14,
    /// `A → L`: authentication message 3, `{N2}_Ka`.
    Auth3 = 0x15,
    /// `L → A`: `new_key, {Kg', IV}_Ka`.
    NewKey = 0x16,
    /// `A → L`: `new_key_ack, {Kg'}_Kg'`.
    NewKeyAck = 0x17,
    /// `L → member`: `mem_removed, {A}_Kg`.
    MemRemoved = 0x18,
    /// `L → member`: `mem_joined, {A}_Kg`.
    MemJoined = 0x19,
    /// `A → L`: `req_close` (cleartext).
    ReqClose = 0x1A,
    /// `L → A`: `close_connection` (cleartext).
    CloseConnection = 0x1B,
    /// Group payload relayed by the leader, `{data}_Kg`.
    GroupData = 0x1C,
}

impl LegacyMsgType {
    /// Parses a tag byte.
    ///
    /// # Errors
    ///
    /// [`WireError::UnknownTag`] for unassigned values.
    pub fn from_u8(tag: u8) -> Result<Self, WireError> {
        Ok(match tag {
            0x10 => LegacyMsgType::ReqOpen,
            0x11 => LegacyMsgType::AckOpen,
            0x12 => LegacyMsgType::ConnectionDenied,
            0x13 => LegacyMsgType::Auth1,
            0x14 => LegacyMsgType::Auth2,
            0x15 => LegacyMsgType::Auth3,
            0x16 => LegacyMsgType::NewKey,
            0x17 => LegacyMsgType::NewKeyAck,
            0x18 => LegacyMsgType::MemRemoved,
            0x19 => LegacyMsgType::MemJoined,
            0x1A => LegacyMsgType::ReqClose,
            0x1B => LegacyMsgType::CloseConnection,
            0x1C => LegacyMsgType::GroupData,
            tag => return Err(WireError::UnknownTag { tag }),
        })
    }
}

/// A legacy protocol message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LegacyEnvelope {
    /// Message type.
    pub msg_type: LegacyMsgType,
    /// Apparent sender.
    pub sender: ActorId,
    /// Intended recipient.
    pub recipient: ActorId,
    /// Body (cleartext or a sealed blob, per message type).
    pub body: Vec<u8>,
}

impl Encode for LegacyEnvelope {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.msg_type as u8);
        self.sender.encode(w);
        self.recipient.encode(w);
        w.put_bytes(&self.body);
    }
}

impl Decode for LegacyEnvelope {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(LegacyEnvelope {
            msg_type: LegacyMsgType::from_u8(r.take_u8()?)?,
            sender: ActorId::decode(r)?,
            recipient: ActorId::decode(r)?,
            body: r.take_bytes()?.to_vec(),
        })
    }
}

/// Plaintext of legacy authentication message 2:
/// `{L, A, N1, N2, Ka, IV, Kg}` sealed under `P_a`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LegacyAuth2Plain {
    /// The leader.
    pub leader: ActorId,
    /// The user.
    pub user: ActorId,
    /// Echo of the user nonce.
    pub user_nonce: ProtocolNonce,
    /// Fresh leader nonce.
    pub leader_nonce: ProtocolNonce,
    /// The session key.
    pub session_key: [u8; 32],
    /// Initialization vector.
    pub iv: [u8; 12],
    /// The current group key (sent during authentication — a legacy
    /// design choice the improved protocol removed).
    pub group_key: [u8; 32],
}

impl Encode for LegacyAuth2Plain {
    fn encode(&self, w: &mut Writer) {
        self.leader.encode(w);
        self.user.encode(w);
        self.user_nonce.encode(w);
        self.leader_nonce.encode(w);
        w.put_array(&self.session_key);
        w.put_array(&self.iv);
        w.put_array(&self.group_key);
    }
}

impl Decode for LegacyAuth2Plain {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(LegacyAuth2Plain {
            leader: ActorId::decode(r)?,
            user: ActorId::decode(r)?,
            user_nonce: ProtocolNonce::decode(r)?,
            leader_nonce: ProtocolNonce::decode(r)?,
            session_key: r.take_array::<32>()?,
            iv: r.take_array::<12>()?,
            group_key: r.take_array::<32>()?,
        })
    }
}

/// Plaintext of a legacy `new_key` message: `{Kg', IV}` sealed under `K_a`.
///
/// Note what is *missing* compared to the improved `AdminMsg`: no nonces,
/// no identities — nothing proves freshness or origin beyond possession of
/// `K_a`, which is why replays succeed (Section 2.3).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LegacyNewKeyPlain {
    /// The new group key.
    pub group_key: [u8; 32],
    /// The new initialization vector.
    pub iv: [u8; 12],
}

impl Encode for LegacyNewKeyPlain {
    fn encode(&self, w: &mut Writer) {
        w.put_array(&self.group_key);
        w.put_array(&self.iv);
    }
}

impl Decode for LegacyNewKeyPlain {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(LegacyNewKeyPlain {
            group_key: r.take_array::<32>()?,
            iv: r.take_array::<12>()?,
        })
    }
}

/// Plaintext of a legacy membership notice: `{member}` sealed under `K_g`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LegacyMemberNotice {
    /// The member that joined or left.
    pub member: ActorId,
}

impl Encode for LegacyMemberNotice {
    fn encode(&self, w: &mut Writer) {
        self.member.encode(w);
    }
}

impl Decode for LegacyMemberNotice {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(LegacyMemberNotice {
            member: ActorId::decode(r)?,
        })
    }
}

/// Plaintext of legacy authentication message 3: `{N2}` sealed under `K_a`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LegacyAuth3Plain {
    /// The leader nonce being acknowledged.
    pub leader_nonce: ProtocolNonce,
}

impl Encode for LegacyAuth3Plain {
    fn encode(&self, w: &mut Writer) {
        self.leader_nonce.encode(w);
    }
}

impl Decode for LegacyAuth3Plain {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(LegacyAuth3Plain {
            leader_nonce: ProtocolNonce::decode(r)?,
        })
    }
}

const _: () = {
    // Legacy tags must not collide with improved-protocol tags (1..=6).
    assert!(LegacyMsgType::ReqOpen as u8 > 6);
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode, encode};
    use enclaves_crypto::nonce::PROTOCOL_NONCE_LEN;

    fn alice() -> ActorId {
        ActorId::new("alice").unwrap()
    }

    fn leader() -> ActorId {
        ActorId::new("leader").unwrap()
    }

    #[test]
    fn envelope_roundtrip() {
        let env = LegacyEnvelope {
            msg_type: LegacyMsgType::NewKey,
            sender: leader(),
            recipient: alice(),
            body: vec![9; 44],
        };
        assert_eq!(decode::<LegacyEnvelope>(&encode(&env)).unwrap(), env);
    }

    #[test]
    fn all_tags_roundtrip() {
        for tag in 0x10..=0x1C {
            let t = LegacyMsgType::from_u8(tag).unwrap();
            assert_eq!(t as u8, tag);
        }
        assert!(LegacyMsgType::from_u8(0x0F).is_err());
        assert!(LegacyMsgType::from_u8(0x1D).is_err());
    }

    #[test]
    fn auth2_roundtrip() {
        let p = LegacyAuth2Plain {
            leader: leader(),
            user: alice(),
            user_nonce: ProtocolNonce::from_bytes([1; PROTOCOL_NONCE_LEN]),
            leader_nonce: ProtocolNonce::from_bytes([2; PROTOCOL_NONCE_LEN]),
            session_key: [3; 32],
            iv: [4; 12],
            group_key: [5; 32],
        };
        assert_eq!(decode::<LegacyAuth2Plain>(&encode(&p)).unwrap(), p);
    }

    #[test]
    fn new_key_plain_has_no_freshness_fields() {
        // Structural check documenting the vulnerability: the encoding is
        // exactly 32 + 12 bytes, leaving no room for nonces.
        let p = LegacyNewKeyPlain {
            group_key: [7; 32],
            iv: [8; 12],
        };
        assert_eq!(encode(&p).len(), 44);
        assert_eq!(decode::<LegacyNewKeyPlain>(&encode(&p)).unwrap(), p);
    }

    #[test]
    fn member_notice_and_auth3_roundtrip() {
        let m = LegacyMemberNotice { member: alice() };
        assert_eq!(decode::<LegacyMemberNotice>(&encode(&m)).unwrap(), m);
        let a3 = LegacyAuth3Plain {
            leader_nonce: ProtocolNonce::from_bytes([6; PROTOCOL_NONCE_LEN]),
        };
        assert_eq!(decode::<LegacyAuth3Plain>(&encode(&a3)).unwrap(), a3);
    }
}
