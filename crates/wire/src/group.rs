//! Enclave (group) identifiers.
//!
//! A multi-enclave leader service hosts many independent groups behind
//! one listener; every envelope belonging to such a service carries the
//! enclave's [`GroupId`] in its cleartext header, and — because the
//! header is AEAD-bound — inside every seal's associated data. A frame
//! sealed for enclave A therefore cannot verify in enclave B even when
//! the two enclaves share a member name and password (and hence the
//! same derived `P_a`).
//!
//! Single-group deployments omit the identifier entirely: an envelope
//! with no group id encodes byte-identically to the pre-multigroup wire
//! format, so legacy peers interoperate unchanged.

use crate::codec::{Decode, Encode, Reader, WireError, Writer};
use std::fmt;

/// Maximum length of a group identifier in bytes.
pub const MAX_GROUP_ID_LEN: usize = 64;

/// An enclave (group) identifier: a short UTF-8 string.
///
/// # Example
///
/// ```
/// use enclaves_wire::GroupId;
/// let ops = GroupId::new("ops-room")?;
/// assert_eq!(ops.as_str(), "ops-room");
/// # Ok::<(), enclaves_wire::WireError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(String);

impl GroupId {
    /// Creates an identifier after validating length and characters.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::InvalidGroupId`] if the name is empty, longer
    /// than [`MAX_GROUP_ID_LEN`] bytes, or contains control characters.
    pub fn new(name: impl Into<String>) -> Result<Self, WireError> {
        let name = name.into();
        if name.is_empty() || name.len() > MAX_GROUP_ID_LEN {
            return Err(WireError::InvalidGroupId);
        }
        if name.chars().any(char::is_control) {
            return Err(WireError::InvalidGroupId);
        }
        Ok(GroupId(name))
    }

    /// The identifier as a string slice.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GroupId({})", self.0)
    }
}

impl std::str::FromStr for GroupId {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        GroupId::new(s)
    }
}

impl Encode for GroupId {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self.0.as_bytes());
    }
}

impl Decode for GroupId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let bytes = r.take_bytes()?;
        let s = std::str::from_utf8(bytes).map_err(|_| WireError::InvalidGroupId)?;
        GroupId::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode, encode};

    #[test]
    fn valid_ids() {
        assert!(GroupId::new("ops").is_ok());
        assert!(GroupId::new("enclave-7.example.org").is_ok());
        assert!(GroupId::new("日本語グループ").is_ok());
    }

    #[test]
    fn invalid_ids() {
        assert_eq!(GroupId::new(""), Err(WireError::InvalidGroupId));
        assert_eq!(GroupId::new("a\nb"), Err(WireError::InvalidGroupId));
        assert_eq!(GroupId::new("x\u{0}"), Err(WireError::InvalidGroupId));
        let long = "x".repeat(MAX_GROUP_ID_LEN + 1);
        assert_eq!(GroupId::new(long), Err(WireError::InvalidGroupId));
        let max = "x".repeat(MAX_GROUP_ID_LEN);
        assert!(GroupId::new(max).is_ok());
    }

    #[test]
    fn roundtrip_encoding() {
        let id = GroupId::new("enclave-42").unwrap();
        let bytes = encode(&id);
        let back: GroupId = decode(&bytes).unwrap();
        assert_eq!(back, id);
    }

    #[test]
    fn decode_rejects_invalid_utf8() {
        let bytes = vec![0, 0, 0, 2, 0xFF, 0xFE];
        assert!(decode::<GroupId>(&bytes).is_err());
    }

    #[test]
    fn from_str_parses() {
        let id: GroupId = "ops".parse().unwrap();
        assert_eq!(id.as_str(), "ops");
        assert!("".parse::<GroupId>().is_err());
    }
}
