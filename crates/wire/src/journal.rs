//! Wire formats for the leader's write-ahead journal.
//!
//! The journal is an append-only file of sealed records, one stream per
//! enclave. Each record's plaintext is a [`JournalPayload`]: either the
//! one-time [`JournalGenesis`] describing the group's static configuration
//! (always record 1), or a [`JournalTransition`] capturing one roster/epoch
//! transition together with the exact RNG bytes the transition consumed
//! (the "tape") and the epoch stamp it produced. Replaying the payloads in
//! order through the same transition functions rebuilds the leader core
//! byte-for-byte — the tape makes the replay deterministic, and the stamp
//! lets the replayer cross-check that it really did.
//!
//! These are plaintext structures only; the sealing envelope (length
//! prefix, sequence number, CRC, nonce, AEAD) lives in
//! `enclaves-core::journal`, which binds the sequence and CRC into the
//! AAD so truncation, reordering, and bit-flips all fail authentication.

use crate::actor::ActorId;
use crate::codec::{Decode, Encode, Reader, WireError, Writer};
use crate::group::GroupId;

/// Magic bytes identifying a journal record envelope ("Enclaves Journal
/// Record v1"). Bound into every record's AAD.
pub const JOURNAL_MAGIC: &[u8; 4] = b"EJR1";

fn put_bool(w: &mut Writer, v: bool) {
    w.put_u8(u8::from(v));
}

fn take_bool(r: &mut Reader<'_>) -> Result<bool, WireError> {
    match r.take_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        tag => Err(WireError::UnknownTag { tag }),
    }
}

fn put_opt_u64(w: &mut Writer, v: Option<u64>) {
    match v {
        None => w.put_u8(0),
        Some(n) => {
            w.put_u8(1);
            w.put_u64(n);
        }
    }
}

fn take_opt_u64(r: &mut Reader<'_>) -> Result<Option<u64>, WireError> {
    match r.take_u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.take_u64()?)),
        tag => Err(WireError::UnknownTag { tag }),
    }
}

/// One journaled roster/epoch operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalOp {
    /// A member completed the join handshake and entered the roster.
    Join(ActorId),
    /// A member departed voluntarily (Close).
    Leave(ActorId),
    /// The leader expelled a member administratively.
    Expel(ActorId),
    /// The liveness layer evicted an unresponsive member.
    Evict(ActorId),
    /// An explicit (manual or policy) rekey with no roster change.
    Rekey,
    /// A crash-recovery epoch advance: the recovered core jumped to
    /// `target_epoch` to fence the pre-crash epoch.
    Recover {
        /// The epoch the recovered core installed.
        target_epoch: u64,
    },
}

impl Encode for JournalOp {
    fn encode(&self, w: &mut Writer) {
        match self {
            JournalOp::Join(user) => {
                w.put_u8(1);
                user.encode(w);
            }
            JournalOp::Leave(user) => {
                w.put_u8(2);
                user.encode(w);
            }
            JournalOp::Expel(user) => {
                w.put_u8(3);
                user.encode(w);
            }
            JournalOp::Evict(user) => {
                w.put_u8(4);
                user.encode(w);
            }
            JournalOp::Rekey => w.put_u8(5),
            JournalOp::Recover { target_epoch } => {
                w.put_u8(6);
                w.put_u64(*target_epoch);
            }
        }
    }
}

impl Decode for JournalOp {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.take_u8()? {
            1 => Ok(JournalOp::Join(ActorId::decode(r)?)),
            2 => Ok(JournalOp::Leave(ActorId::decode(r)?)),
            3 => Ok(JournalOp::Expel(ActorId::decode(r)?)),
            4 => Ok(JournalOp::Evict(ActorId::decode(r)?)),
            5 => Ok(JournalOp::Rekey),
            6 => Ok(JournalOp::Recover {
                target_epoch: r.take_u64()?,
            }),
            tag => Err(WireError::UnknownTag { tag }),
        }
    }
}

/// The epoch a transition left the group in: number, group key, base IV.
///
/// Recorded after applying the transition so replay can cross-check that
/// the deterministic re-execution landed in the identical epoch. A stamp
/// with `epoch == 0` means the group had no epoch yet (empty group before
/// its first join).
#[derive(Clone, PartialEq, Eq)]
pub struct EpochStamp {
    /// The epoch number (0 = no epoch established).
    pub epoch: u64,
    /// The group key bytes (all zero when `epoch == 0`).
    pub key: [u8; 32],
    /// The broadcast base IV (all zero when `epoch == 0`).
    pub iv: [u8; 12],
}

impl std::fmt::Debug for EpochStamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("EpochStamp")
            .field("epoch", &self.epoch)
            .finish_non_exhaustive()
    }
}

impl Encode for EpochStamp {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.epoch);
        w.put_array(&self.key);
        w.put_array(&self.iv);
    }
}

impl Decode for EpochStamp {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(EpochStamp {
            epoch: r.take_u64()?,
            key: r.take_array::<32>()?,
            iv: r.take_array::<12>()?,
        })
    }
}

/// One roster/epoch transition: the operation, the RNG tape it consumed,
/// and the epoch stamp it produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalTransition {
    /// The operation applied.
    pub op: JournalOp,
    /// Every byte the transition drew from the leader's RNG, in draw
    /// order. Replay feeds these back so key material regenerates
    /// identically.
    pub tape: Vec<u8>,
    /// The epoch the group was left in.
    pub stamp: EpochStamp,
}

impl Encode for JournalTransition {
    fn encode(&self, w: &mut Writer) {
        self.op.encode(w);
        w.put_bytes(&self.tape);
        self.stamp.encode(w);
    }
}

impl Decode for JournalTransition {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(JournalTransition {
            op: JournalOp::decode(r)?,
            tape: r.take_bytes()?.to_vec(),
            stamp: EpochStamp::decode(r)?,
        })
    }
}

/// A serializable image of the leader's rekey policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RekeyPolicyWire {
    /// Rekey only on explicit request.
    Manual,
    /// Rekey when a member joins.
    OnJoin,
    /// Rekey when a member leaves.
    OnLeave,
    /// Rekey on both joins and leaves.
    OnJoinAndLeave,
    /// Rekey after every N broadcasts.
    EveryNMessages(u32),
}

impl Encode for RekeyPolicyWire {
    fn encode(&self, w: &mut Writer) {
        match self {
            RekeyPolicyWire::Manual => w.put_u8(1),
            RekeyPolicyWire::OnJoin => w.put_u8(2),
            RekeyPolicyWire::OnLeave => w.put_u8(3),
            RekeyPolicyWire::OnJoinAndLeave => w.put_u8(4),
            RekeyPolicyWire::EveryNMessages(n) => {
                w.put_u8(5);
                w.put_u32(*n);
            }
        }
    }
}

impl Decode for RekeyPolicyWire {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.take_u8()? {
            1 => Ok(RekeyPolicyWire::Manual),
            2 => Ok(RekeyPolicyWire::OnJoin),
            3 => Ok(RekeyPolicyWire::OnLeave),
            4 => Ok(RekeyPolicyWire::OnJoinAndLeave),
            5 => Ok(RekeyPolicyWire::EveryNMessages(r.take_u32()?)),
            tag => Err(WireError::UnknownTag { tag }),
        }
    }
}

/// A serializable image of the liveness configuration (durations as
/// nanoseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LivenessWire {
    /// Liveness poll cadence, in nanoseconds.
    pub poll_ns: u64,
    /// Base ARQ retransmit delay, in nanoseconds.
    pub retransmit_base_ns: u64,
    /// Retransmit backoff ceiling, in nanoseconds.
    pub retransmit_max_ns: u64,
    /// Retransmit jitter, in per-mille.
    pub jitter_pct: u32,
    /// Retransmit attempts before giving up on a member.
    pub max_attempts: u32,
    /// Heartbeat cadence, if heartbeats are enabled.
    pub heartbeat_interval_ns: Option<u64>,
    /// Silence window before eviction, if timeout eviction is enabled.
    pub liveness_timeout_ns: Option<u64>,
    /// Whether members should auto-rejoin after eviction.
    pub auto_rejoin: bool,
    /// Seed for deterministic retransmit jitter.
    pub jitter_seed: u64,
}

impl Encode for LivenessWire {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.poll_ns);
        w.put_u64(self.retransmit_base_ns);
        w.put_u64(self.retransmit_max_ns);
        w.put_u32(self.jitter_pct);
        w.put_u32(self.max_attempts);
        put_opt_u64(w, self.heartbeat_interval_ns);
        put_opt_u64(w, self.liveness_timeout_ns);
        put_bool(w, self.auto_rejoin);
        w.put_u64(self.jitter_seed);
    }
}

impl Decode for LivenessWire {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(LivenessWire {
            poll_ns: r.take_u64()?,
            retransmit_base_ns: r.take_u64()?,
            retransmit_max_ns: r.take_u64()?,
            jitter_pct: r.take_u32()?,
            max_attempts: r.take_u32()?,
            heartbeat_interval_ns: take_opt_u64(r)?,
            liveness_timeout_ns: take_opt_u64(r)?,
            auto_rejoin: take_bool(r)?,
            jitter_seed: r.take_u64()?,
        })
    }
}

/// The one-time first record of every stream: everything needed to
/// reconstruct a `LeaderCore` with an empty roster — identity, static
/// configuration, and the long-term key directory.
#[derive(Clone, PartialEq, Eq)]
pub struct JournalGenesis {
    /// The leader's identity.
    pub leader: ActorId,
    /// The enclave tag (`None` for a solo, untagged group).
    pub group: Option<GroupId>,
    /// The rekey policy.
    pub rekey_policy: RekeyPolicyWire,
    /// Whether the O(log N) key tree is enabled.
    pub tree_rekey: bool,
    /// Whether membership notices are broadcast.
    pub membership_notices: bool,
    /// Roster capacity.
    pub max_members: u64,
    /// Outstanding-admin-frame ceiling.
    pub max_pending_admin: u64,
    /// The liveness configuration.
    pub liveness: LivenessWire,
    /// The long-term key directory: `(user, P_a bytes)`.
    pub directory: Vec<(ActorId, [u8; 32])>,
}

impl std::fmt::Debug for JournalGenesis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The directory holds long-term keys; print names only.
        let names: Vec<&ActorId> = self.directory.iter().map(|(u, _)| u).collect();
        f.debug_struct("JournalGenesis")
            .field("leader", &self.leader)
            .field("group", &self.group)
            .field("rekey_policy", &self.rekey_policy)
            .field("tree_rekey", &self.tree_rekey)
            .field("directory", &names)
            .finish_non_exhaustive()
    }
}

impl Encode for JournalGenesis {
    fn encode(&self, w: &mut Writer) {
        self.leader.encode(w);
        match &self.group {
            None => w.put_u8(0),
            Some(g) => {
                w.put_u8(1);
                g.encode(w);
            }
        }
        self.rekey_policy.encode(w);
        put_bool(w, self.tree_rekey);
        put_bool(w, self.membership_notices);
        w.put_u64(self.max_members);
        w.put_u64(self.max_pending_admin);
        self.liveness.encode(w);
        w.put_u32(self.directory.len() as u32);
        for (user, key) in &self.directory {
            user.encode(w);
            w.put_array(key);
        }
    }
}

impl Decode for JournalGenesis {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let leader = ActorId::decode(r)?;
        let group = match r.take_u8()? {
            0 => None,
            1 => Some(GroupId::decode(r)?),
            tag => return Err(WireError::UnknownTag { tag }),
        };
        let rekey_policy = RekeyPolicyWire::decode(r)?;
        let tree_rekey = take_bool(r)?;
        let membership_notices = take_bool(r)?;
        let max_members = r.take_u64()?;
        let max_pending_admin = r.take_u64()?;
        let liveness = LivenessWire::decode(r)?;
        let count = r.take_u32()? as usize;
        // Each entry is at least 4 + 1 + 32 bytes; bound before allocating.
        if count > r.remaining() / 37 + 1 {
            return Err(WireError::LengthOverflow);
        }
        let mut directory = Vec::with_capacity(count);
        for _ in 0..count {
            let user = ActorId::decode(r)?;
            let key = r.take_array::<32>()?;
            directory.push((user, key));
        }
        Ok(JournalGenesis {
            leader,
            group,
            rekey_policy,
            tree_rekey,
            membership_notices,
            max_members,
            max_pending_admin,
            liveness,
            directory,
        })
    }
}

/// The plaintext of one journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalPayload {
    /// Stream header (always, and only, record 1).
    Genesis(JournalGenesis),
    /// One roster/epoch transition.
    Transition(JournalTransition),
}

impl Encode for JournalPayload {
    fn encode(&self, w: &mut Writer) {
        match self {
            JournalPayload::Genesis(g) => {
                w.put_u8(1);
                g.encode(w);
            }
            JournalPayload::Transition(t) => {
                w.put_u8(2);
                t.encode(w);
            }
        }
    }
}

impl Decode for JournalPayload {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.take_u8()? {
            1 => Ok(JournalPayload::Genesis(JournalGenesis::decode(r)?)),
            2 => Ok(JournalPayload::Transition(JournalTransition::decode(r)?)),
            tag => Err(WireError::UnknownTag { tag }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode, encode};

    fn id(s: &str) -> ActorId {
        ActorId::new(s).unwrap()
    }

    fn sample_liveness() -> LivenessWire {
        LivenessWire {
            poll_ns: 25_000_000,
            retransmit_base_ns: 100_000_000,
            retransmit_max_ns: 800_000_000,
            jitter_pct: 100,
            max_attempts: 6,
            heartbeat_interval_ns: Some(200_000_000),
            liveness_timeout_ns: None,
            auto_rejoin: true,
            jitter_seed: 42,
        }
    }

    fn sample_genesis() -> JournalGenesis {
        JournalGenesis {
            leader: id("leader"),
            group: Some(GroupId::new("alpha").unwrap()),
            rekey_policy: RekeyPolicyWire::OnJoinAndLeave,
            tree_rekey: true,
            membership_notices: true,
            max_members: 1024,
            max_pending_admin: 256,
            liveness: sample_liveness(),
            directory: vec![(id("alice"), [1; 32]), (id("bob"), [2; 32])],
        }
    }

    #[test]
    fn op_roundtrips() {
        let ops = [
            JournalOp::Join(id("alice")),
            JournalOp::Leave(id("bob")),
            JournalOp::Expel(id("carol")),
            JournalOp::Evict(id("dave")),
            JournalOp::Rekey,
            JournalOp::Recover { target_epoch: 99 },
        ];
        for op in ops {
            assert_eq!(decode::<JournalOp>(&encode(&op)).unwrap(), op);
        }
    }

    #[test]
    fn transition_roundtrips() {
        let t = JournalTransition {
            op: JournalOp::Join(id("alice")),
            tape: vec![7; 44],
            stamp: EpochStamp {
                epoch: 3,
                key: [9; 32],
                iv: [8; 12],
            },
        };
        let p = JournalPayload::Transition(t);
        assert_eq!(decode::<JournalPayload>(&encode(&p)).unwrap(), p);
    }

    #[test]
    fn genesis_roundtrips() {
        let p = JournalPayload::Genesis(sample_genesis());
        assert_eq!(decode::<JournalPayload>(&encode(&p)).unwrap(), p);
    }

    #[test]
    fn solo_group_and_empty_directory_roundtrip() {
        let mut g = sample_genesis();
        g.group = None;
        g.directory.clear();
        g.liveness.heartbeat_interval_ns = None;
        g.rekey_policy = RekeyPolicyWire::EveryNMessages(64);
        let p = JournalPayload::Genesis(g);
        assert_eq!(decode::<JournalPayload>(&encode(&p)).unwrap(), p);
    }

    #[test]
    fn bad_tags_rejected() {
        assert_eq!(
            decode::<JournalPayload>(&[9]),
            Err(WireError::UnknownTag { tag: 9 })
        );
        assert_eq!(
            decode::<JournalOp>(&[0]),
            Err(WireError::UnknownTag { tag: 0 })
        );
        // Bool bytes must be exactly 0 or 1.
        let mut bytes = encode(&JournalPayload::Genesis(sample_genesis()));
        // Flip the tree_rekey bool (find it by re-encoding with a marker is
        // brittle; instead decode a payload whose bool byte is corrupted).
        let ok = decode::<JournalPayload>(&bytes).unwrap();
        assert!(matches!(ok, JournalPayload::Genesis(_)));
        // Corrupt every byte position one at a time: decoding must never
        // panic, and either errors or yields a (different) valid value.
        for i in 0..bytes.len() {
            bytes[i] ^= 0xFF;
            let _ = decode::<JournalPayload>(&bytes);
            bytes[i] ^= 0xFF;
        }
    }

    #[test]
    fn stamp_debug_hides_key() {
        let s = EpochStamp {
            epoch: 5,
            key: [0xAA; 32],
            iv: [0xBB; 12],
        };
        let dbg = format!("{s:?}");
        assert!(dbg.contains("epoch"));
        assert!(!dbg.to_lowercase().contains("aa, aa"));
    }

    #[test]
    fn genesis_debug_hides_directory_keys() {
        let dbg = format!("{:?}", sample_genesis());
        assert!(dbg.contains("alice"));
        assert!(!dbg.contains("[1, 1"));
    }

    #[test]
    fn truncation_always_errors() {
        let bytes = encode(&JournalPayload::Genesis(sample_genesis()));
        for cut in 0..bytes.len() {
            assert!(
                decode::<JournalPayload>(&bytes[..cut]).is_err(),
                "truncation at {cut} decoded"
            );
        }
    }
}
