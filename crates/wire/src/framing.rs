//! Length-prefixed framing over byte streams.
//!
//! Frames are `u32` big-endian length followed by that many payload bytes.
//! Used by the TCP transport in `enclaves-net`; the simulated transport
//! passes frames directly.

use crate::codec::WireError;
use std::io::{Read, Write};

/// Maximum frame payload size (1 MiB): larger frames are rejected on both
/// ends before any allocation.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Writes one frame to `w`. A `&mut W` also works since `Write` is
/// implemented for mutable references.
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] if `payload` exceeds [`MAX_FRAME_LEN`];
/// [`WireError::Io`] on transport failure.
pub fn write_frame<W: Write>(mut w: W, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge);
    }
    let len = (payload.len() as u32).to_be_bytes();
    w.write_all(&len).map_err(|_| WireError::Io)?;
    w.write_all(payload).map_err(|_| WireError::Io)?;
    w.flush().map_err(|_| WireError::Io)?;
    Ok(())
}

/// Reads one frame from `r`. A `&mut R` also works since `Read` is
/// implemented for mutable references.
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] if the header promises more than
/// [`MAX_FRAME_LEN`] bytes; [`WireError::Io`] on transport failure
/// (including a cleanly closed stream).
pub fn read_frame<R: Read>(mut r: R) -> Result<Vec<u8>, WireError> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes).map_err(|_| WireError::Io)?;
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge);
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|_| WireError::Io)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_single_frame() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let got = read_frame(Cursor::new(&buf)).unwrap();
        assert_eq!(got, b"hello");
    }

    #[test]
    fn roundtrip_multiple_frames() {
        let mut buf = Vec::new();
        let frames: Vec<Vec<u8>> = vec![vec![], vec![1], vec![2; 1000]];
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut cursor = Cursor::new(&buf);
        for f in &frames {
            assert_eq!(&read_frame(&mut cursor).unwrap(), f);
        }
        // Stream exhausted: clean Io error, not a panic.
        assert_eq!(read_frame(&mut cursor), Err(WireError::Io));
    }

    #[test]
    fn oversize_write_rejected() {
        let mut buf = Vec::new();
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        assert_eq!(write_frame(&mut buf, &huge), Err(WireError::FrameTooLarge));
        assert!(buf.is_empty(), "nothing must be written on rejection");
    }

    #[test]
    fn oversize_header_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        assert_eq!(read_frame(Cursor::new(&buf)), Err(WireError::FrameTooLarge));
    }

    #[test]
    fn truncated_payload_errors() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_be_bytes());
        buf.extend_from_slice(b"abc");
        assert_eq!(read_frame(Cursor::new(&buf)), Err(WireError::Io));
    }

    #[test]
    fn max_size_frame_roundtrips() {
        let payload = vec![0xA5u8; MAX_FRAME_LEN];
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        assert_eq!(read_frame(Cursor::new(&buf)).unwrap(), payload);
    }
}
