//! Wire formats for the Enclaves group-management protocols.
//!
//! This crate defines the concrete byte-level encodings used by the runtime
//! implementation in `enclaves-core`:
//!
//! * [`actor`] — actor (user/leader) identifiers.
//! * [`group`] — enclave (group) identifiers for multi-enclave services.
//! * [`codec`] — a small deterministic binary codec (type-tagged,
//!   length-prefixed) with no reflection and no external schema.
//! * [`message`] — the improved protocol of Section 3.2: envelopes carrying
//!   AEAD-sealed bodies, plus the plaintext structures that get sealed.
//! * [`legacy`] — the original protocol of Section 2.2, implemented for the
//!   baseline/attack demonstrations.
//! * [`journal`] — plaintext record formats for the leader's write-ahead
//!   journal (genesis configuration + RNG-taped transitions).
//! * [`framing`] — length-prefixed framing over any `Read`/`Write` stream.
//!
//! # Design
//!
//! Every protocol message is an [`message::Envelope`]: a cleartext header
//! (message type, apparent sender, intended recipient) and an opaque body.
//! For encrypted messages the body is a ChaCha20-Poly1305 seal of a
//! [`codec::Encode`]-encoded plaintext structure, with the header bytes
//! bound as associated data — so a message cannot be re-labeled or
//! re-addressed without failing authentication (the byte-level analogue of
//! the identities the paper embeds in every encrypted field).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actor;
pub mod codec;
pub mod framing;
pub mod group;
pub mod journal;
pub mod legacy;
pub mod message;

pub use actor::ActorId;
pub use codec::WireError;
pub use group::GroupId;
