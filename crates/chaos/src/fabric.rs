//! Where the chaos happens: an abstraction over the network the scenario
//! runs on, with two implementations — the in-process simulator (full
//! fault matrix: drops, duplicates, reorders, corruption, delay,
//! asymmetric partitions, kills) and real TCP sockets behind an
//! adversarial proxy (transport parity: the oracle must pass on the real
//! transport too, not just the simulator).

use crate::schedule::Schedule;
use enclaves_core::runtime::Reconnector;
use enclaves_net::sim::{Direction, SimConfig, SimListener, SimNet, SimStats};
use enclaves_net::tcp::{TcpAcceptor, TcpLink};
use enclaves_net::{Link, NetError};
use enclaves_wire::framing::{read_frame, write_frame};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::Write as _;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A network a chaos schedule can be executed against.
pub trait Fabric {
    /// Opens a fresh connection from `name` toward the leader.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    fn connect(&mut self, name: &str) -> Result<Box<dyn Link>, NetError>;

    /// Partitions `name`'s *current* connection: block the member→leader
    /// direction, the leader→member direction, or both. No-op on fabrics
    /// that cannot partition ([`Fabric::supports_partitions`]).
    fn partition(&mut self, name: &str, to_leader: bool, to_member: bool);

    /// Heals both directions of `name`'s current connection.
    fn heal(&mut self, name: &str);

    /// Heals every partition.
    fn heal_all(&mut self);

    /// Severs `name`'s current connection (both ends see a disconnect).
    fn kill(&mut self, name: &str);

    /// Delivers any frames a fault is still holding back.
    fn flush(&mut self);

    /// Turns all probabilistic faults off (used before the finalization
    /// probe, so recovery is limited by the protocol, not by luck).
    fn calm(&mut self);

    /// Whether [`Fabric::partition`] does anything here.
    fn supports_partitions(&self) -> bool;

    /// A closure `name`'s member runtime can use to re-reach the leader
    /// after a presumed death ([`enclaves_core::runtime::Reconnector`]).
    /// While `name` is [`Fabric::kill`]ed and not yet healed, the closure
    /// fails with [`NetError::Disconnected`] — a crashed member stays
    /// crashed until the schedule says otherwise. Default: this fabric
    /// cannot mint reconnectors.
    fn reconnector(&self, _name: &str) -> Option<Reconnector> {
        None
    }

    /// Simulator statistics, if this fabric has them.
    fn sim_stats(&self) -> Option<SimStats> {
        None
    }

    /// Mirrors the fabric's transport counters into `registry` (`net.*`
    /// names). Default: the fabric has no counters to mirror.
    fn attach_registry(&mut self, _registry: &enclaves_obs::Registry) {}
}

/// The in-process simulator fabric.
pub struct SimFabric {
    /// The underlying network (exposed for adversary access in tests).
    pub net: SimNet,
    seed: u64,
    /// Latest connection id per member name (a reconnect supersedes the
    /// previous connection; partition/kill always target the latest).
    /// Shared with reconnector closures so an auto-rejoin's fresh
    /// connection becomes the one later faults target.
    conns: Arc<Mutex<HashMap<String, usize>>>,
    /// Members whose wire was killed and not yet healed; their
    /// reconnectors fail until the schedule heals them.
    downed: Arc<Mutex<HashSet<String>>>,
}

impl SimFabric {
    /// Builds a simulator fabric carrying `config` faults and returns it
    /// with the leader's listener.
    ///
    /// # Panics
    ///
    /// Panics if the simulator refuses the listener (fresh net: it won't).
    #[must_use]
    pub fn new(config: SimConfig) -> (Self, SimListener) {
        let net = SimNet::new(config);
        let listener = net.listen("leader").expect("fresh SimNet");
        (
            SimFabric {
                net,
                seed: config.seed,
                conns: Arc::new(Mutex::new(HashMap::new())),
                downed: Arc::new(Mutex::new(HashSet::new())),
            },
            listener,
        )
    }

    /// A fabric for `schedule` with the full probabilistic fault matrix
    /// seeded from the schedule's seed.
    #[must_use]
    pub fn chaotic(schedule: &Schedule) -> (Self, SimListener) {
        Self::new(SimConfig::chaotic(schedule.seed))
    }
}

impl Fabric for SimFabric {
    fn connect(&mut self, name: &str) -> Result<Box<dyn Link>, NetError> {
        let link = self.net.connect(name, "leader")?;
        self.conns.lock().insert(name.to_string(), link.conn_id());
        Ok(Box::new(link))
    }

    fn partition(&mut self, name: &str, to_leader: bool, to_member: bool) {
        if let Some(&conn) = self.conns.lock().get(name) {
            if to_leader {
                self.net.set_blocked(conn, Direction::ToListener, true);
            }
            if to_member {
                self.net.set_blocked(conn, Direction::ToConnector, true);
            }
        }
    }

    fn heal(&mut self, name: &str) {
        self.downed.lock().remove(name);
        if let Some(&conn) = self.conns.lock().get(name) {
            self.net.set_blocked(conn, Direction::ToListener, false);
            self.net.set_blocked(conn, Direction::ToConnector, false);
        }
    }

    fn heal_all(&mut self) {
        self.downed.lock().clear();
        self.net.heal_all();
    }

    fn kill(&mut self, name: &str) {
        self.downed.lock().insert(name.to_string());
        if let Some(&conn) = self.conns.lock().get(name) {
            self.net.kill(conn);
        }
    }

    fn flush(&mut self) {
        self.net.flush_all();
    }

    fn calm(&mut self) {
        self.net.set_config(SimConfig {
            seed: self.seed,
            ..SimConfig::default()
        });
    }

    fn supports_partitions(&self) -> bool {
        true
    }

    fn reconnector(&self, name: &str) -> Option<Reconnector> {
        let net = self.net.clone();
        let conns = Arc::clone(&self.conns);
        let downed = Arc::clone(&self.downed);
        let name = name.to_string();
        Some(Box::new(move || {
            if downed.lock().contains(&name) {
                return Err(NetError::Disconnected);
            }
            let link = net.connect(&name, "leader")?;
            conns.lock().insert(name.clone(), link.conn_id());
            Ok(Box::new(link) as Box<dyn Link>)
        }))
    }

    fn sim_stats(&self) -> Option<SimStats> {
        Some(self.net.stats())
    }

    fn attach_registry(&mut self, registry: &enclaves_obs::Registry) {
        self.net.attach_registry(registry);
    }
}

/// Shared state of the adversarial TCP proxy.
struct ProxyShared {
    rng: Mutex<StdRng>,
    /// While set, frames pass unharmed.
    calm: AtomicBool,
    /// Probability a relayed frame is dropped (when not calm).
    drop_prob: f64,
    /// Probability a relayed frame is sent twice (when not calm).
    duplicate_prob: f64,
    /// Member names waiting to be matched to the next accepted proxy
    /// connection (the driver serializes connects, so FIFO matching is
    /// exact).
    pending: Mutex<VecDeque<String>>,
    /// Live socket pairs per member name, for [`Fabric::kill`].
    socks: Mutex<HashMap<String, Vec<TcpStream>>>,
}

/// Real TCP through a fault-injecting man-in-the-middle: each member
/// connection is terminated at the proxy, which re-frames it to the real
/// leader socket while dropping or duplicating whole frames under a
/// seeded RNG. Partitions are not supported (a TCP byte stream cannot
/// half-vanish without killing the connection); kills are.
pub struct TcpProxyFabric {
    shared: Arc<ProxyShared>,
    proxy_addr: SocketAddr,
}

impl TcpProxyFabric {
    /// Binds the real leader acceptor and the proxy in front of it,
    /// returning the fabric and the listener to spawn the leader on.
    /// `seed` drives the proxy's fault decisions; `drop_prob` /
    /// `duplicate_prob` are per relayed frame.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn new(
        seed: u64,
        drop_prob: f64,
        duplicate_prob: f64,
    ) -> Result<(Self, TcpAcceptor), NetError> {
        let ephemeral: SocketAddr = "127.0.0.1:0".parse().expect("literal addr");
        let acceptor = TcpAcceptor::bind(ephemeral)?;
        let leader_addr = acceptor.local_addr();

        let proxy_listener = std::net::TcpListener::bind(ephemeral)
            .map_err(|e| NetError::AcceptFailed(e.to_string()))?;
        let proxy_addr = proxy_listener
            .local_addr()
            .map_err(|e| NetError::AcceptFailed(e.to_string()))?;

        let shared = Arc::new(ProxyShared {
            rng: Mutex::new(StdRng::seed_from_u64(seed ^ 0x7C9_F417)),
            calm: AtomicBool::new(false),
            drop_prob,
            duplicate_prob,
            pending: Mutex::new(VecDeque::new()),
            socks: Mutex::new(HashMap::new()),
        });

        let accept_shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("chaos-tcp-proxy".into())
            .spawn(move || {
                // The proxy lives as long as connections keep coming; it
                // leaks with the test process when the run ends (accept
                // blocks forever) — acceptable for test support.
                for stream in proxy_listener.incoming() {
                    let Ok(member_side) = stream else { continue };
                    let Ok(leader_side) = TcpStream::connect(leader_addr) else {
                        continue;
                    };
                    let name = accept_shared
                        .pending
                        .lock()
                        .pop_front()
                        .unwrap_or_else(|| "?".to_string());
                    let handles: Vec<TcpStream> = [&member_side, &leader_side]
                        .iter()
                        .filter_map(|s| s.try_clone().ok())
                        .collect();
                    accept_shared.socks.lock().insert(name, handles);
                    spawn_pump(&accept_shared, &member_side, &leader_side, true);
                    spawn_pump(&accept_shared, &leader_side, &member_side, false);
                }
            })
            .expect("spawn proxy acceptor");

        Ok((TcpProxyFabric { shared, proxy_addr }, acceptor))
    }
}

/// Relays length-prefixed frames from `src` to `dst`, applying the
/// proxy's drop/duplicate faults. Faults only hit the member→leader
/// direction's *data* equally with leader→member; both directions share
/// the one seeded RNG, so a fixed seed reproduces the fault pattern for a
/// fixed frame sequence.
fn spawn_pump(shared: &Arc<ProxyShared>, src: &TcpStream, dst: &TcpStream, _uplink: bool) {
    let (Ok(src), Ok(dst)) = (src.try_clone(), dst.try_clone()) else {
        return;
    };
    let shared = Arc::clone(shared);
    let _ = std::thread::Builder::new()
        .name("chaos-tcp-pump".into())
        .spawn(move || {
            let mut src = std::io::BufReader::new(src);
            let mut dst = std::io::BufWriter::new(dst);
            while let Ok(frame) = read_frame(&mut src) {
                let (drop_it, dup_it) = if shared.calm.load(Ordering::Relaxed) {
                    (false, false)
                } else {
                    let mut rng = shared.rng.lock();
                    (
                        rng.gen::<f64>() < shared.drop_prob,
                        rng.gen::<f64>() < shared.duplicate_prob,
                    )
                };
                if drop_it {
                    continue;
                }
                if write_frame(&mut dst, &frame).is_err() {
                    break;
                }
                if dup_it && write_frame(&mut dst, &frame).is_err() {
                    break;
                }
                if dst.flush().is_err() {
                    break;
                }
            }
            // One side died: drop both halves so the peer notices.
            if let Ok(s) = src.into_inner().try_clone() {
                let _ = s.shutdown(Shutdown::Both);
            }
            if let Ok(d) = dst.into_inner() {
                let _ = d.shutdown(Shutdown::Both);
            }
        });
}

impl Fabric for TcpProxyFabric {
    fn connect(&mut self, name: &str) -> Result<Box<dyn Link>, NetError> {
        self.shared.pending.lock().push_back(name.to_string());
        let link = TcpLink::connect(self.proxy_addr)?;
        Ok(Box::new(link))
    }

    fn partition(&mut self, _name: &str, _to_leader: bool, _to_member: bool) {}

    fn heal(&mut self, _name: &str) {}

    fn heal_all(&mut self) {}

    fn kill(&mut self, name: &str) {
        if let Some(handles) = self.shared.socks.lock().remove(name) {
            for sock in handles {
                let _ = sock.shutdown(Shutdown::Both);
            }
        }
    }

    fn flush(&mut self) {}

    fn calm(&mut self) {
        self.shared.calm.store(true, Ordering::Relaxed);
    }

    fn supports_partitions(&self) -> bool {
        false
    }
}
