//! Chaos schedules: the event vocabulary, scripted construction, and the
//! seeded state-aware random generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One step of a chaos schedule. Member indices refer to the fixed cast
/// `m0..m{members-1}` of a [`Schedule`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Member `i` joins (first join or rejoin after a clean leave).
    Join(usize),
    /// Member `i` leaves voluntarily (sends `Close`).
    Leave(usize),
    /// The leader expels member `i`.
    Expel(usize),
    /// Member `i` crashes: its connection is severed mid-whatever and its
    /// runtime stops without a `Close`. The leader keeps the slot until an
    /// expel — a vanished link is not a departure.
    Crash(usize),
    /// A crashed member `i` comes back: the leader expels the stale slot,
    /// then the member joins again on a fresh connection.
    Reconnect(usize),
    /// The leader rotates the group key.
    Rekey,
    /// The leader broadcasts `payload` over the authenticated admin
    /// channel (stop-and-wait, exactly-once, in-order).
    AdminBroadcast(Vec<u8>),
    /// The leader broadcasts `payload` over the single-seal group-key data
    /// plane (fire-and-forget; drops legal, duplicates not).
    DataBroadcast(Vec<u8>),
    /// Partition member `i`'s connection: block the member→leader
    /// direction (`to_leader`), the leader→member direction (`to_member`),
    /// or both. Fabrics without partition support skip this.
    Partition {
        /// Which member's connection.
        member: usize,
        /// Block the member→leader direction.
        to_leader: bool,
        /// Block the leader→member direction.
        to_member: bool,
    },
    /// Heal both directions of member `i`'s connection.
    Heal(usize),
    /// Heal every partition.
    HealAll,
    /// Let the system run undisturbed for this many milliseconds.
    Settle(u64),
}

/// A reproducible chaos scenario: a seed (feeding both the network's fault
/// RNG and, for generated schedules, the generator), a cast size, and the
/// event script.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Seed for the network fault stream (and the generator, if random).
    pub seed: u64,
    /// Number of members in the cast (`m0..m{members-1}`).
    pub members: usize,
    /// The steps, executed in order.
    pub events: Vec<ChaosEvent>,
}

impl Schedule {
    /// A scripted schedule.
    #[must_use]
    pub fn scripted(seed: u64, members: usize, events: Vec<ChaosEvent>) -> Self {
        Schedule {
            seed,
            members,
            events,
        }
    }

    /// The first `n` events of this schedule (used by shrinking).
    #[must_use]
    pub fn prefix(&self, n: usize) -> Self {
        Schedule {
            seed: self.seed,
            members: self.members,
            events: self.events[..n.min(self.events.len())].to_vec(),
        }
    }

    /// A deterministic rekey storm: bursts of back-to-back rekeys (each
    /// burst stacks three rekeys with no settle between them, so later
    /// group keys queue behind the stop-and-wait acknowledgment of the
    /// first) interleaved with admin/data traffic and join/leave/expel
    /// churn, all under partitions that alternate between asymmetric
    /// (one direction dark) and full cuts. This is the worst case for
    /// the staged parallel control plane: every burst re-seals the whole
    /// roster while some member cannot acknowledge, so staged frames,
    /// cached retransmits, and pending queues all carry live traffic at
    /// once. The `seed` feeds only the network fault stream — the script
    /// itself is fixed given `members`.
    #[must_use]
    pub fn rekey_storm(seed: u64, members: usize) -> Self {
        assert!(members >= 4, "a rekey storm needs at least four members");
        use ChaosEvent::{
            AdminBroadcast, DataBroadcast, Expel, Heal, HealAll, Join, Leave, Partition, Rekey,
            Settle,
        };
        let mut events: Vec<ChaosEvent> = (0..members).map(Join).collect();
        events.push(Settle(150));
        let payload = |tag: &str, burst: usize| format!("storm-{tag}-{burst}").into_bytes();

        // Burst 1: m1 goes half-dark toward the leader — its acks are
        // lost, so the leader's retransmit ticker replays cached frames
        // while three rekeys stack up behind the unacknowledged first key.
        events.extend([
            Partition {
                member: 1,
                to_leader: true,
                to_member: false,
            },
            Rekey,
            Rekey,
            Rekey,
            AdminBroadcast(payload("admin", 1)),
            DataBroadcast(payload("data", 1)),
            Leave(0),
            Heal(1),
            Settle(250),
        ]);

        // Burst 2: m2 is cut off entirely; m0 rejoins mid-storm, forcing
        // a membership change (and its own rekey) into the queue.
        events.extend([
            Partition {
                member: 2,
                to_leader: true,
                to_member: true,
            },
            Rekey,
            Rekey,
            Rekey,
            AdminBroadcast(payload("admin", 2)),
            Join(0),
            Rekey,
            Heal(2),
            Settle(250),
        ]);

        // Burst 3: the leader→m3 direction goes dark (m3 cannot see the
        // new keys), then the leader expels it mid-storm — staged frames
        // for a departed member must be dropped, not delivered.
        events.extend([
            Partition {
                member: 3,
                to_leader: false,
                to_member: true,
            },
            Rekey,
            Rekey,
            Rekey,
            DataBroadcast(payload("data", 3)),
            Expel(3),
            HealAll,
            Settle(250),
            Rekey,
            AdminBroadcast(payload("admin", 4)),
            DataBroadcast(payload("data", 4)),
            Settle(300),
        ]);

        Schedule {
            seed,
            members,
            events,
        }
    }

    /// Generates a random but state-aware schedule: the generator tracks
    /// which members are absent, joined, partitioned, or crashed, and only
    /// emits events that make sense in that state (so generated schedules
    /// spend their budget exercising the protocol, not bouncing off
    /// no-ops). Same `(seed, events, members)` → same schedule.
    #[must_use]
    pub fn random(seed: u64, events: usize, members: usize) -> Self {
        #[derive(Clone, Copy, PartialEq)]
        enum M {
            Absent,
            Joined,
            Crashed,
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A0_5EED);
        let mut state = vec![M::Absent; members];
        let mut partitioned = vec![false; members];
        let mut script = Vec::with_capacity(events);
        let mut payload_counter = 0u32;
        let payload = |counter: &mut u32| {
            *counter += 1;
            format!("chaos-{counter}").into_bytes()
        };

        // Always open with a join so the group exists.
        state[0] = M::Joined;
        script.push(ChaosEvent::Join(0));

        while script.len() < events {
            let joined: Vec<usize> = (0..members).filter(|&i| state[i] == M::Joined).collect();
            let absent: Vec<usize> = (0..members).filter(|&i| state[i] == M::Absent).collect();
            let crashed: Vec<usize> = (0..members).filter(|&i| state[i] == M::Crashed).collect();

            let roll = rng.gen_range(0..100u32);
            let event = match roll {
                // Traffic is the most common event: the properties are
                // about deliveries, so most steps should produce some.
                0..=29 if !joined.is_empty() => {
                    if rng.gen_bool(0.5) {
                        ChaosEvent::AdminBroadcast(payload(&mut payload_counter))
                    } else {
                        ChaosEvent::DataBroadcast(payload(&mut payload_counter))
                    }
                }
                30..=44 if !absent.is_empty() => {
                    let i = absent[rng.gen_range(0..absent.len())];
                    state[i] = M::Joined;
                    ChaosEvent::Join(i)
                }
                45..=54 if !joined.is_empty() => ChaosEvent::Rekey,
                55..=62 if joined.len() > 1 => {
                    let i = joined[rng.gen_range(0..joined.len())];
                    state[i] = M::Absent;
                    partitioned[i] = false;
                    if rng.gen_bool(0.5) {
                        ChaosEvent::Leave(i)
                    } else {
                        ChaosEvent::Expel(i)
                    }
                }
                63..=72 if !joined.is_empty() => {
                    let i = joined[rng.gen_range(0..joined.len())];
                    partitioned[i] = true;
                    // Bias toward full partitions; asymmetric ones are the
                    // nastier quarter.
                    let (to_leader, to_member) = match rng.gen_range(0..4u32) {
                        0 => (true, false),
                        1 => (false, true),
                        _ => (true, true),
                    };
                    ChaosEvent::Partition {
                        member: i,
                        to_leader,
                        to_member,
                    }
                }
                73..=79 if partitioned.iter().any(|&p| p) => {
                    let candidates: Vec<usize> = (0..members).filter(|&i| partitioned[i]).collect();
                    let i = candidates[rng.gen_range(0..candidates.len())];
                    partitioned[i] = false;
                    ChaosEvent::Heal(i)
                }
                80..=86 if joined.len() > 1 => {
                    let i = joined[rng.gen_range(0..joined.len())];
                    state[i] = M::Crashed;
                    partitioned[i] = false;
                    ChaosEvent::Crash(i)
                }
                87..=93 if !crashed.is_empty() => {
                    let i = crashed[rng.gen_range(0..crashed.len())];
                    state[i] = M::Joined;
                    ChaosEvent::Reconnect(i)
                }
                _ => ChaosEvent::Settle(rng.gen_range(30..150)),
            };
            script.push(event);
        }
        Schedule {
            seed,
            members,
            events: script,
        }
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "schedule (seed={}, members={}, {} events):",
            self.seed,
            self.members,
            self.events.len()
        )?;
        for (i, e) in self.events.iter().enumerate() {
            writeln!(f, "  {i:3}: {e:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_schedules_are_reproducible() {
        let a = Schedule::random(42, 50, 4);
        let b = Schedule::random(42, 50, 4);
        assert_eq!(a, b);
        let c = Schedule::random(43, 50, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn random_schedules_start_with_a_join_and_fill_the_budget() {
        let s = Schedule::random(7, 80, 3);
        assert_eq!(s.events[0], ChaosEvent::Join(0));
        assert_eq!(s.events.len(), 80);
        // A healthy mix: traffic must dominate.
        let traffic = s
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    ChaosEvent::AdminBroadcast(_) | ChaosEvent::DataBroadcast(_)
                )
            })
            .count();
        assert!(traffic >= 10, "only {traffic} traffic events");
    }

    #[test]
    fn generator_is_state_aware() {
        // No schedule may crash an absent member, reconnect a live one,
        // or leave/expel someone who is not in the group.
        for seed in 0..20u64 {
            let s = Schedule::random(seed, 120, 4);
            let mut joined = [false; 4];
            let mut crashed = [false; 4];
            for e in &s.events {
                match *e {
                    ChaosEvent::Join(i) => {
                        assert!(!joined[i] && !crashed[i], "join of live member in {s}");
                        joined[i] = true;
                    }
                    ChaosEvent::Leave(i) | ChaosEvent::Expel(i) => {
                        assert!(joined[i], "departure of absent member in {s}");
                        joined[i] = false;
                    }
                    ChaosEvent::Crash(i) => {
                        assert!(joined[i], "crash of absent member in {s}");
                        joined[i] = false;
                        crashed[i] = true;
                    }
                    ChaosEvent::Reconnect(i) => {
                        assert!(crashed[i], "reconnect of non-crashed member in {s}");
                        crashed[i] = false;
                        joined[i] = true;
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn rekey_storm_is_deterministic_and_state_valid() {
        let a = Schedule::rekey_storm(9, 4);
        let b = Schedule::rekey_storm(9, 4);
        assert_eq!(a, b);
        // The seed only feeds the fault stream; the script is fixed.
        assert_eq!(a.events, Schedule::rekey_storm(10, 4).events);

        // The storm must actually storm: at least three bursts of three
        // back-to-back rekeys, i.e. consecutive Rekey runs of length >= 3.
        let rekeys = a
            .events
            .iter()
            .filter(|e| matches!(e, ChaosEvent::Rekey))
            .count();
        assert!(rekeys >= 10, "only {rekeys} rekeys in the storm");
        let longest_run = a
            .events
            .iter()
            .fold((0usize, 0usize), |(best, run), e| {
                if matches!(e, ChaosEvent::Rekey) {
                    (best.max(run + 1), run + 1)
                } else {
                    (best, 0)
                }
            })
            .0;
        assert!(longest_run >= 3, "no back-to-back rekey burst");

        // Same state-machine validity the random generator guarantees.
        let mut joined = vec![false; a.members];
        for e in &a.events {
            match *e {
                ChaosEvent::Join(i) => {
                    assert!(!joined[i], "join of live member in {a}");
                    joined[i] = true;
                }
                ChaosEvent::Leave(i) | ChaosEvent::Expel(i) => {
                    assert!(joined[i], "departure of absent member in {a}");
                    joined[i] = false;
                }
                ChaosEvent::Partition { member, .. } | ChaosEvent::Heal(member) => {
                    assert!(member < a.members, "partition of out-of-cast member");
                }
                _ => {}
            }
        }
        // Every partition is healed before the schedule ends, so the
        // final settle runs on a fully connected fabric.
        assert!(matches!(a.events.last(), Some(ChaosEvent::Settle(_))));
        assert!(a.events.iter().any(|e| matches!(e, ChaosEvent::HealAll)));
    }

    #[test]
    fn prefix_truncates() {
        let s = Schedule::random(1, 30, 3);
        let p = s.prefix(10);
        assert_eq!(p.events.len(), 10);
        assert_eq!(p.events[..], s.events[..10]);
        assert_eq!(s.prefix(99).events.len(), 30);
    }
}
