//! Chaos schedules: the event vocabulary, scripted construction, and the
//! seeded state-aware random generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One step of a chaos schedule. Member indices refer to the fixed cast
/// `m0..m{members-1}` of a [`Schedule`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Member `i` joins (first join or rejoin after a clean leave).
    Join(usize),
    /// Member `i` leaves voluntarily (sends `Close`).
    Leave(usize),
    /// The leader expels member `i`.
    Expel(usize),
    /// Member `i` crashes: its connection is severed mid-whatever and its
    /// runtime stops without a `Close`. The leader keeps the slot until an
    /// expel — a vanished link is not a departure.
    Crash(usize),
    /// A crashed member `i` comes back: the leader expels the stale slot,
    /// then the member joins again on a fresh connection.
    Reconnect(usize),
    /// Member `i`'s *wire* crashes without a close, but — unlike
    /// [`ChaosEvent::Crash`] — its runtime stays alive: the liveness layer
    /// is expected to notice on both sides (leader eviction, member
    /// auto-rejoin once a [`ChaosEvent::Heal`] lets its reconnector
    /// through). Only meaningful on liveness-enabled worlds; without
    /// liveness the member simply stays wedged until the end-of-run
    /// cleanup.
    CrashWire(usize),
    /// The leader rotates the group key.
    Rekey,
    /// The leader broadcasts `payload` over the authenticated admin
    /// channel (stop-and-wait, exactly-once, in-order).
    AdminBroadcast(Vec<u8>),
    /// The leader broadcasts `payload` over the single-seal group-key data
    /// plane (fire-and-forget; drops legal, duplicates not).
    DataBroadcast(Vec<u8>),
    /// Partition member `i`'s connection: block the member→leader
    /// direction (`to_leader`), the leader→member direction (`to_member`),
    /// or both. Fabrics without partition support skip this.
    Partition {
        /// Which member's connection.
        member: usize,
        /// Block the member→leader direction.
        to_leader: bool,
        /// Block the leader→member direction.
        to_member: bool,
    },
    /// Heal both directions of member `i`'s connection.
    Heal(usize),
    /// Heal every partition.
    HealAll,
    /// Let the system run undisturbed for this many milliseconds.
    Settle(u64),
}

/// A reproducible chaos scenario: a seed (feeding both the network's fault
/// RNG and, for generated schedules, the generator), a cast size, and the
/// event script.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Seed for the network fault stream (and the generator, if random).
    pub seed: u64,
    /// Number of members in the cast (`m0..m{members-1}`).
    pub members: usize,
    /// The steps, executed in order.
    pub events: Vec<ChaosEvent>,
}

impl Schedule {
    /// A scripted schedule.
    #[must_use]
    pub fn scripted(seed: u64, members: usize, events: Vec<ChaosEvent>) -> Self {
        Schedule {
            seed,
            members,
            events,
        }
    }

    /// The first `n` events of this schedule (used by shrinking).
    #[must_use]
    pub fn prefix(&self, n: usize) -> Self {
        Schedule {
            seed: self.seed,
            members: self.members,
            events: self.events[..n.min(self.events.len())].to_vec(),
        }
    }

    /// A deterministic rekey storm: bursts of back-to-back rekeys (each
    /// burst stacks three rekeys with no settle between them, so later
    /// group keys queue behind the stop-and-wait acknowledgment of the
    /// first) interleaved with admin/data traffic and join/leave/expel
    /// churn, all under partitions that alternate between asymmetric
    /// (one direction dark) and full cuts. This is the worst case for
    /// the staged parallel control plane: every burst re-seals the whole
    /// roster while some member cannot acknowledge, so staged frames,
    /// cached retransmits, and pending queues all carry live traffic at
    /// once. The final burst cuts a member off *mid path update* — a
    /// rekey fires, the leader→member direction goes dark before the
    /// install settles, and three more rekeys land on the partition — so
    /// a tree-mode leader's `PathUpdate` multicasts are provably lossy
    /// and recovery must come from the heartbeat-driven `PathSync`
    /// resync. The `seed` feeds only the network fault stream — the
    /// script itself is fixed given `members`.
    #[must_use]
    pub fn rekey_storm(seed: u64, members: usize) -> Self {
        assert!(members >= 4, "a rekey storm needs at least four members");
        use ChaosEvent::{
            AdminBroadcast, DataBroadcast, Expel, Heal, HealAll, Join, Leave, Partition, Rekey,
            Settle,
        };
        let mut events: Vec<ChaosEvent> = (0..members).map(Join).collect();
        events.push(Settle(150));
        let payload = |tag: &str, burst: usize| format!("storm-{tag}-{burst}").into_bytes();

        // Burst 1: m1 goes half-dark toward the leader — its acks are
        // lost, so the leader's retransmit ticker replays cached frames
        // while three rekeys stack up behind the unacknowledged first key.
        events.extend([
            Partition {
                member: 1,
                to_leader: true,
                to_member: false,
            },
            Rekey,
            Rekey,
            Rekey,
            AdminBroadcast(payload("admin", 1)),
            DataBroadcast(payload("data", 1)),
            Leave(0),
            Heal(1),
            Settle(250),
        ]);

        // Burst 2: m2 is cut off entirely; m0 rejoins mid-storm, forcing
        // a membership change (and its own rekey) into the queue.
        events.extend([
            Partition {
                member: 2,
                to_leader: true,
                to_member: true,
            },
            Rekey,
            Rekey,
            Rekey,
            AdminBroadcast(payload("admin", 2)),
            Join(0),
            Rekey,
            Heal(2),
            Settle(250),
        ]);

        // Burst 3: the leader→m3 direction goes dark (m3 cannot see the
        // new keys), then the leader expels it mid-storm — staged frames
        // for a departed member must be dropped, not delivered.
        events.extend([
            Partition {
                member: 3,
                to_leader: false,
                to_member: true,
            },
            Rekey,
            Rekey,
            Rekey,
            DataBroadcast(payload("data", 3)),
            Expel(3),
            HealAll,
            Settle(250),
            Rekey,
            AdminBroadcast(payload("admin", 4)),
            DataBroadcast(payload("data", 4)),
            Settle(300),
        ]);

        // Burst 4: a rekey fires and — with its key-install still in
        // flight — the leader→m1 direction is cut, then a full burst of
        // three more rekeys lands on top of the partition. In tree mode
        // each of those is a `PathUpdate` multicast m1 never receives
        // (multicasts are fire-and-forget, unlike the admin channel's
        // ARQ), so after the heal only the heartbeat-driven `PathSync`
        // resync can bring m1 back to the group key; the finalization
        // probe proves it did.
        events.extend([
            Rekey,
            Partition {
                member: 1,
                to_leader: false,
                to_member: true,
            },
            Rekey,
            Rekey,
            Rekey,
            DataBroadcast(payload("data", 5)),
            Heal(1),
            Settle(400),
            AdminBroadcast(payload("admin", 5)),
            DataBroadcast(payload("data", 6)),
            Settle(300),
        ]);

        Schedule {
            seed,
            members,
            events,
        }
    }

    /// A deterministic crash storm for liveness-enabled worlds: members
    /// take turns having their wire severed without a close
    /// ([`ChaosEvent::CrashWire`]), so the leader's heartbeat deadline —
    /// not a `Close` frame — must drive the eviction, and after each
    /// [`ChaosEvent::Heal`] the still-running member must detect the
    /// loss and auto-rejoin as a fresh session. `m0` never faults, so
    /// the group is never empty and every eviction's policy rekey lands
    /// (post-eviction rejoins must therefore see a strictly newer
    /// epoch). The `seed` feeds only the network fault stream — the
    /// script itself is fixed given `members`.
    #[must_use]
    pub fn crash_storm(seed: u64, members: usize) -> Self {
        assert!(members >= 3, "a crash storm needs at least three members");
        use ChaosEvent::{AdminBroadcast, CrashWire, DataBroadcast, Heal, Join, Rekey, Settle};
        let mut events: Vec<ChaosEvent> = (0..members).map(Join).collect();
        events.push(Settle(150));
        let payload = |tag: &str, n: usize| format!("crash-{tag}-{n}").into_bytes();

        // Round 1: m1's wire dies silently. The leader must time the
        // channel out and evict; traffic keeps flowing to the survivors
        // while m1 is dark, and once healed m1 rejoins on its own.
        events.extend([
            AdminBroadcast(payload("admin", 1)),
            CrashWire(1),
            Settle(900),
            Rekey,
            DataBroadcast(payload("data", 1)),
            Heal(1),
            Settle(900),
        ]);

        // Round 2: same fate for m2, proving round 1 left no wedged
        // state behind (slots, routes, cached retransmit frames).
        events.extend([
            CrashWire(2),
            Settle(900),
            AdminBroadcast(payload("admin", 2)),
            Heal(2),
            Settle(900),
        ]);

        // Epilogue: full-roster traffic on the healed fabric.
        events.extend([
            AdminBroadcast(payload("admin", 3)),
            DataBroadcast(payload("data", 3)),
            Settle(400),
        ]);

        Schedule {
            seed,
            members,
            events,
        }
    }

    /// One schedule per enclave for a multi-group storm: `groups`
    /// (at least eight) co-hosted enclaves, each running `members`
    /// members, where every group draws a different weather class by its
    /// index — calm traffic, partition-and-heal, silent wire crashes, or
    /// a rekey barrage — so quiet groups carry live deadlines *while*
    /// their neighbours churn. Intended for
    /// [`crate::world::run_multigroup`] on a liveness-enabled world
    /// (class 2 relies on timeout eviction and auto-rejoin).
    ///
    /// # Panics
    ///
    /// If `groups < 8` or `members < 3`.
    #[must_use]
    pub fn multigroup_storm(seed: u64, groups: usize, members: usize) -> Vec<Self> {
        assert!(groups >= 8, "a multigroup storm needs at least 8 groups");
        assert!(members >= 3, "each group needs at least three members");
        use ChaosEvent::{
            AdminBroadcast, CrashWire, DataBroadcast, Heal, HealAll, Join, Partition, Rekey, Settle,
        };
        (0..groups)
            .map(|g| {
                let payload = |tag: &str, n: usize| format!("mg-g{g}-{tag}-{n}").into_bytes();
                let mut events: Vec<ChaosEvent> = (0..members).map(Join).collect();
                events.push(Settle(150));
                match g % 4 {
                    // Calm control group: steady traffic, no faults. Its
                    // heartbeats and ARQ deadlines must survive the
                    // neighbours' weather untouched.
                    0 => events.extend([
                        AdminBroadcast(payload("admin", 1)),
                        DataBroadcast(payload("data", 1)),
                        Settle(300),
                        Rekey,
                        AdminBroadcast(payload("admin", 2)),
                        DataBroadcast(payload("data", 2)),
                        Settle(300),
                    ]),
                    // Partition weather: m1 goes dark both ways under
                    // traffic, then heals; retransmission must catch it up.
                    1 => events.extend([
                        Partition {
                            member: 1,
                            to_leader: true,
                            to_member: true,
                        },
                        AdminBroadcast(payload("admin", 1)),
                        DataBroadcast(payload("data", 1)),
                        Settle(400),
                        HealAll,
                        AdminBroadcast(payload("admin", 2)),
                        Settle(400),
                    ]),
                    // Wire-crash weather: m1's wire dies silently; the
                    // shared ticker must time it out and evict, and after
                    // the heal the member rejoins on its own.
                    2 => events.extend([
                        AdminBroadcast(payload("admin", 1)),
                        CrashWire(1),
                        Settle(900),
                        Rekey,
                        DataBroadcast(payload("data", 1)),
                        Heal(1),
                        Settle(900),
                    ]),
                    // Rekey barrage: back-to-back epoch rotations under
                    // traffic — seal-pool churn concentrated in one group.
                    _ => events.extend([
                        Rekey,
                        AdminBroadcast(payload("admin", 1)),
                        Rekey,
                        DataBroadcast(payload("data", 1)),
                        Rekey,
                        AdminBroadcast(payload("admin", 2)),
                        Settle(400),
                    ]),
                }
                events.push(Settle(200));
                Schedule {
                    seed: seed.wrapping_add(g as u64),
                    members,
                    events,
                }
            })
            .collect()
    }

    /// A deterministic leader blackhole for liveness-enabled worlds:
    /// every member except `m0` has its *existing* connection fully
    /// partitioned at once, so from their side the leader goes silent
    /// mid-epoch. Each affected member must detect the loss, reconnect
    /// on a fresh link (partitions are per-connection, so the new link
    /// is clear), and wait out the leader's timeout eviction of its
    /// stale slot before the rejoin handshake is accepted. `m0` keeps
    /// the group alive throughout. The `seed` feeds only the network
    /// fault stream — the script itself is fixed given `members`.
    #[must_use]
    pub fn leader_blackhole(seed: u64, members: usize) -> Self {
        assert!(
            members >= 3,
            "a leader blackhole needs at least three members"
        );
        use ChaosEvent::{AdminBroadcast, DataBroadcast, HealAll, Join, Partition, Rekey, Settle};
        let mut events: Vec<ChaosEvent> = (0..members).map(Join).collect();
        events.push(Settle(150));
        events.push(AdminBroadcast(b"blackhole-before".to_vec()));

        // The lights go out for everyone but m0, all at once.
        events.extend((1..members).map(|member| Partition {
            member,
            to_leader: true,
            to_member: true,
        }));

        // Long dark settle: leader-loss detection, stale-slot evictions,
        // and reconnect-handshake retries all race here.
        events.extend([
            Settle(1400),
            Rekey,
            DataBroadcast(b"blackhole-during".to_vec()),
            Settle(500),
            HealAll,
            Settle(300),
            AdminBroadcast(b"blackhole-after".to_vec()),
            Settle(400),
        ]);

        Schedule {
            seed,
            members,
            events,
        }
    }

    /// A deterministic flapping member for liveness-enabled worlds: `m1`
    /// suffers three short full partitions, each healed well inside the
    /// liveness timeout — a responsive-but-jittery member that must NOT
    /// be evicted by an over-eager failure detector — followed by one
    /// real [`ChaosEvent::CrashWire`] outage long enough to force the
    /// eviction/rejoin cycle. The `seed` feeds only the network fault
    /// stream — the script itself is fixed given `members`.
    #[must_use]
    pub fn flapping(seed: u64, members: usize) -> Self {
        assert!(
            members >= 3,
            "a flapping schedule needs at least three members"
        );
        use ChaosEvent::{AdminBroadcast, CrashWire, DataBroadcast, Heal, Join, Partition, Settle};
        let mut events: Vec<ChaosEvent> = (0..members).map(Join).collect();
        events.push(Settle(150));
        let payload = |tag: &str, n: usize| format!("flap-{tag}-{n}").into_bytes();

        // Three quick flaps: dark for a beat, back before the deadline.
        for flap in 1..=3usize {
            events.extend([
                Partition {
                    member: 1,
                    to_leader: true,
                    to_member: true,
                },
                Settle(120),
                Heal(1),
                Settle(250),
                AdminBroadcast(payload("admin", flap)),
                DataBroadcast(payload("data", flap)),
            ]);
        }

        // Then the real thing: a silent wire crash that must end in a
        // timeout eviction and, after the heal, an auto-rejoin.
        events.extend([
            CrashWire(1),
            Settle(900),
            Heal(1),
            Settle(900),
            AdminBroadcast(payload("admin", 4)),
            Settle(400),
        ]);

        Schedule {
            seed,
            members,
            events,
        }
    }

    /// Generates a random but state-aware schedule: the generator tracks
    /// which members are absent, joined, partitioned, or crashed, and only
    /// emits events that make sense in that state (so generated schedules
    /// spend their budget exercising the protocol, not bouncing off
    /// no-ops). Same `(seed, events, members)` → same schedule.
    #[must_use]
    pub fn random(seed: u64, events: usize, members: usize) -> Self {
        #[derive(Clone, Copy, PartialEq)]
        enum M {
            Absent,
            Joined,
            Crashed,
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A0_5EED);
        let mut state = vec![M::Absent; members];
        let mut partitioned = vec![false; members];
        let mut script = Vec::with_capacity(events);
        let mut payload_counter = 0u32;
        let payload = |counter: &mut u32| {
            *counter += 1;
            format!("chaos-{counter}").into_bytes()
        };

        // Always open with a join so the group exists.
        state[0] = M::Joined;
        script.push(ChaosEvent::Join(0));

        while script.len() < events {
            let joined: Vec<usize> = (0..members).filter(|&i| state[i] == M::Joined).collect();
            let absent: Vec<usize> = (0..members).filter(|&i| state[i] == M::Absent).collect();
            let crashed: Vec<usize> = (0..members).filter(|&i| state[i] == M::Crashed).collect();

            let roll = rng.gen_range(0..100u32);
            let event = match roll {
                // Traffic is the most common event: the properties are
                // about deliveries, so most steps should produce some.
                0..=29 if !joined.is_empty() => {
                    if rng.gen_bool(0.5) {
                        ChaosEvent::AdminBroadcast(payload(&mut payload_counter))
                    } else {
                        ChaosEvent::DataBroadcast(payload(&mut payload_counter))
                    }
                }
                30..=44 if !absent.is_empty() => {
                    let i = absent[rng.gen_range(0..absent.len())];
                    state[i] = M::Joined;
                    ChaosEvent::Join(i)
                }
                45..=54 if !joined.is_empty() => ChaosEvent::Rekey,
                55..=62 if joined.len() > 1 => {
                    let i = joined[rng.gen_range(0..joined.len())];
                    state[i] = M::Absent;
                    partitioned[i] = false;
                    if rng.gen_bool(0.5) {
                        ChaosEvent::Leave(i)
                    } else {
                        ChaosEvent::Expel(i)
                    }
                }
                63..=72 if !joined.is_empty() => {
                    let i = joined[rng.gen_range(0..joined.len())];
                    partitioned[i] = true;
                    // Bias toward full partitions; asymmetric ones are the
                    // nastier quarter.
                    let (to_leader, to_member) = match rng.gen_range(0..4u32) {
                        0 => (true, false),
                        1 => (false, true),
                        _ => (true, true),
                    };
                    ChaosEvent::Partition {
                        member: i,
                        to_leader,
                        to_member,
                    }
                }
                73..=79 if partitioned.iter().any(|&p| p) => {
                    let candidates: Vec<usize> = (0..members).filter(|&i| partitioned[i]).collect();
                    let i = candidates[rng.gen_range(0..candidates.len())];
                    partitioned[i] = false;
                    ChaosEvent::Heal(i)
                }
                80..=86 if joined.len() > 1 => {
                    let i = joined[rng.gen_range(0..joined.len())];
                    state[i] = M::Crashed;
                    partitioned[i] = false;
                    ChaosEvent::Crash(i)
                }
                87..=93 if !crashed.is_empty() => {
                    let i = crashed[rng.gen_range(0..crashed.len())];
                    state[i] = M::Joined;
                    ChaosEvent::Reconnect(i)
                }
                _ => ChaosEvent::Settle(rng.gen_range(30..150)),
            };
            script.push(event);
        }
        Schedule {
            seed,
            members,
            events: script,
        }
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "schedule (seed={}, members={}, {} events):",
            self.seed,
            self.members,
            self.events.len()
        )?;
        for (i, e) in self.events.iter().enumerate() {
            writeln!(f, "  {i:3}: {e:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_schedules_are_reproducible() {
        let a = Schedule::random(42, 50, 4);
        let b = Schedule::random(42, 50, 4);
        assert_eq!(a, b);
        let c = Schedule::random(43, 50, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn random_schedules_start_with_a_join_and_fill_the_budget() {
        let s = Schedule::random(7, 80, 3);
        assert_eq!(s.events[0], ChaosEvent::Join(0));
        assert_eq!(s.events.len(), 80);
        // A healthy mix: traffic must dominate.
        let traffic = s
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    ChaosEvent::AdminBroadcast(_) | ChaosEvent::DataBroadcast(_)
                )
            })
            .count();
        assert!(traffic >= 10, "only {traffic} traffic events");
    }

    #[test]
    fn generator_is_state_aware() {
        // No schedule may crash an absent member, reconnect a live one,
        // or leave/expel someone who is not in the group.
        for seed in 0..20u64 {
            let s = Schedule::random(seed, 120, 4);
            let mut joined = [false; 4];
            let mut crashed = [false; 4];
            for e in &s.events {
                match *e {
                    ChaosEvent::Join(i) => {
                        assert!(!joined[i] && !crashed[i], "join of live member in {s}");
                        joined[i] = true;
                    }
                    ChaosEvent::Leave(i) | ChaosEvent::Expel(i) => {
                        assert!(joined[i], "departure of absent member in {s}");
                        joined[i] = false;
                    }
                    ChaosEvent::Crash(i) => {
                        assert!(joined[i], "crash of absent member in {s}");
                        joined[i] = false;
                        crashed[i] = true;
                    }
                    ChaosEvent::Reconnect(i) => {
                        assert!(crashed[i], "reconnect of non-crashed member in {s}");
                        crashed[i] = false;
                        joined[i] = true;
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn rekey_storm_is_deterministic_and_state_valid() {
        let a = Schedule::rekey_storm(9, 4);
        let b = Schedule::rekey_storm(9, 4);
        assert_eq!(a, b);
        // The seed only feeds the fault stream; the script is fixed.
        assert_eq!(a.events, Schedule::rekey_storm(10, 4).events);

        // The storm must actually storm: at least three bursts of three
        // back-to-back rekeys, i.e. consecutive Rekey runs of length >= 3.
        let rekeys = a
            .events
            .iter()
            .filter(|e| matches!(e, ChaosEvent::Rekey))
            .count();
        assert!(rekeys >= 10, "only {rekeys} rekeys in the storm");
        let longest_run = a
            .events
            .iter()
            .fold((0usize, 0usize), |(best, run), e| {
                if matches!(e, ChaosEvent::Rekey) {
                    (best.max(run + 1), run + 1)
                } else {
                    (best, 0)
                }
            })
            .0;
        assert!(longest_run >= 3, "no back-to-back rekey burst");

        // The mid-path-update cut: some partition must land immediately
        // after a rekey (the key install is still in flight when the
        // member goes dark) and be followed by a back-to-back rekey
        // burst before its heal.
        let cut_mid_update = a.events.windows(3).any(|w| {
            matches!(
                w,
                [
                    ChaosEvent::Rekey,
                    ChaosEvent::Partition { .. },
                    ChaosEvent::Rekey
                ]
            )
        });
        assert!(
            cut_mid_update,
            "no partition lands mid-path-update between rekeys"
        );

        // Same state-machine validity the random generator guarantees.
        let mut joined = vec![false; a.members];
        for e in &a.events {
            match *e {
                ChaosEvent::Join(i) => {
                    assert!(!joined[i], "join of live member in {a}");
                    joined[i] = true;
                }
                ChaosEvent::Leave(i) | ChaosEvent::Expel(i) => {
                    assert!(joined[i], "departure of absent member in {a}");
                    joined[i] = false;
                }
                ChaosEvent::Partition { member, .. } | ChaosEvent::Heal(member) => {
                    assert!(member < a.members, "partition of out-of-cast member");
                }
                _ => {}
            }
        }
        // Every partition is healed before the schedule ends, so the
        // final settle runs on a fully connected fabric.
        assert!(matches!(a.events.last(), Some(ChaosEvent::Settle(_))));
        assert!(a.events.iter().any(|e| matches!(e, ChaosEvent::HealAll)));
    }

    /// Shared validity check for the liveness schedules: scripts are
    /// seed-independent, every fault is eventually healed, member `0`
    /// never faults (so the group never empties and eviction rekeys
    /// land), and fault targets are state-valid.
    fn check_liveness_schedule(make: fn(u64, usize) -> Schedule) {
        let a = make(9, 3);
        let b = make(9, 3);
        assert_eq!(a, b);
        // The seed only feeds the fault stream; the script is fixed.
        assert_eq!(a.events, make(10, 3).events);

        let mut joined = vec![false; a.members];
        let mut dark = vec![false; a.members];
        for e in &a.events {
            match *e {
                ChaosEvent::Join(i) => {
                    assert!(!joined[i], "join of live member in {a}");
                    joined[i] = true;
                }
                ChaosEvent::CrashWire(i) | ChaosEvent::Partition { member: i, .. } => {
                    assert_ne!(i, 0, "m0 must stay clean in {a}");
                    assert!(joined[i], "fault on absent member in {a}");
                    dark[i] = true;
                }
                ChaosEvent::Heal(i) => {
                    dark[i] = false;
                }
                ChaosEvent::HealAll => {
                    dark.iter_mut().for_each(|d| *d = false);
                }
                _ => {}
            }
        }
        assert!(dark.iter().all(|&d| !d), "a fault is never healed in {a}");
        assert!(
            a.events
                .iter()
                .any(|e| matches!(e, ChaosEvent::CrashWire(_) | ChaosEvent::Partition { .. })),
            "no faults in {a}"
        );
        assert!(matches!(a.events.last(), Some(ChaosEvent::Settle(_))));
    }

    #[test]
    fn crash_storm_is_deterministic_and_state_valid() {
        check_liveness_schedule(Schedule::crash_storm);
        let s = Schedule::crash_storm(1, 4);
        let wire_crashes = s
            .events
            .iter()
            .filter(|e| matches!(e, ChaosEvent::CrashWire(_)))
            .count();
        assert!(wire_crashes >= 2, "only {wire_crashes} wire crashes");
    }

    #[test]
    fn leader_blackhole_is_deterministic_and_state_valid() {
        check_liveness_schedule(Schedule::leader_blackhole);
        // Everyone but m0 goes dark at once.
        let s = Schedule::leader_blackhole(1, 5);
        let cut: Vec<usize> = s
            .events
            .iter()
            .filter_map(|e| match e {
                ChaosEvent::Partition { member, .. } => Some(*member),
                _ => None,
            })
            .collect();
        assert_eq!(cut, vec![1, 2, 3, 4]);
    }

    #[test]
    fn flapping_is_deterministic_and_state_valid() {
        check_liveness_schedule(Schedule::flapping);
        // Three short flaps before the real outage.
        let s = Schedule::flapping(1, 3);
        let heals = s
            .events
            .iter()
            .filter(|e| matches!(e, ChaosEvent::Heal(1)))
            .count();
        assert_eq!(heals, 4, "three flap heals plus the outage heal");
    }

    #[test]
    fn prefix_truncates() {
        let s = Schedule::random(1, 30, 3);
        let p = s.prefix(10);
        assert_eq!(p.events.len(), 10);
        assert_eq!(p.events[..], s.events[..10]);
        assert_eq!(s.prefix(99).events.len(), 30);
    }
}
