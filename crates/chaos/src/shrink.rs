//! On-failure schedule shrinking: binary-search the smallest failing
//! event prefix of a schedule, so a violation found by a 300-event soak is
//! reported as the handful of steps that actually matter, together with
//! the seed that reproduces them.

use crate::schedule::Schedule;
use crate::world::ChaosOutcome;
use enclaves_verify::live::Violation;

/// A minimized failure: the seed, the smallest failing schedule prefix
/// found, and the violations it produces. `Display` prints a full
/// reproduction recipe.
#[derive(Debug)]
pub struct ShrunkFailure {
    /// The seed of the failing schedule.
    pub seed: u64,
    /// Length of the original schedule the shrink started from.
    pub original_len: usize,
    /// The minimal failing prefix.
    pub minimal: Schedule,
    /// The violations the minimal prefix produces.
    pub violations: Vec<Violation>,
}

impl std::fmt::Display for ShrunkFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "chaos failure shrunk from {} to {} events (seed {}):",
            self.original_len,
            self.minimal.events.len(),
            self.seed
        )?;
        for v in &self.violations {
            writeln!(f, "  violation: {v}")?;
        }
        write!(f, "minimal {}", self.minimal)?;
        writeln!(
            f,
            "reproduce with: CHAOS_SEED={} CHAOS_EVENTS={} CHAOS_MEMBERS={} \
             cargo test -p enclaves-integration --test chaos_soak randomized_soak \
             -- --ignored --nocapture",
            self.seed, self.original_len, self.minimal.members
        )
    }
}

/// Binary-searches the smallest failing prefix of `schedule`, re-running a
/// fresh world for every probe via `run`. Returns `None` if even the full
/// schedule passes on re-run (a nondeterministic failure — the original
/// violations should then be reported as-is).
///
/// The search maintains `run(prefix(lo))` passing and `run(prefix(hi))`
/// failing; each probe halves the gap, so a 300-event soak shrinks in
/// ~8 re-runs.
pub fn shrink_failure(
    schedule: &Schedule,
    mut run: impl FnMut(&Schedule) -> ChaosOutcome,
) -> Option<ShrunkFailure> {
    let full = run(schedule);
    if full.passed() {
        return None;
    }

    let mut lo = 0usize; // Largest prefix known to pass (empty always does).
    let mut hi = schedule.events.len(); // Smallest prefix known to fail.
    let mut best = full.violations;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let outcome = run(&schedule.prefix(mid));
        if outcome.passed() {
            lo = mid;
        } else {
            hi = mid;
            best = outcome.violations;
        }
    }
    Some(ShrunkFailure {
        seed: schedule.seed,
        original_len: schedule.events.len(),
        minimal: schedule.prefix(hi),
        violations: best,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ChaosEvent;
    use crate::world::ChaosOutcome;

    /// A synthetic runner: "fails" iff the prefix contains the poison
    /// event, mimicking a violation triggered by one schedule step.
    fn poisoned_runner(poison_at: usize) -> impl FnMut(&Schedule) -> ChaosOutcome {
        move |s: &Schedule| {
            let failed = s.events.len() > poison_at;
            ChaosOutcome {
                violations: if failed {
                    vec![Violation {
                        checker: "synthetic",
                        index: poison_at,
                        detail: "poison".into(),
                    }]
                } else {
                    Vec::new()
                },
                trace: Vec::new(),
                net_stats: None,
                snapshot: enclaves_obs::Snapshot::default(),
                obs_events: Vec::new(),
                obs_violations: Vec::new(),
            }
        }
    }

    fn schedule_of(n: usize) -> Schedule {
        Schedule::scripted(9, 2, (0..n).map(|_| ChaosEvent::Settle(1)).collect())
    }

    #[test]
    fn shrinks_to_the_poison_event() {
        for poison_at in [0usize, 3, 17, 62, 99] {
            let schedule = schedule_of(100);
            let shrunk =
                shrink_failure(&schedule, poisoned_runner(poison_at)).expect("full schedule fails");
            // The minimal prefix is exactly poison_at + 1 events: one
            // shorter and the poison event is gone.
            assert_eq!(shrunk.minimal.events.len(), poison_at + 1);
            assert_eq!(shrunk.violations.len(), 1);
        }
    }

    #[test]
    fn passing_schedule_does_not_shrink() {
        let schedule = schedule_of(10);
        assert!(shrink_failure(&schedule, |_| ChaosOutcome {
            violations: Vec::new(),
            trace: Vec::new(),
            net_stats: None,
            snapshot: enclaves_obs::Snapshot::default(),
            obs_events: Vec::new(),
            obs_violations: Vec::new(),
        })
        .is_none());
    }

    #[test]
    fn report_contains_the_repro_recipe() {
        let schedule = schedule_of(20);
        let shrunk = shrink_failure(&schedule, poisoned_runner(4)).expect("fails");
        let report = shrunk.to_string();
        assert!(report.contains("CHAOS_SEED=9"));
        assert!(report.contains("minimal schedule"));
    }
}
