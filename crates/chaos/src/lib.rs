//! Deterministic chaos harness for the Enclaves group-management stack.
//!
//! The paper's §5.4 guarantees are proved over an abstract model; this
//! crate throws *live* threaded sessions into the weather the model never
//! sees — seeded schedules of joins, leaves, expels, rekeys, broadcasts,
//! partitions, heals, crashes, and reconnects over a fault-injecting
//! network — while recording every application-level send and delivery
//! into a [`enclaves_verify::live::LiveEvent`] trace. After the run, the
//! network is healed, the system is driven to quiescence, and the trace is
//! replayed through the same property predicates the model checker uses.
//!
//! The moving parts:
//!
//! * [`schedule`] — [`ChaosEvent`] vocabulary, scripted schedules, and the
//!   seeded state-aware random generator behind the soak test.
//! * [`fabric`] — the [`Fabric`] abstraction over where the chaos happens:
//!   [`SimFabric`] (in-process simulator with partitions, kills, and every
//!   probabilistic fault) and [`TcpProxyFabric`] (real TCP through an
//!   adversarial proxy, for transport parity).
//! * [`world`] — the driver: spawns leader + members, executes a schedule,
//!   finalizes (heal → quiesce → probe), and returns the verdict.
//! * [`shrink`] — on failure, binary-searches the minimal failing schedule
//!   prefix and prints the seed + schedule needed to reproduce it.
//!
//! A fixed `(seed, schedule)` pair reproduces the same fault pattern
//! exactly; thread interleavings still vary, which is the point — the
//! properties must hold on *every* interleaving, and any failure is
//! reported with its reproduction recipe.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fabric;
pub mod schedule;
pub mod shrink;
pub mod world;

pub use fabric::{Fabric, SimFabric, TcpProxyFabric};
pub use schedule::{ChaosEvent, Schedule};
pub use shrink::{shrink_failure, ShrunkFailure};
pub use world::{
    run_crash_restart, run_multigroup, run_schedule, ChaosOptions, ChaosOutcome,
    CrashRestartOutcome, MultigroupOutcome,
};
