//! The chaos driver: spawns a live leader and a cast of members on a
//! [`Fabric`], executes a [`Schedule`], records every application-level
//! send/delivery into a live trace, finalizes the run (calm → heal →
//! quiesce → probe), and hands the trace to the §5.4 oracle.

use crate::fabric::{Fabric, SimFabric};
use crate::schedule::{ChaosEvent, Schedule};
use crossbeam_channel::{unbounded, Receiver, Sender};
use enclaves_core::config::{LeaderConfig, RekeyPolicy};
use enclaves_core::directory::Directory;
use enclaves_core::liveness::{Clock, LivenessConfig, VirtualClock};
use enclaves_core::protocol::{LeaderEvent, MemberEvent};
use enclaves_core::runtime::{
    BroadcastReceipt, GroupHandle, LeaderRuntime, LeaderService, MemberOptions, MemberRuntime,
    ServiceConfig,
};
use enclaves_core::CoreError;
use enclaves_net::sim::{SimListener, SimStats};
use enclaves_net::Listener;
use enclaves_obs::{EventStream, ProtocolEvent, Registry, Snapshot};
use enclaves_verify::live::{check_trace, LiveEvent, Violation};
use enclaves_verify::obs::obs_trace;
use enclaves_wire::{ActorId, GroupId};
use parking_lot::Mutex;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a join may take before the driver stops waiting for the
/// welcome (the join itself keeps running — a partition may deliver the
/// welcome much later, which is part of the chaos).
const JOIN_WAIT: Duration = Duration::from_secs(10);
/// Deadline for the leader's retransmission layer to drain after healing.
const QUIESCE_WAIT: Duration = Duration::from_secs(20);
/// Deadline for every member to open the finalization probe.
const PROBE_WAIT: Duration = Duration::from_secs(10);

/// Knobs for a chaos run.
#[derive(Clone, Copy, Debug)]
pub struct ChaosOptions {
    /// Leader rekey policy (the schedule's explicit `Rekey` events come on
    /// top of whatever the policy does).
    pub rekey_policy: RekeyPolicy,
    /// Plants the test-only broadcast-watermark violation in every member
    /// — the oracle must then catch duplicate data deliveries.
    pub sabotage_watermark: bool,
    /// Runs the world with the liveness layer armed: a shared
    /// [`VirtualClock`] (pumped at roughly 5× real time), bounded ARQ
    /// with backoff and jitter, heartbeats, timeout-driven eviction, and
    /// member auto-rejoin through [`Fabric::reconnector`]. Fault
    /// injections ([`ChaosEvent::CrashWire`], [`ChaosEvent::Partition`])
    /// additionally leave `Crashed`/`Partitioned` markers in the trace so
    /// the liveness oracle properties (`live-evict`, `live-no-false-evict`,
    /// `live-rejoin`) have ground truth to check against.
    pub liveness: bool,
    /// Runs the leader in tree-rekey mode: every epoch rotation is one
    /// `O(log N)` `PathUpdate` multicast instead of per-member admin
    /// seals. Multicasts are fire-and-forget — a partitioned member
    /// misses them outright — so recovery rides the heartbeat-driven
    /// `PathSync` resync; arm [`ChaosOptions::liveness`] alongside this
    /// knob for any schedule that partitions members across rekeys.
    pub tree_rekey: bool,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            rekey_policy: RekeyPolicy::Manual,
            sabotage_watermark: false,
            liveness: false,
            tree_rekey: false,
        }
    }
}

/// How much virtual time the pump adds per real-time step. Small steps
/// matter: one big jump would blow every heartbeat deadline at once and
/// evict responsive members that merely hadn't been scheduled yet.
const PUMP_STEP: Duration = Duration::from_millis(5);
/// Real sleep between pump steps (≈5× speedup).
const PUMP_TICK: Duration = Duration::from_millis(1);

/// Clock and seed shared by every liveness-enabled session the driver
/// starts (including sessions restarted mid-run by a rejoin).
struct LivenessWiring {
    clock: VirtualClock,
    seed: u64,
}

/// Aggressive liveness knobs for chaos runs, in *virtual* milliseconds:
/// fast enough that a `Settle(900)` (≈4.5s virtual) comfortably covers a
/// full detect→evict or detect→rejoin cycle, slow enough that a healthy
/// member is never within an order of magnitude of its deadline.
fn chaos_liveness(seed: u64) -> LivenessConfig {
    LivenessConfig {
        retransmit_base: Duration::from_millis(100),
        retransmit_max: Duration::from_millis(800),
        jitter_pct: 100, // up to +10%
        max_attempts: 6,
        heartbeat_interval: Some(Duration::from_millis(200)),
        liveness_timeout: Some(Duration::from_millis(2500)),
        auto_rejoin: true,
        jitter_seed: seed,
        ..LivenessConfig::default()
    }
}

/// The result of a chaos run: the verdict plus everything needed to
/// diagnose or reproduce it.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// Violations the oracle found (empty = the paper's properties held).
    pub violations: Vec<Violation>,
    /// The full live trace.
    pub trace: Vec<LiveEvent>,
    /// Simulator network counters, when the fabric was the simulator.
    pub net_stats: Option<SimStats>,
    /// Merged metrics from every component of the run: the fabric's
    /// `net.*` counters, the leader's `leader.*` registry, and every
    /// member session's `member.*` registry (across reconnects).
    pub snapshot: Snapshot,
    /// The run's own observability stream (leader + every member emit
    /// onto one shared, totally ordered stream).
    pub obs_events: Vec<ProtocolEvent>,
    /// Violations found by replaying [`ChaosOutcome::obs_events`] through
    /// the same §5.4 oracle — the second ingestion path. Divergence from
    /// [`ChaosOutcome::violations`] on what it can observe is a bug in
    /// the instrumentation, so this must agree with the driver trace.
    pub obs_violations: Vec<Violation>,
}

impl ChaosOutcome {
    /// Whether the run satisfied every checked property on both
    /// ingestion paths (driver trace and observability stream).
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && self.obs_violations.is_empty()
    }
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum MemberState {
    Absent,
    Joined,
    Crashed,
    Departed,
}

struct MemberSlot {
    name: String,
    id: ActorId,
    password: String,
    state: MemberState,
    runtime: Option<MemberRuntime>,
    forwarder: Option<std::thread::JoinHandle<()>>,
    /// One registry per session segment (handles stay valid after the
    /// runtime is gone, so crashed sessions still contribute counters).
    registries: Vec<Registry>,
}

/// The leader operations the driver needs, abstracted so the same
/// execute/finalize machinery drives a single-group [`LeaderRuntime`] or
/// one [`GroupHandle`] of a multi-enclave [`LeaderService`].
trait LeaderOps {
    fn roster(&self) -> Vec<ActorId>;
    fn epoch(&self) -> Option<u64>;
    fn quiesced(&self) -> bool;
    fn expel(&self, user: &ActorId) -> Result<(), CoreError>;
    fn rekey(&self) -> Result<(), CoreError>;
    fn broadcast(&self, data: &[u8]) -> Result<Vec<ActorId>, CoreError>;
    fn broadcast_data(&self, data: &[u8]) -> Result<BroadcastReceipt, CoreError>;
    /// The enclave tag member sessions must join under.
    fn group(&self) -> Option<&GroupId>;
}

impl LeaderOps for LeaderRuntime {
    fn roster(&self) -> Vec<ActorId> {
        LeaderRuntime::roster(self)
    }
    fn epoch(&self) -> Option<u64> {
        LeaderRuntime::epoch(self)
    }
    fn quiesced(&self) -> bool {
        LeaderRuntime::quiesced(self)
    }
    fn expel(&self, user: &ActorId) -> Result<(), CoreError> {
        LeaderRuntime::expel(self, user)
    }
    fn rekey(&self) -> Result<(), CoreError> {
        LeaderRuntime::rekey(self)
    }
    fn broadcast(&self, data: &[u8]) -> Result<Vec<ActorId>, CoreError> {
        LeaderRuntime::broadcast(self, data)
    }
    fn broadcast_data(&self, data: &[u8]) -> Result<BroadcastReceipt, CoreError> {
        LeaderRuntime::broadcast_data(self, data)
    }
    fn group(&self) -> Option<&GroupId> {
        None
    }
}

impl LeaderOps for GroupHandle {
    fn roster(&self) -> Vec<ActorId> {
        GroupHandle::roster(self)
    }
    fn epoch(&self) -> Option<u64> {
        GroupHandle::epoch(self)
    }
    fn quiesced(&self) -> bool {
        GroupHandle::quiesced(self)
    }
    fn expel(&self, user: &ActorId) -> Result<(), CoreError> {
        GroupHandle::expel(self, user)
    }
    fn rekey(&self) -> Result<(), CoreError> {
        GroupHandle::rekey(self)
    }
    fn broadcast(&self, data: &[u8]) -> Result<Vec<ActorId>, CoreError> {
        GroupHandle::broadcast(self, data)
    }
    fn broadcast_data(&self, data: &[u8]) -> Result<BroadcastReceipt, CoreError> {
        GroupHandle::broadcast_data(self, data)
    }
    fn group(&self) -> Option<&GroupId> {
        self.group_id()
    }
}

/// Shared, lock-ordered trace sink. `*Send` events are appended while the
/// lock also covers the leader call that emits them, so no delivery can
/// ever be recorded ahead of its send.
type Sink = Arc<Mutex<Vec<LiveEvent>>>;

fn record(sink: &Sink, event: LiveEvent) {
    sink.lock().push(event);
}

/// Forwards one member's observed events into the trace. Exits when the
/// member's runtime drops its observer sender.
fn spawn_forwarder(
    sink: &Sink,
    name: &str,
    rx: Receiver<MemberEvent>,
) -> std::thread::JoinHandle<()> {
    let sink = Arc::clone(sink);
    let name = name.to_string();
    std::thread::Builder::new()
        .name(format!("chaos-obs-{name}"))
        .spawn(move || {
            while let Ok(event) = rx.recv() {
                let live = match event {
                    MemberEvent::Welcomed { epoch, .. } => Some(LiveEvent::Welcomed {
                        member: name.clone(),
                        epoch,
                    }),
                    MemberEvent::GroupKeyChanged { epoch } => Some(LiveEvent::KeyChanged {
                        member: name.clone(),
                        epoch,
                    }),
                    MemberEvent::AdminData(payload) => Some(LiveEvent::AdminDeliver {
                        member: name.clone(),
                        payload,
                    }),
                    MemberEvent::Broadcast { epoch, seq, data } => Some(LiveEvent::DataDeliver {
                        member: name.clone(),
                        epoch,
                        seq,
                        payload: data,
                    }),
                    // An auto-rejoin is a fresh session: record the same
                    // segment-reset marker the driver records for a
                    // scripted join, so per-session properties (close-once,
                    // FIFO) reset exactly where the member reset.
                    MemberEvent::RejoinStarted => Some(LiveEvent::JoinStarted {
                        member: name.clone(),
                    }),
                    _ => None,
                };
                if let Some(live) = live {
                    record(&sink, live);
                }
            }
        })
        .expect("spawn chaos observer forwarder")
}

/// Forwards leader-side membership events into the trace. Runs until
/// `stop` is set and the channel drains.
fn spawn_leader_collector(
    sink: &Sink,
    rx: Receiver<LeaderEvent>,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    let sink = Arc::clone(sink);
    std::thread::Builder::new()
        .name("chaos-leader-collector".into())
        .spawn(move || loop {
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(LeaderEvent::MemberJoined(user)) => record(
                    &sink,
                    LiveEvent::MemberJoined {
                        member: user.to_string(),
                    },
                ),
                Ok(LeaderEvent::MemberLeft(user)) => record(
                    &sink,
                    LiveEvent::MemberClosed {
                        member: user.to_string(),
                    },
                ),
                Ok(LeaderEvent::MemberEvicted(user)) => record(
                    &sink,
                    LiveEvent::Evicted {
                        member: user.to_string(),
                    },
                ),
                Ok(_) => {}
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                }
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => return,
            }
        })
        .expect("spawn chaos leader collector")
}

/// Executes `schedule` against a live leader + member cast on `fabric`,
/// then replays the recorded trace through the §5.4 live oracle.
///
/// The listener must come from the same fabric (see
/// [`crate::fabric::SimFabric::new`] / [`crate::fabric::TcpProxyFabric::new`]).
#[must_use]
pub fn run_schedule(
    fabric: &mut dyn Fabric,
    listener: Box<dyn Listener>,
    schedule: &Schedule,
    options: &ChaosOptions,
) -> ChaosOutcome {
    let sink: Sink = Arc::new(Mutex::new(Vec::new()));
    let leader_id = ActorId::new("leader").expect("static name");

    // One metrics registry for the fabric, one protocol-event stream
    // shared by the leader and every member: emissions interleave under a
    // single buffer lock, so the stream order is a happened-before order
    // across the whole world.
    let net_registry = Registry::default();
    fabric.attach_registry(&net_registry);
    let obs_stream = EventStream::new();

    let mut directory = Directory::new();
    let mut members: Vec<MemberSlot> = (0..schedule.members)
        .map(|i| {
            let name = format!("m{i}");
            let id = ActorId::new(&name).expect("generated name");
            let password = format!("{name}-pw");
            directory
                .register_password(&id, &password)
                .expect("fresh directory");
            MemberSlot {
                name,
                id,
                password,
                state: MemberState::Absent,
                runtime: None,
                forwarder: None,
                registries: Vec::new(),
            }
        })
        .collect();

    let wiring = options.liveness.then(|| LivenessWiring {
        clock: VirtualClock::new(),
        seed: schedule.seed,
    });
    let mut leader_config = LeaderConfig {
        rekey_policy: options.rekey_policy,
        tree_rekey: options.tree_rekey,
        ..LeaderConfig::default()
    };
    if let Some(w) = &wiring {
        leader_config.liveness = chaos_liveness(w.seed);
        leader_config.liveness.auto_rejoin = false; // member-side knob
        leader_config.clock = Some(Arc::new(w.clock.clone()));
    }

    let leader = LeaderRuntime::spawn(listener, leader_id.clone(), directory, leader_config);
    leader.attach_event_stream(obs_stream.clone());
    let stop = Arc::new(AtomicBool::new(false));
    let collector = spawn_leader_collector(&sink, leader.events().clone(), Arc::clone(&stop));

    // The time pump: virtual time flows in small steps at ~5× real time,
    // so deadline order is preserved (no member can be evicted because
    // the clock leapt over its heartbeat window).
    let pump = wiring.as_ref().map(|w| {
        let clock = w.clock.clone();
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("chaos-time-pump".into())
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(PUMP_TICK);
                    clock.advance(PUMP_STEP);
                }
            })
            .expect("spawn chaos time pump")
    });

    for event in &schedule.events {
        execute(
            fabric,
            &leader,
            &leader_id,
            &mut members,
            &sink,
            &obs_stream,
            options,
            wiring.as_ref(),
            event,
        );
    }

    finalize(fabric, &leader, &mut members, &sink, wiring.is_some());

    let leader_registry = leader.obs_registry();

    // Teardown: leader first (stops retransmissions), then the members.
    leader.shutdown();
    for slot in &mut members {
        if let Some(rt) = slot.runtime.take() {
            rt.abandon();
        }
        if let Some(h) = slot.forwarder.take() {
            let _ = h.join();
        }
    }
    stop.store(true, Ordering::Relaxed);
    let _ = collector.join();
    if let Some(pump) = pump {
        let _ = pump.join();
    }

    let trace = Arc::try_unwrap(sink)
        .map(Mutex::into_inner)
        .unwrap_or_default();

    // Merge every component's registry into one run-level snapshot. All
    // histograms use the shared default bounds, so merging cannot fail.
    let mut snapshot = net_registry.snapshot();
    snapshot
        .merge_from(&leader_registry.snapshot())
        .expect("uniform histogram bounds");
    for slot in &members {
        for registry in &slot.registries {
            snapshot
                .merge_from(&registry.snapshot())
                .expect("uniform histogram bounds");
        }
    }

    // Second ingestion path: project the run's own event stream onto the
    // live vocabulary, borrow the driver's end-of-run ground truth
    // (`Final` is driver-only knowledge), and replay the same oracle.
    let obs_events = obs_stream.events();
    let mut obs_live = obs_trace(&obs_events);
    if let Some(last @ LiveEvent::Final { .. }) = trace.last() {
        obs_live.push(last.clone());
    }
    let obs_violations = check_trace(&obs_live);

    ChaosOutcome {
        violations: check_trace(&trace),
        trace,
        net_stats: fabric.sim_stats(),
        snapshot,
        obs_events,
        obs_violations,
    }
}

/// The verdict of a multi-enclave chaos run: every group's own outcome
/// plus the cross-group isolation checks.
#[derive(Debug)]
pub struct MultigroupOutcome {
    /// Per-group results, keyed by the group's enclave tag.
    pub groups: Vec<(String, ChaosOutcome)>,
    /// Cross-group violations: any trace event in group A's record that
    /// names a member of another group (isolation demands there are
    /// none).
    pub cross_group_violations: Vec<String>,
    /// The service's merged labeled snapshot (`group.<tag>.leader.*`),
    /// taken after finalization.
    pub service_snapshot: Snapshot,
    /// Simulator network counters, when the fabric was the simulator.
    pub net_stats: Option<SimStats>,
}

impl MultigroupOutcome {
    /// Whether every group's oracle passed on both ingestion paths and no
    /// cross-group leakage was observed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.cross_group_violations.is_empty() && self.groups.iter().all(|(_, o)| o.passed())
    }
}

/// Member names an event refers to (used by the cross-group check).
fn event_members(event: &LiveEvent) -> Vec<&str> {
    match event {
        LiveEvent::JoinStarted { member }
        | LiveEvent::Welcomed { member, .. }
        | LiveEvent::KeyChanged { member, .. }
        | LiveEvent::AdminDeliver { member, .. }
        | LiveEvent::DataDeliver { member, .. }
        | LiveEvent::MemberJoined { member }
        | LiveEvent::MemberClosed { member }
        | LiveEvent::Evicted { member }
        | LiveEvent::Crashed { member }
        | LiveEvent::Partitioned { member }
        | LiveEvent::Healed { member } => vec![member.as_str()],
        LiveEvent::AdminSend { recipients, .. } | LiveEvent::DataSend { recipients, .. } => {
            recipients.iter().map(String::as_str).collect()
        }
        LiveEvent::Final { members, .. } => members.iter().map(|(m, _)| m.as_str()).collect(),
        LiveEvent::LeaderRekeyed { .. } => Vec::new(),
    }
}

/// Per-group world state for [`run_multigroup`].
struct GroupWorld {
    tag: String,
    cast_prefix: String,
    handle: GroupHandle,
    sink: Sink,
    obs_stream: EventStream,
    members: Vec<MemberSlot>,
    collector: Option<std::thread::JoinHandle<()>>,
}

/// Executes one schedule **per group** against a single multi-enclave
/// [`LeaderService`] on one fabric: group `g` gets enclave tag `g<g>` and
/// cast `g<g>m0..`, schedules interleave round-robin (event `k` of every
/// group before event `k+1` of any), so partitions, crashes, and rekeys
/// in one enclave land while its neighbours carry live traffic — all on
/// the service's one shared ticker and one seal pool.
///
/// Each group's trace and observability stream feed the same §5.4 oracle
/// as a single-group run; on top, the cross-group check asserts no
/// group's record ever names another group's member.
#[must_use]
pub fn run_multigroup(
    fabric: &mut dyn Fabric,
    listener: Box<dyn Listener>,
    schedules: &[Schedule],
    options: &ChaosOptions,
) -> MultigroupOutcome {
    let leader_id = ActorId::new("leader").expect("static name");
    let net_registry = Registry::default();
    fabric.attach_registry(&net_registry);

    let wiring = options.liveness.then(|| LivenessWiring {
        clock: VirtualClock::new(),
        seed: schedules.first().map_or(0, |s| s.seed),
    });
    let service = LeaderService::spawn(
        listener,
        ServiceConfig {
            clock: wiring
                .as_ref()
                .map(|w| Arc::new(w.clock.clone()) as Arc<dyn Clock>),
            ..ServiceConfig::default()
        },
    );

    let mut worlds: Vec<GroupWorld> = Vec::new();
    let stop = Arc::new(AtomicBool::new(false));
    for (g, schedule) in schedules.iter().enumerate() {
        let tag = format!("g{g}");
        let cast_prefix = format!("{tag}m");
        let mut directory = Directory::new();
        let members: Vec<MemberSlot> = (0..schedule.members)
            .map(|i| {
                let name = format!("{cast_prefix}{i}");
                let id = ActorId::new(&name).expect("generated name");
                let password = format!("{name}-pw");
                directory
                    .register_password(&id, &password)
                    .expect("fresh directory");
                MemberSlot {
                    name,
                    id,
                    password,
                    state: MemberState::Absent,
                    runtime: None,
                    forwarder: None,
                    registries: Vec::new(),
                }
            })
            .collect();
        let mut leader_config = LeaderConfig {
            rekey_policy: options.rekey_policy,
            tree_rekey: options.tree_rekey,
            group: Some(GroupId::new(&tag).expect("generated tag")),
            ..LeaderConfig::default()
        };
        if let Some(w) = &wiring {
            leader_config.liveness = chaos_liveness(w.seed);
            leader_config.liveness.auto_rejoin = false; // member-side knob
        }
        let handle = service
            .add_group(leader_id.clone(), directory, leader_config)
            .expect("fresh tag");
        let sink: Sink = Arc::new(Mutex::new(Vec::new()));
        let obs_stream = EventStream::new();
        handle.attach_event_stream(obs_stream.clone());
        let collector = spawn_leader_collector(&sink, handle.events().clone(), Arc::clone(&stop));
        worlds.push(GroupWorld {
            tag,
            cast_prefix,
            handle,
            sink,
            obs_stream,
            members,
            collector: Some(collector),
        });
    }

    let pump = wiring.as_ref().map(|w| {
        let clock = w.clock.clone();
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("chaos-time-pump".into())
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(PUMP_TICK);
                    clock.advance(PUMP_STEP);
                }
            })
            .expect("spawn chaos time pump")
    });

    // Round-robin interleave: every group advances one event per round.
    let rounds = schedules.iter().map(|s| s.events.len()).max().unwrap_or(0);
    for round in 0..rounds {
        for (world, schedule) in worlds.iter_mut().zip(schedules) {
            if let Some(event) = schedule.events.get(round) {
                execute(
                    fabric,
                    &world.handle,
                    &leader_id,
                    &mut world.members,
                    &world.sink,
                    &world.obs_stream,
                    options,
                    wiring.as_ref(),
                    event,
                );
            }
        }
    }

    for world in &mut worlds {
        finalize(
            fabric,
            &world.handle,
            &mut world.members,
            &world.sink,
            wiring.is_some(),
        );
    }

    let service_snapshot = service.snapshot();
    let leader_registries: Vec<Registry> = worlds.iter().map(|w| w.handle.obs_registry()).collect();
    service.shutdown();
    stop.store(true, Ordering::Relaxed);
    for world in &mut worlds {
        for slot in &mut world.members {
            if let Some(rt) = slot.runtime.take() {
                rt.abandon();
            }
            if let Some(h) = slot.forwarder.take() {
                let _ = h.join();
            }
        }
        if let Some(h) = world.collector.take() {
            let _ = h.join();
        }
    }
    if let Some(pump) = pump {
        let _ = pump.join();
    }

    let mut cross_group_violations = Vec::new();
    let mut groups = Vec::new();
    for (world, leader_registry) in worlds.into_iter().zip(leader_registries) {
        let trace = Arc::try_unwrap(world.sink)
            .map(Mutex::into_inner)
            .unwrap_or_default();

        // Cross-group isolation: every member this group's record names
        // must belong to this group's cast.
        for (i, event) in trace.iter().enumerate() {
            for member in event_members(event) {
                if !member.starts_with(&world.cast_prefix) {
                    cross_group_violations.push(format!(
                        "group {}: trace[{i}] names foreign member {member}: {event:?}",
                        world.tag
                    ));
                }
            }
        }

        let mut snapshot = leader_registry.snapshot();
        for slot in &world.members {
            for registry in &slot.registries {
                snapshot
                    .merge_from(&registry.snapshot())
                    .expect("uniform histogram bounds");
            }
        }
        let obs_events = world.obs_stream.events();
        let mut obs_live = obs_trace(&obs_events);
        if let Some(last @ LiveEvent::Final { .. }) = trace.last() {
            obs_live.push(last.clone());
        }
        let obs_violations = check_trace(&obs_live);
        groups.push((
            world.tag,
            ChaosOutcome {
                violations: check_trace(&trace),
                trace,
                net_stats: None,
                snapshot,
                obs_events,
                obs_violations,
            },
        ));
    }

    MultigroupOutcome {
        groups,
        cross_group_violations,
        service_snapshot,
        net_stats: fabric.sim_stats(),
    }
}

/// The verdict of a kill-9 → restart-from-journal run: the usual chaos
/// outcome computed over the whole two-generation trace, plus the
/// recovery facts the crash-recovery battery asserts on.
#[derive(Debug)]
pub struct CrashRestartOutcome {
    /// Oracle verdict, trace, and merged metrics across both leader
    /// generations (the snapshot includes the restarted service's
    /// `recovery.*` counters).
    pub outcome: ChaosOutcome,
    /// Leader epoch at the instant of the kill (`None`: nobody ever
    /// joined before the crash).
    pub pre_crash_epoch: Option<u64>,
    /// The epoch the journal replay + fence advance produced, before any
    /// member re-admitted itself.
    pub recovered_epoch: Option<u64>,
    /// Leader epoch at the end of the run.
    pub final_epoch: Option<u64>,
    /// Roster size the journal replay reconstructed (members the dead
    /// leader still owed a group to).
    pub recovered_members: usize,
    /// Journal records replayed at restart (including the genesis).
    pub recovered_records: u64,
    /// Whether a fence file bounded the recovery epoch.
    pub recovered_fenced: bool,
    /// Streams whose recovery failed (empty on a healthy run).
    pub failed_streams: Vec<String>,
}

/// Executes `schedule` against a journaled leader service, then kills the
/// leader the way `kill -9` would — no `Close` frames, no flush, the
/// listener name simply vanishes from the network — restarts a fresh
/// service from the same journal directory, runs `post_events` against
/// the recovered group, and finalizes as usual. Member runtimes live
/// through the whole run: their liveness layer detects the dead wire and
/// re-admits them through auto-rejoin once the restarted leader answers.
///
/// The trace spans both generations and feeds the same §5.4 oracle (both
/// ingestion paths), so convergence after the restart is checked by the
/// same properties as any other run — plus the recovery facts in
/// [`CrashRestartOutcome`].
///
/// Takes the simulator fabric concretely: reclaiming and re-binding the
/// leader's listener name between generations is a simulator-only
/// operation.
///
/// # Panics
///
/// Panics if `options.liveness` is off (without auto-rejoin no member
/// could survive the leader's death), or if the simulated network
/// refuses the restart listener.
#[must_use]
pub fn run_crash_restart(
    fabric: &mut SimFabric,
    listener: SimListener,
    schedule: &Schedule,
    post_events: &[ChaosEvent],
    options: &ChaosOptions,
    journal_dir: &Path,
) -> CrashRestartOutcome {
    assert!(
        options.liveness,
        "run_crash_restart needs the liveness layer: auto-rejoin is the \
         only path back into the group after the leader dies"
    );
    let sink: Sink = Arc::new(Mutex::new(Vec::new()));
    let leader_id = ActorId::new("leader").expect("static name");
    let net_registry = Registry::default();
    fabric.attach_registry(&net_registry);
    let obs_stream = EventStream::new();

    let mut directory = Directory::new();
    let mut members: Vec<MemberSlot> = (0..schedule.members)
        .map(|i| {
            let name = format!("m{i}");
            let id = ActorId::new(&name).expect("generated name");
            let password = format!("{name}-pw");
            directory
                .register_password(&id, &password)
                .expect("fresh directory");
            MemberSlot {
                name,
                id,
                password,
                state: MemberState::Absent,
                runtime: None,
                forwarder: None,
                registries: Vec::new(),
            }
        })
        .collect();

    let wiring = LivenessWiring {
        clock: VirtualClock::new(),
        seed: schedule.seed,
    };
    let mut leader_config = LeaderConfig {
        rekey_policy: options.rekey_policy,
        tree_rekey: options.tree_rekey,
        ..LeaderConfig::default()
    };
    leader_config.liveness = chaos_liveness(wiring.seed);
    leader_config.liveness.auto_rejoin = false; // member-side knob

    // Generation 1: a journaled service on a fresh (or empty) directory.
    let (service, _) = LeaderService::open_with_journal(
        Box::new(listener),
        journal_dir,
        ServiceConfig {
            clock: Some(Arc::new(wiring.clock.clone()) as Arc<dyn Clock>),
            ..ServiceConfig::default()
        },
    )
    .expect("journal directory must initialize");
    let handle = service
        .add_group(leader_id.clone(), directory, leader_config)
        .expect("fresh service");
    handle.attach_event_stream(obs_stream.clone());
    let stop = Arc::new(AtomicBool::new(false));
    let mut collectors = vec![spawn_leader_collector(
        &sink,
        handle.events().clone(),
        Arc::clone(&stop),
    )];

    let pump = {
        let clock = wiring.clock.clone();
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("chaos-time-pump".into())
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(PUMP_TICK);
                    clock.advance(PUMP_STEP);
                }
            })
            .expect("spawn chaos time pump")
    };

    for event in &schedule.events {
        execute(
            fabric,
            &handle,
            &leader_id,
            &mut members,
            &sink,
            &obs_stream,
            options,
            Some(&wiring),
            event,
        );
    }

    let pre_crash_epoch = handle.epoch();
    let gen1_registry = handle.obs_registry();

    // The kill: unbind the listener name first (no new connection can
    // reach a dying process), then tear the service down without a single
    // protocol frame — exactly what the members observe when the leader
    // process is killed mid-flight. Their runtimes stay up; the rejoin
    // loop's reconnector fails (nothing listens) and backs off until the
    // restarted service answers.
    //
    // The kill is an injected fault that severs every member↔leader
    // link at once: record the same per-member fault marker a scripted
    // partition leaves, so the oracle can attribute any liveness
    // eviction during the rejoin storm to the fault rather than flag a
    // false judgment.
    for slot in &members {
        if slot.runtime.is_some() {
            record(
                &sink,
                LiveEvent::Partitioned {
                    member: slot.name.clone(),
                },
            );
        }
    }
    assert!(
        fabric.net.unlisten("leader"),
        "the leader listener must exist until the kill"
    );
    drop(handle);
    service.shutdown();

    // Generation 2: restart from the journal under the same virtual
    // clock. The replay rebuilds the roster and epoch and advances past
    // the fence before the listener takes its first connection.
    let listener = fabric
        .net
        .listen("leader")
        .expect("the kill released the leader name");
    let (service, mut report) = LeaderService::open_with_journal(
        Box::new(listener),
        journal_dir,
        ServiceConfig {
            clock: Some(Arc::new(wiring.clock.clone()) as Arc<dyn Clock>),
            ..ServiceConfig::default()
        },
    )
    .expect("journal must replay after a crash");
    let failed_streams: Vec<String> = report.failed.iter().map(|f| f.stream.clone()).collect();
    assert_eq!(
        report.recovered.len(),
        1,
        "exactly the one journaled group must come back"
    );
    let recovered = report.recovered.remove(0);
    let handle = recovered.handle;
    handle.attach_event_stream(obs_stream.clone());
    collectors.push(spawn_leader_collector(
        &sink,
        handle.events().clone(),
        Arc::clone(&stop),
    ));

    // Members the driver crashed before the kill are in the recovered
    // roster but have no process to rejoin from: expel them now (their
    // `Crashed` markers justify the departure to the oracle) instead of
    // letting finalize wait out its whole convergence deadline on slots
    // that can never converge.
    for slot in members.iter_mut() {
        if slot.runtime.is_none() && handle.roster().contains(&slot.id) {
            let _ = handle.expel(&slot.id);
            if slot.state == MemberState::Crashed {
                slot.state = MemberState::Departed;
            }
        }
    }

    for event in post_events {
        execute(
            fabric,
            &handle,
            &leader_id,
            &mut members,
            &sink,
            &obs_stream,
            options,
            Some(&wiring),
            event,
        );
    }

    finalize(fabric, &handle, &mut members, &sink, true);

    let final_epoch = handle.epoch();
    // The restarted service's snapshot carries generation 2's `leader.*`
    // registry (the group is untagged, so the names are bare) plus the
    // service-level `recovery.*` counters.
    let gen2_snapshot = service.snapshot();
    drop(handle);
    service.shutdown();
    stop.store(true, Ordering::Relaxed);
    for slot in &mut members {
        if let Some(rt) = slot.runtime.take() {
            rt.abandon();
        }
        if let Some(h) = slot.forwarder.take() {
            let _ = h.join();
        }
    }
    for collector in collectors {
        let _ = collector.join();
    }
    let _ = pump.join();

    let trace = Arc::try_unwrap(sink)
        .map(Mutex::into_inner)
        .unwrap_or_default();

    let mut snapshot = net_registry.snapshot();
    snapshot
        .merge_from(&gen1_registry.snapshot())
        .expect("uniform histogram bounds");
    snapshot
        .merge_from(&gen2_snapshot)
        .expect("uniform histogram bounds");
    for slot in &members {
        for registry in &slot.registries {
            snapshot
                .merge_from(&registry.snapshot())
                .expect("uniform histogram bounds");
        }
    }

    let obs_events = obs_stream.events();
    let mut obs_live = obs_trace(&obs_events);
    if let Some(last @ LiveEvent::Final { .. }) = trace.last() {
        obs_live.push(last.clone());
    }
    let obs_violations = check_trace(&obs_live);

    CrashRestartOutcome {
        outcome: ChaosOutcome {
            violations: check_trace(&trace),
            trace,
            net_stats: fabric.sim_stats(),
            snapshot,
            obs_events,
            obs_violations,
        },
        pre_crash_epoch,
        recovered_epoch: recovered.epoch,
        final_epoch,
        recovered_members: recovered.members,
        recovered_records: recovered.records,
        recovered_fenced: recovered.fenced,
        failed_streams,
    }
}

/// Starts (or restarts) a member's session: records the segment reset,
/// connects through the fabric, and waits (bounded) for the welcome.
#[allow(clippy::too_many_arguments)]
fn start_join(
    fabric: &mut dyn Fabric,
    leader_id: &ActorId,
    group: Option<&GroupId>,
    slot: &mut MemberSlot,
    sink: &Sink,
    obs_stream: &EventStream,
    options: &ChaosOptions,
    wiring: Option<&LivenessWiring>,
) {
    record(
        sink,
        LiveEvent::JoinStarted {
            member: slot.name.clone(),
        },
    );
    let Ok(link) = fabric.connect(&slot.name) else {
        slot.state = MemberState::Absent;
        return;
    };
    let (obs_tx, obs_rx): (Sender<MemberEvent>, Receiver<MemberEvent>) = unbounded();
    let mut member_options = MemberOptions {
        observer: Some(obs_tx),
        disable_broadcast_watermark: options.sabotage_watermark,
        events: Some(obs_stream.clone()),
        group: group.cloned(),
        ..MemberOptions::default()
    };
    if let Some(w) = wiring {
        // Per-member jitter seed: identical backoff schedules across the
        // cast would synchronize every rejoin handshake.
        let name_tag: u64 = slot.name.bytes().map(u64::from).sum();
        let mut liveness = chaos_liveness(w.seed);
        liveness.jitter_seed = w.seed.wrapping_mul(0x9e37_79b9).wrapping_add(name_tag);
        member_options.liveness = liveness;
        member_options.clock = Some(Arc::new(w.clock.clone()));
        member_options.reconnect = fabric.reconnector(&slot.name);
    }
    let runtime = MemberRuntime::connect_with(
        link,
        slot.id.clone(),
        leader_id.clone(),
        &slot.password,
        member_options,
    );
    match runtime {
        Ok(rt) => {
            slot.registries.push(rt.obs_registry());
            // The previous forwarder (if any) has already exited — its
            // sender died with the previous runtime.
            if let Some(h) = slot.forwarder.take() {
                let _ = h.join();
            }
            slot.forwarder = Some(spawn_forwarder(sink, &slot.name, obs_rx));
            // Bounded wait: under faults the welcome may be late; the
            // session keeps trying either way (handshake ARQ).
            let _ = rt.wait_joined(JOIN_WAIT);
            slot.runtime = Some(rt);
            slot.state = MemberState::Joined;
        }
        Err(_) => slot.state = MemberState::Absent,
    }
}

#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn execute(
    fabric: &mut dyn Fabric,
    leader: &dyn LeaderOps,
    leader_id: &ActorId,
    members: &mut [MemberSlot],
    sink: &Sink,
    obs_stream: &EventStream,
    options: &ChaosOptions,
    wiring: Option<&LivenessWiring>,
    event: &ChaosEvent,
) {
    match event {
        ChaosEvent::Join(i) | ChaosEvent::Reconnect(i) => {
            let Some(slot) = members.get_mut(*i) else {
                return;
            };
            if slot.runtime.is_some() {
                return; // Already live: the schedule generator avoids this.
            }
            // A stale slot survives at the leader after a crash (and after
            // a leave whose Close the chaos ate); clear it or the new
            // handshake is ignored until the old session closes.
            if leader.roster().contains(&slot.id) {
                let _ = leader.expel(&slot.id);
            }
            start_join(
                fabric,
                leader_id,
                leader.group(),
                slot,
                sink,
                obs_stream,
                options,
                wiring,
            );
        }
        ChaosEvent::Leave(i) => {
            let Some(slot) = members.get_mut(*i) else {
                return;
            };
            if let Some(rt) = slot.runtime.take() {
                let _ = rt.leave();
                slot.state = MemberState::Departed;
            }
        }
        ChaosEvent::Expel(i) => {
            let Some(slot) = members.get_mut(*i) else {
                return;
            };
            if leader.expel(&slot.id).is_ok() {
                if let Some(rt) = slot.runtime.take() {
                    rt.abandon();
                }
                slot.state = MemberState::Departed;
            }
        }
        ChaosEvent::Crash(i) => {
            let Some(slot) = members.get_mut(*i) else {
                return;
            };
            if let Some(rt) = slot.runtime.take() {
                // Sever the wire first (mid-session kill), then stop the
                // runtime without a Close.
                fabric.kill(&slot.name);
                rt.abandon();
                slot.state = MemberState::Crashed;
                // With the liveness layer armed the leader will evict this
                // slot by timeout: leave the fault marker that justifies
                // the eviction to the oracle.
                if wiring.is_some() {
                    record(
                        sink,
                        LiveEvent::Crashed {
                            member: slot.name.clone(),
                        },
                    );
                }
            }
        }
        ChaosEvent::CrashWire(i) => {
            let Some(slot) = members.get_mut(*i) else {
                return;
            };
            if slot.runtime.is_none() {
                return;
            }
            fabric.kill(&slot.name);
            if wiring.is_some() {
                // The runtime stays alive: its own liveness layer must
                // detect the dead wire and drive the rejoin once healed.
                record(
                    sink,
                    LiveEvent::Crashed {
                        member: slot.name.clone(),
                    },
                );
            } else if let Some(rt) = slot.runtime.take() {
                // Without a liveness layer nobody would ever notice the
                // dead wire: degrade to a plain crash so the run can
                // still finalize.
                rt.abandon();
                slot.state = MemberState::Crashed;
            }
        }
        ChaosEvent::Rekey => {
            // Hold the trace lock across the call so the rekey and any
            // member-side KeyChanged land in a consistent order.
            let mut trace = sink.lock();
            if leader.rekey().is_ok() {
                if let Some(epoch) = leader.epoch() {
                    trace.push(LiveEvent::LeaderRekeyed { epoch });
                }
            }
        }
        ChaosEvent::AdminBroadcast(payload) => {
            // The lock spans the send so no member's delivery can be
            // recorded before the send itself.
            let mut trace = sink.lock();
            if let Ok(recipients) = leader.broadcast(payload) {
                trace.push(LiveEvent::AdminSend {
                    payload: payload.clone(),
                    recipients: recipients.iter().map(ToString::to_string).collect(),
                });
            }
        }
        ChaosEvent::DataBroadcast(payload) => {
            let mut trace = sink.lock();
            if let Ok(receipt) = leader.broadcast_data(payload) {
                trace.push(LiveEvent::DataSend {
                    epoch: receipt.epoch,
                    seq: receipt.seq,
                    payload: payload.clone(),
                    recipients: receipt.recipients.iter().map(ToString::to_string).collect(),
                });
            }
        }
        ChaosEvent::Partition {
            member,
            to_leader,
            to_member,
        } => {
            if let Some(slot) = members.get(*member) {
                fabric.partition(&slot.name, *to_leader, *to_member);
                if wiring.is_some() {
                    record(
                        sink,
                        LiveEvent::Partitioned {
                            member: slot.name.clone(),
                        },
                    );
                }
            }
        }
        ChaosEvent::Heal(i) => {
            if let Some(slot) = members.get(*i) {
                fabric.heal(&slot.name);
                if wiring.is_some() {
                    record(
                        sink,
                        LiveEvent::Healed {
                            member: slot.name.clone(),
                        },
                    );
                }
            }
        }
        ChaosEvent::HealAll => fabric.heal_all(),
        ChaosEvent::Settle(ms) => std::thread::sleep(Duration::from_millis(*ms)),
    }
}

/// Drives the system to a checkable resting state: calm the network, heal
/// every partition, clear dead slots, wait for the retransmission layer to
/// drain, then send one probe broadcast and snapshot everyone's epoch.
fn finalize(
    fabric: &mut dyn Fabric,
    leader: &dyn LeaderOps,
    members: &mut [MemberSlot],
    sink: &Sink,
    liveness: bool,
) {
    fabric.calm();
    fabric.heal_all();
    fabric.flush();

    // With the liveness layer armed, recovery is the system's job, not
    // the driver's: wait (bounded) for timeout evictions to clear dead
    // slots and for every still-running member to rejoin and converge on
    // the leader's epoch, *before* the manual dead-slot sweep below runs
    // as a fallback. Expelling here too early would rob the oracle of the
    // eviction it is owed for each `Crashed` marker.
    if liveness {
        let deadline = Instant::now() + QUIESCE_WAIT;
        while Instant::now() < deadline {
            fabric.flush();
            let roster = leader.roster();
            let leader_epoch = leader.epoch();
            let converged = members.iter().all(|slot| match &slot.runtime {
                Some(rt) => rt.group_epoch().is_some() && rt.group_epoch() == leader_epoch,
                None => !roster.contains(&slot.id),
            });
            if converged && leader.quiesced() {
                break;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    // Clear slots of members the driver knows are gone (crashed, or a
    // departure whose Close was lost to the chaos): the leader would
    // otherwise retransmit to them forever and never quiesce.
    let roster: Vec<ActorId> = leader.roster();
    for slot in members.iter_mut() {
        let live = slot.runtime.is_some();
        if !live && roster.contains(&slot.id) {
            let _ = leader.expel(&slot.id);
            if slot.state == MemberState::Crashed {
                slot.state = MemberState::Departed;
            }
        }
    }

    // Quiesce: every outstanding admin exchange acked. Flush the fabric
    // while waiting — a reorder holdback from the chaotic phase may still
    // be parked on a wire.
    let deadline = Instant::now() + QUIESCE_WAIT;
    while !leader.quiesced() && Instant::now() < deadline {
        fabric.flush();
        std::thread::sleep(Duration::from_millis(50));
    }

    // Members whose join never completed (welcome lost in a partition and
    // not recovered by quiescence) are not "connected": take them out of
    // the final roster on both sides.
    for slot in members.iter_mut() {
        if slot.runtime.is_some()
            && slot
                .runtime
                .as_ref()
                .is_some_and(|rt| rt.group_epoch().is_none())
        {
            let _ = leader.expel(&slot.id);
            if let Some(rt) = slot.runtime.take() {
                rt.abandon();
            }
            slot.state = MemberState::Departed;
        }
    }

    // The probe: one data-plane broadcast every connected member must
    // open (an AEAD proof of key agreement, not just epoch equality).
    let probe = {
        let mut trace = sink.lock();
        match leader.broadcast_data(b"chaos-final-probe") {
            Ok(receipt) => {
                trace.push(LiveEvent::DataSend {
                    epoch: receipt.epoch,
                    seq: receipt.seq,
                    payload: b"chaos-final-probe".to_vec(),
                    recipients: receipt.recipients.iter().map(ToString::to_string).collect(),
                });
                Some(receipt)
            }
            Err(_) => None, // Empty group at rest: nothing to probe.
        }
    };

    // Wait until every live member's delivery of the probe is in the
    // trace (bounded; a member that never opens it is the oracle's
    // problem to report, not ours to mask).
    if let Some(receipt) = &probe {
        let live: Vec<String> = members
            .iter()
            .filter(|s| s.runtime.is_some())
            .map(|s| s.name.clone())
            .collect();
        let deadline = Instant::now() + PROBE_WAIT;
        loop {
            let delivered = {
                let trace = sink.lock();
                live.iter()
                    .filter(|name| {
                        trace.iter().any(|e| {
                            matches!(e, LiveEvent::DataDeliver { member, epoch, seq, .. }
                                if member == *name
                                    && *epoch == receipt.epoch
                                    && *seq == receipt.seq)
                        })
                    })
                    .count()
            };
            if delivered == live.len() || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    let final_members: Vec<(String, Option<u64>)> = members
        .iter()
        .filter(|s| s.runtime.is_some())
        .map(|s| {
            (
                s.name.clone(),
                s.runtime.as_ref().and_then(MemberRuntime::group_epoch),
            )
        })
        .collect();
    record(
        sink,
        LiveEvent::Final {
            leader_epoch: leader.epoch(),
            members: final_members,
        },
    );
}
