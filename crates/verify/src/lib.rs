//! Verification harness reproducing Section 5 of *Intrusion-Tolerant
//! Group Management in Enclaves* (DSN 2001).
//!
//! The paper proves its requirements in PVS over an unbounded model; this
//! crate evaluates the *same* properties over every state of the bounded
//! executable model in `enclaves-model`:
//!
//! * [`secrecy`] — §5.1 (secrecy of the long-term key `P_a`, via the
//!   regularity argument) and §5.2 (secrecy of in-use session keys, via
//!   the ideal/coideal invariant `trace(q) ⊆ C({K_a, P_a})`).
//! * [`diagram`] — §5.3: the Figure 4 verification diagram as an
//!   executable disjunctive invariant — every reachable state must satisfy
//!   exactly one box predicate and every transition must follow a diagram
//!   edge.
//! * [`properties`] — §5.4: the properties read off the diagram — proper
//!   distribution (`rcv_A` is a prefix of `snd_A`), proper authentication
//!   (acceptances pair with requests in order), and key/nonce agreement
//!   when both sides are connected.
//! * [`treekem`] — §5.2 extended to the `O(log N)` rekey tree: an
//!   expelled member's accumulated node-key closure opens no
//!   post-expulsion `PathUpdate` seal and reaches no post-expulsion root.
//! * [`runner`] — packaged verification suites and result tables used by
//!   the benchmark report and `EXPERIMENTS.md`.
//! * [`live`] — trace-level adapters that replay a recorded run of the
//!   *threaded* runtimes through the same §5.4 predicates, so the chaos
//!   harness asserts the paper's guarantees against live sessions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diagram;
pub mod live;
pub mod obs;
pub mod properties;
pub mod runner;
pub mod secrecy;
pub mod treekem;
