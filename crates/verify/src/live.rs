//! Live-trace adapters for the Section 5.4 properties: the chaos harness
//! records every application-level send and delivery of a *threaded*
//! leader/member run into a [`LiveEvent`] trace, and this module replays
//! that trace through the same property predicates the model checker uses
//! — so the paper's guarantees are asserted against real concurrent
//! sessions over a faulty network, not just the abstract model.
//!
//! The trace vocabulary is deliberately transport-free (`String` names,
//! `Vec<u8>` payloads): this crate keeps its dependency surface at
//! `enclaves-model`, and any harness — sim, TCP, or a future transport —
//! can produce the events.
//!
//! Checkers:
//!
//! * [`AdminPrefixChecker`] — §5.4 P3 on the live admin channel. For each
//!   member's session segment it interns admin payloads as model
//!   [`Field`]s, builds a [`SystemState`] whose `snd_a`/`rcv_a` mirror the
//!   live trace, and calls the *actual*
//!   [`AdminPrefixProperty`](crate::properties::AdminPrefixProperty) after
//!   every delivery (incrementally, so transient violations cannot be
//!   masked by later traffic).
//! * [`BroadcastUniquenessChecker`] — no duplicate, replayed, reordered,
//!   forged, or cross-epoch data-plane delivery.
//! * [`EpochMonotonicChecker`] — group-key epochs never move backwards,
//!   at the leader or at any member.
//! * [`CloseOnceChecker`] — at most one leader-observed departure per
//!   member session (voluntary close, expel, or liveness eviction).
//! * [`FinalAgreementChecker`] — after the network heals and the system
//!   quiesces, every connected member agrees with the leader on the
//!   group-key epoch and has opened the final probe broadcast (an AEAD
//!   proof that it holds the same `K_g`, not just the same number).
//! * [`EvictionLivenessChecker`] — a member whose wire the driver crashed
//!   is eventually evicted by the leader's liveness layer (or re-welcomed,
//!   if it healed and rejoined before the eviction fired).
//! * [`NoFalseEvictionChecker`] — the leader never evicts a member the
//!   driver did not actually crash or partition: bounded delay and loss
//!   alone must not exhaust a correctly budgeted ARQ.
//! * [`RejoinFreshEpochChecker`] — a member re-welcomed after an eviction
//!   lands in a strictly newer group-key epoch than any it held before
//!   (the eviction's policy rekey must fence the old key off).

use crate::properties::AdminPrefixProperty;
use enclaves_model::explore::StateChecker;
use enclaves_model::field::{Field, NonceId};
use enclaves_model::system::{Scenario, SystemState};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One application-level observation from a live run.
///
/// `*Send` events are recorded by the driver *before* it hands the payload
/// to the leader runtime, so a concurrent delivery can never appear in the
/// trace ahead of its send. `*Deliver` events are recorded from each
/// member's observer tee the moment the session surfaces them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LiveEvent {
    /// The driver is about to (re)connect `member`; any previous session
    /// segment for that member is finished and its bookkeeping resets.
    JoinStarted {
        /// Member name.
        member: String,
    },
    /// `member` accepted the welcome (roster + group key) at `epoch`.
    Welcomed {
        /// Member name.
        member: String,
        /// Group-key epoch installed.
        epoch: u64,
    },
    /// `member` installed a rotated group key.
    KeyChanged {
        /// Member name.
        member: String,
        /// The new epoch.
        epoch: u64,
    },
    /// The leader rotated the group key.
    LeaderRekeyed {
        /// The new epoch.
        epoch: u64,
    },
    /// The leader sent an admin-channel broadcast to `recipients` (the
    /// roster captured under the core lock at send time).
    AdminSend {
        /// Application payload.
        payload: Vec<u8>,
        /// Exact recipient set.
        recipients: Vec<String>,
    },
    /// `member` accepted an admin-channel broadcast.
    AdminDeliver {
        /// Member name.
        member: String,
        /// Application payload.
        payload: Vec<u8>,
    },
    /// The leader sealed a data-plane broadcast into `(epoch, seq)`.
    DataSend {
        /// Group-key epoch sealed under.
        epoch: u64,
        /// Broadcast sequence number within the epoch.
        seq: u64,
        /// Application payload.
        payload: Vec<u8>,
        /// Exact recipient set.
        recipients: Vec<String>,
    },
    /// `member` opened a data-plane broadcast.
    DataDeliver {
        /// Member name.
        member: String,
        /// Epoch the frame claimed.
        epoch: u64,
        /// Sequence number the frame claimed.
        seq: u64,
        /// Decrypted payload.
        payload: Vec<u8>,
    },
    /// The leader accepted `member` into the group.
    MemberJoined {
        /// Member name.
        member: String,
    },
    /// The leader observed `member` depart (voluntary close or expel).
    MemberClosed {
        /// Member name.
        member: String,
    },
    /// The leader's liveness layer evicted `member` (ARQ budget exhausted
    /// or heartbeat deadline missed) — the timeout-driven `Oops(Ka)` path.
    Evicted {
        /// Member name.
        member: String,
    },
    /// Driver fault marker: `member`'s wire was severed without a close
    /// (crash-without-close). Only the chaos driver records these; they
    /// never appear in the observability projection.
    Crashed {
        /// Member name.
        member: String,
    },
    /// Driver fault marker: `member` was partitioned from the leader.
    Partitioned {
        /// Member name.
        member: String,
    },
    /// Driver fault marker: a partition or crash affecting `member` was
    /// healed.
    Healed {
        /// Member name.
        member: String,
    },
    /// End-of-run snapshot, recorded after the driver healed all
    /// partitions and waited for quiescence.
    Final {
        /// The leader's group-key epoch.
        leader_epoch: Option<u64>,
        /// Every member the driver believes is still connected, with the
        /// group-key epoch it holds.
        members: Vec<(String, Option<u64>)>,
    },
}

/// A property violation found in a live trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which checker fired.
    pub checker: &'static str,
    /// Index into the trace of the event that exposed the violation.
    pub index: usize,
    /// Human-readable description.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] at trace[{}]: {}",
            self.checker, self.index, self.detail
        )
    }
}

/// A property predicate over a live trace.
pub trait LiveChecker {
    /// Checker name (used in violation reports).
    fn name(&self) -> &'static str;
    /// Scans the trace and returns every violation found.
    fn check(&self, trace: &[LiveEvent]) -> Vec<Violation>;
}

/// §5.4 P3 over the live admin channel, evaluated by the *model checker's
/// own* [`AdminPrefixProperty`]: per member session segment, the list of
/// accepted admin payloads must at all times be a prefix of the list of
/// admin payloads the leader addressed to that member.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdminPrefixChecker;

impl LiveChecker for AdminPrefixChecker {
    fn name(&self) -> &'static str {
        "live-P3: admin deliveries are a prefix of admin sends"
    }

    fn check(&self, trace: &[LiveEvent]) -> Vec<Violation> {
        let mut violations = Vec::new();
        // Payloads are interned as model nonces: equal bytes, equal Field.
        let mut intern: HashMap<Vec<u8>, u32> = HashMap::new();
        let mut field_of = |payload: &[u8]| -> Field {
            let next = intern.len() as u32;
            Field::Nonce(NonceId(*intern.entry(payload.to_vec()).or_insert(next)))
        };
        let scenario = Scenario::honest_pair();
        let mut snd: BTreeMap<String, Vec<Field>> = BTreeMap::new();
        let mut rcv: BTreeMap<String, Vec<Field>> = BTreeMap::new();
        // One report per member per segment: a single lost prefix slot
        // would otherwise flag every subsequent delivery too.
        let mut reported: BTreeSet<String> = BTreeSet::new();

        for (index, event) in trace.iter().enumerate() {
            match event {
                LiveEvent::JoinStarted { member } => {
                    snd.remove(member);
                    rcv.remove(member);
                    reported.remove(member);
                }
                LiveEvent::AdminSend {
                    payload,
                    recipients,
                } => {
                    let field = field_of(payload);
                    for member in recipients {
                        snd.entry(member.clone()).or_default().push(field.clone());
                    }
                }
                LiveEvent::AdminDeliver { member, payload } => {
                    let field = field_of(payload);
                    rcv.entry(member.clone()).or_default().push(field);
                    if reported.contains(member) {
                        continue;
                    }
                    // Rebuild the model state for this member and run the
                    // real model property on it.
                    let mut state = SystemState::initial(&scenario);
                    state.snd_a = snd.get(member).cloned().unwrap_or_default();
                    state.rcv_a = rcv.get(member).cloned().unwrap_or_default();
                    if let Err(detail) = AdminPrefixProperty.check(&state) {
                        reported.insert(member.clone());
                        violations.push(Violation {
                            checker: self.name(),
                            index,
                            detail: format!("member {member}: {detail}"),
                        });
                    }
                }
                _ => {}
            }
        }
        violations
    }
}

/// Data-plane delivery discipline: every delivered broadcast was actually
/// sent to that member in that exact `(epoch, seq)` slot with that exact
/// payload, each slot is delivered at most once per member session, and
/// within an epoch a member's accepted sequence numbers strictly increase
/// (the watermark property — a dropped frame is legal, a replayed or
/// rolled-back one is not).
#[derive(Debug, Clone, Copy, Default)]
pub struct BroadcastUniquenessChecker;

impl LiveChecker for BroadcastUniquenessChecker {
    fn name(&self) -> &'static str {
        "live-data: no duplicate, forged, or cross-epoch data delivery"
    }

    fn check(&self, trace: &[LiveEvent]) -> Vec<Violation> {
        let mut violations = Vec::new();
        let mut sends: HashMap<(u64, u64), (Vec<u8>, Vec<String>)> = HashMap::new();
        let mut seen: BTreeMap<String, BTreeSet<(u64, u64)>> = BTreeMap::new();
        let mut high: BTreeMap<(String, u64), u64> = BTreeMap::new();

        for (index, event) in trace.iter().enumerate() {
            match event {
                LiveEvent::JoinStarted { member } => {
                    seen.remove(member);
                    high.retain(|(m, _), _| m != member);
                }
                LiveEvent::DataSend {
                    epoch,
                    seq,
                    payload,
                    recipients,
                } if sends
                    .insert((*epoch, *seq), (payload.clone(), recipients.clone()))
                    .is_some() =>
                {
                    violations.push(Violation {
                        checker: self.name(),
                        index,
                        detail: format!(
                            "leader sealed two different broadcasts into \
                                 (epoch {epoch}, seq {seq})"
                        ),
                    });
                }
                LiveEvent::DataDeliver {
                    member,
                    epoch,
                    seq,
                    payload,
                } => {
                    let slot = (*epoch, *seq);
                    match sends.get(&slot) {
                        None => violations.push(Violation {
                            checker: self.name(),
                            index,
                            detail: format!(
                                "member {member} delivered (epoch {epoch}, seq {seq}) \
                                 which the leader never sent"
                            ),
                        }),
                        Some((sent_payload, recipients)) => {
                            if sent_payload != payload {
                                violations.push(Violation {
                                    checker: self.name(),
                                    index,
                                    detail: format!(
                                        "member {member} delivered a different payload \
                                         than was sealed into (epoch {epoch}, seq {seq})"
                                    ),
                                });
                            }
                            if !recipients.contains(member) {
                                violations.push(Violation {
                                    checker: self.name(),
                                    index,
                                    detail: format!(
                                        "member {member} delivered (epoch {epoch}, seq \
                                         {seq}) but was not among its recipients"
                                    ),
                                });
                            }
                        }
                    }
                    if !seen.entry(member.clone()).or_default().insert(slot) {
                        violations.push(Violation {
                            checker: self.name(),
                            index,
                            detail: format!(
                                "member {member} delivered (epoch {epoch}, seq {seq}) twice"
                            ),
                        });
                    }
                    let key = (member.clone(), *epoch);
                    if let Some(&h) = high.get(&key) {
                        if *seq <= h {
                            violations.push(Violation {
                                checker: self.name(),
                                index,
                                detail: format!(
                                    "member {member} accepted seq {seq} after seq {h} \
                                     in epoch {epoch} (watermark rollback)"
                                ),
                            });
                        }
                    }
                    let entry = high.entry(key).or_insert(*seq);
                    *entry = (*entry).max(*seq);
                }
                _ => {}
            }
        }
        violations
    }
}

/// Group-key epochs never move backwards: the leader's rekeys strictly
/// increase, and every epoch a member installs (welcome or rotation) is at
/// least as new as anything that member has seen before — across
/// reconnects too, since the leader's epoch counter is global.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpochMonotonicChecker;

impl LiveChecker for EpochMonotonicChecker {
    fn name(&self) -> &'static str {
        "live-epoch: group-key epochs never regress"
    }

    fn check(&self, trace: &[LiveEvent]) -> Vec<Violation> {
        let mut violations = Vec::new();
        let mut leader_high: Option<u64> = None;
        let mut member_high: BTreeMap<String, u64> = BTreeMap::new();
        let mut observe = |violations: &mut Vec<Violation>,
                           name: &'static str,
                           index: usize,
                           member: &String,
                           epoch: u64,
                           strict: bool| {
            if let Some(&h) = member_high.get(member) {
                if epoch < h || (strict && epoch == h) {
                    violations.push(Violation {
                        checker: name,
                        index,
                        detail: format!(
                            "member {member} installed epoch {epoch} after holding {h}"
                        ),
                    });
                }
            }
            let entry = member_high.entry(member.clone()).or_insert(epoch);
            *entry = (*entry).max(epoch);
        };

        for (index, event) in trace.iter().enumerate() {
            match event {
                LiveEvent::LeaderRekeyed { epoch } => {
                    if leader_high.is_some_and(|h| *epoch <= h) {
                        violations.push(Violation {
                            checker: self.name(),
                            index,
                            detail: format!(
                                "leader rekeyed to epoch {epoch} after {}",
                                leader_high.unwrap_or_default()
                            ),
                        });
                    }
                    leader_high = Some(leader_high.unwrap_or(*epoch).max(*epoch));
                }
                // A welcome may repeat the current epoch (rejoin without a
                // rekey); a rotation must strictly advance.
                LiveEvent::Welcomed { member, epoch } => {
                    observe(&mut violations, self.name(), index, member, *epoch, false);
                }
                LiveEvent::KeyChanged { member, epoch } => {
                    observe(&mut violations, self.name(), index, member, *epoch, true);
                }
                _ => {}
            }
        }
        violations
    }
}

/// At-most-once close: the leader observes at most one departure per
/// member session (a replayed `Close` or a late duplicate expel must not
/// double-process), and never a departure for a member it never admitted.
#[derive(Debug, Clone, Copy, Default)]
pub struct CloseOnceChecker;

impl LiveChecker for CloseOnceChecker {
    fn name(&self) -> &'static str {
        "live-close: at most one departure per member session"
    }

    fn check(&self, trace: &[LiveEvent]) -> Vec<Violation> {
        let mut violations = Vec::new();
        // None = never joined; Some(true) = in group; Some(false) = closed.
        let mut state: BTreeMap<String, bool> = BTreeMap::new();
        for (index, event) in trace.iter().enumerate() {
            match event {
                LiveEvent::MemberJoined { member } => {
                    state.insert(member.clone(), true);
                }
                // An eviction is a departure like any other: the same
                // session must not also close voluntarily afterwards.
                LiveEvent::MemberClosed { member } | LiveEvent::Evicted { member } => {
                    match state.get(member) {
                        Some(true) => {
                            state.insert(member.clone(), false);
                        }
                        Some(false) => violations.push(Violation {
                            checker: self.name(),
                            index,
                            detail: format!("member {member} departed twice in one session"),
                        }),
                        None => violations.push(Violation {
                            checker: self.name(),
                            index,
                            detail: format!("member {member} departed but never joined"),
                        }),
                    }
                }
                _ => {}
            }
        }
        violations
    }
}

/// End-of-run agreement on `(epoch, K_g)`: once the network is healed and
/// the system quiesced, every still-connected member holds the leader's
/// epoch, and every recipient of the final probe broadcast opened it —
/// successfully unsealing the probe is an AEAD proof that the member holds
/// the same group *key*, not merely the same epoch number.
#[derive(Debug, Clone, Copy, Default)]
pub struct FinalAgreementChecker;

impl LiveChecker for FinalAgreementChecker {
    fn name(&self) -> &'static str {
        "live-agreement: connected members agree on (epoch, K_g) at rest"
    }

    fn check(&self, trace: &[LiveEvent]) -> Vec<Violation> {
        let mut violations = Vec::new();
        let Some((final_index, (leader_epoch, members))) =
            trace.iter().enumerate().rev().find_map(|(i, e)| match e {
                LiveEvent::Final {
                    leader_epoch,
                    members,
                } => Some((i, (leader_epoch, members))),
                _ => None,
            })
        else {
            return violations; // No snapshot: nothing to assert.
        };

        for (member, epoch) in members {
            match (leader_epoch, epoch) {
                (Some(le), Some(me)) if le == me => {}
                _ => violations.push(Violation {
                    checker: self.name(),
                    index: final_index,
                    detail: format!(
                        "member {member} holds epoch {epoch:?} but the leader \
                         is at {leader_epoch:?}"
                    ),
                }),
            }
        }

        // The probe: the last data broadcast before the snapshot.
        let Some((probe_index, (p_epoch, p_seq, p_recipients))) = trace[..final_index]
            .iter()
            .enumerate()
            .rev()
            .find_map(|(i, e)| match e {
                LiveEvent::DataSend {
                    epoch,
                    seq,
                    recipients,
                    ..
                } => Some((i, (*epoch, *seq, recipients))),
                _ => None,
            })
        else {
            return violations; // A run with no data plane: epoch check only.
        };

        let connected: BTreeSet<&String> = members.iter().map(|(m, _)| m).collect();
        let addressed: BTreeSet<&String> = p_recipients.iter().collect();
        if connected != addressed {
            violations.push(Violation {
                checker: self.name(),
                index: final_index,
                detail: format!(
                    "roster disagreement at rest: the probe was addressed to \
                     {addressed:?} but the connected members are {connected:?}"
                ),
            });
        }
        for member in p_recipients {
            let opened = trace[probe_index + 1..final_index].iter().any(|e| {
                matches!(e, LiveEvent::DataDeliver { member: m, epoch, seq, .. }
                    if m == member && *epoch == p_epoch && *seq == p_seq)
            });
            if !opened {
                violations.push(Violation {
                    checker: self.name(),
                    index: final_index,
                    detail: format!(
                        "member {member} never opened the probe broadcast \
                         (epoch {p_epoch}, seq {p_seq}) — key disagreement or lost \
                         delivery after quiescence"
                    ),
                });
            }
        }
        violations
    }
}

/// Eviction liveness: every member the driver crashed is eventually dealt
/// with — evicted by the leader's liveness layer, or (if the fault healed
/// and the member rejoined before the eviction fired) re-welcomed into the
/// group. A crashed member silently occupying a slot forever is the
/// failure mode the Figure 3 `Oops(Ka)` timeout exists to prevent.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvictionLivenessChecker;

impl LiveChecker for EvictionLivenessChecker {
    fn name(&self) -> &'static str {
        "live-evict: a crashed member is eventually evicted or re-welcomed"
    }

    fn check(&self, trace: &[LiveEvent]) -> Vec<Violation> {
        let mut violations = Vec::new();
        for (index, event) in trace.iter().enumerate() {
            let LiveEvent::Crashed { member } = event else {
                continue;
            };
            let recovered = trace[index + 1..].iter().any(|e| {
                matches!(e,
                    LiveEvent::Evicted { member: m } | LiveEvent::Welcomed { member: m, .. }
                        if m == member)
            });
            if !recovered {
                violations.push(Violation {
                    checker: self.name(),
                    index,
                    detail: format!(
                        "member {member} crashed but was never evicted or re-welcomed \
                         before the run ended"
                    ),
                });
            }
        }
        violations
    }
}

/// No false evictions: the leader only evicts members the driver actually
/// faulted. Formulated globally — an `Evicted` needs *some* earlier
/// `Crashed`/`Partitioned` marker for that member anywhere in the trace —
/// rather than per rejoin window, because the driver's fault markers and
/// the leader collector's eviction records land in the shared sink from
/// different threads and can interleave across a heal boundary. A
/// responsive member under bounded delay has no fault marker at all, so
/// any eviction of it is flagged.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFalseEvictionChecker;

impl LiveChecker for NoFalseEvictionChecker {
    fn name(&self) -> &'static str {
        "live-no-false-evict: evictions only under injected faults"
    }

    fn check(&self, trace: &[LiveEvent]) -> Vec<Violation> {
        let mut violations = Vec::new();
        let mut faulted: BTreeSet<&String> = BTreeSet::new();
        for (index, event) in trace.iter().enumerate() {
            match event {
                LiveEvent::Crashed { member } | LiveEvent::Partitioned { member } => {
                    faulted.insert(member);
                }
                LiveEvent::Evicted { member } if !faulted.contains(member) => {
                    violations.push(Violation {
                        checker: self.name(),
                        index,
                        detail: format!(
                            "member {member} was evicted without any injected crash \
                             or partition — a false liveness judgment"
                        ),
                    });
                }
                _ => {}
            }
        }
        violations
    }
}

/// Post-eviction rejoins land in a strictly newer epoch: the eviction's
/// policy rekey must have fenced off every key the departed session held,
/// so the re-welcome's epoch exceeds the member's previous high-water
/// mark. Vacuous for a member whose `Evicted` record was hidden by a
/// cross-thread race (the monotonicity checker still bounds the epoch
/// from below in that case).
#[derive(Debug, Clone, Copy, Default)]
pub struct RejoinFreshEpochChecker;

impl LiveChecker for RejoinFreshEpochChecker {
    fn name(&self) -> &'static str {
        "live-rejoin: a post-eviction rejoin lands in a strictly newer epoch"
    }

    fn check(&self, trace: &[LiveEvent]) -> Vec<Violation> {
        let mut violations = Vec::new();
        // Highest epoch each member has ever held (across sessions).
        let mut high: BTreeMap<String, u64> = BTreeMap::new();
        // Members evicted since their last welcome.
        let mut evicted: BTreeSet<String> = BTreeSet::new();
        for (index, event) in trace.iter().enumerate() {
            match event {
                LiveEvent::Evicted { member } => {
                    evicted.insert(member.clone());
                }
                LiveEvent::Welcomed { member, epoch } => {
                    if evicted.remove(member) {
                        if let Some(&h) = high.get(member) {
                            if *epoch <= h {
                                violations.push(Violation {
                                    checker: self.name(),
                                    index,
                                    detail: format!(
                                        "member {member} rejoined after an eviction at \
                                         epoch {epoch}, but already held epoch {h} — the \
                                         eviction rekey did not fence the old key"
                                    ),
                                });
                            }
                        }
                    }
                    let entry = high.entry(member.clone()).or_insert(*epoch);
                    *entry = (*entry).max(*epoch);
                }
                LiveEvent::KeyChanged { member, epoch } => {
                    let entry = high.entry(member.clone()).or_insert(*epoch);
                    *entry = (*entry).max(*epoch);
                }
                _ => {}
            }
        }
        violations
    }
}

/// Every live checker, in reporting order.
#[must_use]
pub fn all_live_checkers() -> Vec<Box<dyn LiveChecker>> {
    vec![
        Box::new(AdminPrefixChecker),
        Box::new(BroadcastUniquenessChecker),
        Box::new(EpochMonotonicChecker),
        Box::new(CloseOnceChecker),
        Box::new(FinalAgreementChecker),
        Box::new(EvictionLivenessChecker),
        Box::new(NoFalseEvictionChecker),
        Box::new(RejoinFreshEpochChecker),
    ]
}

/// Runs every live checker over `trace` and collects all violations.
#[must_use]
pub fn check_trace(trace: &[LiveEvent]) -> Vec<Violation> {
    all_live_checkers()
        .iter()
        .flat_map(|c| c.check(trace))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn join(m: &str) -> LiveEvent {
        LiveEvent::JoinStarted { member: m.into() }
    }
    fn welcomed(m: &str, epoch: u64) -> LiveEvent {
        LiveEvent::Welcomed {
            member: m.into(),
            epoch,
        }
    }
    fn admin_send(p: &[u8], to: &[&str]) -> LiveEvent {
        LiveEvent::AdminSend {
            payload: p.to_vec(),
            recipients: to.iter().map(|s| (*s).into()).collect(),
        }
    }
    fn admin_dlv(m: &str, p: &[u8]) -> LiveEvent {
        LiveEvent::AdminDeliver {
            member: m.into(),
            payload: p.to_vec(),
        }
    }
    fn data_send(epoch: u64, seq: u64, p: &[u8], to: &[&str]) -> LiveEvent {
        LiveEvent::DataSend {
            epoch,
            seq,
            payload: p.to_vec(),
            recipients: to.iter().map(|s| (*s).into()).collect(),
        }
    }
    fn data_dlv(m: &str, epoch: u64, seq: u64, p: &[u8]) -> LiveEvent {
        LiveEvent::DataDeliver {
            member: m.into(),
            epoch,
            seq,
            payload: p.to_vec(),
        }
    }

    #[test]
    fn clean_trace_passes() {
        let trace = vec![
            join("alice"),
            LiveEvent::MemberJoined {
                member: "alice".into(),
            },
            welcomed("alice", 1),
            admin_send(b"one", &["alice"]),
            admin_dlv("alice", b"one"),
            admin_send(b"two", &["alice"]),
            admin_dlv("alice", b"two"),
            data_send(1, 1, b"dp", &["alice"]),
            data_dlv("alice", 1, 1, b"dp"),
            LiveEvent::LeaderRekeyed { epoch: 2 },
            LiveEvent::KeyChanged {
                member: "alice".into(),
                epoch: 2,
            },
            data_send(2, 1, b"probe", &["alice"]),
            data_dlv("alice", 2, 1, b"probe"),
            LiveEvent::Final {
                leader_epoch: Some(2),
                members: vec![("alice".into(), Some(2))],
            },
        ];
        let violations = check_trace(&trace);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn duplicate_admin_delivery_is_caught_by_the_model_property() {
        let trace = vec![
            admin_send(b"one", &["alice"]),
            admin_dlv("alice", b"one"),
            admin_dlv("alice", b"one"),
        ];
        let violations = AdminPrefixChecker.check(&trace);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].index, 2);
    }

    #[test]
    fn reordered_admin_delivery_is_caught() {
        let trace = vec![
            admin_send(b"one", &["alice"]),
            admin_send(b"two", &["alice"]),
            admin_dlv("alice", b"two"),
        ];
        assert_eq!(AdminPrefixChecker.check(&trace).len(), 1);
    }

    #[test]
    fn forged_admin_delivery_is_caught() {
        let trace = vec![admin_dlv("alice", b"never sent")];
        assert_eq!(AdminPrefixChecker.check(&trace).len(), 1);
    }

    #[test]
    fn per_member_segments_reset_on_rejoin() {
        let trace = vec![
            join("alice"),
            admin_send(b"one", &["alice"]),
            // alice crashes without delivering; undelivered history must
            // not poison the next session.
            join("alice"),
            admin_send(b"two", &["alice"]),
            admin_dlv("alice", b"two"),
        ];
        assert!(AdminPrefixChecker.check(&trace).is_empty());
    }

    #[test]
    fn other_members_traffic_is_not_confused() {
        let trace = vec![
            admin_send(b"one", &["alice", "bob"]),
            admin_send(b"two", &["alice", "bob"]),
            admin_dlv("bob", b"one"),
            admin_dlv("alice", b"one"),
            admin_dlv("alice", b"two"),
        ];
        assert!(AdminPrefixChecker.check(&trace).is_empty());
    }

    #[test]
    fn duplicate_data_delivery_is_caught() {
        let trace = vec![
            data_send(1, 1, b"x", &["alice"]),
            data_dlv("alice", 1, 1, b"x"),
            data_dlv("alice", 1, 1, b"x"),
        ];
        let violations = BroadcastUniquenessChecker.check(&trace);
        assert!(
            violations.iter().any(|v| v.detail.contains("twice")),
            "{violations:?}"
        );
    }

    #[test]
    fn watermark_rollback_is_caught() {
        let trace = vec![
            data_send(1, 1, b"a", &["alice"]),
            data_send(1, 2, b"b", &["alice"]),
            data_dlv("alice", 1, 2, b"b"),
            data_dlv("alice", 1, 1, b"a"),
        ];
        let violations = BroadcastUniquenessChecker.check(&trace);
        assert!(
            violations.iter().any(|v| v.detail.contains("rollback")),
            "{violations:?}"
        );
    }

    #[test]
    fn forged_and_cross_epoch_data_delivery_is_caught() {
        let trace = vec![
            data_send(1, 1, b"x", &["alice"]),
            data_dlv("alice", 2, 1, b"x"), // epoch the leader never sealed
        ];
        assert!(!BroadcastUniquenessChecker.check(&trace).is_empty());
        let trace = vec![
            data_send(1, 1, b"x", &["alice"]),
            data_dlv("alice", 1, 1, b"y"), // payload mismatch
        ];
        assert!(!BroadcastUniquenessChecker.check(&trace).is_empty());
    }

    #[test]
    fn dropped_data_frames_are_legal() {
        let trace = vec![
            data_send(1, 1, b"a", &["alice"]),
            data_send(1, 2, b"b", &["alice"]),
            data_send(1, 3, b"c", &["alice"]),
            data_dlv("alice", 1, 1, b"a"),
            data_dlv("alice", 1, 3, b"c"), // seq 2 lost: fine
        ];
        assert!(BroadcastUniquenessChecker.check(&trace).is_empty());
    }

    #[test]
    fn epoch_regression_is_caught() {
        let trace = vec![
            welcomed("alice", 3),
            LiveEvent::KeyChanged {
                member: "alice".into(),
                epoch: 2,
            },
        ];
        assert!(!EpochMonotonicChecker.check(&trace).is_empty());
        let trace = vec![
            LiveEvent::LeaderRekeyed { epoch: 2 },
            LiveEvent::LeaderRekeyed { epoch: 2 },
        ];
        assert!(!EpochMonotonicChecker.check(&trace).is_empty());
    }

    #[test]
    fn double_close_is_caught() {
        let trace = vec![
            LiveEvent::MemberJoined {
                member: "alice".into(),
            },
            LiveEvent::MemberClosed {
                member: "alice".into(),
            },
            LiveEvent::MemberClosed {
                member: "alice".into(),
            },
        ];
        let violations = CloseOnceChecker.check(&trace);
        assert_eq!(violations.len(), 1);
        // A rejoin opens a fresh session with a fresh close budget.
        let trace = vec![
            LiveEvent::MemberJoined {
                member: "alice".into(),
            },
            LiveEvent::MemberClosed {
                member: "alice".into(),
            },
            LiveEvent::MemberJoined {
                member: "alice".into(),
            },
            LiveEvent::MemberClosed {
                member: "alice".into(),
            },
        ];
        assert!(CloseOnceChecker.check(&trace).is_empty());
    }

    fn evicted(m: &str) -> LiveEvent {
        LiveEvent::Evicted { member: m.into() }
    }
    fn crashed(m: &str) -> LiveEvent {
        LiveEvent::Crashed { member: m.into() }
    }

    #[test]
    fn eviction_counts_as_the_sessions_one_departure() {
        let trace = vec![
            LiveEvent::MemberJoined {
                member: "alice".into(),
            },
            evicted("alice"),
            LiveEvent::MemberClosed {
                member: "alice".into(),
            },
        ];
        let violations = CloseOnceChecker.check(&trace);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].detail.contains("twice"));
    }

    #[test]
    fn crashed_member_must_be_evicted_or_rewelcomed() {
        // Unhandled crash: violation.
        let trace = vec![
            LiveEvent::MemberJoined {
                member: "alice".into(),
            },
            crashed("alice"),
        ];
        assert_eq!(EvictionLivenessChecker.check(&trace).len(), 1);
        // Eviction resolves it.
        let trace = vec![crashed("alice"), evicted("alice")];
        assert!(EvictionLivenessChecker.check(&trace).is_empty());
        // So does a re-welcome (healed and rejoined before the deadline).
        let trace = vec![crashed("alice"), welcomed("alice", 4)];
        assert!(EvictionLivenessChecker.check(&trace).is_empty());
        // Vacuous without fault markers.
        assert!(EvictionLivenessChecker.check(&[]).is_empty());
    }

    #[test]
    fn false_eviction_is_caught() {
        // No injected fault anywhere: the eviction is a false judgment.
        let trace = vec![
            LiveEvent::MemberJoined {
                member: "alice".into(),
            },
            evicted("alice"),
        ];
        let violations = NoFalseEvictionChecker.check(&trace);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].detail.contains("false"));
        // A prior partition justifies it — and keeps justifying later
        // evictions of the same member (markers are global, heals do not
        // reset them, tolerating cross-thread trace interleavings).
        let trace = vec![
            LiveEvent::Partitioned {
                member: "alice".into(),
            },
            evicted("alice"),
            LiveEvent::Healed {
                member: "alice".into(),
            },
            evicted("alice"),
        ];
        assert!(NoFalseEvictionChecker.check(&trace).is_empty());
        // A fault on one member never justifies evicting another.
        let trace = vec![crashed("bob"), evicted("alice")];
        assert_eq!(NoFalseEvictionChecker.check(&trace).len(), 1);
    }

    #[test]
    fn post_eviction_rejoin_must_advance_the_epoch() {
        // Rejoin at the same epoch the member already held: violation.
        let trace = vec![welcomed("alice", 2), evicted("alice"), welcomed("alice", 2)];
        let violations = RejoinFreshEpochChecker.check(&trace);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].detail.contains("fence"));
        // A strictly newer epoch passes.
        let trace = vec![welcomed("alice", 2), evicted("alice"), welcomed("alice", 3)];
        assert!(RejoinFreshEpochChecker.check(&trace).is_empty());
        // The high-water mark includes rotations inside the old session.
        let trace = vec![
            welcomed("alice", 2),
            LiveEvent::KeyChanged {
                member: "alice".into(),
                epoch: 5,
            },
            evicted("alice"),
            welcomed("alice", 4),
        ];
        assert_eq!(RejoinFreshEpochChecker.check(&trace).len(), 1);
        // A re-welcome without an eviction (voluntary leave + rejoin, no
        // rekey) is out of scope for this checker.
        let trace = vec![welcomed("alice", 2), join("alice"), welcomed("alice", 2)];
        assert!(RejoinFreshEpochChecker.check(&trace).is_empty());
    }

    #[test]
    fn final_epoch_disagreement_is_caught() {
        let trace = vec![LiveEvent::Final {
            leader_epoch: Some(3),
            members: vec![("alice".into(), Some(3)), ("bob".into(), Some(2))],
        }];
        let violations = FinalAgreementChecker.check(&trace);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].detail.contains("bob"));
    }

    #[test]
    fn unopened_probe_is_caught() {
        let trace = vec![
            data_send(1, 9, b"probe", &["alice", "bob"]),
            data_dlv("alice", 1, 9, b"probe"),
            LiveEvent::Final {
                leader_epoch: Some(1),
                members: vec![("alice".into(), Some(1)), ("bob".into(), Some(1))],
            },
        ];
        let violations = FinalAgreementChecker.check(&trace);
        assert!(
            violations.iter().any(|v| v.detail.contains("bob")),
            "{violations:?}"
        );
    }

    #[test]
    fn roster_disagreement_at_rest_is_caught() {
        let trace = vec![
            data_send(1, 9, b"probe", &["alice"]),
            data_dlv("alice", 1, 9, b"probe"),
            LiveEvent::Final {
                leader_epoch: Some(1),
                members: vec![("alice".into(), Some(1)), ("ghost".into(), Some(1))],
            },
        ];
        let violations = FinalAgreementChecker.check(&trace);
        assert!(
            violations
                .iter()
                .any(|v| v.detail.contains("roster disagreement")),
            "{violations:?}"
        );
    }
}
