//! Bridge from the observability event stream to the §5.4 live oracle
//! and the exhaustive model.
//!
//! Two mappings live here:
//!
//! * [`obs_trace`] projects a [`ProtocolEvent`] stream onto the
//!   [`LiveEvent`] vocabulary, giving [`crate::live::check_trace`] a
//!   second ingestion path: the same property checkers that audit the
//!   chaos driver's hand-recorded trace can audit the run's own metrics
//!   stream. Divergence between the two paths is itself a test failure.
//! * [`model_event_kind`] names, for every honest move of the exhaustive
//!   `enclaves-model` state machines, the [`EventKind`] variant the
//!   implementation must emit when it performs the corresponding
//!   transition. A conformance test drives `enclaves-model::explore`
//!   and asserts the mapping is total over honest moves and injective —
//!   no silent transitions, no two moves collapsed onto one event.

use crate::live::LiveEvent;
use enclaves_model::leader::LeaderMove;
use enclaves_model::system::GlobalMove;
use enclaves_model::user::UserMove;
use enclaves_obs::{EventKind, ProtocolEvent};

/// Projects an observability stream onto the live-oracle vocabulary.
///
/// Operational events with no live-trace counterpart (`AuthAccepted`,
/// `SessionEstablished`, `AdminAcked`, `CloseRequested`, `LeaderLost`,
/// `Retransmit`, `SealBatch`) are skipped; `Expelled`, `Evicted`, and
/// `MemberClosed` all project to [`LiveEvent::MemberClosed`] — the
/// close-once and agreement checkers care that the leader observed the
/// departure, while the eviction-specific checkers run on the driver
/// trace, which alone records the fault markers that justify one.
///
/// The result has no [`LiveEvent::Final`] snapshot — only the driver
/// knows the end-of-run ground truth, so append its `Final` event before
/// handing the projection to [`crate::live::check_trace`].
#[must_use]
pub fn obs_trace(events: &[ProtocolEvent]) -> Vec<LiveEvent> {
    events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::JoinStarted { member } => Some(LiveEvent::JoinStarted {
                member: member.clone(),
            }),
            EventKind::Welcomed { member, epoch } => Some(LiveEvent::Welcomed {
                member: member.clone(),
                epoch: *epoch,
            }),
            EventKind::KeyChanged { member, epoch } => Some(LiveEvent::KeyChanged {
                member: member.clone(),
                epoch: *epoch,
            }),
            EventKind::Rekeyed { epoch } => Some(LiveEvent::LeaderRekeyed { epoch: *epoch }),
            EventKind::AdminSend {
                payload,
                recipients,
            } => Some(LiveEvent::AdminSend {
                payload: payload.clone(),
                recipients: recipients.clone(),
            }),
            EventKind::AdminDeliver { member, payload } => Some(LiveEvent::AdminDeliver {
                member: member.clone(),
                payload: payload.clone(),
            }),
            EventKind::DataSend {
                epoch,
                seq,
                payload,
                recipients,
            } => Some(LiveEvent::DataSend {
                epoch: *epoch,
                seq: *seq,
                payload: payload.clone(),
                recipients: recipients.clone(),
            }),
            EventKind::DataDeliver {
                member,
                epoch,
                seq,
                payload,
            } => Some(LiveEvent::DataDeliver {
                member: member.clone(),
                epoch: *epoch,
                seq: *seq,
                payload: payload.clone(),
            }),
            EventKind::MemberJoined { member, .. } => Some(LiveEvent::MemberJoined {
                member: member.clone(),
            }),
            // `Evicted` also projects to `MemberClosed`: the close-once
            // and agreement checkers see the departure either way, while
            // the eviction-specific checkers stay on the driver trace —
            // only the driver records the fault markers (`Crashed`,
            // `Partitioned`) that justify an eviction.
            EventKind::MemberClosed { member }
            | EventKind::Expelled { member }
            | EventKind::Evicted { member } => Some(LiveEvent::MemberClosed {
                member: member.clone(),
            }),
            EventKind::AuthAccepted { .. }
            | EventKind::SessionEstablished { .. }
            | EventKind::AdminAcked { .. }
            | EventKind::CloseRequested { .. }
            | EventKind::LeaderLost { .. }
            | EventKind::Retransmit { .. }
            | EventKind::SealBatch { .. } => None,
        })
        .collect()
}

/// The [`EventKind`] variant name the implementation must emit when it
/// performs the transition `mv` of the exhaustive model.
///
/// Honest moves (user and leader) each map to exactly one variant;
/// intruder injections are not observable protocol progress and map to
/// `None`. The names are [`EventKind::name`] values, so a conformance
/// test can compare against a recorded stream without constructing
/// payload-accurate events.
#[must_use]
pub fn model_event_kind(mv: &GlobalMove) -> Option<&'static str> {
    match mv {
        GlobalMove::User(user) => Some(match user {
            UserMove::StartAuth => "JoinStarted",
            UserMove::AcceptKeyDist { .. } => "SessionEstablished",
            UserMove::AcceptAdmin { .. } => "AdminDeliver",
            UserMove::Close => "CloseRequested",
        }),
        GlobalMove::Leader(_, leader) => Some(match leader {
            LeaderMove::AcceptAuthInit { .. } => "AuthAccepted",
            LeaderMove::AcceptKeyAck { .. } => "MemberJoined",
            LeaderMove::SendAdmin { .. } => "AdminSend",
            LeaderMove::AcceptAck { .. } => "AdminAcked",
            LeaderMove::AcceptClose => "MemberClosed",
        }),
        GlobalMove::Intruder(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enclaves_obs::EventStream;

    fn sample_stream() -> Vec<ProtocolEvent> {
        let stream = EventStream::new();
        stream.emit(EventKind::JoinStarted { member: "a".into() });
        stream.emit(EventKind::AuthAccepted { member: "a".into() });
        stream.emit(EventKind::SessionEstablished { member: "a".into() });
        stream.emit(EventKind::MemberJoined {
            member: "a".into(),
            epoch: 1,
        });
        stream.emit(EventKind::Rekeyed { epoch: 1 });
        stream.emit(EventKind::Welcomed {
            member: "a".into(),
            epoch: 1,
        });
        stream.emit(EventKind::DataSend {
            epoch: 1,
            seq: 0,
            payload: b"x".to_vec(),
            recipients: vec!["a".into()],
        });
        stream.emit(EventKind::DataDeliver {
            member: "a".into(),
            epoch: 1,
            seq: 0,
            payload: b"x".to_vec(),
        });
        stream.emit(EventKind::Retransmit {
            actor: "leader".into(),
            frames: 2,
        });
        stream.emit(EventKind::Expelled { member: "a".into() });
        stream.events()
    }

    #[test]
    fn projection_keeps_live_vocabulary_and_order() {
        let projected = obs_trace(&sample_stream());
        assert_eq!(
            projected,
            vec![
                LiveEvent::JoinStarted { member: "a".into() },
                LiveEvent::MemberJoined { member: "a".into() },
                LiveEvent::LeaderRekeyed { epoch: 1 },
                LiveEvent::Welcomed {
                    member: "a".into(),
                    epoch: 1
                },
                LiveEvent::DataSend {
                    epoch: 1,
                    seq: 0,
                    payload: b"x".to_vec(),
                    recipients: vec!["a".into()]
                },
                LiveEvent::DataDeliver {
                    member: "a".into(),
                    epoch: 1,
                    seq: 0,
                    payload: b"x".to_vec()
                },
                LiveEvent::MemberClosed { member: "a".into() },
            ]
        );
    }

    #[test]
    fn projected_honest_run_passes_the_live_oracle() {
        // Same honest run, minus the expel: "a" is still connected at the
        // end, so the Final snapshot must list it (the agreement checker
        // compares the last probe's recipients against that roster).
        let events = sample_stream();
        let honest: Vec<ProtocolEvent> = events
            .into_iter()
            .filter(|e| !matches!(e.kind, EventKind::Expelled { .. }))
            .collect();
        let mut trace = obs_trace(&honest);
        trace.push(LiveEvent::Final {
            leader_epoch: Some(1),
            members: vec![("a".into(), Some(1))],
        });
        let violations = crate::live::check_trace(&trace);
        assert_eq!(violations, vec![]);
    }

    #[test]
    fn expel_close_and_evict_all_project_to_member_closed() {
        let stream = EventStream::new();
        stream.emit(EventKind::MemberClosed { member: "a".into() });
        stream.emit(EventKind::Expelled { member: "b".into() });
        stream.emit(EventKind::Evicted { member: "c".into() });
        stream.emit(EventKind::LeaderLost { member: "c".into() });
        let projected = obs_trace(&stream.events());
        assert_eq!(
            projected,
            vec![
                LiveEvent::MemberClosed { member: "a".into() },
                LiveEvent::MemberClosed { member: "b".into() },
                LiveEvent::MemberClosed { member: "c".into() },
            ]
        );
    }
}
