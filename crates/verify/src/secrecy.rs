//! The secrecy invariants of Sections 5.1 and 5.2, as executable state
//! checkers.

use enclaves_model::closure::parts;
use enclaves_model::explore::StateChecker;
use enclaves_model::field::{AgentId, Field, KeyId};
use enclaves_model::ideal::KeySet;
use enclaves_model::system::SystemState;

/// §5.1 — secrecy of `P_a` via regularity.
///
/// Two facts are checked in every reachable state:
///
/// 1. **Regularity conclusion**: `P_a ∉ Parts(trace)` — the long-term key
///    never appears in any message, even encrypted.
/// 2. **Knowledge**: the intruder coalition cannot access `P_a`.
#[derive(Debug, Clone, Copy)]
pub struct LongTermKeySecrecy {
    /// The honest user whose key is protected.
    pub user: AgentId,
}

impl Default for LongTermKeySecrecy {
    fn default() -> Self {
        LongTermKeySecrecy {
            user: AgentId::ALICE,
        }
    }
}

impl StateChecker for LongTermKeySecrecy {
    fn name(&self) -> &str {
        "P1: long-term key secrecy (§5.1)"
    }

    fn check(&self, state: &SystemState) -> Result<(), String> {
        let pa = Field::Key(KeyId::LongTerm(self.user));
        if state.trace.parts_contain(&pa) {
            return Err(format!(
                "P_{:?} occurs in Parts(trace): regularity violated",
                self.user
            ));
        }
        if state.intruder.can_access(&pa) {
            return Err(format!("intruder coalition knows P_{:?}", self.user));
        }
        Ok(())
    }
}

/// §5.2 — secrecy of in-use session keys via the coideal invariant.
///
/// For every session key `K_a` currently in use *for the honest user*, the
/// checker verifies the paper's invariant (5):
/// `trace(q) ⊆ C({K_a, P_a})` — no trace content lies in the ideal of the
/// protected key set — and, as the derived Proposition 3, that the
/// intruder cannot access `K_a`.
#[derive(Debug, Clone, Copy)]
pub struct SessionKeySecrecy {
    /// The honest user whose sessions are protected.
    pub user: AgentId,
}

impl Default for SessionKeySecrecy {
    fn default() -> Self {
        SessionKeySecrecy {
            user: AgentId::ALICE,
        }
    }
}

impl StateChecker for SessionKeySecrecy {
    fn name(&self) -> &str {
        "P2: in-use session-key secrecy (§5.2)"
    }

    fn check(&self, state: &SystemState) -> Result<(), String> {
        // Keys in use for the honest user only: a compromised member's
        // session key is legitimately known to the coalition.
        let Some(slot) = state.slots.get(&self.user) else {
            return Ok(());
        };
        let Some(ka) = slot.key_in_use() else {
            return Ok(());
        };
        let s = KeySet::session_secrecy(ka, KeyId::LongTerm(self.user));

        // Invariant (5): every trace content is in the coideal C(S).
        for content in state.trace.contents() {
            if s.in_ideal(content) {
                return Err(format!(
                    "trace content {content:?} lies in the ideal of {{{ka:?}, P_{:?}}}",
                    self.user
                ));
            }
        }
        // Proposition 3: the intruder cannot access Ka.
        if state.intruder.can_access(&Field::Key(ka)) {
            return Err(format!("intruder accesses in-use session key {ka:?}"));
        }
        Ok(())
    }
}

/// Outsider confidentiality of group keys: the intruder never learns any
/// group key.
///
/// **This property is intentionally stronger than anything the paper
/// claims, and the model checker refutes it** (see
/// `oops_assumption_leaks_group_keys_after_close`): under the paper's own
/// `Oops` assumption — session keys become public when a session closes —
/// any group key ever distributed under a session key whose session later
/// closes is readable by outsiders, even with zero compromised members.
/// The paper's verified guarantees (authentication and admin-message
/// integrity) survive because they never depend on group-key secrecy;
/// confidentiality requires the rekey policy to retire a group key before
/// every session that carried it has closed. The checker *does* hold when
/// sessions never close (no `Oops` events).
#[derive(Debug, Clone, Copy, Default)]
pub struct GroupKeyOutsiderSecrecy;

impl StateChecker for GroupKeyOutsiderSecrecy {
    fn name(&self) -> &str {
        "group-key confidentiality vs outsiders (§3.1)"
    }

    fn check(&self, state: &SystemState) -> Result<(), String> {
        for key in state.intruder.keys() {
            if matches!(key, KeyId::Group(_)) {
                return Err(format!("outsider learned group key {key:?}"));
            }
        }
        Ok(())
    }
}

/// The per-transition regularity property of §5.1: `A` and `L` never send
/// a message containing `P_a` as a subfield.
///
/// Checked over the actors recorded in the trace (the model records which
/// agent actually emitted each event).
#[derive(Debug, Clone, Copy)]
pub struct Regularity {
    /// The honest user whose key must never be sent.
    pub user: AgentId,
    /// The leader.
    pub leader: AgentId,
}

impl Default for Regularity {
    fn default() -> Self {
        Regularity {
            user: AgentId::ALICE,
            leader: AgentId::LEADER,
        }
    }
}

impl StateChecker for Regularity {
    fn name(&self) -> &str {
        "regularity: honest agents never emit P_a (§5.1)"
    }

    fn check(&self, state: &SystemState) -> Result<(), String> {
        let pa = Field::Key(KeyId::LongTerm(self.user));
        for event in state.trace.events() {
            let enclaves_model::trace::Event::Msg { actor, content, .. } = event else {
                continue;
            };
            if *actor != self.user && *actor != self.leader {
                continue;
            }
            let p = parts(std::slice::from_ref(content));
            if p.contains(&pa) {
                return Err(format!(
                    "honest agent {actor:?} emitted a message containing P_{:?}: {content:?}",
                    self.user
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enclaves_model::explore::{Bounds, Explorer, RandomWalker};
    use enclaves_model::system::Scenario;

    #[test]
    fn secrecy_holds_exhaustively_honest_pair() {
        let mut ex = Explorer::new(Scenario::honest_pair(), Bounds::smoke());
        ex.add_checker(Box::new(LongTermKeySecrecy::default()));
        ex.add_checker(Box::new(SessionKeySecrecy::default()));
        ex.add_checker(Box::new(Regularity::default()));
        let stats = ex.run();
        assert!(ex.violations.is_empty(), "{}", ex.violations[0]);
        assert!(stats.states_visited > 50);
    }

    #[test]
    fn secrecy_holds_exhaustively_with_insider() {
        let mut ex = Explorer::new(Scenario::tight(), Bounds::smoke());
        ex.add_checker(Box::new(LongTermKeySecrecy::default()));
        ex.add_checker(Box::new(SessionKeySecrecy::default()));
        let _ = ex.run();
        assert!(ex.violations.is_empty(), "{}", ex.violations[0]);
    }

    #[test]
    fn group_keys_confidential_while_sessions_stay_open() {
        // Without closes there are no Oops events, so no session key ever
        // leaks and group keys stay confidential.
        let scenario = Scenario {
            allow_close: false,
            ..Scenario::honest_pair()
        };
        let mut ex = Explorer::new(scenario, Bounds::smoke());
        ex.add_checker(Box::new(GroupKeyOutsiderSecrecy));
        let _ = ex.run();
        assert!(ex.violations.is_empty(), "{}", ex.violations[0]);
    }

    #[test]
    fn oops_assumption_leaks_group_keys_after_close() {
        // A negative result the checker discovered: with closes allowed,
        // the paper's Oops assumption publishes the session key, and any
        // group key that traveled under it becomes public. The minimal
        // counterexample: A joins, closes, the leader's (stop-and-wait
        // delayed) welcome is decrypted with the oopsed key.
        let mut ex = Explorer::new(Scenario::honest_pair(), Bounds::smoke());
        ex.add_checker(Box::new(GroupKeyOutsiderSecrecy));
        let _ = ex.run();
        assert!(
            !ex.violations.is_empty(),
            "expected the model checker to refute outsider group-key              confidentiality under the Oops assumption"
        );
        let v = &ex.violations[0];
        assert!(v.description.contains("group key"), "{v}");
        // The counterexample must involve an Oops event.
        assert!(
            v.state
                .trace
                .events()
                .iter()
                .any(|e| matches!(e, enclaves_model::trace::Event::Oops { .. })),
            "counterexample must go through a session-key compromise:\n{v}"
        );
    }

    #[test]
    fn group_key_checker_fires_on_a_planted_leak() {
        use enclaves_model::field::Field;
        let scenario = Scenario::honest_pair();
        let mut state = enclaves_model::system::SystemState::initial(&scenario);
        state.intruder.observe(&Field::Key(KeyId::Group(0)));
        assert!(GroupKeyOutsiderSecrecy.check(&state).is_err());
    }

    #[test]
    fn secrecy_holds_on_random_walks() {
        let mut w = RandomWalker::new(Scenario::default(), 15, 40, 3);
        w.add_checker(Box::new(LongTermKeySecrecy::default()));
        w.add_checker(Box::new(SessionKeySecrecy::default()));
        w.add_checker(Box::new(Regularity::default()));
        let checked = w.run();
        assert!(w.violations.is_empty(), "{}", w.violations[0]);
        assert!(checked > 100);
    }

    #[test]
    fn checker_detects_a_planted_leak() {
        // Sanity: the checker is not vacuous — plant P_a in the trace and
        // watch it fire.
        use enclaves_model::trace::{Event, Label};
        let scenario = Scenario::honest_pair();
        let mut state = enclaves_model::system::SystemState::initial(&scenario);
        state.trace.push(Event::Msg {
            label: Label::AdminMsg,
            sender: AgentId::EVE,
            recipient: AgentId::ALICE,
            content: Field::Key(KeyId::LongTerm(AgentId::ALICE)),
            actor: AgentId::EVE,
        });
        let checker = LongTermKeySecrecy::default();
        assert!(checker.check(&state).is_err());
        // Regularity does not fire (the actor was the intruder)...
        assert!(Regularity::default().check(&state).is_ok());
        // ...until an honest actor is blamed.
        state.trace.push(Event::Msg {
            label: Label::AdminMsg,
            sender: AgentId::ALICE,
            recipient: AgentId::LEADER,
            content: Field::Key(KeyId::LongTerm(AgentId::ALICE)),
            actor: AgentId::ALICE,
        });
        assert!(Regularity::default().check(&state).is_err());
    }
}
