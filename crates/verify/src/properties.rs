//! The Section 5.4 properties, read off the verification diagram and
//! checked directly in every reachable state.

use enclaves_model::explore::StateChecker;
use enclaves_model::field::AgentId;
use enclaves_model::leader::LeaderSlot;
use enclaves_model::system::SystemState;
use enclaves_model::user::UserState;

/// P3 — proper distribution of group-management messages: in every
/// reachable state, `rcv_A` is a prefix of `snd_A` (messages are accepted
/// in the order sent, with no duplicates and no forgeries).
#[derive(Debug, Clone, Copy, Default)]
pub struct AdminPrefixProperty;

impl StateChecker for AdminPrefixProperty {
    fn name(&self) -> &str {
        "P3: rcv_A is a prefix of snd_A (§5.4)"
    }

    fn check(&self, state: &SystemState) -> Result<(), String> {
        if state.rcv_a.len() > state.snd_a.len() {
            return Err(format!(
                "A accepted {} admin messages but L sent only {}",
                state.rcv_a.len(),
                state.snd_a.len()
            ));
        }
        for (i, (rcv, snd)) in state.rcv_a.iter().zip(state.snd_a.iter()).enumerate() {
            if rcv != snd {
                return Err(format!(
                    "admin message {i} differs: A accepted {rcv:?}, L sent {snd:?}"
                ));
            }
        }
        Ok(())
    }
}

/// P4 — proper user authentication: the list of acceptance events at `L`
/// pairs, in order, with the list of join requests from `A` ("the nth
/// `AuthAckKey` accepted by L was preceded by the nth `AuthInitReq` from
/// A").
#[derive(Debug, Clone, Copy, Default)]
pub struct AuthenticationProperty;

impl StateChecker for AuthenticationProperty {
    fn name(&self) -> &str {
        "P4: acceptances pair with requests in order (§5.4)"
    }

    fn check(&self, state: &SystemState) -> Result<(), String> {
        if state.l_accepts.len() > state.a_requests.len() {
            return Err(format!(
                "L accepted {} sessions but A only requested {}",
                state.l_accepts.len(),
                state.a_requests.len()
            ));
        }
        // Every acceptance answers a request A actually made, and
        // acceptances preserve request order without duplication. (A
        // request may go unanswered — A can close before L processes the
        // key ack — so the pairing is an order-preserving injection, not
        // index identity.)
        let mut last_index: Option<usize> = None;
        for (i, (req_nonce, _key)) in state.l_accepts.iter().enumerate() {
            let Some(pos) = state.a_requests.iter().position(|r| r == req_nonce) else {
                return Err(format!(
                    "acceptance {i} answers nonce {req_nonce:?}, which A never requested"
                ));
            };
            if let Some(prev) = last_index {
                if pos <= prev {
                    return Err(format!(
                        "acceptance {i} (request index {pos}) out of order \
                         after acceptance of request index {prev}"
                    ));
                }
            }
            last_index = Some(pos);
        }
        Ok(())
    }
}

/// P5 — agreement: whenever both `A` and `L` are in `Connected` states,
/// they agree on the session key and on the most recent nonce produced by
/// `A`.
#[derive(Debug, Clone, Copy)]
pub struct AgreementProperty {
    /// The honest user.
    pub user: AgentId,
}

impl Default for AgreementProperty {
    fn default() -> Self {
        AgreementProperty {
            user: AgentId::ALICE,
        }
    }
}

impl StateChecker for AgreementProperty {
    fn name(&self) -> &str {
        "P5: key and nonce agreement when both connected (§5.4)"
    }

    fn check(&self, state: &SystemState) -> Result<(), String> {
        let UserState::Connected(user_nonce, user_key) = state.user_a else {
            return Ok(());
        };
        let Some(LeaderSlot::Connected(lead_nonce, lead_key)) =
            state.slots.get(&self.user).copied()
        else {
            return Ok(());
        };
        if user_key != lead_key {
            return Err(format!(
                "key disagreement: A holds {user_key:?}, L holds {lead_key:?}"
            ));
        }
        if user_nonce != lead_nonce {
            return Err(format!(
                "nonce disagreement: A at {user_nonce:?}, L at {lead_nonce:?}"
            ));
        }
        Ok(())
    }
}

/// P6 — the diagram's final remark: whenever `A` holds a session key, that
/// key is in use at the leader (`InUse(K_a, q)`).
#[derive(Debug, Clone, Copy, Default)]
pub struct KeyInUseProperty;

impl StateChecker for KeyInUseProperty {
    fn name(&self) -> &str {
        "P6: A's session key is always in use at L (§5.4)"
    }

    fn check(&self, state: &SystemState) -> Result<(), String> {
        let UserState::Connected(_, key) = state.user_a else {
            return Ok(());
        };
        if !state.key_in_use(key) {
            return Err(format!(
                "A holds {key:?} but the leader has no slot using it"
            ));
        }
        Ok(())
    }
}

/// Bundles all §5.4 property checkers.
#[must_use]
pub fn all_section_5_4() -> Vec<Box<dyn StateChecker>> {
    vec![
        Box::new(AdminPrefixProperty),
        Box::new(AuthenticationProperty),
        Box::new(AgreementProperty::default()),
        Box::new(KeyInUseProperty),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use enclaves_model::explore::{Bounds, Explorer, RandomWalker};
    use enclaves_model::system::Scenario;

    #[test]
    fn properties_hold_exhaustively_honest_pair() {
        let mut ex = Explorer::new(Scenario::honest_pair(), Bounds::smoke());
        for checker in all_section_5_4() {
            ex.add_checker(checker);
        }
        let stats = ex.run();
        assert!(ex.violations.is_empty(), "{}", ex.violations[0]);
        assert!(stats.states_visited > 50);
    }

    #[test]
    fn properties_hold_exhaustively_with_insider() {
        let mut ex = Explorer::new(Scenario::tight(), Bounds::smoke());
        for checker in all_section_5_4() {
            ex.add_checker(checker);
        }
        let _ = ex.run();
        assert!(ex.violations.is_empty(), "{}", ex.violations[0]);
    }

    #[test]
    fn properties_hold_on_random_walks() {
        let mut w = RandomWalker::new(Scenario::default(), 15, 40, 11);
        for checker in all_section_5_4() {
            w.add_checker(checker);
        }
        let checked = w.run();
        assert!(w.violations.is_empty(), "{}", w.violations[0]);
        assert!(checked > 100);
    }

    #[test]
    fn prefix_checker_detects_planted_violation() {
        use enclaves_model::field::{Field, Tag};
        let scenario = Scenario::honest_pair();
        let mut state = enclaves_model::system::SystemState::initial(&scenario);
        // A "received" something never sent.
        state.rcv_a.push(Field::Tag(Tag::Data));
        assert!(AdminPrefixProperty.check(&state).is_err());

        // Order violation.
        let mut state2 = enclaves_model::system::SystemState::initial(&scenario);
        state2.snd_a.push(Field::Tag(Tag::Data));
        state2.snd_a.push(Field::Tag(Tag::NewKey));
        state2.rcv_a.push(Field::Tag(Tag::NewKey));
        assert!(AdminPrefixProperty.check(&state2).is_err());
    }

    #[test]
    fn auth_checker_detects_planted_violation() {
        use enclaves_model::field::{KeyId, NonceId};
        let scenario = Scenario::honest_pair();
        let mut state = enclaves_model::system::SystemState::initial(&scenario);
        state.l_accepts.push((NonceId(0), KeyId::Session(0)));
        assert!(AuthenticationProperty.check(&state).is_err());
    }

    #[test]
    fn agreement_checker_detects_planted_violation() {
        use enclaves_model::field::{KeyId, NonceId};
        use enclaves_model::leader::LeaderSlot;
        use enclaves_model::user::UserState;
        let scenario = Scenario::honest_pair();
        let mut state = enclaves_model::system::SystemState::initial(&scenario);
        state.user_a = UserState::Connected(NonceId(1), KeyId::Session(0));
        state.slots.insert(
            AgentId::ALICE,
            LeaderSlot::Connected(NonceId(2), KeyId::Session(0)),
        );
        assert!(AgreementProperty::default().check(&state).is_err());
        state.slots.insert(
            AgentId::ALICE,
            LeaderSlot::Connected(NonceId(1), KeyId::Session(1)),
        );
        assert!(AgreementProperty::default().check(&state).is_err());
        state.slots.insert(
            AgentId::ALICE,
            LeaderSlot::Connected(NonceId(1), KeyId::Session(0)),
        );
        assert!(AgreementProperty::default().check(&state).is_ok());
    }
}
