//! §5.2 extended to the tree-rekey subsystem: expulsion forward secrecy.
//!
//! The paper's §5.2 invariant protects in-use *session* keys with the
//! ideal/coideal argument. The `O(log N)` rekey tree introduces a new key
//! class — interior node keys shared by leaf subtrees — and with it a new
//! obligation: after a member is expelled, the set of node keys it
//! accumulated over its whole membership must not suffice to open any
//! post-expulsion `PathUpdate` seal or to derive any post-expulsion root
//! (and hence any post-expulsion group key).
//!
//! This module checks that obligation *computationally* against the real
//! [`enclaves_core::protocol::keytree::KeyTree`]: the expelled member is
//! modelled as an adversary holding the derivation closure of every key it
//! ever legitimately held, eavesdropping on every later `PathUpdate` plan
//! and greedily extending its closure with anything it can unseal. The
//! audit fails if any post-expulsion seal is addressed to a key in the
//! closure, or any post-expulsion root key lands in it.

use crate::runner::VerificationResult;
use enclaves_core::protocol::keytree::{KeyTree, NodeKey, PathUpdatePlan};
use enclaves_crypto::rng::SeededRng;
use enclaves_crypto::treekdf::{derive_node_key, derive_path_secret};
use enclaves_wire::ActorId;
use std::collections::HashSet;

/// The derivation closure an expelled member can compute: every node key
/// it ever held, plus everything reachable from an unsealed path secret by
/// chaining `derive_node_key` / `derive_path_secret`.
#[derive(Debug, Default)]
pub struct KeyClosure {
    keys: HashSet<NodeKey>,
}

impl KeyClosure {
    /// Records a node key held directly (a `PathSync` the member received
    /// while it was still legitimate).
    pub fn hold(&mut self, key: NodeKey) {
        self.keys.insert(key);
    }

    /// Whether the closure contains `key`.
    #[must_use]
    pub fn contains(&self, key: &NodeKey) -> bool {
        self.keys.contains(key)
    }

    /// Absorbs an unsealed path secret: the chain of node keys derivable
    /// from it, up to `depth` levels (a tree's height bounds how far a
    /// real secret chains).
    pub fn absorb_secret(&mut self, secret: &NodeKey, depth: u32) {
        let mut s = *secret;
        for _ in 0..=depth {
            self.keys.insert(derive_node_key(&s));
            s = derive_path_secret(&s);
        }
    }

    /// Plays one eavesdropped [`PathUpdatePlan`] against the closure the
    /// way the member-side protocol would: any seal addressed to a held
    /// key is opened and its secret absorbed. Returns the node indices of
    /// the seals that opened — for a correctly expelled member this must
    /// be empty.
    pub fn eavesdrop(&mut self, plan: &PathUpdatePlan, depth: u32) -> Vec<u32> {
        let openable: Vec<(u32, NodeKey)> = plan
            .seals
            .iter()
            .filter(|s| self.contains(&s.seal_key))
            .map(|s| (s.node_index, s.path_secret))
            .collect();
        let mut opened = Vec::new();
        for (node, secret) in openable {
            self.absorb_secret(&secret, depth);
            opened.push(node);
        }
        opened
    }
}

fn actor(i: usize) -> ActorId {
    ActorId::new(format!("m{i}")).expect("valid id")
}

fn tree_depth(leaf_count: u32) -> u32 {
    // Generous bound: a left-balanced tree over n leaves has height
    // ceil(log2 n); +2 covers the leaf hop and rounding.
    34 - leaf_count.max(1).leading_zeros()
}

/// Lets the member at `who` accumulate its current legitimate path keys
/// (the `PathSync` view).
fn sync_member(tree: &KeyTree, who: &ActorId, closure: &mut KeyClosure) {
    let (_, keys) = tree.path_keys(who).expect("member path intact");
    for k in keys {
        closure.hold(k);
    }
}

/// Audits expulsion forward secrecy over one seeded churn scenario:
/// `group` members join, the victim follows every rekey while legitimate,
/// is expelled, and then eavesdrops on `churn` further membership
/// changes and refreshes. Returns the number of post-expulsion plans
/// audited, or the first violation.
///
/// # Errors
///
/// Returns a description of the first violated obligation.
pub fn audit_expel_closure(group: usize, churn: usize, seed: u64) -> Result<usize, String> {
    assert!(group >= 2, "expulsion needs a bystander");
    let mut rng = SeededRng::from_seed(seed);
    let mut tree = KeyTree::new();
    let victim = actor(0);
    let mut closure = KeyClosure::default();

    // Build-up: the victim is a member in good standing and tracks every
    // epoch — its closure is everything a faithful member would hold.
    for i in 0..group {
        let plan = tree.add(actor(i), &mut rng);
        if tree.leaf_of(&victim).is_some() {
            closure.eavesdrop(&plan, tree_depth(tree.leaf_count()));
            sync_member(&tree, &victim, &mut closure);
        }
    }
    for _ in 0..3 {
        let plan = tree.refresh_next(&mut rng);
        closure.eavesdrop(&plan, tree_depth(tree.leaf_count()));
        sync_member(&tree, &victim, &mut closure);
    }
    let pre_expel_root = tree.root_key().expect("non-empty tree");
    if !closure.contains(&pre_expel_root) {
        return Err("victim closure must contain the pre-expel root (vacuity check)".into());
    }

    // Expulsion, then churn. Every plan from here on is adversary input.
    let mut audited = 0usize;
    let check = |tree: &KeyTree, plan: &PathUpdatePlan, closure: &mut KeyClosure| {
        let opened = closure.eavesdrop(plan, tree_depth(plan.leaf_count));
        if !opened.is_empty() {
            return Err(format!(
                "post-expel seal(s) at node(s) {opened:?} opened with the expelled closure"
            ));
        }
        let root = tree.root_key().expect("non-empty tree");
        if closure.contains(&root) {
            return Err("post-expel root key lies in the expelled closure".into());
        }
        Ok(())
    };

    let expel_plan = tree.remove(&victim, &mut rng).expect("bystanders remain");
    check(&tree, &expel_plan, &mut closure)?;
    audited += 1;

    for round in 0..churn {
        let plan = match round % 4 {
            // A newcomer joins (fresh leaf or blank reuse).
            0 => tree.add(actor(group + round), &mut rng),
            // A bystander leaves.
            1 => {
                let bystander = (1..group + round)
                    .map(actor)
                    .find(|m| tree.leaf_of(m).is_some())
                    .expect("someone to remove");
                tree.remove(&bystander, &mut rng).expect("group survives")
            }
            // Plain refreshes.
            _ => tree.refresh_next(&mut rng),
        };
        check(&tree, &plan, &mut closure)?;
        audited += 1;
    }
    Ok(audited)
}

/// Packaged suite entry: the §5.2-extended expulsion audit over a sweep of
/// group sizes and churn schedules.
#[must_use]
pub fn verify_tree_expel_secrecy() -> VerificationResult {
    let cases: &[(usize, usize, u64)] =
        &[(2, 6, 1), (3, 8, 2), (8, 12, 3), (33, 16, 4), (70, 16, 5)];
    let mut audited = 0usize;
    let mut failure = None;
    for &(group, churn, seed) in cases {
        match audit_expel_closure(group, churn, seed) {
            Ok(n) => audited += n,
            Err(e) => {
                failure = Some(format!("group={group} churn={churn} seed={seed}: {e}"));
                break;
            }
        }
    }
    VerificationResult {
        name: "tree rekey, expelled-member closure vs post-expel roots (§5.2 ext)".into(),
        passed: failure.is_none(),
        states: audited,
        transitions: audited,
        detail: failure.unwrap_or_else(|| "no post-expel seal or root reachable".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expelled_closure_never_reaches_a_post_expel_root() {
        let r = verify_tree_expel_secrecy();
        assert!(r.passed, "{r}");
        assert!(r.states > 50, "sweep must audit a real amount of churn");
    }

    #[test]
    fn audit_is_not_vacuous() {
        // The victim's closure really does contain pre-expel material —
        // audit_expel_closure errors out if it does not.
        assert!(audit_expel_closure(4, 0, 9).is_ok());
    }

    #[test]
    fn audit_detects_a_planted_leak() {
        // Hand the "expelled" member a live post-expel path key and the
        // next refresh must be openable — the checker is able to fire.
        let mut rng = SeededRng::from_seed(42);
        let mut tree = KeyTree::new();
        for i in 0..6 {
            tree.add(actor(i), &mut rng);
        }
        let mut closure = KeyClosure::default();
        // Plant: a surviving member's current leaf key.
        sync_member(&tree, &actor(3), &mut closure);
        let plan = tree.refresh_next(&mut rng);
        let depth = tree_depth(tree.leaf_count());
        let opened = closure.eavesdrop(&plan, depth);
        let root = tree.root_key().unwrap();
        assert!(
            !opened.is_empty() || closure.contains(&root),
            "planted live key must make the audit fire"
        );
    }

    #[test]
    fn rejoin_after_expel_grants_only_fresh_material() {
        // An expelled member that rejoins gets a fully re-keyed path; its
        // old closure still opens nothing sealed while it was out.
        let mut rng = SeededRng::from_seed(77);
        let mut tree = KeyTree::new();
        for i in 0..5 {
            tree.add(actor(i), &mut rng);
        }
        let victim = actor(2);
        let mut closure = KeyClosure::default();
        sync_member(&tree, &victim, &mut closure);
        tree.remove(&victim, &mut rng).unwrap();
        // While out: two refreshes the old closure must not open.
        for _ in 0..2 {
            let plan = tree.refresh_next(&mut rng);
            assert!(closure
                .eavesdrop(&plan, tree_depth(tree.leaf_count()))
                .is_empty());
        }
        // Rejoin reuses the blanked leaf with an entirely fresh path.
        let plan = tree.add(victim.clone(), &mut rng);
        assert_eq!(plan.updated_leaf, 2, "blanked leaf reused");
        let (_, fresh) = tree.path_keys(&victim).unwrap();
        for k in &fresh {
            assert!(
                !closure.contains(k),
                "rejoin path must not reuse pre-expel key material"
            );
        }
    }
}
