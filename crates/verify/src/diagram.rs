//! The Figure 4 verification diagram (§5.3) as an executable disjunctive
//! invariant.
//!
//! Each box pairs a local-state combination `(usr_A, lead_A)` with trace
//! side-conditions (expressed over `Parts(trace)`, exactly as the paper's
//! predicates are). The published figure names boxes `Q1`, `Q2`, `Q3`,
//! `Q4`, `Q12` in the text; the remaining boxes are reconstructed
//! systematically "by examining the successive transitions A or L can
//! execute, starting from a state that satisfies Q1" — the same procedure
//! the paper describes. Our numbering therefore matches the paper where
//! the paper gives names and is ours elsewhere (see `EXPERIMENTS.md`).
//!
//! Diagram validity is checked mechanically during exploration:
//!
//! 1. **Coverage** — every reachable state satisfies exactly one box
//!    predicate ([`DiagramCoverage`], a state checker);
//! 2. **Edge soundness** — every explored transition `q → q'` goes from
//!    `box(q)` to a declared successor of `box(q)`
//!    ([`DiagramEdges`], a transition checker).
//!
//! A violation of either falsifies the abstraction — this is the
//! executable counterpart of the paper's per-box proof obligations.

use enclaves_model::explore::{StateChecker, TransitionChecker};
use enclaves_model::field::{AgentId, KeyId, NonceId};
use enclaves_model::leader::{match_close, match_nonce_ack, LeaderSlot};
use enclaves_model::system::{GlobalMove, SystemState};
use enclaves_model::user::{match_admin, match_key_dist, UserState};

/// The boxes of the (reconstructed) Figure 4 diagram.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum BoxId {
    /// `(NotConnected, NotConnected)` — the initial box.
    Q1,
    /// `(WaitingForKey, NotConnected)` — A requested, L has not replied.
    Q2,
    /// `(WaitingForKey, WaitingForKeyAck)` — both mid-handshake.
    Q3,
    /// `(Connected, WaitingForKeyAck)` — A accepted the key, ack in flight.
    Q4,
    /// `(Connected, Connected)` — the steady state; agreement holds.
    Q5,
    /// `(Connected, WaitingForAck)` — admin message in flight to A.
    Q6,
    /// `(Connected, WaitingForAck)` — A accepted it; ack in flight to L.
    Q7,
    /// `(NotConnected, Connected)` — A closed; L has not processed it.
    Q8,
    /// `(NotConnected, WaitingForAck)` — A closed mid-admin-exchange.
    Q9,
    /// `(WaitingForKey, Connected)` — A closed and re-requested; L lags.
    Q10,
    /// `(WaitingForKey, WaitingForAck)` — same, mid-admin-exchange.
    Q11,
    /// `(NotConnected, WaitingForKeyAck)` — L answered a (replayed)
    /// request A is not waiting on.
    Q12,
    /// `(NotConnected, WaitingForKeyAck)` with A's close pending — A
    /// connected and left before L saw the key ack.
    Q13,
    /// `(WaitingForKey, WaitingForKeyAck)` with A's close pending — as
    /// Q13, after A re-requested.
    Q14,
}

impl BoxId {
    /// The declared successor set (every box is also its own successor —
    /// intruder and other-agent moves stutter).
    #[must_use]
    pub fn successors(self) -> &'static [BoxId] {
        use BoxId::*;
        match self {
            Q1 => &[Q1, Q2, Q12],
            Q2 => &[Q2, Q3],
            Q3 => &[Q3, Q4],
            Q4 => &[Q4, Q5, Q13],
            Q5 => &[Q5, Q6, Q8],
            Q6 => &[Q6, Q7, Q9],
            Q7 => &[Q7, Q5, Q9],
            Q8 => &[Q8, Q1, Q9, Q10],
            Q9 => &[Q9, Q1, Q8, Q11],
            Q10 => &[Q10, Q11, Q2],
            Q11 => &[Q11, Q10, Q2],
            Q12 => &[Q12, Q3],
            Q13 => &[Q13, Q1, Q8, Q14],
            Q14 => &[Q14, Q10, Q2],
        }
    }

    /// All boxes.
    pub const ALL: [BoxId; 14] = [
        BoxId::Q1,
        BoxId::Q2,
        BoxId::Q3,
        BoxId::Q4,
        BoxId::Q5,
        BoxId::Q6,
        BoxId::Q7,
        BoxId::Q8,
        BoxId::Q9,
        BoxId::Q10,
        BoxId::Q11,
        BoxId::Q12,
        BoxId::Q13,
        BoxId::Q14,
    ];
}

/// The diagram evaluator: assigns a box to each state and validates the
/// box's trace side-conditions.
#[derive(Debug, Clone, Copy)]
pub struct Diagram {
    /// The honest user.
    pub user: AgentId,
    /// The leader.
    pub leader: AgentId,
}

impl Default for Diagram {
    fn default() -> Self {
        Diagram {
            user: AgentId::ALICE,
            leader: AgentId::LEADER,
        }
    }
}

impl Diagram {
    /// All `(N_l, K)` pairs from `AuthKeyDist`-shaped fields
    /// `{L, A, na, N, K}_Pa` in `Parts(trace)`.
    fn key_dists_for(&self, state: &SystemState, na: NonceId) -> Vec<(NonceId, KeyId)> {
        state
            .trace
            .parts()
            .iter()
            .filter_map(|f| match_key_dist(f, self.leader, self.user, na))
            .collect()
    }

    /// All fresh nonces from ack-shaped fields `{A, L, nl, N}_ka` in
    /// `Parts(trace)` (covers both `AuthAckKey` and `Ack`, which share the
    /// shape).
    fn acks_for(&self, state: &SystemState, nl: NonceId, ka: KeyId) -> Vec<NonceId> {
        state
            .trace
            .parts()
            .iter()
            .filter_map(|f| match_nonce_ack(f, self.user, self.leader, nl, ka))
            .collect()
    }

    /// All leader nonces from admin-shaped fields `{L, A, na, N, X}_ka` in
    /// `Parts(trace)`.
    fn admins_for(&self, state: &SystemState, na: NonceId, ka: KeyId) -> Vec<NonceId> {
        state
            .trace
            .parts()
            .iter()
            .filter_map(|f| match_admin(f, self.leader, self.user, na, ka).map(|(nl, _)| nl))
            .collect()
    }

    /// Whether a close field `{A, L}_ka` occurs in `Parts(trace)`.
    fn close_pending(&self, state: &SystemState, ka: KeyId) -> bool {
        state
            .trace
            .parts()
            .iter()
            .any(|f| match_close(f, self.user, self.leader, ka))
    }

    /// Assigns the diagram box of `state`, validating the box predicate.
    ///
    /// # Errors
    ///
    /// Returns a description when no box predicate covers the state — a
    /// diagram violation.
    pub fn box_of(&self, state: &SystemState) -> Result<BoxId, String> {
        let usr = state.user_a;
        let slot = state
            .slots
            .get(&self.user)
            .copied()
            .unwrap_or(LeaderSlot::NotConnected);

        match (usr, slot) {
            (UserState::NotConnected, LeaderSlot::NotConnected) => Ok(BoxId::Q1),

            (UserState::WaitingForKey(na), LeaderSlot::NotConnected) => {
                let dists = self.key_dists_for(state, na);
                if dists.is_empty() {
                    Ok(BoxId::Q2)
                } else {
                    Err(format!(
                        "Q2 violated: key-dist for A's pending nonce exists while L is NotConnected: {dists:?}"
                    ))
                }
            }

            (UserState::NotConnected, LeaderSlot::WaitingForKeyAck(nl, ka)) => {
                if self.close_pending(state, ka) {
                    Ok(BoxId::Q13)
                } else if self.acks_for(state, nl, ka).is_empty() {
                    Ok(BoxId::Q12)
                } else {
                    Err(format!(
                        "Q12 violated: a key ack for {nl:?} under {ka:?} exists although A never connected"
                    ))
                }
            }

            (UserState::WaitingForKey(na), LeaderSlot::WaitingForKeyAck(nl, ka)) => {
                let bad_dists: Vec<_> = self
                    .key_dists_for(state, na)
                    .into_iter()
                    .filter(|(n, k)| (*n, *k) != (nl, ka))
                    .collect();
                if !bad_dists.is_empty() {
                    return Err(format!(
                        "Q3/Q14 violated: divergent key-dists for A's nonce: {bad_dists:?}"
                    ));
                }
                if self.close_pending(state, ka) {
                    Ok(BoxId::Q14)
                } else if self.acks_for(state, nl, ka).is_empty() {
                    Ok(BoxId::Q3)
                } else {
                    Err(format!(
                        "Q3 violated: key ack for {nl:?} exists while A is still waiting"
                    ))
                }
            }

            (UserState::Connected(n, k), LeaderSlot::WaitingForKeyAck(nl, ka)) => {
                if k != ka {
                    return Err(format!(
                        "Q4 violated: A connected with {k:?} but L waits on {ka:?}"
                    ));
                }
                if self.close_pending(state, ka) {
                    return Err("Q4 violated: close pending while A is connected".into());
                }
                let bad_acks: Vec<_> = self
                    .acks_for(state, nl, ka)
                    .into_iter()
                    .filter(|a| *a != n)
                    .collect();
                if !bad_acks.is_empty() {
                    return Err(format!(
                        "Q4 violated: key acks with foreign nonces: {bad_acks:?}"
                    ));
                }
                if !self.admins_for(state, n, ka).is_empty() {
                    return Err(
                        "Q4 violated: admin message for A's fresh nonce already exists".into(),
                    );
                }
                Ok(BoxId::Q4)
            }

            (UserState::Connected(n, k), LeaderSlot::Connected(n2, k2)) => {
                if k != k2 || n != n2 {
                    return Err(format!(
                        "Q5 violated (agreement): A=({n:?},{k:?}) L=({n2:?},{k2:?})"
                    ));
                }
                if self.close_pending(state, k) {
                    return Err("Q5 violated: close pending while A is connected".into());
                }
                if !self.admins_for(state, n, k).is_empty() {
                    return Err(
                        "Q5 violated: an admin message already targets A's current nonce".into(),
                    );
                }
                Ok(BoxId::Q5)
            }

            (UserState::Connected(n, k), LeaderSlot::WaitingForAck(nl, ka)) => {
                if k != ka {
                    return Err(format!(
                        "Q6/Q7 violated: A holds {k:?} but L waits under {ka:?}"
                    ));
                }
                if self.close_pending(state, ka) {
                    return Err("Q6/Q7 violated: close pending while A is connected".into());
                }
                let acks = self.acks_for(state, nl, ka);
                let admins = self.admins_for(state, n, ka);
                if acks.is_empty() {
                    // Admin in flight: it must be the unique one, echoing
                    // A's current nonce with the leader nonce L waits on.
                    if admins == vec![nl] {
                        Ok(BoxId::Q6)
                    } else {
                        Err(format!(
                            "Q6 violated: expected exactly the in-flight admin for {nl:?}, found {admins:?}"
                        ))
                    }
                } else if acks.iter().all(|a| *a == n) && admins.is_empty() {
                    Ok(BoxId::Q7)
                } else {
                    Err(format!(
                        "Q7 violated: acks {acks:?} (A at {n:?}), admins {admins:?}"
                    ))
                }
            }

            (UserState::NotConnected, LeaderSlot::Connected(_, k)) => {
                if self.close_pending(state, k) {
                    Ok(BoxId::Q8)
                } else {
                    Err("unreachable box (NC, Connected) without a pending close".into())
                }
            }

            (UserState::NotConnected, LeaderSlot::WaitingForAck(_, k)) => {
                if self.close_pending(state, k) {
                    Ok(BoxId::Q9)
                } else {
                    Err("unreachable box (NC, WaitingForAck) without a pending close".into())
                }
            }

            (UserState::WaitingForKey(_), LeaderSlot::Connected(_, k)) => {
                if self.close_pending(state, k) {
                    Ok(BoxId::Q10)
                } else {
                    Err("unreachable box (WK, Connected) without a pending close".into())
                }
            }

            (UserState::WaitingForKey(_), LeaderSlot::WaitingForAck(_, k)) => {
                if self.close_pending(state, k) {
                    Ok(BoxId::Q11)
                } else {
                    Err("unreachable box (WK, WaitingForAck) without a pending close".into())
                }
            }

            (UserState::Connected(..), LeaderSlot::NotConnected) => {
                Err("unreachable box: A connected while L has no session".into())
            }
        }
    }
}

/// State checker: every reachable state is covered by a diagram box.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiagramCoverage {
    diagram: Diagram,
}

impl StateChecker for DiagramCoverage {
    fn name(&self) -> &str {
        "F4: diagram coverage (§5.3)"
    }

    fn check(&self, state: &SystemState) -> Result<(), String> {
        self.diagram.box_of(state).map(|_| ())
    }
}

/// Transition checker: every explored transition follows a diagram edge.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiagramEdges {
    diagram: Diagram,
}

impl TransitionChecker for DiagramEdges {
    fn name(&self) -> &str {
        "F4: diagram edge soundness (§5.3)"
    }

    fn check(&self, prev: &SystemState, mv: &GlobalMove, next: &SystemState) -> Result<(), String> {
        let from = self.diagram.box_of(prev)?;
        let to = self.diagram.box_of(next)?;
        if from.successors().contains(&to) {
            Ok(())
        } else {
            Err(format!("illegal diagram edge {from:?} → {to:?} via {mv:?}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enclaves_model::explore::{Bounds, Explorer};
    use enclaves_model::system::Scenario;
    use std::collections::HashSet;

    /// A state checker that records which boxes were visited.
    struct BoxCollector {
        diagram: Diagram,
        seen: std::sync::Mutex<HashSet<BoxId>>,
    }

    impl StateChecker for BoxCollector {
        fn name(&self) -> &str {
            "box-collector"
        }
        fn check(&self, state: &SystemState) -> Result<(), String> {
            let b = self.diagram.box_of(state)?;
            self.seen.lock().unwrap().insert(b);
            Ok(())
        }
    }

    #[test]
    fn initial_state_is_q1() {
        let scenario = Scenario::honest_pair();
        let state = SystemState::initial(&scenario);
        assert_eq!(Diagram::default().box_of(&state), Ok(BoxId::Q1));
    }

    #[test]
    fn diagram_valid_exhaustively_honest_pair() {
        let mut ex = Explorer::new(Scenario::honest_pair(), Bounds::smoke());
        ex.add_checker(Box::new(DiagramCoverage::default()));
        ex.add_transition_checker(Box::new(DiagramEdges::default()));
        let stats = ex.run();
        assert!(ex.violations.is_empty(), "{}", ex.violations[0]);
        assert!(stats.states_visited > 50);
    }

    #[test]
    fn diagram_valid_exhaustively_with_insider() {
        let mut ex = Explorer::new(Scenario::tight(), Bounds::smoke());
        ex.add_checker(Box::new(DiagramCoverage::default()));
        ex.add_transition_checker(Box::new(DiagramEdges::default()));
        let _ = ex.run();
        assert!(ex.violations.is_empty(), "{}", ex.violations[0]);
    }

    #[test]
    fn happy_path_boxes_in_expected_order() {
        // Drive the canonical session and record the box sequence.
        use enclaves_model::leader::LeaderMove;
        use enclaves_model::user::UserMove;
        let scenario = Scenario::honest_pair();
        let d = Diagram::default();
        let mut state = SystemState::initial(&scenario);
        let mut boxes = vec![d.box_of(&state).unwrap()];
        let step = |state: &SystemState, pred: &dyn Fn(&GlobalMove) -> bool| {
            let mv = state
                .enumerate_moves(&scenario)
                .into_iter()
                .find(|m| pred(m))
                .expect("move enabled");
            state.apply(&scenario, &mv)
        };

        state = step(&state, &|m| {
            matches!(m, GlobalMove::User(UserMove::StartAuth))
        });
        boxes.push(d.box_of(&state).unwrap());
        state = step(&state, &|m| {
            matches!(m, GlobalMove::Leader(_, LeaderMove::AcceptAuthInit { .. }))
        });
        boxes.push(d.box_of(&state).unwrap());
        state = step(&state, &|m| {
            matches!(m, GlobalMove::User(UserMove::AcceptKeyDist { .. }))
        });
        boxes.push(d.box_of(&state).unwrap());
        state = step(&state, &|m| {
            matches!(m, GlobalMove::Leader(_, LeaderMove::AcceptKeyAck { .. }))
        });
        boxes.push(d.box_of(&state).unwrap());
        state = step(&state, &|m| {
            matches!(m, GlobalMove::Leader(_, LeaderMove::SendAdmin { .. }))
        });
        boxes.push(d.box_of(&state).unwrap());
        state = step(&state, &|m| {
            matches!(m, GlobalMove::User(UserMove::AcceptAdmin { .. }))
        });
        boxes.push(d.box_of(&state).unwrap());
        state = step(&state, &|m| {
            matches!(m, GlobalMove::Leader(_, LeaderMove::AcceptAck { .. }))
        });
        boxes.push(d.box_of(&state).unwrap());
        state = step(&state, &|m| matches!(m, GlobalMove::User(UserMove::Close)));
        boxes.push(d.box_of(&state).unwrap());
        state = step(&state, &|m| {
            matches!(m, GlobalMove::Leader(_, LeaderMove::AcceptClose))
        });
        boxes.push(d.box_of(&state).unwrap());

        assert_eq!(
            boxes,
            vec![
                BoxId::Q1,
                BoxId::Q2,
                BoxId::Q3,
                BoxId::Q4,
                BoxId::Q5,
                BoxId::Q6,
                BoxId::Q7,
                BoxId::Q5,
                BoxId::Q8,
                BoxId::Q1,
            ]
        );
    }

    /// The edge checker has teeth: against a deliberately impoverished
    /// edge relation (pretending Q12 is unreachable from Q1), exploration
    /// reports violations.
    #[test]
    fn edge_checker_detects_missing_edges() {
        struct CrippledEdges(Diagram);
        impl enclaves_model::explore::TransitionChecker for CrippledEdges {
            fn name(&self) -> &str {
                "crippled-edges"
            }
            fn check(
                &self,
                prev: &SystemState,
                _mv: &enclaves_model::system::GlobalMove,
                next: &SystemState,
            ) -> Result<(), String> {
                let from = self.0.box_of(prev)?;
                let to = self.0.box_of(next)?;
                // Forbid the genuine Q1 → Q12 edge.
                if from == BoxId::Q1 && to == BoxId::Q12 {
                    return Err("hit the removed edge".into());
                }
                Ok(())
            }
        }
        let mut ex = Explorer::new(Scenario::honest_pair(), Bounds::smoke());
        ex.add_transition_checker(Box::new(CrippledEdges(Diagram::default())));
        let _ = ex.run();
        assert!(
            !ex.violations.is_empty(),
            "a missing edge must be detected by exploration"
        );
    }

    /// Box predicates are mutually exclusive by construction (the local
    /// state pair plus the close-pending bit picks exactly one); verify on
    /// explored states that box_of is a function, i.e. deterministic and
    /// total.
    #[test]
    fn box_assignment_is_total_on_reachable_states() {
        struct Total(Diagram);
        impl StateChecker for Total {
            fn name(&self) -> &str {
                "total"
            }
            fn check(&self, state: &SystemState) -> Result<(), String> {
                let a = self.0.box_of(state)?;
                let b = self.0.box_of(state)?;
                if a == b {
                    Ok(())
                } else {
                    Err(format!("nondeterministic box: {a:?} vs {b:?}"))
                }
            }
        }
        let mut ex = Explorer::new(Scenario::tight(), Bounds::smoke());
        ex.add_checker(Box::new(Total(Diagram::default())));
        let _ = ex.run();
        assert!(ex.violations.is_empty(), "{}", ex.violations[0]);
    }

    #[test]
    fn every_edge_is_between_declared_boxes() {
        for b in BoxId::ALL {
            let succs = b.successors();
            assert!(succs.contains(&b), "{b:?} must be its own successor");
            for s in succs {
                assert!(BoxId::ALL.contains(s));
            }
        }
    }

    #[test]
    fn core_boxes_are_reached_in_exploration() {
        let collector = BoxCollector {
            diagram: Diagram::default(),
            seen: std::sync::Mutex::new(HashSet::new()),
        };
        let seen_handle: &'static std::sync::Mutex<HashSet<BoxId>> =
            Box::leak(Box::new(std::sync::Mutex::new(HashSet::new())));
        struct Shared(&'static std::sync::Mutex<HashSet<BoxId>>, Diagram);
        impl StateChecker for Shared {
            fn name(&self) -> &str {
                "shared-box-collector"
            }
            fn check(&self, state: &SystemState) -> Result<(), String> {
                let b = self.1.box_of(state)?;
                self.0.lock().unwrap().insert(b);
                Ok(())
            }
        }
        drop(collector);
        let mut ex = Explorer::new(Scenario::honest_pair(), Bounds::smoke());
        ex.add_checker(Box::new(Shared(seen_handle, Diagram::default())));
        let _ = ex.run();
        let seen = seen_handle.lock().unwrap();
        for expected in [
            BoxId::Q1,
            BoxId::Q2,
            BoxId::Q3,
            BoxId::Q4,
            BoxId::Q5,
            BoxId::Q12,
        ] {
            assert!(
                seen.contains(&expected),
                "{expected:?} never reached: {seen:?}"
            );
        }
    }
}
