//! Nonces.
//!
//! Two distinct notions of "nonce" coexist in this system and must not be
//! confused:
//!
//! * [`ProtocolNonce`] — the 128-bit random values `N_1`, `N_2`, `N_{2i+1}`,
//!   ... that the paper's protocol threads through its messages to prove
//!   freshness and defeat replay (§3.2).
//! * [`AeadNonce`] — the 96-bit ChaCha20-Poly1305 nonce consumed by the
//!   concrete cipher; these come from a monotone [`NonceSequence`] per
//!   (key, direction) so a key never sees a repeated AEAD nonce.

use crate::rng::CryptoRng;
use crate::CryptoError;

/// Length of a protocol nonce in bytes.
pub const PROTOCOL_NONCE_LEN: usize = 16;

/// Length of an AEAD (IETF ChaCha20-Poly1305) nonce in bytes.
pub const AEAD_NONCE_LEN: usize = 12;

/// A 128-bit protocol nonce (`N_1`, `N_2`, ... in the paper).
///
/// Freshness of these values is what the paper's proofs hinge on; they are
/// drawn from a CSPRNG so collision probability is negligible.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProtocolNonce([u8; PROTOCOL_NONCE_LEN]);

impl ProtocolNonce {
    /// Wraps raw nonce bytes.
    #[must_use]
    pub fn from_bytes(bytes: [u8; PROTOCOL_NONCE_LEN]) -> Self {
        Self(bytes)
    }

    /// Constructs a nonce from a byte slice.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] if the slice is not exactly
    /// [`PROTOCOL_NONCE_LEN`] bytes.
    pub fn try_from_slice(bytes: &[u8]) -> Result<Self, CryptoError> {
        if bytes.len() != PROTOCOL_NONCE_LEN {
            return Err(CryptoError::InvalidLength {
                what: "protocol nonce",
                expected: PROTOCOL_NONCE_LEN,
                actual: bytes.len(),
            });
        }
        let mut n = [0u8; PROTOCOL_NONCE_LEN];
        n.copy_from_slice(bytes);
        Ok(Self(n))
    }

    /// Generates a fresh random nonce.
    #[must_use]
    pub fn generate<R: CryptoRng + ?Sized>(rng: &mut R) -> Self {
        let mut n = [0u8; PROTOCOL_NONCE_LEN];
        rng.fill_bytes(&mut n);
        Self(n)
    }

    /// Borrows the raw nonce bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; PROTOCOL_NONCE_LEN] {
        &self.0
    }
}

impl std::fmt::Debug for ProtocolNonce {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ProtocolNonce({:02x}{:02x}{:02x}{:02x}..)",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

/// A 96-bit AEAD nonce.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AeadNonce([u8; AEAD_NONCE_LEN]);

impl AeadNonce {
    /// Wraps raw nonce bytes.
    #[must_use]
    pub fn from_bytes(bytes: [u8; AEAD_NONCE_LEN]) -> Self {
        Self(bytes)
    }

    /// Borrows the raw nonce bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; AEAD_NONCE_LEN] {
        &self.0
    }
}

/// A monotone sequence of AEAD nonces for one (key, direction) pair.
///
/// The four-byte prefix identifies the direction/channel; the trailing
/// eight bytes count messages. A sequence refuses to wrap, returning
/// [`CryptoError::NonceExhausted`] instead of ever reusing a nonce.
///
/// # Example
///
/// ```
/// use enclaves_crypto::nonce::NonceSequence;
/// let mut seq = NonceSequence::new(*b"ldr>");
/// let n0 = seq.next().unwrap();
/// let n1 = seq.next().unwrap();
/// assert_ne!(n0.as_bytes(), n1.as_bytes());
/// ```
#[derive(Debug, Clone)]
pub struct NonceSequence {
    prefix: [u8; 4],
    counter: u64,
    exhausted: bool,
}

impl NonceSequence {
    /// Creates a sequence with the given 4-byte channel prefix, starting at
    /// counter zero.
    #[must_use]
    pub fn new(prefix: [u8; 4]) -> Self {
        NonceSequence {
            prefix,
            counter: 0,
            exhausted: false,
        }
    }

    /// Returns the next nonce in the sequence.
    ///
    /// Deliberately named `next` (the domain term for a nonce sequence)
    /// even though it shadows `Iterator::next`; the `Result` return type
    /// makes the two impossible to confuse at a call site.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::NonceExhausted`] once the 64-bit counter would
    /// wrap; the caller must rekey.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<AeadNonce, CryptoError> {
        if self.exhausted {
            return Err(CryptoError::NonceExhausted);
        }
        let mut bytes = [0u8; AEAD_NONCE_LEN];
        bytes[..4].copy_from_slice(&self.prefix);
        bytes[4..].copy_from_slice(&self.counter.to_be_bytes());
        match self.counter.checked_add(1) {
            Some(next) => self.counter = next,
            None => self.exhausted = true,
        }
        Ok(AeadNonce::from_bytes(bytes))
    }

    /// The number of nonces issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;
    use std::collections::HashSet;

    #[test]
    fn protocol_nonces_are_distinct() {
        let mut rng = SeededRng::from_seed(1);
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(ProtocolNonce::generate(&mut rng)));
        }
    }

    #[test]
    fn try_from_slice_length_check() {
        assert!(ProtocolNonce::try_from_slice(&[0; 15]).is_err());
        assert!(ProtocolNonce::try_from_slice(&[0; 16]).is_ok());
    }

    #[test]
    fn sequence_is_strictly_increasing_and_prefixed() {
        let mut seq = NonceSequence::new(*b"test");
        let mut last = None;
        for i in 0..100u64 {
            let n = seq.next().unwrap();
            assert_eq!(&n.as_bytes()[..4], b"test");
            let ctr = u64::from_be_bytes(n.as_bytes()[4..].try_into().unwrap());
            assert_eq!(ctr, i);
            if let Some(prev) = last {
                assert!(ctr > prev);
            }
            last = Some(ctr);
        }
        assert_eq!(seq.issued(), 100);
    }

    #[test]
    fn different_prefixes_never_collide() {
        let mut a = NonceSequence::new(*b"ldr>");
        let mut b = NonceSequence::new(*b"mbr>");
        for _ in 0..50 {
            assert_ne!(a.next().unwrap(), b.next().unwrap());
        }
    }

    #[test]
    fn exhaustion_is_permanent() {
        let mut seq = NonceSequence {
            prefix: *b"xxxx",
            counter: u64::MAX,
            exhausted: false,
        };
        // The final counter value may be issued once...
        assert!(seq.next().is_ok());
        // ...then the sequence is dead forever.
        assert!(matches!(seq.next(), Err(CryptoError::NonceExhausted)));
        assert!(matches!(seq.next(), Err(CryptoError::NonceExhausted)));
    }

    #[test]
    fn debug_prints_prefix_only() {
        let n = ProtocolNonce::from_bytes([0xAA; 16]);
        let dbg = format!("{n:?}");
        assert!(dbg.contains("aaaaaaaa"));
        assert!(dbg.ends_with("..)"));
    }
}
