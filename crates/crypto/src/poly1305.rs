//! RFC 8439 Poly1305 one-time authenticator.
//!
//! Implemented with 26-bit limbs and 64-bit intermediate products (the
//! classic "donna" layout). Validated against the RFC 8439 §2.5.2 test
//! vector and property-tested for padding/chunking consistency.

/// The Poly1305 key length in bytes (`r || s`).
pub const KEY_LEN: usize = 32;

/// The Poly1305 tag length in bytes.
pub const TAG_LEN: usize = 16;

/// Incremental Poly1305 computation.
///
/// A Poly1305 key must be used for exactly one message; the AEAD in
/// [`crate::aead`] derives a fresh key per nonce.
#[derive(Clone)]
pub struct Poly1305 {
    r: [u32; 5],
    s: [u32; 4],
    acc: [u32; 5],
    buffer: [u8; 16],
    buffer_len: usize,
}

impl std::fmt::Debug for Poly1305 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poly1305").finish_non_exhaustive()
    }
}

impl Poly1305 {
    /// Creates an authenticator from a 32-byte one-time key.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        // Load r with the RFC 8439 §2.5 clamp folded into the limb masks
        // (the classic "donna" unaligned loads at offsets 0, 3, 6, 9, 12).
        let load32 = |i: usize| u32::from_le_bytes([key[i], key[i + 1], key[i + 2], key[i + 3]]);
        let r = [
            load32(0) & 0x3ff_ffff,
            (load32(3) >> 2) & 0x3ff_ff03,
            (load32(6) >> 4) & 0x3ff_c0ff,
            (load32(9) >> 6) & 0x3f0_3fff,
            (load32(12) >> 8) & 0x00f_ffff,
        ];

        let s = [
            u32::from_le_bytes([key[16], key[17], key[18], key[19]]),
            u32::from_le_bytes([key[20], key[21], key[22], key[23]]),
            u32::from_le_bytes([key[24], key[25], key[26], key[27]]),
            u32::from_le_bytes([key[28], key[29], key[30], key[31]]),
        ];

        Poly1305 {
            r,
            s,
            acc: [0; 5],
            buffer: [0; 16],
            buffer_len: 0,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buffer_len > 0 {
            let take = (16 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 16 {
                let block = self.buffer;
                self.process_block(&block, 1);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 16 {
            let mut block = [0u8; 16];
            block.copy_from_slice(&data[..16]);
            self.process_block(&block, 1);
            data = &data[16..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    fn process_block(&mut self, block: &[u8; 16], hibit: u32) {
        let t0 = u32::from_le_bytes([block[0], block[1], block[2], block[3]]);
        let t1 = u32::from_le_bytes([block[4], block[5], block[6], block[7]]);
        let t2 = u32::from_le_bytes([block[8], block[9], block[10], block[11]]);
        let t3 = u32::from_le_bytes([block[12], block[13], block[14], block[15]]);

        // acc += block (with the high bit).
        self.acc[0] = self.acc[0].wrapping_add(t0 & 0x3ff_ffff);
        self.acc[1] = self.acc[1].wrapping_add(((t0 >> 26) | (t1 << 6)) & 0x3ff_ffff);
        self.acc[2] = self.acc[2].wrapping_add(((t1 >> 20) | (t2 << 12)) & 0x3ff_ffff);
        self.acc[3] = self.acc[3].wrapping_add(((t2 >> 14) | (t3 << 18)) & 0x3ff_ffff);
        self.acc[4] = self.acc[4].wrapping_add((t3 >> 8) | (hibit << 24));

        // acc *= r (mod 2^130 - 5).
        let [r0, r1, r2, r3, r4] = self.r.map(u64::from);
        let [h0, h1, h2, h3, h4] = self.acc.map(u64::from);
        let s1 = r1 * 5;
        let s2 = r2 * 5;
        let s3 = r3 * 5;
        let s4 = r4 * 5;

        let d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
        let d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
        let d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
        let d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
        let d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

        // Carry propagation.
        let mut c: u64;
        let mut h = [0u64; 5];
        c = d0 >> 26;
        h[0] = d0 & 0x3ff_ffff;
        let d1 = d1 + c;
        c = d1 >> 26;
        h[1] = d1 & 0x3ff_ffff;
        let d2 = d2 + c;
        c = d2 >> 26;
        h[2] = d2 & 0x3ff_ffff;
        let d3 = d3 + c;
        c = d3 >> 26;
        h[3] = d3 & 0x3ff_ffff;
        let d4 = d4 + c;
        c = d4 >> 26;
        h[4] = d4 & 0x3ff_ffff;
        h[0] += c * 5;
        c = h[0] >> 26;
        h[0] &= 0x3ff_ffff;
        h[1] += c;

        self.acc = h.map(|x| x as u32);
    }

    /// Completes the authenticator and returns the 16-byte tag.
    #[must_use]
    pub fn finalize(mut self) -> [u8; TAG_LEN] {
        if self.buffer_len > 0 {
            // Final partial block: append 0x01 then zero-pad; hibit is 0.
            let mut block = [0u8; 16];
            block[..self.buffer_len].copy_from_slice(&self.buffer[..self.buffer_len]);
            block[self.buffer_len] = 1;
            self.process_block(&block, 0);
        }

        let mut h = self.acc.map(u64::from);

        // Full carry.
        let mut c: u64;
        c = h[1] >> 26;
        h[1] &= 0x3ff_ffff;
        h[2] += c;
        c = h[2] >> 26;
        h[2] &= 0x3ff_ffff;
        h[3] += c;
        c = h[3] >> 26;
        h[3] &= 0x3ff_ffff;
        h[4] += c;
        c = h[4] >> 26;
        h[4] &= 0x3ff_ffff;
        h[0] += c * 5;
        c = h[0] >> 26;
        h[0] &= 0x3ff_ffff;
        h[1] += c;

        // Compute h + -p = h - (2^130 - 5).
        let mut g = [0u64; 5];
        g[0] = h[0].wrapping_add(5);
        c = g[0] >> 26;
        g[0] &= 0x3ff_ffff;
        g[1] = h[1].wrapping_add(c);
        c = g[1] >> 26;
        g[1] &= 0x3ff_ffff;
        g[2] = h[2].wrapping_add(c);
        c = g[2] >> 26;
        g[2] &= 0x3ff_ffff;
        g[3] = h[3].wrapping_add(c);
        c = g[3] >> 26;
        g[3] &= 0x3ff_ffff;
        g[4] = h[4].wrapping_add(c).wrapping_sub(1 << 26);

        // Select h if h < p, g otherwise (constant-time via mask).
        let mask = (g[4] >> 63).wrapping_sub(1); // all-ones if g >= 0 (h >= p)
        for i in 0..5 {
            h[i] = (h[i] & !mask) | (g[i] & mask);
        }

        // Serialize h to 128 bits.
        let h0 = (h[0] | (h[1] << 26)) as u32;
        let h1 = ((h[1] >> 6) | (h[2] << 20)) as u32;
        let h2 = ((h[2] >> 12) | (h[3] << 14)) as u32;
        let h3 = ((h[3] >> 18) | (h[4] << 8)) as u32;

        // Add s with carry.
        let mut f: u64;
        let mut out = [0u8; TAG_LEN];
        f = u64::from(h0) + u64::from(self.s[0]);
        out[0..4].copy_from_slice(&(f as u32).to_le_bytes());
        f = u64::from(h1) + u64::from(self.s[1]) + (f >> 32);
        out[4..8].copy_from_slice(&(f as u32).to_le_bytes());
        f = u64::from(h2) + u64::from(self.s[2]) + (f >> 32);
        out[8..12].copy_from_slice(&(f as u32).to_le_bytes());
        f = u64::from(h3) + u64::from(self.s[3]) + (f >> 32);
        out[12..16].copy_from_slice(&(f as u32).to_le_bytes());
        out
    }

    /// One-shot MAC of `message` under a one-time `key`.
    #[must_use]
    pub fn mac(key: &[u8; KEY_LEN], message: &[u8]) -> [u8; TAG_LEN] {
        let mut p = Poly1305::new(key);
        p.update(message);
        p.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 8439 §2.5.2 test vector.
    #[test]
    fn rfc8439_vector() {
        let key_bytes = unhex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
        let mut key = [0u8; KEY_LEN];
        key.copy_from_slice(&key_bytes);
        let tag = Poly1305::mac(&key, b"Cryptographic Forum Research Group");
        assert_eq!(tag.to_vec(), unhex("a8061dc1305136c6c22b8baf0c0127a9"));
    }

    // RFC 8439 A.3 #1: all-zero key gives all-zero tag.
    #[test]
    fn zero_key_zero_tag() {
        let key = [0u8; KEY_LEN];
        let tag = Poly1305::mac(&key, &[0u8; 64]);
        assert_eq!(tag, [0u8; TAG_LEN]);
    }

    // RFC 8439 A.3 #5: edge case in modular reduction (2^130-5 + self).
    #[test]
    fn rfc8439_a3_vector5_reduction_edge() {
        let mut key = [0u8; KEY_LEN];
        key[0] = 2;
        let msg = unhex("ffffffffffffffffffffffffffffffff");
        let tag = Poly1305::mac(&key, &msg);
        assert_eq!(tag.to_vec(), unhex("03000000000000000000000000000000"));
    }

    // RFC 8439 A.3 #7: reduction with carry into high limb.
    #[test]
    fn rfc8439_a3_vector7() {
        let mut key = [0u8; KEY_LEN];
        key[0] = 1;
        let msg = unhex(concat!(
            "ffffffffffffffffffffffffffffffff",
            "f0ffffffffffffffffffffffffffffff",
            "11000000000000000000000000000000"
        ));
        let tag = Poly1305::mac(&key, &msg);
        assert_eq!(tag.to_vec(), unhex("05000000000000000000000000000000"));
    }

    #[test]
    fn incremental_matches_oneshot_at_every_split() {
        let key_bytes = unhex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
        let mut key = [0u8; KEY_LEN];
        key.copy_from_slice(&key_bytes);
        let msg: Vec<u8> = (0u16..100).map(|i| i as u8).collect();
        let expect = Poly1305::mac(&key, &msg);
        for split in 0..msg.len() {
            let mut p = Poly1305::new(&key);
            p.update(&msg[..split]);
            p.update(&msg[split..]);
            assert_eq!(p.finalize(), expect, "split at {split}");
        }
    }

    #[test]
    fn empty_message() {
        let key = [9u8; KEY_LEN];
        // Empty message: tag is simply s.
        let tag = Poly1305::mac(&key, b"");
        assert_eq!(tag.to_vec(), key[16..32].to_vec());
    }
}
