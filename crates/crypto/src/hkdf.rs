//! RFC 5869 HKDF (HMAC-based extract-and-expand key derivation) with
//! SHA-256.
//!
//! The Enclaves leader derives fresh session keys `K_a` and group keys `K_g`
//! from pool entropy; HKDF provides the derivation step. Validated against
//! the RFC 5869 appendix A test vectors.

use crate::hmac::{HmacSha256, TAG_LEN};
use crate::CryptoError;

/// Maximum output length permitted by RFC 5869 (`255 * HashLen`).
pub const MAX_OUTPUT_LEN: usize = 255 * TAG_LEN;

/// Extracts a pseudorandom key from input keying material.
///
/// `salt` may be empty, in which case a string of zeros is used per the RFC.
#[must_use]
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; TAG_LEN] {
    let zeros = [0u8; TAG_LEN];
    let salt = if salt.is_empty() { &zeros[..] } else { salt };
    HmacSha256::mac(salt, ikm)
}

/// Expands a pseudorandom key into `out.len()` bytes of output keying
/// material bound to `info`.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidLength`] if `out` is longer than
/// [`MAX_OUTPUT_LEN`].
pub fn expand(prk: &[u8; TAG_LEN], info: &[u8], out: &mut [u8]) -> Result<(), CryptoError> {
    if out.len() > MAX_OUTPUT_LEN {
        return Err(CryptoError::InvalidLength {
            what: "hkdf output",
            expected: MAX_OUTPUT_LEN,
            actual: out.len(),
        });
    }
    let mut t: Vec<u8> = Vec::new();
    let mut offset = 0usize;
    let mut counter = 1u8;
    while offset < out.len() {
        let mut mac = HmacSha256::new(prk);
        mac.update(&t);
        mac.update(info);
        mac.update(&[counter]);
        let block = mac.finalize();
        let take = (out.len() - offset).min(TAG_LEN);
        out[offset..offset + take].copy_from_slice(&block[..take]);
        t = block.to_vec();
        offset += take;
        counter = counter.wrapping_add(1);
    }
    Ok(())
}

/// One-shot extract-then-expand.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidLength`] if `out` is longer than
/// [`MAX_OUTPUT_LEN`].
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), enclaves_crypto::CryptoError> {
/// let mut key = [0u8; 32];
/// enclaves_crypto::hkdf::derive(b"salt", b"entropy", b"enclaves session key", &mut key)?;
/// # Ok(())
/// # }
/// ```
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], out: &mut [u8]) -> Result<(), CryptoError> {
    let prk = extract(salt, ikm);
    expand(&prk, info, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 5869 A.1: basic test case.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0b; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let prk = extract(&salt, &ikm);
        assert_eq!(
            prk.to_vec(),
            unhex("077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5")
        );
        let mut okm = [0u8; 42];
        expand(&prk, &info, &mut okm).unwrap();
        assert_eq!(
            okm.to_vec(),
            unhex("3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865")
        );
    }

    // RFC 5869 A.2: longer inputs/outputs.
    #[test]
    fn rfc5869_case2() {
        let ikm: Vec<u8> = (0x00u8..=0x4f).collect();
        let salt: Vec<u8> = (0x60u8..=0xaf).collect();
        let info: Vec<u8> = (0xb0u8..=0xff).collect();
        let mut okm = [0u8; 82];
        derive(&salt, &ikm, &info, &mut okm).unwrap();
        assert_eq!(
            okm.to_vec(),
            unhex(concat!(
                "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c",
                "59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71",
                "cc30c58179ec3e87c14c01d5c1f3434f1d87"
            ))
        );
    }

    // RFC 5869 A.3: zero-length salt and info.
    #[test]
    fn rfc5869_case3_empty_salt_info() {
        let ikm = [0x0b; 22];
        let mut okm = [0u8; 42];
        derive(&[], &ikm, &[], &mut okm).unwrap();
        assert_eq!(
            okm.to_vec(),
            unhex("8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8")
        );
    }

    #[test]
    fn expand_rejects_oversize_output() {
        let prk = extract(b"s", b"ikm");
        let mut out = vec![0u8; MAX_OUTPUT_LEN + 1];
        assert!(matches!(
            expand(&prk, b"", &mut out),
            Err(CryptoError::InvalidLength { .. })
        ));
    }

    #[test]
    fn expand_max_output_succeeds() {
        let prk = extract(b"s", b"ikm");
        let mut out = vec![0u8; MAX_OUTPUT_LEN];
        expand(&prk, b"", &mut out).unwrap();
        assert!(out.iter().any(|&b| b != 0));
    }

    #[test]
    fn different_info_yields_different_keys() {
        let mut k1 = [0u8; 32];
        let mut k2 = [0u8; 32];
        derive(b"salt", b"ikm", b"session", &mut k1).unwrap();
        derive(b"salt", b"ikm", b"group", &mut k2).unwrap();
        assert_ne!(k1, k2);
    }

    #[test]
    fn prefix_consistency_across_lengths() {
        // HKDF output is a stream: a shorter request must be a prefix of a
        // longer one with the same parameters.
        let mut short = [0u8; 16];
        let mut long = [0u8; 64];
        derive(b"salt", b"ikm", b"info", &mut short).unwrap();
        derive(b"salt", b"ikm", b"info", &mut long).unwrap();
        assert_eq!(short[..], long[..16]);
    }
}
