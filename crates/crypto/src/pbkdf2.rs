//! RFC 8018 PBKDF2 with HMAC-SHA-256.
//!
//! Enclaves derives each user's long-term key `P_a` from a password shared
//! out of band with the group leader ("this encryption uses a key `P_a`
//! derived from A's password"). PBKDF2 is the concrete derivation we use.
//! Validated against the RFC 7914 §11 PBKDF2-HMAC-SHA-256 test vectors.

use crate::hmac::{HmacSha256, TAG_LEN};
use crate::CryptoError;

/// Derives `out.len()` bytes from `password` and `salt` using `iterations`
/// rounds of PBKDF2-HMAC-SHA-256.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidLength`] if `iterations` is zero (expressed
/// as an invalid parameter) or `out` is empty.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), enclaves_crypto::CryptoError> {
/// let mut key = [0u8; 32];
/// enclaves_crypto::pbkdf2::pbkdf2(b"hunter2", b"enclaves:alice", 1000, &mut key)?;
/// # Ok(())
/// # }
/// ```
pub fn pbkdf2(
    password: &[u8],
    salt: &[u8],
    iterations: u32,
    out: &mut [u8],
) -> Result<(), CryptoError> {
    if iterations == 0 {
        return Err(CryptoError::InvalidLength {
            what: "pbkdf2 iterations",
            expected: 1,
            actual: 0,
        });
    }
    if out.is_empty() {
        return Err(CryptoError::InvalidLength {
            what: "pbkdf2 output",
            expected: 1,
            actual: 0,
        });
    }

    for (block_index, chunk) in out.chunks_mut(TAG_LEN).enumerate() {
        let i = (block_index as u32) + 1;
        let mut mac = HmacSha256::new(password);
        mac.update(salt);
        mac.update(&i.to_be_bytes());
        let mut u = mac.finalize();
        let mut t = u;
        for _ in 1..iterations {
            u = HmacSha256::mac(password, &u);
            for (tb, ub) in t.iter_mut().zip(u.iter()) {
                *tb ^= ub;
            }
        }
        chunk.copy_from_slice(&t[..chunk.len()]);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 7914 §11, vector 1.
    #[test]
    fn rfc7914_vector1() {
        let mut out = [0u8; 64];
        pbkdf2(b"passwd", b"salt", 1, &mut out).unwrap();
        assert_eq!(
            out.to_vec(),
            unhex(concat!(
                "55ac046e56e3089fec1691c22544b605f94185216dde0465e68b9d57c20dacbc",
                "49ca9cccf179b645991664b39d77ef317c71b845b1e30bd509112041d3a19783"
            ))
        );
    }

    // RFC 7914 §11, vector 2.
    #[test]
    fn rfc7914_vector2() {
        let mut out = [0u8; 64];
        pbkdf2(b"Password", b"NaCl", 80000, &mut out).unwrap();
        assert_eq!(
            out.to_vec(),
            unhex(concat!(
                "4ddcd8f60b98be21830cee5ef22701f9641a4418d04c0414aeff08876b34ab56",
                "a1d425a1225833549adb841b51c9b3176a272bdebba1d078478f62b397f33c8d"
            ))
        );
    }

    #[test]
    fn zero_iterations_rejected() {
        let mut out = [0u8; 32];
        assert!(pbkdf2(b"p", b"s", 0, &mut out).is_err());
    }

    #[test]
    fn empty_output_rejected() {
        let mut out = [];
        assert!(pbkdf2(b"p", b"s", 1, &mut out).is_err());
    }

    #[test]
    fn non_multiple_of_block_output() {
        let mut short = [0u8; 20];
        let mut long = [0u8; 40];
        pbkdf2(b"p", b"s", 3, &mut short).unwrap();
        pbkdf2(b"p", b"s", 3, &mut long).unwrap();
        assert_eq!(short[..], long[..20]);
    }

    #[test]
    fn distinct_salts_give_distinct_keys() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        pbkdf2(b"password", b"enclaves:alice", 10, &mut a).unwrap();
        pbkdf2(b"password", b"enclaves:bob", 10, &mut b).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn iteration_count_changes_output() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        pbkdf2(b"password", b"salt", 10, &mut a).unwrap();
        pbkdf2(b"password", b"salt", 11, &mut b).unwrap();
        assert_ne!(a, b);
    }
}
