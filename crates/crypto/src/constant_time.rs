//! Constant-time comparison helpers.
//!
//! Branching on secret data (for example, when comparing a received MAC tag
//! against the computed one) leaks timing information. The helpers here
//! accumulate differences with bitwise operations so the running time is
//! independent of where the first mismatch occurs.

/// Compares two byte slices in constant time with respect to their contents.
///
/// Returns `true` if the slices have equal length and equal contents. The
/// comparison time depends only on the lengths of the inputs, never on the
/// position of the first differing byte.
///
/// # Example
///
/// ```
/// use enclaves_crypto::constant_time::ct_eq;
/// assert!(ct_eq(b"tag", b"tag"));
/// assert!(!ct_eq(b"tag", b"tab"));
/// assert!(!ct_eq(b"tag", b"tag0"));
/// ```
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    // Collapse to 0 or 1 without a data-dependent branch.
    diff == 0
}

/// Selects between two bytes in constant time.
///
/// Returns `if_true` when `flag` is `true` and `if_false` otherwise, without
/// branching on `flag`.
#[must_use]
pub fn ct_select_u8(flag: bool, if_true: u8, if_false: u8) -> u8 {
    let mask = (flag as u8).wrapping_neg();
    (if_true & mask) | (if_false & !mask)
}

/// Overwrites a byte slice with zeros.
///
/// A best-effort scrub used by key types on drop. The write is routed through
/// [`std::ptr::write_volatile`]-equivalent semantics via `black_box` to deter
/// dead-store elimination.
pub fn zeroize(bytes: &mut [u8]) {
    for b in bytes.iter_mut() {
        *b = 0;
    }
    // Prevent the compiler from eliding the zeroing writes above.
    std::hint::black_box(&bytes);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_on_equal_inputs() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"a", b"a"));
        assert!(ct_eq(&[0u8; 64], &[0u8; 64]));
    }

    #[test]
    fn neq_on_different_lengths() {
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(!ct_eq(b"", b"x"));
    }

    #[test]
    fn neq_on_single_bit_difference() {
        let a = [0b1010_1010u8; 16];
        let mut b = a;
        b[15] ^= 1;
        assert!(!ct_eq(&a, &b));
        let mut c = a;
        c[0] ^= 0b1000_0000;
        assert!(!ct_eq(&a, &c));
    }

    #[test]
    fn select_picks_correct_value() {
        assert_eq!(ct_select_u8(true, 0xAA, 0x55), 0xAA);
        assert_eq!(ct_select_u8(false, 0xAA, 0x55), 0x55);
    }

    #[test]
    fn zeroize_clears_all_bytes() {
        let mut buf = [0xFFu8; 33];
        zeroize(&mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }
}
