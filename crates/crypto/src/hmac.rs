//! RFC 2104 HMAC with SHA-256.
//!
//! Used by [`crate::hkdf`] and [`crate::pbkdf2`], and available directly for
//! message authentication. Validated against the RFC 4231 test vectors.

use crate::constant_time::ct_eq;
use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// The HMAC-SHA-256 tag length in bytes.
pub const TAG_LEN: usize = DIGEST_LEN;

/// Incremental HMAC-SHA-256 computation.
///
/// # Example
///
/// ```
/// use enclaves_crypto::hmac::HmacSha256;
///
/// let mut mac = HmacSha256::new(b"key");
/// mac.update(b"message");
/// let tag = mac.finalize();
/// assert!(HmacSha256::verify(b"key", b"message", &tag));
/// ```
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl std::fmt::Debug for HmacSha256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HmacSha256").finish_non_exhaustive()
    }
}

impl HmacSha256 {
    /// Creates an HMAC context keyed with `key`.
    ///
    /// Keys longer than the SHA-256 block size are hashed first, per RFC
    /// 2104; any key length is accepted.
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        let mut padded = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = crate::sha256::sha256(key);
            padded[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            padded[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = padded[i] ^ 0x36;
            opad[i] = padded[i] ^ 0x5c;
        }

        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);

        crate::constant_time::zeroize(&mut padded);
        crate::constant_time::zeroize(&mut ipad);
        crate::constant_time::zeroize(&mut opad);

        HmacSha256 { inner, outer }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Completes the MAC and returns the 32-byte tag.
    #[must_use]
    pub fn finalize(mut self) -> [u8; TAG_LEN] {
        let inner_digest = self.inner.finalize();
        self.outer.update(&inner_digest);
        self.outer.finalize()
    }

    /// One-shot MAC of `message` under `key`.
    #[must_use]
    pub fn mac(key: &[u8], message: &[u8]) -> [u8; TAG_LEN] {
        let mut h = HmacSha256::new(key);
        h.update(message);
        h.finalize()
    }

    /// Verifies `tag` against the MAC of `message` under `key` in constant
    /// time. Accepts truncated tags of at least 16 bytes (RFC 2104 §5).
    #[must_use]
    pub fn verify(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
        if tag.len() < 16 || tag.len() > TAG_LEN {
            return false;
        }
        let full = Self::mac(key, message);
        ct_eq(&full[..tag.len()], tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        let tag = HmacSha256::mac(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2: short key "Jefe".
    #[test]
    fn rfc4231_case2() {
        let tag = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 0xaa*20 key, 0xdd*50 data.
    #[test]
    fn rfc4231_case3() {
        let tag = HmacSha256::mac(&[0xaa; 20], &[0xdd; 50]);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key longer than block size.
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaa; 131];
        let tag = HmacSha256::mac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    // RFC 4231 test case 7: long key and long data.
    #[test]
    fn rfc4231_case7() {
        let key = [0xaa; 131];
        let msg = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        let tag = HmacSha256::mac(&key, msg);
        assert_eq!(
            hex(&tag),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    // RFC 4231 test case 5: truncated tag verification.
    #[test]
    fn rfc4231_case5_truncated() {
        let key = [0x0c; 20];
        let expected = unhex("a3b6167473100ee06e0c796c2955552b");
        assert!(HmacSha256::verify(&key, b"Test With Truncation", &expected));
    }

    #[test]
    fn verify_rejects_wrong_tag() {
        let tag = HmacSha256::mac(b"k", b"m");
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!HmacSha256::verify(b"k", b"m", &bad));
        assert!(!HmacSha256::verify(b"k", b"m2", &tag));
        assert!(!HmacSha256::verify(b"k2", b"m", &tag));
    }

    #[test]
    fn verify_rejects_too_short_or_too_long_tags() {
        let tag = HmacSha256::mac(b"k", b"m");
        assert!(!HmacSha256::verify(b"k", b"m", &tag[..8]));
        let mut long = tag.to_vec();
        long.push(0);
        assert!(!HmacSha256::verify(b"k", b"m", &long));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut mac = HmacSha256::new(b"key");
        mac.update(b"hello ");
        mac.update(b"world");
        assert_eq!(mac.finalize(), HmacSha256::mac(b"key", b"hello world"));
    }
}
