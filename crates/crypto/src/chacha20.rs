//! RFC 8439 ChaCha20 stream cipher.
//!
//! The concrete cipher behind the paper's `{X}_K` encryption. Validated
//! against the RFC 8439 §2.3.2/§2.4.2 test vectors.

/// The ChaCha20 key length in bytes.
pub const KEY_LEN: usize = 32;

/// The ChaCha20 (IETF) nonce length in bytes.
pub const NONCE_LEN: usize = 12;

/// The ChaCha20 block length in bytes.
pub const BLOCK_LEN: usize = 64;

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn initial_state(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[i * 4],
            nonce[i * 4 + 1],
            nonce[i * 4 + 2],
            nonce[i * 4 + 3],
        ]);
    }
    state
}

/// Runs the 20 ChaCha rounds over `initial`, adds the initial state back
/// in, and serializes the keystream block into `out` (RFC 8439 §2.3).
#[inline]
fn permute_into(initial: &[u32; 16], out: &mut [u8; BLOCK_LEN]) {
    let mut state = *initial;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for i in 0..16 {
        let word = state[i].wrapping_add(initial[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
}

/// Computes one 64-byte ChaCha20 keystream block.
#[must_use]
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_LEN] {
    let initial = initial_state(key, counter, nonce);
    let mut out = [0u8; BLOCK_LEN];
    permute_into(&initial, &mut out);
    out
}

/// Keystream blocks generated per batch on the bulk path.
const BATCH: usize = 4;

/// Encrypts or decrypts `data` in place with the keystream starting at block
/// `counter` (the operation is its own inverse).
///
/// The 16-word initial state is built once — only word 12 (the block
/// counter) changes between blocks — and the bulk of the message is
/// processed four keystream blocks per loop iteration.
///
/// # Panics
///
/// Panics if the keystream would exceed the 32-bit block counter — i.e. if
/// `data` is longer than `(2^32 - counter) * 64` bytes. Messages in this
/// system are far below that limit.
pub fn xor_in_place(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN], data: &mut [u8]) {
    let blocks_needed = data.len().div_ceil(BLOCK_LEN) as u64;
    assert!(
        u64::from(counter) + blocks_needed <= (1u64 << 32),
        "chacha20 block counter overflow"
    );
    let mut state = initial_state(key, counter, nonce);
    let mut ctr = counter;

    let mut batches = data.chunks_exact_mut(BLOCK_LEN * BATCH);
    let mut keystream = [0u8; BLOCK_LEN * BATCH];
    for batch in &mut batches {
        for b in 0..BATCH {
            state[12] = ctr.wrapping_add(b as u32);
            let out: &mut [u8; BLOCK_LEN] = (&mut keystream[b * BLOCK_LEN..(b + 1) * BLOCK_LEN])
                .try_into()
                .expect("batch slot is one block");
            permute_into(&state, out);
        }
        ctr = ctr.wrapping_add(BATCH as u32);
        for (d, k) in batch.iter_mut().zip(keystream.iter()) {
            *d ^= k;
        }
    }

    let mut ks = [0u8; BLOCK_LEN];
    for chunk in batches.into_remainder().chunks_mut(BLOCK_LEN) {
        state[12] = ctr;
        ctr = ctr.wrapping_add(1);
        permute_into(&state, &mut ks);
        for (d, k) in chunk.iter_mut().zip(ks.iter()) {
            *d ^= k;
        }
    }
}

/// Encrypts `plaintext`, returning a fresh ciphertext vector.
#[must_use]
pub fn encrypt(
    key: &[u8; KEY_LEN],
    counter: u32,
    nonce: &[u8; NONCE_LEN],
    plaintext: &[u8],
) -> Vec<u8> {
    let mut out = plaintext.to_vec();
    xor_in_place(key, counter, nonce, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(super) fn unhex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn test_key() -> [u8; KEY_LEN] {
        let mut key = [0u8; KEY_LEN];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        key
    }

    // RFC 8439 §2.3.2: block function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let key = test_key();
        let nonce: [u8; NONCE_LEN] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let ks = block(&key, 1, &nonce);
        assert_eq!(
            ks.to_vec(),
            unhex(
                "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e
                 d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
            )
        );
    }

    // RFC 8439 §2.4.2: encryption test vector ("sunscreen" plaintext).
    #[test]
    fn rfc8439_encrypt_vector() {
        let key = test_key();
        let nonce: [u8; NONCE_LEN] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let ct = encrypt(&key, 1, &nonce, plaintext);
        assert_eq!(
            ct,
            unhex(
                "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b
                 f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8
                 07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736
                 5af90bbf74a35be6b40b8eedf2785e42874d"
            )
        );
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let key = test_key();
        let nonce = [7u8; NONCE_LEN];
        let msg = b"enclaves group management message".to_vec();
        let mut buf = msg.clone();
        xor_in_place(&key, 0, &nonce, &mut buf);
        assert_ne!(buf, msg);
        xor_in_place(&key, 0, &nonce, &mut buf);
        assert_eq!(buf, msg);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let key = test_key();
        let nonce = [3u8; NONCE_LEN];
        // Encrypting 130 bytes starting at counter 5 must equal blockwise
        // encryption with counters 5, 6, 7.
        let data = vec![0u8; 130];
        let full = encrypt(&key, 5, &nonce, &data);
        let mut manual = Vec::new();
        for (i, chunk) in data.chunks(BLOCK_LEN).enumerate() {
            let ks = block(&key, 5 + i as u32, &nonce);
            manual.extend(chunk.iter().zip(ks.iter()).map(|(d, k)| d ^ k));
        }
        assert_eq!(full, manual);
    }

    #[test]
    fn different_nonces_different_streams() {
        let key = test_key();
        let a = encrypt(&key, 0, &[0u8; NONCE_LEN], &[0u8; 64]);
        let b = encrypt(&key, 0, &[1u8; NONCE_LEN], &[0u8; 64]);
        assert_ne!(a, b);
    }

    #[test]
    fn empty_plaintext_ok() {
        let key = test_key();
        assert!(encrypt(&key, 0, &[0u8; NONCE_LEN], &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "counter overflow")]
    fn counter_overflow_panics() {
        let key = test_key();
        let nonce = [0u8; NONCE_LEN];
        let mut data = vec![0u8; 65];
        // Starting at u32::MAX, a 2-block message overflows.
        xor_in_place(&key, u32::MAX, &nonce, &mut data);
    }
}

#[cfg(test)]
mod multiblock_vectors {
    //! Multi-block keystream vectors locking in the batched
    //! (four-blocks-per-iteration, hoisted-initial-state) refactor of
    //! [`xor_in_place`].
    //!
    //! Inputs for the first vector follow RFC 8439 A.2 #2 (key
    //! `00..0001`, nonce `00..0002`, initial counter 1); the expected
    //! ciphertexts were produced by the scalar one-block-at-a-time
    //! implementation that the RFC 8439 §2.3.2/§2.4.2 vectors validate.
    //! Each vector exercises a shape the batched path must get right:
    //! a 4-block batch plus a partial tail, an exact block multiple with
    //! a counter near wrap, and a tail that is itself several blocks.

    use super::tests::unhex;
    use super::*;

    /// 375 bytes (5 full blocks + 55-byte tail), counter 1.
    #[test]
    fn vector_a_375_bytes_counter_1() {
        let mut key = [0u8; KEY_LEN];
        key[31] = 0x01;
        let mut nonce = [0u8; NONCE_LEN];
        nonce[11] = 0x02;
        let pt: Vec<u8> = (0..375u32).map(|i| (i % 251) as u8).collect();
        assert_eq!(
            encrypt(&key, 1, &nonce, &pt),
            unhex(
                "e2948b5e848a4bb42e4d15c05de15d0b3e513be43e7a08efc0a0166f39102e9d
                 6ed3d288952e2f4688bfd95fb4902a5857cdd1911cf0d5ce01ab2b8117e9775b
                 6362d60daec78adc70229ecfcabd65335097dbfa29adb896be2b1b391b4a7349
                 0295f66072cfa10708039d3011ea5b537707377418909213a16b174495baf656
                 24ef72af046f9a237e8640eacf3c3380a6b233909919f056a7b95e0cdf2bc376
                 447c145c7141ea7fd4203b7ca4a833ee20ed93f133b0991046ade11c4b6b3de6
                 add42f0ec96cdd6cd31792e5767788b40a72822d95a085cfa37e314794143d93
                 5faf2c08b8f14aa2abba360a5e1b6f1e352ad700e20d232a29bb7c9c7cdf2d61
                 b2e939e60c3379b70c215a5cfc73ecbdf0d2ff57e8da07bc855e279b19df111b
                 0a3d840e98f77aaf23b25da9958d5635fff8a57b95e5fbce4b67af92b5add6c3
                 a9e1ff7ff995bd495e18e00c818bffbf389cbab3f890c8729d4662d502f2d7e3
                 3fd712d3966d6ab7448d602625f57decc2f892707bfc35"
            )
        );
    }

    /// 192 bytes (exactly 3 blocks), counter 0xfffffffd — the last legal
    /// starting point before the 32-bit block counter would overflow.
    #[test]
    fn vector_b_exact_blocks_near_counter_wrap() {
        let key: [u8; KEY_LEN] =
            core::array::from_fn(|i| (i as u8).wrapping_mul(7).wrapping_add(3));
        let nonce: [u8; NONCE_LEN] = core::array::from_fn(|i| 0xa0 + i as u8);
        let pt: Vec<u8> = (0..192u32).map(|i| (i as u8).wrapping_mul(13)).collect();
        assert_eq!(
            encrypt(&key, 0xffff_fffd, &nonce, &pt),
            unhex(
                "fc954c8f04173d5b544f8b48ce58d11b727f6e66edccbe985b15e86aedf36dc6
                 2165b4ccbf14f1f7dac6bcecc1116234a9f1214f870c352042e4ea94616de63e
                 be75a9b2b62f4bae17aa1cd2e3e648cd23db230b4227dfc82e436fe7f6d0dad0
                 53d3dccfc8ae3e818bdd4aa43df0e992a7cdd54139d5656f7ac36c9bda6f3283
                 587a42571b29b61272091a76bfea5548c48f742c916427951056d7b57ea8f54c
                 137a360eddb2c5132be564c0f38d3221fecfb0609782d1e5021e08a915a8728a"
            )
        );
    }

    /// 260 bytes (one 4-block batch + 4-byte tail), counter 5.
    #[test]
    fn vector_c_crosses_batch_boundary() {
        let key = [0x42u8; KEY_LEN];
        let nonce = [0x24u8; NONCE_LEN];
        let pt: Vec<u8> = (0..260u32).map(|i| (i % 256) as u8).collect();
        assert_eq!(
            encrypt(&key, 5, &nonce, &pt),
            unhex(
                "d0a3dfeb2a9e8d9ba8403e9557d82559eeeefbeb7ebaf763d45b6791fba826ea
                 dd22a787e9812abb4da92a5b2c883178a6550fac755dbf61c09e2596042b10be
                 ecc5b8f230ab72a16b2bbf1400076aa569375cd9f4c7d90f89bb54f1823cdd53
                 d59a987e9adeed474ac87dc49433ef9a4ef6ba4a9fee16b678c847feb9f2c1f4
                 02b90e4e74f709f3adfd9e470f661cde06b9920843580e4015b64eb000209ce1
                 1f2875bd985371ba152a60543dc1904ea9b4bbc98245bfda52e55c28d0482e5b
                 98e2a560e15c747ca4b966c46c0e37017a551f31ac2b01abcf45528bdbae8d6c
                 8524fda4818fde01af63853664f0d4ec86b3db92e9a3acd1fc5f67ba40c2e521
                 f878ff2f"
            )
        );
    }

    /// The batched bulk path must agree byte-for-byte with the scalar
    /// [`block`] primitive (which the RFC vectors pin down) for every
    /// length around the block and batch boundaries and for counters
    /// around zero and the batch stride.
    #[test]
    fn batched_path_matches_scalar_blocks_exhaustively() {
        let key: [u8; KEY_LEN] = core::array::from_fn(|i| i as u8 ^ 0x5a);
        let nonce: [u8; NONCE_LEN] = core::array::from_fn(|i| 0x10 + i as u8);
        for counter in [0u32, 1, 3, 4, 5, 1000] {
            for len in [
                0usize, 1, 63, 64, 65, 127, 128, 129, 191, 192, 193, 255, 256, 257, 319, 320, 511,
                512, 513,
            ] {
                let data: Vec<u8> = (0..len).map(|i| (i * 31 % 256) as u8).collect();
                let mut fast = data.clone();
                xor_in_place(&key, counter, &nonce, &mut fast);
                let mut slow = data;
                for (i, chunk) in slow.chunks_mut(BLOCK_LEN).enumerate() {
                    let ks = block(&key, counter + i as u32, &nonce);
                    for (d, k) in chunk.iter_mut().zip(ks.iter()) {
                        *d ^= k;
                    }
                }
                assert_eq!(fast, slow, "counter={counter} len={len}");
            }
        }
    }
}
