//! RFC 8439 ChaCha20 stream cipher.
//!
//! The concrete cipher behind the paper's `{X}_K` encryption. Validated
//! against the RFC 8439 §2.3.2/§2.4.2 test vectors.

/// The ChaCha20 key length in bytes.
pub const KEY_LEN: usize = 32;

/// The ChaCha20 (IETF) nonce length in bytes.
pub const NONCE_LEN: usize = 12;

/// The ChaCha20 block length in bytes.
pub const BLOCK_LEN: usize = 64;

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn initial_state(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes([
            key[i * 4],
            key[i * 4 + 1],
            key[i * 4 + 2],
            key[i * 4 + 3],
        ]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[i * 4],
            nonce[i * 4 + 1],
            nonce[i * 4 + 2],
            nonce[i * 4 + 3],
        ]);
    }
    state
}

/// Computes one 64-byte ChaCha20 keystream block.
#[must_use]
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_LEN] {
    let initial = initial_state(key, counter, nonce);
    let mut state = initial;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        let word = state[i].wrapping_add(initial[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Encrypts or decrypts `data` in place with the keystream starting at block
/// `counter` (the operation is its own inverse).
///
/// # Panics
///
/// Panics if the keystream would exceed the 32-bit block counter — i.e. if
/// `data` is longer than `(2^32 - counter) * 64` bytes. Messages in this
/// system are far below that limit.
pub fn xor_in_place(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN], data: &mut [u8]) {
    let blocks_needed = data.len().div_ceil(BLOCK_LEN) as u64;
    assert!(
        u64::from(counter) + blocks_needed <= (1u64 << 32),
        "chacha20 block counter overflow"
    );
    for (i, chunk) in data.chunks_mut(BLOCK_LEN).enumerate() {
        let ks = block(key, counter.wrapping_add(i as u32), nonce);
        for (d, k) in chunk.iter_mut().zip(ks.iter()) {
            *d ^= k;
        }
    }
}

/// Encrypts `plaintext`, returning a fresh ciphertext vector.
#[must_use]
pub fn encrypt(
    key: &[u8; KEY_LEN],
    counter: u32,
    nonce: &[u8; NONCE_LEN],
    plaintext: &[u8],
) -> Vec<u8> {
    let mut out = plaintext.to_vec();
    xor_in_place(key, counter, nonce, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn test_key() -> [u8; KEY_LEN] {
        let mut key = [0u8; KEY_LEN];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        key
    }

    // RFC 8439 §2.3.2: block function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let key = test_key();
        let nonce: [u8; NONCE_LEN] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let ks = block(&key, 1, &nonce);
        assert_eq!(
            ks.to_vec(),
            unhex(
                "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e
                 d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
            )
        );
    }

    // RFC 8439 §2.4.2: encryption test vector ("sunscreen" plaintext).
    #[test]
    fn rfc8439_encrypt_vector() {
        let key = test_key();
        let nonce: [u8; NONCE_LEN] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let ct = encrypt(&key, 1, &nonce, plaintext);
        assert_eq!(
            ct,
            unhex(
                "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b
                 f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8
                 07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736
                 5af90bbf74a35be6b40b8eedf2785e42874d"
            )
        );
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let key = test_key();
        let nonce = [7u8; NONCE_LEN];
        let msg = b"enclaves group management message".to_vec();
        let mut buf = msg.clone();
        xor_in_place(&key, 0, &nonce, &mut buf);
        assert_ne!(buf, msg);
        xor_in_place(&key, 0, &nonce, &mut buf);
        assert_eq!(buf, msg);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let key = test_key();
        let nonce = [3u8; NONCE_LEN];
        // Encrypting 130 bytes starting at counter 5 must equal blockwise
        // encryption with counters 5, 6, 7.
        let data = vec![0u8; 130];
        let full = encrypt(&key, 5, &nonce, &data);
        let mut manual = Vec::new();
        for (i, chunk) in data.chunks(BLOCK_LEN).enumerate() {
            let ks = block(&key, 5 + i as u32, &nonce);
            manual.extend(chunk.iter().zip(ks.iter()).map(|(d, k)| d ^ k));
        }
        assert_eq!(full, manual);
    }

    #[test]
    fn different_nonces_different_streams() {
        let key = test_key();
        let a = encrypt(&key, 0, &[0u8; NONCE_LEN], &[0u8; 64]);
        let b = encrypt(&key, 0, &[1u8; NONCE_LEN], &[0u8; 64]);
        assert_ne!(a, b);
    }

    #[test]
    fn empty_plaintext_ok() {
        let key = test_key();
        assert!(encrypt(&key, 0, &[0u8; NONCE_LEN], &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "counter overflow")]
    fn counter_overflow_panics() {
        let key = test_key();
        let nonce = [0u8; NONCE_LEN];
        let mut data = vec![0u8; 65];
        // Starting at u32::MAX, a 2-block message overflows.
        xor_in_place(&key, u32::MAX, &nonce, &mut data);
    }
}
