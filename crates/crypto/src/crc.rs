//! CRC-32 (IEEE 802.3, reflected) for journal record framing.
//!
//! The journal's integrity guarantee rests on the AEAD layer; the CRC is a
//! *fast-fail* check over the record plaintext that is also bound into the
//! record's AAD. It lets the reader distinguish "disk handed back garbage"
//! from "record deliberately tampered with" cheaply, and gives torn-tail
//! detection a second signal beyond a short read. Implemented from scratch
//! (table-driven, compile-time table) to avoid a dependency.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Computes the CRC-32 (IEEE) checksum of `data`.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        let idx = ((crc ^ u32::from(byte)) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flips_change_checksum() {
        let data = b"journal record plaintext".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn incremental_inputs_distinct() {
        assert_ne!(crc32(b"ab"), crc32(b"ba"));
        assert_ne!(crc32(b"abc"), crc32(b"abcd"));
    }
}
