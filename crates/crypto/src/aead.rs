//! RFC 8439 ChaCha20-Poly1305 authenticated encryption.
//!
//! This is the concrete realization of the paper's `{X}_K`: encryption that
//! also guarantees integrity and key-binding, so a recipient detects any
//! tampering or any ciphertext produced under a different key. Validated
//! against the RFC 8439 §2.8.2 test vector.

use crate::chacha20::{self, KEY_LEN, NONCE_LEN};
use crate::constant_time::ct_eq;
use crate::nonce::AeadNonce;
use crate::poly1305::{Poly1305, TAG_LEN};
use crate::CryptoError;

/// A ChaCha20-Poly1305 AEAD cipher bound to one 256-bit key.
///
/// # Example
///
/// ```
/// use enclaves_crypto::aead::ChaCha20Poly1305;
/// use enclaves_crypto::nonce::AeadNonce;
///
/// # fn main() -> Result<(), enclaves_crypto::CryptoError> {
/// let cipher = ChaCha20Poly1305::new(&[0x42; 32]);
/// let nonce = AeadNonce::from_bytes([0; 12]);
/// let ct = cipher.seal(&nonce, b"AdminMsg", b"L->A");
/// assert_eq!(cipher.open(&nonce, &ct, b"L->A")?, b"AdminMsg");
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct ChaCha20Poly1305 {
    key: [u8; KEY_LEN],
}

impl std::fmt::Debug for ChaCha20Poly1305 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaCha20Poly1305").finish_non_exhaustive()
    }
}

impl Drop for ChaCha20Poly1305 {
    fn drop(&mut self) {
        crate::constant_time::zeroize(&mut self.key);
    }
}

impl ChaCha20Poly1305 {
    /// Creates a cipher from a 256-bit key.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        ChaCha20Poly1305 { key: *key }
    }

    /// Derives the one-time Poly1305 key for `nonce` (RFC 8439 §2.6).
    fn poly_key(&self, nonce: &[u8; NONCE_LEN]) -> [u8; 32] {
        let block = chacha20::block(&self.key, 0, nonce);
        let mut pk = [0u8; 32];
        pk.copy_from_slice(&block[..32]);
        pk
    }

    fn compute_tag(&self, nonce: &[u8; NONCE_LEN], ciphertext: &[u8], aad: &[u8]) -> [u8; TAG_LEN] {
        let poly_key = self.poly_key(nonce);
        let mut mac = Poly1305::new(&poly_key);
        mac.update(aad);
        mac.update(zero_pad(aad.len()));
        mac.update(ciphertext);
        mac.update(zero_pad(ciphertext.len()));
        mac.update(&(aad.len() as u64).to_le_bytes());
        mac.update(&(ciphertext.len() as u64).to_le_bytes());
        mac.finalize()
    }

    /// Encrypts `plaintext` bound to `aad`, returning `ciphertext || tag`.
    #[must_use]
    pub fn seal(&self, nonce: &AeadNonce, plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.seal_into(nonce, plaintext, aad, &mut out);
        out
    }

    /// [`seal`](Self::seal) into a caller-supplied buffer, reusing its
    /// allocation. The buffer is cleared first; on return it holds
    /// exactly `ciphertext || tag`.
    pub fn seal_into(&self, nonce: &AeadNonce, plaintext: &[u8], aad: &[u8], out: &mut Vec<u8>) {
        let n = nonce.as_bytes();
        out.clear();
        out.reserve(plaintext.len() + TAG_LEN);
        out.extend_from_slice(plaintext);
        chacha20::xor_in_place(&self.key, 1, n, out);
        let tag = self.compute_tag(n, out, aad);
        out.extend_from_slice(&tag);
    }

    /// Decrypts `sealed` (as produced by [`seal`](Self::seal)) bound to
    /// `aad`, returning the plaintext.
    ///
    /// # Errors
    ///
    /// * [`CryptoError::TruncatedCiphertext`] if `sealed` is shorter than a
    ///   tag.
    /// * [`CryptoError::TagMismatch`] if authentication fails — wrong key,
    ///   wrong nonce, wrong AAD, or tampered ciphertext. No plaintext is
    ///   released in that case.
    pub fn open(
        &self,
        nonce: &AeadNonce,
        sealed: &[u8],
        aad: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        let mut out = Vec::new();
        self.open_into(nonce, sealed, aad, &mut out)?;
        Ok(out)
    }

    /// [`open`](Self::open) into a caller-supplied buffer, reusing its
    /// allocation. The buffer is cleared first; on success it holds
    /// exactly the plaintext, and on failure it is left empty.
    ///
    /// # Errors
    ///
    /// Same contract as [`open`](Self::open): no plaintext is released on
    /// authentication failure.
    pub fn open_into(
        &self,
        nonce: &AeadNonce,
        sealed: &[u8],
        aad: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), CryptoError> {
        out.clear();
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::TruncatedCiphertext);
        }
        let n = nonce.as_bytes();
        let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let expected = self.compute_tag(n, ciphertext, aad);
        if !ct_eq(&expected, tag) {
            return Err(CryptoError::TagMismatch);
        }
        out.extend_from_slice(ciphertext);
        chacha20::xor_in_place(&self.key, 1, n, out);
        Ok(())
    }
}

/// Returns the RFC 8439 pad: zeros to the next 16-byte boundary.
fn zero_pad(len: usize) -> &'static [u8] {
    const ZEROS: [u8; 16] = [0; 16];
    &ZEROS[..(16 - (len % 16)) % 16]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 8439 §2.8.2 AEAD test vector.
    #[test]
    fn rfc8439_aead_vector() {
        let key: [u8; 32] =
            unhex("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
                .try_into()
                .unwrap();
        let nonce = AeadNonce::from_bytes(unhex("070000004041424344454647").try_into().unwrap());
        let aad = unhex("50515253c0c1c2c3c4c5c6c7");
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";

        let cipher = ChaCha20Poly1305::new(&key);
        let sealed = cipher.seal(&nonce, plaintext, &aad);

        let expected_ct = unhex(
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6
             3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36
             92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc
             3ff4def08e4b7a9de576d26586cec64b6116",
        );
        let expected_tag = unhex("1ae10b594f09e26a7e902ecbd0600691");

        assert_eq!(&sealed[..expected_ct.len()], &expected_ct[..]);
        assert_eq!(&sealed[expected_ct.len()..], &expected_tag[..]);

        let opened = cipher.open(&nonce, &sealed, &aad).unwrap();
        assert_eq!(opened, plaintext);
    }

    #[test]
    fn open_rejects_tampered_ciphertext() {
        let cipher = ChaCha20Poly1305::new(&[1; 32]);
        let nonce = AeadNonce::from_bytes([2; 12]);
        let mut sealed = cipher.seal(&nonce, b"payload", b"aad");
        sealed[0] ^= 1;
        assert_eq!(
            cipher.open(&nonce, &sealed, b"aad"),
            Err(CryptoError::TagMismatch)
        );
    }

    #[test]
    fn open_rejects_tampered_tag() {
        let cipher = ChaCha20Poly1305::new(&[1; 32]);
        let nonce = AeadNonce::from_bytes([2; 12]);
        let mut sealed = cipher.seal(&nonce, b"payload", b"aad");
        let last = sealed.len() - 1;
        sealed[last] ^= 0x80;
        assert_eq!(
            cipher.open(&nonce, &sealed, b"aad"),
            Err(CryptoError::TagMismatch)
        );
    }

    #[test]
    fn open_rejects_wrong_aad() {
        let cipher = ChaCha20Poly1305::new(&[1; 32]);
        let nonce = AeadNonce::from_bytes([2; 12]);
        let sealed = cipher.seal(&nonce, b"payload", b"aad-1");
        assert_eq!(
            cipher.open(&nonce, &sealed, b"aad-2"),
            Err(CryptoError::TagMismatch)
        );
    }

    #[test]
    fn open_rejects_wrong_key_and_nonce() {
        let c1 = ChaCha20Poly1305::new(&[1; 32]);
        let c2 = ChaCha20Poly1305::new(&[2; 32]);
        let n1 = AeadNonce::from_bytes([0; 12]);
        let n2 = AeadNonce::from_bytes([1; 12]);
        let sealed = c1.seal(&n1, b"x", b"");
        assert!(c2.open(&n1, &sealed, b"").is_err());
        assert!(c1.open(&n2, &sealed, b"").is_err());
    }

    #[test]
    fn open_rejects_truncation() {
        let cipher = ChaCha20Poly1305::new(&[1; 32]);
        let nonce = AeadNonce::from_bytes([2; 12]);
        assert_eq!(
            cipher.open(&nonce, &[0u8; 15], b""),
            Err(CryptoError::TruncatedCiphertext)
        );
        // Exactly a tag with no ciphertext is structurally valid input and
        // must decrypt an empty message only under the right tag.
        let sealed = cipher.seal(&nonce, b"", b"");
        assert_eq!(sealed.len(), TAG_LEN);
        assert_eq!(cipher.open(&nonce, &sealed, b"").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn roundtrip_various_lengths() {
        let cipher = ChaCha20Poly1305::new(&[9; 32]);
        for len in [0usize, 1, 15, 16, 17, 63, 64, 65, 255, 1024] {
            let pt: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let nonce = AeadNonce::from_bytes([len as u8; 12]);
            let sealed = cipher.seal(&nonce, &pt, b"hdr");
            assert_eq!(cipher.open(&nonce, &sealed, b"hdr").unwrap(), pt);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn seal_open_roundtrip(
            key in proptest::array::uniform32(any::<u8>()),
            nonce in proptest::array::uniform12(any::<u8>()),
            pt in proptest::collection::vec(any::<u8>(), 0..512),
            aad in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let cipher = ChaCha20Poly1305::new(&key);
            let n = AeadNonce::from_bytes(nonce);
            let sealed = cipher.seal(&n, &pt, &aad);
            prop_assert_eq!(sealed.len(), pt.len() + TAG_LEN);
            prop_assert_eq!(cipher.open(&n, &sealed, &aad).unwrap(), pt);
        }

        #[test]
        fn any_bitflip_is_rejected(
            key in proptest::array::uniform32(any::<u8>()),
            pt in proptest::collection::vec(any::<u8>(), 1..128),
            flip_byte in 0usize..128,
            flip_bit in 0u8..8,
        ) {
            let cipher = ChaCha20Poly1305::new(&key);
            let n = AeadNonce::from_bytes([0; 12]);
            let mut sealed = cipher.seal(&n, &pt, b"");
            let idx = flip_byte % sealed.len();
            sealed[idx] ^= 1 << flip_bit;
            prop_assert!(cipher.open(&n, &sealed, b"").is_err());
        }
    }
}
