//! RFC 7748 X25519 Diffie-Hellman.
//!
//! The paper notes that "authentication using public-key cryptography is
//! also possible, but is not currently implemented" (footnote 1). This
//! module supplies the primitive for that variant: each participant holds
//! a static X25519 key pair, and the long-term key `P_a` is derived from
//! the static-static shared secret instead of a password (see
//! [`derive_long_term_key`]).
//!
//! Field arithmetic uses five 51-bit limbs with `u128` intermediate
//! products; the ladder is the constant-time Montgomery ladder of RFC
//! 7748 §5. Validated against the RFC test vectors, including the
//! 1 000-iteration vector.

use crate::hkdf;
use crate::keys::LongTermKey;
use crate::rng::CryptoRng;
use crate::CryptoError;

/// Length of X25519 scalars and field elements in bytes.
pub const KEY_LEN: usize = 32;

const MASK51: u64 = (1 << 51) - 1;

/// A field element mod `2^255 - 19`, five 51-bit limbs.
#[derive(Clone, Copy)]
struct Fe([u64; 5]);

impl Fe {
    const ZERO: Fe = Fe([0; 5]);
    const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load = |i: usize| -> u64 {
            let mut out = 0u64;
            for j in 0..8 {
                out |= u64::from(bytes[i + j]) << (8 * j);
            }
            out
        };
        // Load 51 bits at a time from the little-endian byte string; the
        // top bit (bit 255) is masked off per RFC 7748.
        Fe([
            load(0) & MASK51,
            (load(6) >> 3) & MASK51,
            (load(12) >> 6) & MASK51,
            (load(19) >> 1) & MASK51,
            (load(24) >> 12) & MASK51,
        ])
    }

    /// Fully reduces and serializes.
    fn to_bytes(self) -> [u8; 32] {
        let mut h = self.0;
        // Two carry passes bring every limb below 2^52.
        for _ in 0..2 {
            let mut c;
            c = h[0] >> 51;
            h[0] &= MASK51;
            h[1] += c;
            c = h[1] >> 51;
            h[1] &= MASK51;
            h[2] += c;
            c = h[2] >> 51;
            h[2] &= MASK51;
            h[3] += c;
            c = h[3] >> 51;
            h[3] &= MASK51;
            h[4] += c;
            c = h[4] >> 51;
            h[4] &= MASK51;
            h[0] += 19 * c;
        }
        // Canonical reduction: compute h + 19, and if that overflows
        // 2^255 then h >= p, so subtract p (i.e. keep h + 19 - 2^255).
        let mut q = (h[0] + 19) >> 51;
        q = (h[1] + q) >> 51;
        q = (h[2] + q) >> 51;
        q = (h[3] + q) >> 51;
        q = (h[4] + q) >> 51;
        h[0] += 19 * q;
        let mut c;
        c = h[0] >> 51;
        h[0] &= MASK51;
        h[1] += c;
        c = h[1] >> 51;
        h[1] &= MASK51;
        h[2] += c;
        c = h[2] >> 51;
        h[2] &= MASK51;
        h[3] += c;
        c = h[3] >> 51;
        h[3] &= MASK51;
        h[4] += c;
        h[4] &= MASK51; // drop the 2^255 bit

        let mut out = [0u8; 32];
        let write = |out: &mut [u8; 32], bit_offset: usize, v: u64| {
            for j in 0..8 {
                let byte = bit_offset / 8 + j;
                if byte < 32 {
                    out[byte] |= ((v << (bit_offset % 8)) >> (8 * j)) as u8;
                }
            }
        };
        write(&mut out, 0, h[0]);
        write(&mut out, 51, h[1]);
        write(&mut out, 102, h[2]);
        write(&mut out, 153, h[3]);
        write(&mut out, 204, h[4]);
        out
    }

    fn add(self, other: Fe) -> Fe {
        let a = self.0;
        let b = other.0;
        Fe([
            a[0] + b[0],
            a[1] + b[1],
            a[2] + b[2],
            a[3] + b[3],
            a[4] + b[4],
        ])
    }

    /// `self - other`, biased by `2p` to avoid underflow.
    fn sub(self, other: Fe) -> Fe {
        const TWO_P0: u64 = 0x000F_FFFF_FFFF_FFDA; // 2 * (2^51 - 19)
        const TWO_P1234: u64 = 0x000F_FFFF_FFFF_FFFE; // 2 * (2^51 - 1)
        let a = self.0;
        let b = other.0;
        Fe([
            a[0] + TWO_P0 - b[0],
            a[1] + TWO_P1234 - b[1],
            a[2] + TWO_P1234 - b[2],
            a[3] + TWO_P1234 - b[3],
            a[4] + TWO_P1234 - b[4],
        ])
    }

    fn mul(self, other: Fe) -> Fe {
        let [a0, a1, a2, a3, a4] = self.0.map(u128::from);
        let [b0, b1, b2, b3, b4] = other.0.map(u128::from);

        let r0 = a0 * b0 + 19 * (a1 * b4 + a2 * b3 + a3 * b2 + a4 * b1);
        let r1 = a0 * b1 + a1 * b0 + 19 * (a2 * b4 + a3 * b3 + a4 * b2);
        let r2 = a0 * b2 + a1 * b1 + a2 * b0 + 19 * (a3 * b4 + a4 * b3);
        let r3 = a0 * b3 + a1 * b2 + a2 * b1 + a3 * b0 + 19 * (a4 * b4);
        let r4 = a0 * b4 + a1 * b3 + a2 * b2 + a3 * b1 + a4 * b0;

        Self::carry([r0, r1, r2, r3, r4])
    }

    fn square(self) -> Fe {
        self.mul(self)
    }

    fn mul_small(self, scalar: u64) -> Fe {
        let s = u128::from(scalar);
        let r = self.0.map(|limb| u128::from(limb) * s);
        Self::carry(r)
    }

    fn carry(mut r: [u128; 5]) -> Fe {
        let mut c: u128;
        c = r[0] >> 51;
        r[0] &= u128::from(MASK51);
        r[1] += c;
        c = r[1] >> 51;
        r[1] &= u128::from(MASK51);
        r[2] += c;
        c = r[2] >> 51;
        r[2] &= u128::from(MASK51);
        r[3] += c;
        c = r[3] >> 51;
        r[3] &= u128::from(MASK51);
        r[4] += c;
        c = r[4] >> 51;
        r[4] &= u128::from(MASK51);
        r[0] += 19 * c;
        c = r[0] >> 51;
        r[0] &= u128::from(MASK51);
        r[1] += c;
        Fe([
            r[0] as u64,
            r[1] as u64,
            r[2] as u64,
            r[3] as u64,
            r[4] as u64,
        ])
    }

    /// `self^(p-2)`: the inverse, via the standard curve25519 addition
    /// chain.
    fn invert(self) -> Fe {
        let z = self;
        let z2 = z.square(); // 2
        let z4 = z2.square(); // 4
        let z8 = z4.square(); // 8
        let z9 = z8.mul(z); // 9
        let z11 = z9.mul(z2); // 11
        let z22 = z11.square(); // 22
        let z_5_0 = z22.mul(z9); // 2^5 - 2^0 = 31
        let mut t = z_5_0;
        for _ in 0..5 {
            t = t.square();
        }
        let z_10_0 = t.mul(z_5_0); // 2^10 - 2^0
        t = z_10_0;
        for _ in 0..10 {
            t = t.square();
        }
        let z_20_0 = t.mul(z_10_0); // 2^20 - 2^0
        t = z_20_0;
        for _ in 0..20 {
            t = t.square();
        }
        let z_40_0 = t.mul(z_20_0); // 2^40 - 2^0
        t = z_40_0;
        for _ in 0..10 {
            t = t.square();
        }
        let z_50_0 = t.mul(z_10_0); // 2^50 - 2^0
        t = z_50_0;
        for _ in 0..50 {
            t = t.square();
        }
        let z_100_0 = t.mul(z_50_0); // 2^100 - 2^0
        t = z_100_0;
        for _ in 0..100 {
            t = t.square();
        }
        let z_200_0 = t.mul(z_100_0); // 2^200 - 2^0
        t = z_200_0;
        for _ in 0..50 {
            t = t.square();
        }
        let z_250_0 = t.mul(z_50_0); // 2^250 - 2^0
        t = z_250_0;
        for _ in 0..5 {
            t = t.square();
        }
        t.mul(z11) // 2^255 - 21 = p - 2
    }

    /// Constant-time conditional swap.
    fn cswap(swap: u64, a: &mut Fe, b: &mut Fe) {
        let mask = swap.wrapping_neg();
        for i in 0..5 {
            let t = mask & (a.0[i] ^ b.0[i]);
            a.0[i] ^= t;
            b.0[i] ^= t;
        }
    }
}

/// Clamps a scalar per RFC 7748 §5.
fn clamp(mut k: [u8; 32]) -> [u8; 32] {
    k[0] &= 248;
    k[31] &= 127;
    k[31] |= 64;
    k
}

/// X25519 scalar multiplication: `scalar · u`.
#[must_use]
pub fn x25519(scalar: &[u8; 32], u: &[u8; 32]) -> [u8; 32] {
    let k = clamp(*scalar);
    let x1 = Fe::from_bytes(u);
    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = 0u64;

    for t in (0..255).rev() {
        let k_t = u64::from((k[t >> 3] >> (t & 7)) & 1);
        swap ^= k_t;
        Fe::cswap(swap, &mut x2, &mut x3);
        Fe::cswap(swap, &mut z2, &mut z3);
        swap = k_t;

        let a = x2.add(z2);
        let aa = a.square();
        let b = x2.sub(z2);
        let bb = b.square();
        let e = aa.sub(bb);
        let c = x3.add(z3);
        let d = x3.sub(z3);
        let da = d.mul(a);
        let cb = c.mul(b);
        x3 = da.add(cb).square();
        z3 = x1.mul(da.sub(cb).square());
        x2 = aa.mul(bb);
        z2 = e.mul(aa.add(e.mul_small(121_665)));
    }
    Fe::cswap(swap, &mut x2, &mut x3);
    Fe::cswap(swap, &mut z2, &mut z3);

    x2.mul(z2.invert()).to_bytes()
}

/// The X25519 base point (u = 9).
pub const BASE_POINT: [u8; 32] = {
    let mut b = [0u8; 32];
    b[0] = 9;
    b
};

/// Scalar multiplication by the base point (public-key derivation).
#[must_use]
pub fn x25519_base(scalar: &[u8; 32]) -> [u8; 32] {
    x25519(scalar, &BASE_POINT)
}

/// A static X25519 secret key.
pub struct StaticSecret([u8; 32]);

impl StaticSecret {
    /// Generates a fresh secret.
    #[must_use]
    pub fn generate<R: CryptoRng + ?Sized>(rng: &mut R) -> Self {
        let mut k = [0u8; 32];
        rng.fill_bytes(&mut k);
        StaticSecret(k)
    }

    /// Wraps existing secret bytes (clamped on use, per RFC 7748).
    #[must_use]
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        StaticSecret(bytes)
    }

    /// The corresponding public key.
    #[must_use]
    pub fn public_key(&self) -> PublicKey {
        PublicKey(x25519_base(&self.0))
    }

    /// The raw Diffie-Hellman shared secret with a peer's public key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] if the shared secret is
    /// all-zero (the peer supplied a low-order point), per RFC 7748 §6.1's
    /// check.
    pub fn diffie_hellman(&self, their_public: &PublicKey) -> Result<[u8; 32], CryptoError> {
        let shared = x25519(&self.0, &their_public.0);
        if shared.iter().all(|&b| b == 0) {
            return Err(CryptoError::InvalidLength {
                what: "x25519 shared secret (low-order public key)",
                expected: 32,
                actual: 0,
            });
        }
        Ok(shared)
    }
}

impl Drop for StaticSecret {
    fn drop(&mut self) {
        crate::constant_time::zeroize(&mut self.0);
    }
}

impl std::fmt::Debug for StaticSecret {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StaticSecret").finish_non_exhaustive()
    }
}

/// A static X25519 public key.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct PublicKey([u8; 32]);

impl PublicKey {
    /// Wraps public-key bytes.
    #[must_use]
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        PublicKey(bytes)
    }

    /// The raw bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl std::fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PublicKey({:02x}{:02x}{:02x}{:02x}..)",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

/// Derives the Enclaves long-term key `P_a` from a static-static
/// Diffie-Hellman exchange between a user and the leader — the paper's
/// footnote-1 "public-key authentication" variant. Both sides compute the
/// same key; the protocol above this layer is unchanged.
///
/// The HKDF info string binds both identities, so the same key pair used
/// with a different leader (or impersonating a different user) yields an
/// unrelated `P_a`.
///
/// # Errors
///
/// Propagates the low-order-point check from
/// [`StaticSecret::diffie_hellman`].
pub fn derive_long_term_key(
    my_secret: &StaticSecret,
    their_public: &PublicKey,
    user_id: &str,
    leader_id: &str,
) -> Result<LongTermKey, CryptoError> {
    let shared = my_secret.diffie_hellman(their_public)?;
    let info = format!("enclaves-pk-auth:{user_id}:{leader_id}");
    let mut key = [0u8; 32];
    hkdf::derive(b"enclaves-x25519", &shared, info.as_bytes(), &mut key)?;
    Ok(LongTermKey::from_bytes(key))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    fn unhex(s: &str) -> [u8; 32] {
        let v: Vec<u8> = (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect();
        v.try_into().unwrap()
    }

    // RFC 7748 §5.2, first test vector.
    #[test]
    fn rfc7748_vector_1() {
        let scalar = unhex("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let u = unhex("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        let expect = unhex("c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
        assert_eq!(x25519(&scalar, &u), expect);
    }

    // RFC 7748 §5.2, second test vector.
    #[test]
    fn rfc7748_vector_2() {
        let scalar = unhex("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let u = unhex("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        let expect = unhex("95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
        assert_eq!(x25519(&scalar, &u), expect);
    }

    // RFC 7748 §5.2, iterated vector: 1 and 1000 iterations.
    #[test]
    fn rfc7748_iterated() {
        let mut k = BASE_POINT;
        let mut u = BASE_POINT;
        let after_1 = unhex("422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079");
        let after_1000 = unhex("684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51");
        for i in 0..1000 {
            let result = x25519(&k, &u);
            u = k;
            k = result;
            if i == 0 {
                assert_eq!(k, after_1, "after 1 iteration");
            }
        }
        assert_eq!(k, after_1000, "after 1000 iterations");
    }

    // RFC 7748 §6.1: the full DH exchange vector.
    #[test]
    fn rfc7748_dh_exchange() {
        let alice_secret =
            unhex("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let alice_public_expect =
            unhex("8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
        let bob_secret = unhex("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
        let bob_public_expect =
            unhex("de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");
        let shared_expect =
            unhex("4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");

        assert_eq!(x25519_base(&alice_secret), alice_public_expect);
        assert_eq!(x25519_base(&bob_secret), bob_public_expect);
        assert_eq!(x25519(&alice_secret, &bob_public_expect), shared_expect);
        assert_eq!(x25519(&bob_secret, &alice_public_expect), shared_expect);
    }

    #[test]
    fn dh_commutes_for_random_keys() {
        let mut rng = SeededRng::from_seed(7);
        for _ in 0..8 {
            let a = StaticSecret::generate(&mut rng);
            let b = StaticSecret::generate(&mut rng);
            let s1 = a.diffie_hellman(&b.public_key()).unwrap();
            let s2 = b.diffie_hellman(&a.public_key()).unwrap();
            assert_eq!(s1, s2);
        }
    }

    #[test]
    fn low_order_point_rejected() {
        let mut rng = SeededRng::from_seed(8);
        let a = StaticSecret::generate(&mut rng);
        // u = 0 is a low-order point: the shared secret is all zeros.
        let zero = PublicKey::from_bytes([0; 32]);
        assert!(a.diffie_hellman(&zero).is_err());
    }

    #[test]
    fn derived_long_term_keys_agree_and_bind_identities() {
        let mut rng = SeededRng::from_seed(9);
        let user = StaticSecret::generate(&mut rng);
        let leader = StaticSecret::generate(&mut rng);

        let k_user = derive_long_term_key(&user, &leader.public_key(), "alice", "leader").unwrap();
        let k_leader =
            derive_long_term_key(&leader, &user.public_key(), "alice", "leader").unwrap();
        assert_eq!(k_user, k_leader, "both sides derive the same P_a");

        // Different identities yield unrelated keys.
        let k_other =
            derive_long_term_key(&user, &leader.public_key(), "alice", "other-leader").unwrap();
        assert_ne!(k_user.as_bytes(), k_other.as_bytes());
        let k_mallory =
            derive_long_term_key(&user, &leader.public_key(), "mallory", "leader").unwrap();
        assert_ne!(k_user.as_bytes(), k_mallory.as_bytes());
    }

    #[test]
    fn secret_debug_does_not_leak() {
        let mut rng = SeededRng::from_seed(10);
        let s = StaticSecret::generate(&mut rng);
        let dbg = format!("{s:?}");
        assert!(dbg.starts_with("StaticSecret"));
        assert!(!dbg.contains("0x"), "{dbg}");
    }
}
