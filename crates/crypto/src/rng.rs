//! Random-number generation.
//!
//! All key and nonce generation in this workspace goes through the
//! [`CryptoRng`] trait so that:
//!
//! * production code uses [`OsEntropyRng`] (OS entropy via `rand`), and
//! * simulations, model checking, and tests use [`SeededRng`] — a
//!   ChaCha20-based deterministic generator — so every run is reproducible
//!   from a single seed.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A source of cryptographically strong random bytes.
///
/// This trait is object-safe so protocol state machines can hold a
/// `Box<dyn CryptoRng>` without being generic over the generator.
pub trait CryptoRng: Send {
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Returns a random `u64`.
    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_le_bytes(b)
    }
}

/// OS-entropy-backed generator for production use.
#[derive(Debug)]
pub struct OsEntropyRng {
    inner: StdRng,
}

impl OsEntropyRng {
    /// Creates a generator seeded from operating-system entropy.
    #[must_use]
    pub fn new() -> Self {
        OsEntropyRng {
            inner: StdRng::from_entropy(),
        }
    }
}

impl Default for OsEntropyRng {
    fn default() -> Self {
        Self::new()
    }
}

impl CryptoRng for OsEntropyRng {
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }
}

/// Deterministic generator for simulation and tests.
///
/// Produces an identical stream for an identical seed, which is what makes
/// the network simulator and model checker reproducible.
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: StdRng,
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        SeededRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; children with distinct labels
    /// produce independent streams.
    #[must_use]
    pub fn fork(&mut self, label: u64) -> Self {
        let base = CryptoRng::next_u64(self);
        SeededRng::from_seed(base ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

impl CryptoRng for SeededRng {
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = SeededRng::from_seed(7);
        let mut b = SeededRng::from_seed(7);
        let mut buf_a = [0u8; 64];
        let mut buf_b = [0u8; 64];
        a.fill_bytes(&mut buf_a);
        b.fill_bytes(&mut buf_b);
        assert_eq!(buf_a, buf_b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::from_seed(7);
        let mut b = SeededRng::from_seed(8);
        assert_ne!(CryptoRng::next_u64(&mut a), CryptoRng::next_u64(&mut b));
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root1 = SeededRng::from_seed(1);
        let mut root2 = SeededRng::from_seed(1);
        let mut c1 = root1.fork(10);
        let mut c2 = root2.fork(10);
        // Same lineage ⇒ same stream.
        assert_eq!(CryptoRng::next_u64(&mut c1), CryptoRng::next_u64(&mut c2));
        // Distinct labels ⇒ distinct streams.
        let mut root3 = SeededRng::from_seed(1);
        let mut c3 = root3.fork(11);
        let mut root4 = SeededRng::from_seed(1);
        let mut c4 = root4.fork(10);
        assert_ne!(CryptoRng::next_u64(&mut c3), CryptoRng::next_u64(&mut c4));
    }

    #[test]
    fn os_rng_produces_nonzero_output() {
        let mut rng = OsEntropyRng::new();
        let mut buf = [0u8; 32];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn trait_is_object_safe() {
        let mut boxed: Box<dyn CryptoRng> = Box::new(SeededRng::from_seed(0));
        let mut buf = [0u8; 4];
        boxed.fill_bytes(&mut buf);
    }
}
