use std::error::Error;
use std::fmt;

/// Errors produced by the cryptographic primitives in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CryptoError {
    /// An AEAD tag failed to verify; the ciphertext is inauthentic or the
    /// wrong key/nonce/AAD was supplied.
    TagMismatch,
    /// Ciphertext is too short to even contain an authentication tag.
    TruncatedCiphertext,
    /// A key, nonce, or other parameter had an invalid length.
    InvalidLength {
        /// What was being constructed.
        what: &'static str,
        /// The expected length in bytes.
        expected: usize,
        /// The length actually supplied.
        actual: usize,
    },
    /// A nonce sequence was exhausted; continuing would reuse a nonce.
    NonceExhausted,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::TagMismatch => write!(f, "authentication tag mismatch"),
            CryptoError::TruncatedCiphertext => {
                write!(f, "ciphertext shorter than authentication tag")
            }
            CryptoError::InvalidLength {
                what,
                expected,
                actual,
            } => write!(
                f,
                "invalid length for {what}: expected {expected} bytes, got {actual}"
            ),
            CryptoError::NonceExhausted => write!(f, "nonce sequence exhausted"),
        }
    }
}

impl Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let msgs = [
            CryptoError::TagMismatch.to_string(),
            CryptoError::TruncatedCiphertext.to_string(),
            CryptoError::InvalidLength {
                what: "key",
                expected: 32,
                actual: 16,
            }
            .to_string(),
            CryptoError::NonceExhausted.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CryptoError>();
    }
}
