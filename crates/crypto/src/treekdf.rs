//! Key-schedule for the MLS-style rekey tree (RFC 9420 §7 adapted to the
//! Enclaves star topology).
//!
//! The leader maintains a left-balanced binary tree whose leaves hold
//! per-member channel secrets and whose interior node keys are derived from
//! their children's *path secrets*: refreshing a leaf draws one fresh path
//! secret `s_1` and chains upward with
//!
//! ```text
//! K(p_i)  = derive_node_key(s_i)          // key stored at path node p_i
//! s_{i+1} = derive_path_secret(s_i)       // secret for the parent of p_i
//! (K_g, IV_g) = derive_group(root_key, epoch)
//! ```
//!
//! so a member that unseals a single `s_i` can derive every key from the
//! matching path node up to the root, while members outside that subtree
//! learn nothing. All derivations are RFC 5869 HKDF-SHA-256 with distinct
//! `info` labels, mirroring RFC 9420's `DeriveSecret` labels.

use crate::hkdf;

/// Domain-separation salt for every tree derivation.
const TREE_SALT: &[u8] = b"enclaves treekem v1";

/// Size of path secrets and node keys.
pub const SECRET_LEN: usize = 32;

/// Derives the node key stored at a path node from that node's path secret.
#[must_use]
pub fn derive_node_key(path_secret: &[u8; SECRET_LEN]) -> [u8; SECRET_LEN] {
    let mut out = [0u8; SECRET_LEN];
    hkdf::derive(TREE_SALT, path_secret, b"node key", &mut out)
        .expect("32-byte output is within HKDF bounds");
    out
}

/// Derives the parent's path secret from a child's path secret (the
/// "derive up" step members apply after unsealing their copath secret).
#[must_use]
pub fn derive_path_secret(path_secret: &[u8; SECRET_LEN]) -> [u8; SECRET_LEN] {
    let mut out = [0u8; SECRET_LEN];
    hkdf::derive(TREE_SALT, path_secret, b"path secret", &mut out)
        .expect("32-byte output is within HKDF bounds");
    out
}

/// Derives the epoch group key and broadcast IV from the tree root key.
///
/// The epoch number is bound into the `info` string so re-deriving an old
/// root under a new epoch (or vice versa) yields unrelated traffic keys.
#[must_use]
pub fn derive_group(root_key: &[u8; SECRET_LEN], epoch: u64) -> ([u8; SECRET_LEN], [u8; 12]) {
    let mut info = Vec::with_capacity(24);
    info.extend_from_slice(b"group key epoch ");
    info.extend_from_slice(&epoch.to_be_bytes());
    let mut key = [0u8; SECRET_LEN];
    hkdf::derive(TREE_SALT, root_key, &info, &mut key)
        .expect("32-byte output is within HKDF bounds");
    info.clear();
    info.extend_from_slice(b"group iv epoch ");
    info.extend_from_slice(&epoch.to_be_bytes());
    let mut iv = [0u8; 12];
    hkdf::derive(TREE_SALT, root_key, &info, &mut iv)
        .expect("12-byte output is within HKDF bounds");
    (key, iv)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // Golden vectors freeze the wire-compatible key schedule: any change to
    // salts, labels, or derivation order breaks interop between a leader and
    // members built from different revisions.
    #[test]
    fn golden_vectors_are_stable() {
        let s = [0x42u8; 32];
        assert_eq!(
            hex(&derive_node_key(&s)),
            "2019dd99e32bf8cc1bcc5aac2d3e55af14767506adb66ce49ae1d7209a6f5dcb"
        );
        assert_eq!(
            hex(&derive_path_secret(&s)),
            "c4c91ed657da49d950e6b37726f9332b39806433d3eecc251e959cd9feca5bca"
        );
        let (key, iv) = derive_group(&s, 7);
        assert_eq!(
            hex(&key),
            "3c9a69b108aded2cbeed530ca78f542d1d2f5e988ff678ceb4c6ec8ecf73c7ed"
        );
        assert_eq!(hex(&iv), "b1e1a2738c3f106ed2e10147");
    }

    #[test]
    fn labels_are_domain_separated() {
        let s = [7u8; 32];
        let node = derive_node_key(&s);
        let path = derive_path_secret(&s);
        let (group, _) = derive_group(&s, 0);
        assert_ne!(node, path);
        assert_ne!(node, group);
        assert_ne!(path, group);
        assert_ne!(node, s);
    }

    #[test]
    fn group_keys_differ_per_epoch() {
        let root = [9u8; 32];
        let (k1, iv1) = derive_group(&root, 1);
        let (k2, iv2) = derive_group(&root, 2);
        assert_ne!(k1, k2);
        assert_ne!(iv1, iv2);
        // Deterministic for a fixed (root, epoch).
        assert_eq!(derive_group(&root, 1), (k1, iv1));
    }

    #[test]
    fn chained_derivation_is_deterministic_and_injective_per_step() {
        // Walking a 4-deep path twice gives identical keys; distinct
        // starting secrets give fully distinct chains.
        let mut a = [1u8; 32];
        let mut b = [2u8; 32];
        for _ in 0..4 {
            assert_ne!(a, b);
            assert_ne!(derive_node_key(&a), derive_node_key(&b));
            a = derive_path_secret(&a);
            b = derive_path_secret(&b);
        }
        let mut a2 = [1u8; 32];
        for _ in 0..4 {
            a2 = derive_path_secret(&a2);
        }
        assert_eq!(a, a2);
    }
}
