//! Software cryptography substrate for the Enclaves reproduction.
//!
//! The DSN'01 paper *Intrusion-Tolerant Group Management in Enclaves* assumes
//! ideal symmetric encryption ("we assume that [attackers] cannot break the
//! encryption primitives used"). This crate provides a concrete instantiation
//! of those primitives, implemented from scratch and validated against
//! published test vectors:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256.
//! * [`hmac`] — RFC 2104 HMAC-SHA-256.
//! * [`hkdf`] — RFC 5869 extract-and-expand key derivation.
//! * [`pbkdf2`] — RFC 8018 PBKDF2-HMAC-SHA-256, used to derive the long-term
//!   key `P_a` from a user password exactly as Enclaves does ("a key `P_a`
//!   derived from A's password").
//! * [`chacha20`] — RFC 8439 ChaCha20 stream cipher.
//! * [`poly1305`] — RFC 8439 Poly1305 one-time authenticator.
//! * [`aead`] — RFC 8439 ChaCha20-Poly1305 authenticated encryption, the
//!   concrete realization of the paper's `{X}_K` encryption-with-integrity.
//! * [`keys`] — typed key material (`LongTermKey`, `SessionKey`, `GroupKey`)
//!   zeroized on drop.
//! * [`nonce`] — 96-bit AEAD nonces and monotone nonce sequences, plus the
//!   128-bit *protocol* nonces (`N_1`, `N_2`, ...) the paper threads through
//!   its messages.
//! * [`treekdf`] — the HKDF key schedule for the MLS-style rekey tree
//!   (node keys, chained path secrets, and the per-epoch group key/IV
//!   derived from the tree root).
//! * [`constant_time`] — constant-time comparison helpers.
//! * [`crc`] — CRC-32 (IEEE) for journal record fast-fail framing.
//! * [`rng`] — a seedable CSPRNG abstraction so simulations are
//!   deterministic while real deployments use OS entropy.
//! * [`x25519`] — RFC 7748 Diffie-Hellman, enabling the paper's
//!   footnote-1 public-key authentication variant (the long-term key
//!   `P_a` derived from a static-static exchange instead of a password).
//!
//! # Example
//!
//! ```
//! use enclaves_crypto::aead::ChaCha20Poly1305;
//! use enclaves_crypto::keys::SessionKey;
//! use enclaves_crypto::nonce::AeadNonce;
//!
//! # fn main() -> Result<(), enclaves_crypto::CryptoError> {
//! let key = SessionKey::from_bytes([7u8; 32]);
//! let cipher = ChaCha20Poly1305::new(key.as_bytes());
//! let nonce = AeadNonce::from_bytes([1u8; 12]);
//! let sealed = cipher.seal(&nonce, b"group management", b"header");
//! let opened = cipher.open(&nonce, &sealed, b"header")?;
//! assert_eq!(opened, b"group management");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod chacha20;
pub mod constant_time;
pub mod crc;
pub mod hkdf;
pub mod hmac;
pub mod keys;
pub mod nonce;
pub mod pbkdf2;
pub mod poly1305;
pub mod rng;
pub mod sha256;
pub mod treekdf;
pub mod x25519;

mod error;

pub use error::CryptoError;
