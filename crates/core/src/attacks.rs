//! The Section 2.3 attack library.
//!
//! Each attack is a deterministic script driven at the envelope level
//! (Dolev-Yao: the attacker sees every envelope and can inject any it can
//! construct). Every attack comes in two variants — against the legacy
//! protocol of Section 2.2 and against the improved protocol of
//! Section 3.2 — and returns an [`AttackReport`] saying whether it
//! *succeeded*. The expected outcomes reproduce the paper's Table-less
//! "evaluation": every attack succeeds against legacy and fails against
//! improved.
//!
//! | Attack | Legacy | Improved |
//! |--------|--------|----------|
//! | A1 forged `connection_denied` DoS       | succeeds | no pre-auth to forge |
//! | A2 forged `mem_removed` by insider      | succeeds | rejected (no `K_a`) |
//! | A3 group-key replay (rollback)          | succeeds | rejected (stale nonce) |
//! | A4 replayed admin/auth message          | succeeds | rejected (nonce chain) |
//! | A5 forged cleartext `req_close` (expel) | succeeds | rejected (sealed close) |

use crate::config::{LeaderConfig, RekeyPolicy};
use crate::directory::Directory;
use crate::legacy::{LegacyLeaderCore, LegacyMemberSession, LegacyPhase};
use crate::protocol::{LeaderCore, MemberSession};
use enclaves_crypto::keys::LongTermKey;
use enclaves_crypto::rng::{CryptoRng, SeededRng};
use enclaves_wire::legacy::{LegacyEnvelope, LegacyMemberNotice, LegacyMsgType};
use enclaves_wire::message::{Envelope, MsgType};
use enclaves_wire::ActorId;

/// Which protocol an attack ran against.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProtocolKind {
    /// The original Section 2.2 protocol.
    Legacy,
    /// The hardened Section 3.2 protocol.
    Improved,
}

/// The outcome of one attack script.
#[derive(Clone, Debug)]
pub struct AttackReport {
    /// Attack identifier (A1..A5).
    pub id: &'static str,
    /// Human-readable name.
    pub name: &'static str,
    /// Protocol attacked.
    pub against: ProtocolKind,
    /// Whether the attack achieved its goal.
    pub succeeded: bool,
    /// What happened.
    pub detail: String,
}

impl std::fmt::Display for AttackReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}] vs {:?}: {} — {}",
            self.id,
            self.name,
            self.against,
            if self.succeeded {
                "SUCCEEDED"
            } else {
                "blocked"
            },
            self.detail
        )
    }
}

fn id(s: &str) -> ActorId {
    ActorId::new(s).expect("static id")
}

fn key(user: &str) -> LongTermKey {
    LongTermKey::derive_from_password(&format!("pw-{user}"), user).expect("derive")
}

fn directory(users: &[&str]) -> Directory {
    let mut d = Directory::new();
    for u in users {
        d.register_key(&id(u), key(u));
    }
    d
}

// ---------------------------------------------------------------------
// Legacy harness
// ---------------------------------------------------------------------

struct LegacyWorld {
    leader: LegacyLeaderCore,
    alice: LegacyMemberSession,
    brutus: LegacyMemberSession,
    /// Every envelope ever transmitted — the attacker's tap.
    tap: Vec<LegacyEnvelope>,
}

impl LegacyWorld {
    fn new(seed: u64) -> Self {
        let leader = LegacyLeaderCore::with_rng(
            id("leader"),
            directory(&["alice", "brutus"]),
            Box::new(SeededRng::from_seed(seed)),
        );
        let (alice, _) = LegacyMemberSession::start(
            id("alice"),
            id("leader"),
            key("alice"),
            Box::new(SeededRng::from_seed(seed + 1)),
        );
        let (brutus, _) = LegacyMemberSession::start(
            id("brutus"),
            id("leader"),
            key("brutus"),
            Box::new(SeededRng::from_seed(seed + 2)),
        );
        LegacyWorld {
            leader,
            alice,
            brutus,
            tap: Vec::new(),
        }
    }

    /// Delivers an envelope to its recipient, recording it on the tap and
    /// pumping any replies until quiescent.
    fn deliver(&mut self, env: LegacyEnvelope) {
        let mut queue = vec![env];
        while let Some(env) = queue.pop() {
            self.tap.push(env.clone());
            if env.recipient == id("leader") {
                if let Ok(out) = self.leader.handle(&env) {
                    queue.extend(out.outgoing);
                }
            } else if env.recipient == id("alice") {
                if let Ok(out) = self.alice.handle(&env) {
                    queue.extend(out.reply);
                }
            } else if env.recipient == id("brutus") {
                if let Ok(out) = self.brutus.handle(&env) {
                    queue.extend(out.reply);
                }
            }
        }
    }

    /// Joins both members.
    fn join_all(&mut self) {
        let (alice, open_a) = LegacyMemberSession::start(
            id("alice"),
            id("leader"),
            key("alice"),
            Box::new(SeededRng::from_seed(100)),
        );
        self.alice = alice;
        self.deliver(open_a);
        let (brutus, open_b) = LegacyMemberSession::start(
            id("brutus"),
            id("leader"),
            key("brutus"),
            Box::new(SeededRng::from_seed(101)),
        );
        self.brutus = brutus;
        self.deliver(open_b);
        assert_eq!(self.alice.phase(), LegacyPhase::Member, "alice joined");
        assert_eq!(self.brutus.phase(), LegacyPhase::Member, "brutus joined");
    }
}

// ---------------------------------------------------------------------
// Improved harness
// ---------------------------------------------------------------------

struct ImprovedWorld {
    leader: LeaderCore,
    alice: MemberSession,
    brutus: MemberSession,
    tap: Vec<Envelope>,
}

impl ImprovedWorld {
    fn new(seed: u64, policy: RekeyPolicy) -> Self {
        let leader = LeaderCore::with_rng(
            id("leader"),
            directory(&["alice", "brutus"]),
            LeaderConfig {
                rekey_policy: policy,
                ..LeaderConfig::default()
            },
            Box::new(SeededRng::from_seed(seed)),
        );
        let (alice, init_a) = MemberSession::start_with_key(
            id("alice"),
            id("leader"),
            key("alice"),
            Box::new(SeededRng::from_seed(seed + 1)),
        );
        let (brutus, init_b) = MemberSession::start_with_key(
            id("brutus"),
            id("leader"),
            key("brutus"),
            Box::new(SeededRng::from_seed(seed + 2)),
        );
        let mut world = ImprovedWorld {
            leader,
            alice,
            brutus,
            tap: Vec::new(),
        };
        world.deliver(init_a);
        world.deliver(init_b);
        world
    }

    fn deliver(&mut self, env: Envelope) {
        let mut queue = vec![env];
        while let Some(env) = queue.pop() {
            self.tap.push(env.clone());
            if env.recipient == id("leader") {
                if let Ok(out) = self.leader.handle(&env) {
                    queue.extend(out.outgoing);
                }
            } else if env.recipient == id("alice") {
                if let Ok(out) = self.alice.handle(&env) {
                    queue.extend(out.reply);
                }
            } else if env.recipient == id("brutus") {
                if let Ok(out) = self.brutus.handle(&env) {
                    queue.extend(out.reply);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// A1: forged connection_denied (denial of service)
// ---------------------------------------------------------------------

/// A1 against legacy: the attacker forges a cleartext `connection_denied`,
/// and the victim gives up.
#[must_use]
pub fn forged_denial_legacy() -> AttackReport {
    let mut world = LegacyWorld::new(1);
    // Alice sends req_open, but the attacker races the leader's reply with
    // a forged denial.
    let (alice, _open) = LegacyMemberSession::start(
        id("alice"),
        id("leader"),
        key("alice"),
        Box::new(SeededRng::from_seed(50)),
    );
    world.alice = alice;
    let forged = LegacyEnvelope {
        msg_type: LegacyMsgType::ConnectionDenied,
        sender: id("leader"), // spoofed
        recipient: id("alice"),
        body: Vec::new(),
    };
    let result = world.alice.handle(&forged);
    let succeeded = result.is_ok() && world.alice.phase() == LegacyPhase::Denied;
    AttackReport {
        id: "A1",
        name: "forged connection_denied DoS",
        against: ProtocolKind::Legacy,
        succeeded,
        detail: if succeeded {
            "alice accepted a spoofed denial and gave up".into()
        } else {
            format!("unexpected: {result:?}")
        },
    }
}

/// A1 against improved: there is no pre-authentication exchange; the
/// closest move is forging an `AuthKeyDist`, which fails without `P_a`.
#[must_use]
pub fn forged_denial_improved() -> AttackReport {
    let leader = id("leader");
    let (mut alice, _init) = MemberSession::start_with_key(
        id("alice"),
        leader.clone(),
        key("alice"),
        Box::new(SeededRng::from_seed(60)),
    );
    // The attacker does not know P_a; it seals a "key dist" under a key of
    // its own choosing.
    let attacker_key = LongTermKey::derive_from_password("attacker", "alice").unwrap();
    let (_, fake) = MemberSession::start_with_key(
        id("alice"),
        leader,
        attacker_key,
        Box::new(SeededRng::from_seed(61)),
    );
    let forged = Envelope {
        msg_type: MsgType::AuthKeyDist,
        sender: id("leader"),
        recipient: id("alice"),
        group: None,
        body: fake.body, // structurally plausible, wrong key
    };
    let result = alice.handle(&forged);
    let blocked = result.is_err() && alice.phase() == crate::protocol::SessionPhase::WaitingForKey;
    AttackReport {
        id: "A1",
        name: "forged connection_denied DoS",
        against: ProtocolKind::Improved,
        succeeded: !blocked,
        detail: if blocked {
            "no pre-auth exists; forged AuthKeyDist rejected, alice still waiting".into()
        } else {
            format!("unexpected: {result:?}")
        },
    }
}

// ---------------------------------------------------------------------
// A2: forged mem_removed by a malicious insider
// ---------------------------------------------------------------------

/// A2 against legacy: member Brutus forges `mem_removed, {B}_Kg` to Alice,
/// corrupting her membership view.
#[must_use]
pub fn forged_mem_removed_legacy() -> AttackReport {
    let mut world = LegacyWorld::new(2);
    world.join_all();
    // Brutus, a legitimate member, holds Kg and can seal the notice.
    let kg = world.brutus.group_key().expect("brutus has Kg").clone();
    let mut rng = SeededRng::from_seed(70);
    let body = crate::legacy::member::legacy_seal(
        kg.as_bytes(),
        LegacyMsgType::MemRemoved,
        &LegacyMemberNotice {
            member: id("brutus"),
        },
        &mut rng,
    );
    let forged = LegacyEnvelope {
        msg_type: LegacyMsgType::MemRemoved,
        sender: id("leader"), // spoofed
        recipient: id("alice"),
        body,
    };
    let result = world.alice.handle(&forged);
    // Alice now believes Brutus left, while the leader still lists him.
    let alice_lost_brutus = !world.alice.view().contains(&id("brutus"));
    let leader_has_brutus = world.leader.roster().contains(&id("brutus"));
    let succeeded = result.is_ok() && alice_lost_brutus && leader_has_brutus;
    AttackReport {
        id: "A2",
        name: "forged mem_removed by insider",
        against: ProtocolKind::Legacy,
        succeeded,
        detail: if succeeded {
            "alice's view lost brutus although the leader never removed him".into()
        } else {
            format!("unexpected: {result:?}")
        },
    }
}

/// A2 against improved: membership notices travel only inside `AdminMsg`
/// sealed under Alice's `K_a`, which the insider does not hold.
#[must_use]
pub fn forged_mem_removed_improved() -> AttackReport {
    let mut world = ImprovedWorld::new(3, RekeyPolicy::Manual);
    let roster_before = world.alice.roster();
    assert!(roster_before.contains(&id("brutus")));

    // The insider (Brutus) knows the *group* key but not Alice's session
    // key. Its best forgery is an AdminMsg sealed under the group key —
    // which is simply the wrong key for that channel.
    let mut rng = SeededRng::from_seed(80);
    let mut nonce_bytes = [0u8; 12];
    rng.fill_bytes(&mut nonce_bytes);
    // Build a structurally perfect AdminPlain... sealed with a key the
    // attacker actually has (the group key it legitimately received is not
    // exposed by the API; we model "any key that is not K_a").
    let forged_plain = enclaves_wire::message::AdminPlain {
        leader: id("leader"),
        user: id("alice"),
        user_nonce: enclaves_crypto::nonce::ProtocolNonce::from_bytes([0; 16]),
        leader_nonce: enclaves_crypto::nonce::ProtocolNonce::from_bytes([1; 16]),
        payload: enclaves_wire::message::AdminPayload::MemberLeft(id("brutus")),
    };
    let mut forged = Envelope {
        msg_type: MsgType::AdminMsg,
        sender: id("leader"),
        recipient: id("alice"),
        group: None,
        body: Vec::new(),
    };
    let attacker_key = [0xBB; 32];
    forged.body = enclaves_wire::message::seal(
        &attacker_key,
        enclaves_crypto::nonce::AeadNonce::from_bytes(nonce_bytes),
        &forged.header_aad(),
        &forged_plain,
    );
    let result = world.alice.handle(&forged);
    let blocked = result.is_err() && world.alice.roster() == roster_before;
    AttackReport {
        id: "A2",
        name: "forged mem_removed by insider",
        against: ProtocolKind::Improved,
        succeeded: !blocked,
        detail: if blocked {
            "forged AdminMsg rejected: membership notices require alice's session key".into()
        } else {
            format!("unexpected: {result:?}")
        },
    }
}

// ---------------------------------------------------------------------
// A3: group-key replay (rollback to a key a past member holds)
// ---------------------------------------------------------------------

/// A3 against legacy: replaying an old `new_key` message rolls Alice back
/// to a superseded group key.
#[must_use]
pub fn key_rollback_legacy() -> AttackReport {
    let mut world = LegacyWorld::new(4);
    world.join_all();

    // Two rekeys; the attacker records the first new_key to alice.
    let out1 = world.leader.rekey().unwrap();
    let stale: Vec<LegacyEnvelope> = out1
        .outgoing
        .iter()
        .filter(|e| e.recipient == id("alice"))
        .cloned()
        .collect();
    for env in out1.outgoing {
        world.deliver(env);
    }
    let out2 = world.leader.rekey().unwrap();
    for env in out2.outgoing {
        world.deliver(env);
    }
    let latest = world.leader.group_key().unwrap().clone();
    assert_eq!(world.alice.group_key().unwrap(), &latest);

    // Replay the stale new_key.
    let result = world.alice.handle(&stale[0]);
    let rolled_back = world.alice.group_key().unwrap() != &latest
        && world.alice.group_key().unwrap() == &world.leader.key_history()[1];
    let succeeded = result.is_ok() && rolled_back;
    AttackReport {
        id: "A3",
        name: "group-key replay (rollback)",
        against: ProtocolKind::Legacy,
        succeeded,
        detail: if succeeded {
            "alice reinstated a superseded group key from a replayed new_key".into()
        } else {
            format!("unexpected: {result:?}")
        },
    }
}

/// A3 against improved: the same replay is rejected because the `AdminMsg`
/// echoes a nonce Alice has already rolled past.
#[must_use]
pub fn key_rollback_improved() -> AttackReport {
    let mut world = ImprovedWorld::new(5, RekeyPolicy::Manual);

    // Two manual rekeys, recording the first NewGroupKey AdminMsg to alice.
    let out1 = world.leader.rekey_now().unwrap();
    let stale: Vec<Envelope> = out1
        .outgoing
        .iter()
        .filter(|e| e.recipient == id("alice"))
        .cloned()
        .collect();
    for env in out1.outgoing {
        world.deliver(env);
    }
    let out2 = world.leader.rekey_now().unwrap();
    for env in out2.outgoing {
        world.deliver(env);
    }
    let epoch_before = world.alice.group_epoch();

    let result = world.alice.handle(&stale[0]);
    let blocked = result.is_err() && world.alice.group_epoch() == epoch_before;
    AttackReport {
        id: "A3",
        name: "group-key replay (rollback)",
        against: ProtocolKind::Improved,
        succeeded: !blocked,
        detail: if blocked {
            "replayed AdminMsg rejected: nonce chain proves staleness".into()
        } else {
            format!(
                "unexpected: {result:?}, epoch {:?} -> {:?}",
                epoch_before,
                world.alice.group_epoch()
            )
        },
    }
}

// ---------------------------------------------------------------------
// A4: replay of recorded protocol messages
// ---------------------------------------------------------------------

/// A4 against legacy: a replayed `new_key` is accepted twice (the member
/// has no way to tell).
#[must_use]
pub fn replay_legacy() -> AttackReport {
    let mut world = LegacyWorld::new(6);
    world.join_all();
    let out = world.leader.rekey().unwrap();
    let to_alice: Vec<LegacyEnvelope> = out
        .outgoing
        .iter()
        .filter(|e| e.recipient == id("alice"))
        .cloned()
        .collect();
    for env in out.outgoing {
        world.deliver(env);
    }
    // Replay the very same message: accepted again.
    let first = world.alice.handle(&to_alice[0]);
    let second = world.alice.handle(&to_alice[0]);
    let succeeded = first.is_ok() && second.is_ok();
    AttackReport {
        id: "A4",
        name: "replayed protocol message accepted",
        against: ProtocolKind::Legacy,
        succeeded,
        detail: if succeeded {
            "the same new_key was accepted repeatedly (duplicate delivery)".into()
        } else {
            format!("unexpected: {first:?} / {second:?}")
        },
    }
}

/// A4 against improved: every recorded protocol message, replayed to its
/// original recipient, has **no effect** — it is either rejected outright
/// or answered idempotently from the ARQ cache (no state change, no
/// event, no duplicate delivery).
#[must_use]
pub fn replay_improved() -> AttackReport {
    let mut world = ImprovedWorld::new(7, RekeyPolicy::OnJoin);
    // Generate some traffic.
    let out = world.leader.broadcast_admin_data(b"tick").unwrap();
    for env in out.outgoing {
        world.deliver(env);
    }
    let tap = world.tap.clone();
    let roster_before = world.leader.roster();
    let epoch_before = world.leader.epoch();
    let alice_epoch_before = world.alice.group_epoch();
    let mut effects = Vec::new();
    for env in &tap {
        let produced_events = if env.recipient == id("alice") {
            world.alice.handle(env).map(|o| !o.events.is_empty())
        } else if env.recipient == id("brutus") {
            world.brutus.handle(env).map(|o| !o.events.is_empty())
        } else {
            world.leader.handle(env).map(|o| !o.events.is_empty())
        };
        if let Ok(true) = produced_events {
            effects.push(env.msg_type);
        }
    }
    let state_changed = world.leader.roster() != roster_before
        || world.leader.epoch() != epoch_before
        || world.alice.group_epoch() != alice_epoch_before;
    let succeeded = !effects.is_empty() || state_changed;
    AttackReport {
        id: "A4",
        name: "replayed protocol message accepted",
        against: ProtocolKind::Improved,
        succeeded,
        detail: if succeeded {
            format!("replays with effect: {effects:?} (state changed: {state_changed})")
        } else {
            format!(
                "all {} recorded messages had no effect on replay                  (rejected or idempotently re-acknowledged)",
                tap.len()
            )
        },
    }
}

// ---------------------------------------------------------------------
// A5: forged close / expulsion
// ---------------------------------------------------------------------

/// A5 against legacy: a cleartext `req_close` with a spoofed sender expels
/// the victim.
#[must_use]
pub fn forged_close_legacy() -> AttackReport {
    let mut world = LegacyWorld::new(8);
    world.join_all();
    let forged = LegacyEnvelope {
        msg_type: LegacyMsgType::ReqClose,
        sender: id("alice"), // spoofed
        recipient: id("leader"),
        body: Vec::new(),
    };
    let result = world.leader.handle(&forged);
    let succeeded = result.is_ok() && !world.leader.roster().contains(&id("alice"));
    AttackReport {
        id: "A5",
        name: "forged close request (expulsion)",
        against: ProtocolKind::Legacy,
        succeeded,
        detail: if succeeded {
            "a spoofed cleartext req_close expelled alice".into()
        } else {
            format!("unexpected: {result:?}")
        },
    }
}

/// A5 against improved: `ReqClose` is sealed under `K_a`; the forgery is
/// rejected.
#[must_use]
pub fn forged_close_improved() -> AttackReport {
    let mut world = ImprovedWorld::new(9, RekeyPolicy::Manual);
    assert!(world.leader.roster().contains(&id("alice")));
    let mut forged = Envelope {
        msg_type: MsgType::ReqClose,
        sender: id("alice"),
        recipient: id("leader"),
        group: None,
        body: Vec::new(),
    };
    let plain = enclaves_wire::message::ClosePlain {
        user: id("alice"),
        leader: id("leader"),
    };
    forged.body = enclaves_wire::message::seal(
        &[0xCC; 32], // attacker-chosen key, not alice's K_a
        enclaves_crypto::nonce::AeadNonce::from_bytes([1; 12]),
        &forged.header_aad(),
        &plain,
    );
    let result = world.leader.handle(&forged);
    let blocked = result.is_err() && world.leader.roster().contains(&id("alice"));
    AttackReport {
        id: "A5",
        name: "forged close request (expulsion)",
        against: ProtocolKind::Improved,
        succeeded: !blocked,
        detail: if blocked {
            "forged ReqClose rejected: closes require the session key".into()
        } else {
            format!("unexpected: {result:?}")
        },
    }
}

/// Runs every attack against both protocols.
#[must_use]
pub fn run_all() -> Vec<AttackReport> {
    vec![
        forged_denial_legacy(),
        forged_denial_improved(),
        forged_mem_removed_legacy(),
        forged_mem_removed_improved(),
        key_rollback_legacy(),
        key_rollback_improved(),
        replay_legacy(),
        replay_improved(),
        forged_close_legacy(),
        forged_close_improved(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_forged_denial() {
        assert!(
            forged_denial_legacy().succeeded,
            "legacy must be vulnerable"
        );
        assert!(!forged_denial_improved().succeeded, "improved must resist");
    }

    #[test]
    fn a2_forged_mem_removed() {
        assert!(forged_mem_removed_legacy().succeeded);
        assert!(!forged_mem_removed_improved().succeeded);
    }

    #[test]
    fn a3_key_rollback() {
        assert!(key_rollback_legacy().succeeded);
        assert!(!key_rollback_improved().succeeded);
    }

    #[test]
    fn a4_replay() {
        assert!(replay_legacy().succeeded);
        let report = replay_improved();
        assert!(!report.succeeded, "{report}");
    }

    #[test]
    fn a5_forged_close() {
        assert!(forged_close_legacy().succeeded);
        assert!(!forged_close_improved().succeeded);
    }

    #[test]
    fn run_all_matches_paper_expectations() {
        let reports = run_all();
        assert_eq!(reports.len(), 10);
        for r in &reports {
            match r.against {
                ProtocolKind::Legacy => assert!(r.succeeded, "{r}"),
                ProtocolKind::Improved => assert!(!r.succeeded, "{r}"),
            }
        }
    }
}
