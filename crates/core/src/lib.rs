//! Intrusion-tolerant group management in Enclaves.
//!
//! A Rust implementation of the group-management system from
//! *Intrusion-Tolerant Group Management in Enclaves* (DSN 2001): a
//! leader-mediated secure group (Figure 1) running the hardened
//! authentication and group-management protocol of Section 3.2, alongside
//! the original (vulnerable) protocol of Section 2.2 as a baseline, and an
//! attack library that demonstrates the Section 2.3 attacks against both.
//!
//! # Layers
//!
//! * [`protocol`] — sans-I/O state machines for the improved protocol:
//!   [`protocol::MemberSession`] (Figure 2) and [`protocol::LeaderCore`]
//!   (Figure 3, one slot per member). These are pure: they consume
//!   envelopes and produce envelopes + events, so they are exhaustively
//!   testable and transport-agnostic.
//! * [`legacy`] — the same, for the original protocol, vulnerabilities
//!   faithfully included.
//! * [`runtime`] — threaded leader/member event loops binding the protocol
//!   cores to any `enclaves-net` transport (simulated or TCP).
//! * [`attacks`] — scripted Dolev-Yao attacks run through the
//!   `enclaves-net` adversary tap: each returns whether it succeeded, so
//!   the same script demonstrates the vulnerability on the legacy protocol
//!   and its absence on the improved one.
//! * [`liveness`] — injectable [`liveness::Clock`]s and the
//!   [`liveness::LivenessConfig`] bounded-ARQ / failure-detection policy
//!   both runtimes share (heartbeats, backoff, timeout eviction, rejoin).
//! * [`group`], [`config`], [`directory`] — group state, rekey policy, and
//!   the leader's user directory.
//! * [`journal`] — the sealed write-ahead journal of roster/epoch
//!   transitions that lets a crashed leader recover every enclave and
//!   re-admit members through the auto-rejoin path.
//!
//! # Quickstart
//!
//! ```
//! use enclaves_core::config::LeaderConfig;
//! use enclaves_core::directory::Directory;
//! use enclaves_core::runtime::{LeaderRuntime, MemberRuntime};
//! use enclaves_net::sim::{SimConfig, SimNet};
//! use enclaves_wire::ActorId;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = SimNet::new(SimConfig::default());
//! let listener = net.listen("leader")?;
//!
//! let mut directory = Directory::new();
//! directory.register_password(&ActorId::new("alice")?, "alice-pw")?;
//!
//! let leader = LeaderRuntime::spawn(
//!     Box::new(listener),
//!     ActorId::new("leader")?,
//!     directory,
//!     LeaderConfig::default(),
//! );
//!
//! let alice = MemberRuntime::connect(
//!     Box::new(net.connect("alice", "leader")?),
//!     ActorId::new("alice")?,
//!     ActorId::new("leader")?,
//!     "alice-pw",
//! )?;
//! alice.wait_joined(std::time::Duration::from_secs(2))?;
//! alice.leave()?;
//! leader.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod config;
pub mod directory;
pub mod group;
pub mod journal;
pub mod legacy;
pub mod liveness;
pub mod protocol;
pub mod runtime;

mod error;

pub use error::{CoreError, RejectReason};
