//! Leader configuration: rekey policy, limits, and liveness.

use crate::liveness::{Clock, LivenessConfig};
use enclaves_wire::GroupId;
use std::sync::Arc;

/// When the leader generates and distributes a new group key (Section 2.1:
//  "new keys can be generated when new members join, when members leave, or
//  on a periodic basis").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RekeyPolicy {
    /// Never rekey automatically (manual only).
    Manual,
    /// Rekey whenever a member joins.
    OnJoin,
    /// Rekey whenever a member leaves.
    OnLeave,
    /// Rekey on every membership change.
    OnJoinAndLeave,
    /// Rekey after every `n` relayed group-data messages.
    EveryNMessages(u32),
}

impl RekeyPolicy {
    /// Whether a join triggers a rekey.
    #[must_use]
    pub fn rekey_on_join(self) -> bool {
        matches!(self, RekeyPolicy::OnJoin | RekeyPolicy::OnJoinAndLeave)
    }

    /// Whether a leave triggers a rekey.
    #[must_use]
    pub fn rekey_on_leave(self) -> bool {
        matches!(self, RekeyPolicy::OnLeave | RekeyPolicy::OnJoinAndLeave)
    }

    /// Whether having relayed `count` messages since the last rekey
    /// triggers one.
    #[must_use]
    pub fn rekey_on_traffic(self, count: u32) -> bool {
        matches!(self, RekeyPolicy::EveryNMessages(n) if n > 0 && count >= n)
    }
}

/// Leader configuration.
#[derive(Clone)]
pub struct LeaderConfig {
    /// Rekey policy.
    pub rekey_policy: RekeyPolicy,
    /// Maximum number of concurrently connected members.
    pub max_members: usize,
    /// Maximum queued admin payloads per member before the oldest are
    /// coalesced (a slow member must not exhaust leader memory).
    pub max_pending_admin: usize,
    /// Whether join/leave notices (`MemberJoined` / `MemberLeft`) are sent
    /// to the rest of the group over the admin channel. Production groups
    /// keep this on; very large benchmark groups turn it off to avoid the
    /// O(N²) admin storm while the roster is being built. Key material
    /// (`NewGroupKey`) is always distributed regardless of this flag.
    pub membership_notices: bool,
    /// Timing and failure-detection policy: retransmit backoff, ARQ
    /// budget, heartbeat deadlines. The default reproduces the historical
    /// flat 400ms retry-forever cadence with no failure detection.
    pub liveness: LivenessConfig,
    /// Time source for retransmit and liveness deadlines. `None` uses a
    /// real monotonic clock; tests inject a
    /// [`crate::liveness::VirtualClock`] for deterministic fast runs.
    pub clock: Option<Arc<dyn Clock>>,
    /// Distribute group keys through the MLS-style rekey tree instead of
    /// per-member `NewGroupKey` admin seals. In tree mode every membership
    /// change refreshes one leaf-to-root path and fans the copath seals
    /// out as a single `PathUpdate` broadcast — `O(log N)` AEAD seals per
    /// rekey instead of `O(N)` — and the join/leave bits of
    /// [`RekeyPolicy`] are moot because membership changes always rotate
    /// the epoch. Off by default: the flat fan-out remains the paper's
    /// literal Figure 3 behaviour.
    pub tree_rekey: bool,
    /// Enclave identifier when this leader is one group inside a
    /// multi-enclave service. When set, every outgoing envelope is tagged
    /// with the group id (and so AEAD-bound to it), and incoming envelopes
    /// tagged for a different enclave — or untagged — are rejected before
    /// any protocol processing. `None` keeps the single-group legacy wire
    /// format.
    pub group: Option<GroupId>,
}

impl std::fmt::Debug for LeaderConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeaderConfig")
            .field("rekey_policy", &self.rekey_policy)
            .field("max_members", &self.max_members)
            .field("max_pending_admin", &self.max_pending_admin)
            .field("membership_notices", &self.membership_notices)
            .field("liveness", &self.liveness)
            .field("clock", &self.clock.as_ref().map(|_| "<injected>"))
            .field("tree_rekey", &self.tree_rekey)
            .field("group", &self.group)
            .finish()
    }
}

impl Default for LeaderConfig {
    /// Rekey on join and leave (the conservative policy), up to 1024
    /// members, 256 queued admin messages per member, historical timing.
    fn default() -> Self {
        LeaderConfig {
            rekey_policy: RekeyPolicy::OnJoinAndLeave,
            max_members: 1024,
            max_pending_admin: 256,
            membership_notices: true,
            liveness: LivenessConfig::default(),
            clock: None,
            tree_rekey: false,
            group: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_triggers() {
        assert!(RekeyPolicy::OnJoin.rekey_on_join());
        assert!(!RekeyPolicy::OnJoin.rekey_on_leave());
        assert!(RekeyPolicy::OnLeave.rekey_on_leave());
        assert!(!RekeyPolicy::OnLeave.rekey_on_join());
        assert!(RekeyPolicy::OnJoinAndLeave.rekey_on_join());
        assert!(RekeyPolicy::OnJoinAndLeave.rekey_on_leave());
        assert!(!RekeyPolicy::Manual.rekey_on_join());
        assert!(!RekeyPolicy::Manual.rekey_on_leave());
    }

    #[test]
    fn traffic_policy() {
        assert!(RekeyPolicy::EveryNMessages(3).rekey_on_traffic(3));
        assert!(RekeyPolicy::EveryNMessages(3).rekey_on_traffic(4));
        assert!(!RekeyPolicy::EveryNMessages(3).rekey_on_traffic(2));
        assert!(!RekeyPolicy::EveryNMessages(0).rekey_on_traffic(100));
        assert!(!RekeyPolicy::Manual.rekey_on_traffic(100));
    }

    #[test]
    fn default_config_is_conservative() {
        let c = LeaderConfig::default();
        assert_eq!(c.rekey_policy, RekeyPolicy::OnJoinAndLeave);
        assert!(c.max_members >= 2);
        assert!(c.max_pending_admin >= 1);
        assert!(c.membership_notices, "notices are on unless opted out");
        assert_eq!(
            c.liveness,
            LivenessConfig::default(),
            "default timing is the historical cadence"
        );
        assert!(c.clock.is_none(), "real clock unless injected");
        assert!(!c.tree_rekey, "flat fan-out unless opted in");
        assert!(c.group.is_none(), "single-group legacy wire by default");
    }
}
