use enclaves_crypto::CryptoError;
use enclaves_net::NetError;
use enclaves_wire::message::OpenError;
use enclaves_wire::WireError;
use std::error::Error;
use std::fmt;

/// Errors from the Enclaves protocol and runtime layers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A message failed authentication or was malformed: it is *rejected*,
    /// the session state is unchanged (intrusion tolerance: forged traffic
    /// is dropped, not fatal).
    Rejected(RejectReason),
    /// The operation is invalid in the current session phase.
    BadPhase {
        /// What was attempted.
        operation: &'static str,
        /// The phase the session was in.
        phase: &'static str,
    },
    /// The peer identity is not in the leader's directory.
    UnknownUser(String),
    /// A cryptographic primitive failed (e.g. nonce exhaustion).
    Crypto(CryptoError),
    /// A wire-format failure on an *outgoing* message (indicates a bug or
    /// misconfiguration, not an attack).
    Wire(WireError),
    /// A transport failure.
    Net(NetError),
    /// The runtime worker is gone.
    RuntimeGone,
    /// Timed out waiting for a protocol step.
    Timeout(&'static str),
    /// The write-ahead journal failed: the transition was *not* durably
    /// committed and must not be dispatched.
    Journal(crate::journal::JournalError),
}

/// Why an incoming message was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RejectReason {
    /// AEAD authentication failed (wrong key, tampering, relabeling).
    BadSeal,
    /// The plaintext identities do not match the session peers.
    WrongIdentity,
    /// The embedded nonce is not the expected one (replay or stale).
    StaleNonce,
    /// The message type is not acceptable in the current state.
    UnexpectedType,
    /// The message could not be parsed.
    Malformed,
    /// A group-data message under an outdated group key epoch.
    WrongEpoch,
    /// The envelope's group tag does not match this session's enclave
    /// (cross-enclave traffic in a multi-enclave service).
    WrongEnclave,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RejectReason::BadSeal => "authentication failure",
            RejectReason::WrongIdentity => "identity mismatch",
            RejectReason::StaleNonce => "stale or replayed nonce",
            RejectReason::UnexpectedType => "unexpected message type",
            RejectReason::Malformed => "malformed message",
            RejectReason::WrongEpoch => "wrong group-key epoch",
            RejectReason::WrongEnclave => "wrong enclave",
        };
        f.write_str(s)
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Rejected(r) => write!(f, "message rejected: {r}"),
            CoreError::BadPhase { operation, phase } => {
                write!(f, "cannot {operation} while {phase}")
            }
            CoreError::UnknownUser(u) => write!(f, "unknown user {u}"),
            CoreError::Crypto(e) => write!(f, "crypto failure: {e}"),
            CoreError::Wire(e) => write!(f, "wire failure: {e}"),
            CoreError::Net(e) => write!(f, "network failure: {e}"),
            CoreError::RuntimeGone => write!(f, "runtime worker terminated"),
            CoreError::Timeout(what) => write!(f, "timed out waiting for {what}"),
            CoreError::Journal(e) => write!(f, "journal failure: {e}"),
        }
    }
}

impl Error for CoreError {}

impl From<CryptoError> for CoreError {
    fn from(e: CryptoError) -> Self {
        CoreError::Crypto(e)
    }
}

impl From<WireError> for CoreError {
    fn from(e: WireError) -> Self {
        CoreError::Wire(e)
    }
}

impl From<NetError> for CoreError {
    fn from(e: NetError) -> Self {
        CoreError::Net(e)
    }
}

impl From<crate::journal::JournalError> for CoreError {
    fn from(e: crate::journal::JournalError) -> Self {
        CoreError::Journal(e)
    }
}

impl From<OpenError> for CoreError {
    fn from(e: OpenError) -> Self {
        match e {
            OpenError::Crypto(_) => CoreError::Rejected(RejectReason::BadSeal),
            OpenError::Malformed(_) => CoreError::Rejected(RejectReason::Malformed),
        }
    }
}

impl CoreError {
    /// True if this error means an incoming message was dropped without
    /// affecting session state — the expected outcome for attack traffic.
    #[must_use]
    pub fn is_rejection(&self) -> bool {
        matches!(self, CoreError::Rejected(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejection_classification() {
        assert!(CoreError::Rejected(RejectReason::BadSeal).is_rejection());
        assert!(!CoreError::RuntimeGone.is_rejection());
        assert!(!CoreError::Timeout("join").is_rejection());
    }

    #[test]
    fn open_error_maps_to_rejection() {
        let e: CoreError = OpenError::Crypto(CryptoError::TagMismatch).into();
        assert_eq!(e, CoreError::Rejected(RejectReason::BadSeal));
        let e: CoreError = OpenError::Malformed(WireError::UnexpectedEnd).into();
        assert_eq!(e, CoreError::Rejected(RejectReason::Malformed));
    }

    #[test]
    fn display_is_informative() {
        let e = CoreError::BadPhase {
            operation: "send data",
            phase: "waiting for key",
        };
        assert_eq!(e.to_string(), "cannot send data while waiting for key");
        assert!(CoreError::UnknownUser("mallory".into())
            .to_string()
            .contains("mallory"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
