//! Sans-I/O state machines for the improved protocol (Section 3.2).
//!
//! [`MemberSession`] implements the user machine of Figure 2 and
//! [`LeaderCore`] the leader of Figure 3 (one slot per member). Both
//! consume [`enclaves_wire::message::Envelope`]s and produce envelopes plus
//! events; they perform no I/O, so the same code is driven by the threaded
//! runtime, by the integration tests, and by the attack scripts.
//!
//! # Intrusion tolerance contract
//!
//! `handle` returns `Err(CoreError::Rejected(_))` for any message that
//! fails authentication, parses badly, carries wrong identities, or
//! presents a stale nonce. **Rejection never mutates session state**: a
//! flood of forged traffic leaves an honest session exactly where it was.
//! Tests in this module and in `attacks` rely on that contract.

pub mod keytree;
pub mod leader;
pub mod member;

pub use leader::{
    AdminFanout, BroadcastFrame, LeaderCore, LeaderEvent, LeaderOutput, LeaderStats, LeaderTick,
    SealJob, SealedAdminFrame, SealedBatch,
};
pub use member::{MemberEvent, MemberOutput, MemberSession, SessionPhase};

use enclaves_crypto::nonce::AeadNonce;
use enclaves_crypto::sha256::sha256;
use enclaves_wire::ActorId;

/// AEAD nonce-sequence prefix for leader → member traffic under `K_a`.
pub(crate) const SEQ_LEADER: [u8; 4] = *b"ldr>";
/// AEAD nonce-sequence prefix for member → leader traffic under `K_a`.
pub(crate) const SEQ_MEMBER: [u8; 4] = *b"mbr>";

/// Per-sender AEAD nonce-sequence prefix for group-data traffic under the
/// shared `K_g` (derived from the sender identity so members sharing the
/// key never collide).
pub(crate) fn group_seq_prefix(sender: &ActorId) -> [u8; 4] {
    let digest = sha256(format!("enclaves-group-data:{sender}").as_bytes());
    [digest[0], digest[1], digest[2], digest[3]]
}

/// AEAD nonce for the leader's data-plane broadcast `seq` in an epoch:
/// the epoch IV with its last 8 bytes XORed with the big-endian sequence
/// number. Distinct sequence numbers give distinct nonces under one
/// `(key, IV)` pair, and the member re-derives the same nonce from the
/// `(epoch, seq)` pair on the wire — no nonce bytes are transmitted.
pub(crate) fn broadcast_nonce(iv: &[u8; 12], seq: u64) -> AeadNonce {
    let mut bytes = *iv;
    for (dst, src) in bytes[4..].iter_mut().zip(seq.to_be_bytes()) {
        *dst ^= src;
    }
    AeadNonce::from_bytes(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_prefixes_differ_per_sender() {
        let a = group_seq_prefix(&ActorId::new("alice").unwrap());
        let b = group_seq_prefix(&ActorId::new("bob").unwrap());
        assert_ne!(a, b);
        // Deterministic.
        assert_eq!(a, group_seq_prefix(&ActorId::new("alice").unwrap()));
    }

    #[test]
    fn directional_prefixes_differ() {
        assert_ne!(SEQ_LEADER, SEQ_MEMBER);
    }

    #[test]
    fn broadcast_nonces_are_distinct_and_deterministic() {
        let iv = [7u8; 12];
        let n0 = broadcast_nonce(&iv, 0);
        let n1 = broadcast_nonce(&iv, 1);
        let n_big = broadcast_nonce(&iv, u64::MAX);
        assert_ne!(n0.as_bytes(), n1.as_bytes());
        assert_ne!(n0.as_bytes(), n_big.as_bytes());
        assert_ne!(n1.as_bytes(), n_big.as_bytes());
        assert_eq!(n0.as_bytes(), broadcast_nonce(&iv, 0).as_bytes());
        // Seq 0 leaves the IV untouched; others only touch the tail.
        assert_eq!(n0.as_bytes(), &iv);
        assert_eq!(&n1.as_bytes()[..4], &iv[..4]);
    }
}
