//! Sans-I/O state machines for the improved protocol (Section 3.2).
//!
//! [`MemberSession`] implements the user machine of Figure 2 and
//! [`LeaderCore`] the leader of Figure 3 (one slot per member). Both
//! consume [`enclaves_wire::message::Envelope`]s and produce envelopes plus
//! events; they perform no I/O, so the same code is driven by the threaded
//! runtime, by the integration tests, and by the attack scripts.
//!
//! # Intrusion tolerance contract
//!
//! `handle` returns `Err(CoreError::Rejected(_))` for any message that
//! fails authentication, parses badly, carries wrong identities, or
//! presents a stale nonce. **Rejection never mutates session state**: a
//! flood of forged traffic leaves an honest session exactly where it was.
//! Tests in this module and in `attacks` rely on that contract.

pub mod leader;
pub mod member;

pub use leader::{LeaderCore, LeaderEvent, LeaderOutput, LeaderStats};
pub use member::{MemberEvent, MemberOutput, MemberSession, SessionPhase};

use enclaves_crypto::sha256::sha256;
use enclaves_wire::ActorId;

/// AEAD nonce-sequence prefix for leader → member traffic under `K_a`.
pub(crate) const SEQ_LEADER: [u8; 4] = *b"ldr>";
/// AEAD nonce-sequence prefix for member → leader traffic under `K_a`.
pub(crate) const SEQ_MEMBER: [u8; 4] = *b"mbr>";

/// Per-sender AEAD nonce-sequence prefix for group-data traffic under the
/// shared `K_g` (derived from the sender identity so members sharing the
/// key never collide).
pub(crate) fn group_seq_prefix(sender: &ActorId) -> [u8; 4] {
    let digest = sha256(format!("enclaves-group-data:{sender}").as_bytes());
    [digest[0], digest[1], digest[2], digest[3]]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_prefixes_differ_per_sender() {
        let a = group_seq_prefix(&ActorId::new("alice").unwrap());
        let b = group_seq_prefix(&ActorId::new("bob").unwrap());
        assert_ne!(a, b);
        // Deterministic.
        assert_eq!(a, group_seq_prefix(&ActorId::new("alice").unwrap()));
    }

    #[test]
    fn directional_prefixes_differ() {
        assert_ne!(SEQ_LEADER, SEQ_MEMBER);
    }
}
