//! The member side of the improved protocol — the user machine of
//! Figure 2, over real cryptography.

use crate::error::{CoreError, RejectReason};
use crate::group::MemberGroupView;
use crate::protocol::keytree::{update_secret_node, MemberTree};
use crate::protocol::{broadcast_nonce, group_seq_prefix, SEQ_MEMBER};
use enclaves_crypto::aead::ChaCha20Poly1305;
use enclaves_crypto::keys::{GroupKey, LongTermKey, SessionKey};
use enclaves_crypto::nonce::{AeadNonce, NonceSequence, ProtocolNonce};
use enclaves_crypto::rng::{CryptoRng, OsEntropyRng};
use enclaves_crypto::treekdf;
use enclaves_obs::{Counter, EventKind, EventStream, Registry};
use enclaves_wire::codec::encode;
use enclaves_wire::message::{
    group_broadcast_aad, group_data_aad, open, path_update_aad, seal, AdminPayload, AdminPlain,
    AuthInitPlain, Envelope, GroupBroadcastWire, GroupDataWire, HeartbeatPlain, KeyDistPlain,
    MsgType, NonceAckPlain, PathUpdateWire, SealedBody,
};
use enclaves_wire::{ActorId, GroupId};
use std::collections::BTreeSet;

/// The coarse phase of a member session (mirrors Figure 2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SessionPhase {
    /// `AuthInitReq` sent; awaiting the leader's key distribution.
    WaitingForKey,
    /// Session established.
    Connected,
    /// Closed by [`MemberSession::leave`].
    Closed,
}

/// Events surfaced to the application.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MemberEvent {
    /// Authentication completed; the session key is installed.
    SessionEstablished,
    /// The leader delivered the initial roster and group key.
    Welcomed {
        /// Current members.
        roster: Vec<ActorId>,
        /// Group-key epoch installed.
        epoch: u64,
    },
    /// The group key was rotated.
    GroupKeyChanged {
        /// The new epoch.
        epoch: u64,
    },
    /// Another member joined.
    MemberJoined(ActorId),
    /// Another member left.
    MemberLeft(ActorId),
    /// Application data delivered over the admin channel.
    AdminData(Vec<u8>),
    /// Group data relayed by the leader.
    GroupData {
        /// The original sender.
        from: ActorId,
        /// Decrypted application bytes.
        data: Vec<u8>,
    },
    /// Application data broadcast by the leader over the single-seal
    /// group-key data plane.
    Broadcast {
        /// The group-key epoch the frame was sealed under.
        epoch: u64,
        /// The per-epoch broadcast sequence number.
        seq: u64,
        /// Decrypted application bytes.
        data: Vec<u8>,
    },
    /// The runtime's liveness layer presumed the leader dead (heartbeat
    /// silence or repeated send failures). If auto-rejoin is configured
    /// the runtime reconnects next; otherwise this is terminal.
    LeaderLost,
    /// The runtime is rejoining as a fresh session after leader loss:
    /// everything the previous session held (key material, roster, group
    /// view) is discarded and a new handshake begins.
    RejoinStarted,
}

/// Output of handling one envelope.
#[derive(Debug, Default)]
pub struct MemberOutput {
    /// A reply to send to the leader, if any.
    pub reply: Option<Envelope>,
    /// Events for the application.
    pub events: Vec<MemberEvent>,
}

/// Counters describing what the session has seen.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Messages accepted.
    pub accepted: u64,
    /// Messages rejected (attack traffic or corruption).
    pub rejected: u64,
    /// Admin messages accepted.
    pub admin_accepted: u64,
    /// Handshake frames re-sent by the runtime's ARQ timer, reported via
    /// [`MemberSession::note_retransmit`].
    pub retransmits: u64,
    /// Heartbeat pings sent via [`MemberSession::heartbeat`].
    pub heartbeats: u64,
    /// Fresh sessions started by the runtime's auto-rejoin after leader
    /// loss, reported via [`MemberSession::note_rejoin`].
    pub rejoins: u64,
}

/// Registry-backed member instrumentation. [`SessionStats`] remains the
/// public read-side view; counters live in an `enclaves-obs` [`Registry`]
/// (atomic, snapshot-able) and protocol actions optionally emit onto a
/// shared [`EventStream`].
struct MemberObs {
    registry: Registry,
    accepted: Counter,
    rejected: Counter,
    admin_accepted: Counter,
    retransmits: Counter,
    heartbeats: Counter,
    rejoins: Counter,
    events: Option<EventStream>,
}

impl MemberObs {
    fn new() -> Self {
        Self::on_registry(Registry::new())
    }

    fn on_registry(registry: Registry) -> Self {
        MemberObs {
            accepted: registry.counter("member.accepted"),
            rejected: registry.counter("member.rejected"),
            admin_accepted: registry.counter("member.admin_accepted"),
            retransmits: registry.counter("member.retransmits"),
            heartbeats: registry.counter("member.heartbeats"),
            rejoins: registry.counter("member.rejoins"),
            events: None,
            registry,
        }
    }

    /// Emits onto the attached stream, building the event lazily so a
    /// detached session never pays for payload clones.
    fn emit(&self, kind: impl FnOnce() -> EventKind) {
        if let Some(events) = &self.events {
            events.emit(kind());
        }
    }

    fn stats(&self) -> SessionStats {
        SessionStats {
            accepted: self.accepted.get(),
            rejected: self.rejected.get(),
            admin_accepted: self.admin_accepted.get(),
            retransmits: self.retransmits.get(),
            heartbeats: self.heartbeats.get(),
            rejoins: self.rejoins.get(),
        }
    }
}

struct Connected {
    session_key: SessionKey,
    /// The last nonce this member generated (`N_{2i+1}`): the one the next
    /// `AdminMsg` must echo.
    my_nonce: ProtocolNonce,
    send_seq: NonceSequence,
    group: Option<MemberGroupView>,
    /// The immediately previous group key, kept for one epoch of grace so
    /// a broadcast frame that races a rekey can still be opened. Older
    /// epochs are evicted and their frames rejected.
    prev_group: Option<MemberGroupView>,
    /// Highest broadcast sequence number accepted under the *current*
    /// epoch (`None` before the first). Broadcast seqs must strictly
    /// increase within an epoch — replayed or reordered frames are
    /// rejected without touching state.
    bcast_seen_cur: Option<u64>,
    /// Same watermark for the previous epoch, so a cross-epoch replay of
    /// an already-delivered frame stays rejected after a rekey.
    bcast_seen_prev: Option<u64>,
    group_seq: NonceSequence,
    roster: BTreeSet<ActorId>,
    /// The most recently accepted admin message's leader nonce and the ack
    /// sent for it: a retransmitted duplicate gets the cached ack again
    /// (stop-and-wait ARQ), everything else stale is rejected.
    last_ack: Option<(ProtocolNonce, Envelope)>,
    /// Heartbeat ping sequence: pre-incremented per ping, so the leader
    /// can reject replayed pings (and we can reject forged pongs claiming
    /// a sequence we never sent).
    hb_seq: u64,
    /// Tree-rekey state: this member's direct path in the leader's key
    /// tree, seeded by an admin `PathSync` and advanced by `PathUpdate`
    /// broadcasts. `None` for flat-mode sessions.
    tree: Option<MemberTree>,
}

impl Connected {
    /// Installs a strictly newer group epoch, keeping one epoch of grace
    /// for broadcast frames sealed before the rekey reached us — shared by
    /// the `NewGroupKey`, `PathSync`, and `PathUpdate` install paths.
    fn install_epoch(&mut self, epoch: u64, key: GroupKey, iv: [u8; 12]) -> bool {
        match &mut self.group {
            Some(view) => {
                let old = view.clone();
                let ok = view.install(epoch, key, iv);
                if ok {
                    self.prev_group = Some(old);
                    self.bcast_seen_prev = self.bcast_seen_cur;
                    self.bcast_seen_cur = None;
                }
                ok
            }
            none => {
                *none = Some(MemberGroupView { epoch, key, iv });
                true
            }
        }
    }
}

enum Phase {
    WaitingForKey { n1: ProtocolNonce },
    Connected(Box<Connected>),
    Closed,
}

/// A member session: the user state machine of Figure 2.
pub struct MemberSession {
    user: ActorId,
    leader: ActorId,
    /// The enclave this session belongs to inside a multi-enclave service
    /// (`None` for single-group legacy deployments). Outgoing envelopes
    /// carry the tag; incoming envelopes tagged for any other enclave —
    /// or untagged when a tag is expected — are rejected before dispatch,
    /// and multicast AADs are computed from this configured value rather
    /// than the (unauthenticated) envelope header.
    enclave: Option<GroupId>,
    long_term: LongTermKey,
    rng: Box<dyn CryptoRng>,
    phase: Phase,
    obs: MemberObs,
    /// The handshake message to retransmit until the exchange completes:
    /// the `AuthInitReq` while waiting for the key, then the `AuthAckKey`
    /// until the first admin message (the welcome) is accepted.
    handshake_pending: Option<Envelope>,
    /// Test-only sabotage switch: when set, the broadcast watermark check
    /// is skipped, so replayed or reordered broadcast frames are delivered
    /// again. Exists solely so the chaos oracle can prove it detects the
    /// resulting duplicate deliveries.
    broadcast_watermark_disabled: bool,
}

impl std::fmt::Debug for MemberSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemberSession")
            .field("user", &self.user)
            .field("leader", &self.leader)
            .field("phase", &self.phase())
            .field("stats", &self.obs.stats())
            .finish()
    }
}

impl MemberSession {
    /// Starts a session from a password: derives `P_a`, generates `N1`,
    /// and returns the session plus the `AuthInitReq` envelope to send.
    ///
    /// # Errors
    ///
    /// Propagates key-derivation failures.
    pub fn start(
        user: ActorId,
        leader: ActorId,
        password: &str,
    ) -> Result<(Self, Envelope), CoreError> {
        let key = LongTermKey::derive_from_password(password, user.as_str())?;
        Ok(Self::start_with_key(
            user,
            leader,
            key,
            Box::new(OsEntropyRng::new()),
        ))
    }

    /// [`MemberSession::start`] for one enclave of a multi-enclave
    /// service: the `AuthInitReq` (and every later envelope) carries the
    /// group tag, AEAD-bound via the header, and the session rejects
    /// frames tagged for any other enclave.
    ///
    /// # Errors
    ///
    /// Propagates key-derivation failures.
    pub fn start_in_group(
        user: ActorId,
        leader: ActorId,
        password: &str,
        group: Option<GroupId>,
    ) -> Result<(Self, Envelope), CoreError> {
        let key = LongTermKey::derive_from_password(password, user.as_str())?;
        Ok(Self::start_with_key_in_group(
            user,
            leader,
            key,
            Box::new(OsEntropyRng::new()),
            group,
        ))
    }

    /// Starts a session authenticated by X25519 public keys instead of a
    /// password (the paper's footnote-1 variant): `P_a` is derived from
    /// the static-static Diffie-Hellman shared secret, bound to both
    /// identities. The leader must have registered this user's public key
    /// via [`crate::directory::Directory::register_public_key`].
    ///
    /// # Errors
    ///
    /// Rejects low-order leader public keys.
    pub fn start_with_static_keys(
        user: ActorId,
        leader: ActorId,
        user_secret: &enclaves_crypto::x25519::StaticSecret,
        leader_public: &enclaves_crypto::x25519::PublicKey,
    ) -> Result<(Self, Envelope), CoreError> {
        let key = enclaves_crypto::x25519::derive_long_term_key(
            user_secret,
            leader_public,
            user.as_str(),
            leader.as_str(),
        )?;
        Ok(Self::start_with_key(
            user,
            leader,
            key,
            Box::new(OsEntropyRng::new()),
        ))
    }

    /// Starts a session with an explicit long-term key and RNG
    /// (deterministic in tests).
    #[must_use]
    pub fn start_with_key(
        user: ActorId,
        leader: ActorId,
        long_term: LongTermKey,
        rng: Box<dyn CryptoRng>,
    ) -> (Self, Envelope) {
        Self::start_with_key_in_group(user, leader, long_term, rng, None)
    }

    /// [`MemberSession::start_with_key`] scoped to one enclave of a
    /// multi-enclave service (`None` keeps the legacy single-group wire).
    #[must_use]
    pub fn start_with_key_in_group(
        user: ActorId,
        leader: ActorId,
        long_term: LongTermKey,
        mut rng: Box<dyn CryptoRng>,
        group: Option<GroupId>,
    ) -> (Self, Envelope) {
        let n1 = ProtocolNonce::generate(rng.as_mut());
        let mut env = Envelope {
            msg_type: MsgType::AuthInitReq,
            sender: user.clone(),
            recipient: leader.clone(),
            group: group.clone(),
            body: Vec::new(),
        };
        let plain = AuthInitPlain {
            user: user.clone(),
            leader: leader.clone(),
            nonce: n1,
        };
        // One-shot AEAD nonce for the long-term key: random 96 bits. P_a
        // seals at most a handful of messages per session, so random nonces
        // are safe; the session key uses counters.
        let mut nonce_bytes = [0u8; 12];
        rng.fill_bytes(&mut nonce_bytes);
        env.body = seal(
            long_term.as_bytes(),
            enclaves_crypto::nonce::AeadNonce::from_bytes(nonce_bytes),
            &env.header_aad(),
            &plain,
        );
        (
            MemberSession {
                user,
                leader,
                enclave: group,
                long_term,
                rng,
                phase: Phase::WaitingForKey { n1 },
                obs: MemberObs::new(),
                handshake_pending: Some(env.clone()),
                broadcast_watermark_disabled: false,
            },
            env,
        )
    }

    /// The enclave this session belongs to, when part of a multi-enclave
    /// service.
    #[must_use]
    pub fn group_id(&self) -> Option<&GroupId> {
        self.enclave.as_ref()
    }

    /// Disables the broadcast replay watermark — a deliberately planted
    /// protocol violation for exercising the chaos harness's invariant
    /// oracle. Never call this outside of tests.
    #[doc(hidden)]
    pub fn disable_broadcast_watermark_for_tests(&mut self) {
        self.broadcast_watermark_disabled = true;
    }

    /// The current phase.
    #[must_use]
    pub fn phase(&self) -> SessionPhase {
        match self.phase {
            Phase::WaitingForKey { .. } => SessionPhase::WaitingForKey,
            Phase::Connected(_) => SessionPhase::Connected,
            Phase::Closed => SessionPhase::Closed,
        }
    }

    /// This member's identity.
    #[must_use]
    pub fn user(&self) -> &ActorId {
        &self.user
    }

    /// The member's current view of the roster (empty before the welcome).
    #[must_use]
    pub fn roster(&self) -> Vec<ActorId> {
        match &self.phase {
            Phase::Connected(c) => c.roster.iter().cloned().collect(),
            _ => Vec::new(),
        }
    }

    /// The group-key epoch currently held, if any.
    #[must_use]
    pub fn group_epoch(&self) -> Option<u64> {
        match &self.phase {
            Phase::Connected(c) => c.group.as_ref().map(|g| g.epoch),
            _ => None,
        }
    }

    /// Session statistics — a compatibility view assembled from the
    /// registry-backed counters.
    #[must_use]
    pub fn stats(&self) -> SessionStats {
        self.obs.stats()
    }

    /// The metric registry this session records into (`member.*` names).
    /// Clones share the counters.
    #[must_use]
    pub fn obs_registry(&self) -> Registry {
        self.obs.registry.clone()
    }

    /// Attaches a protocol event stream; subsequent protocol actions emit
    /// [`EventKind`]s onto it.
    pub fn set_event_stream(&mut self, events: EventStream) {
        self.obs.events = Some(events);
    }

    /// Records `frames` handshake retransmissions performed by the
    /// runtime's ARQ timer on this session's behalf.
    pub fn note_retransmit(&self, frames: u64) {
        if frames == 0 {
            return;
        }
        self.obs.retransmits.add(frames);
        self.obs.emit(|| EventKind::Retransmit {
            actor: self.user.to_string(),
            frames,
        });
    }

    /// The handshake message to retransmit, if the handshake has not
    /// completed (used by the runtime's retransmission timer; re-delivery
    /// is idempotent on the leader side).
    #[must_use]
    pub fn handshake_pending(&self) -> Option<&Envelope> {
        self.handshake_pending.as_ref()
    }

    /// Handles an incoming envelope.
    ///
    /// # Errors
    ///
    /// [`CoreError::Rejected`] if the message is inauthentic, malformed,
    /// stale, or unexpected; state is unchanged in that case.
    pub fn handle(&mut self, env: &Envelope) -> Result<MemberOutput, CoreError> {
        let result = self.handle_inner(env);
        match &result {
            Ok(_) => self.obs.accepted.inc(),
            Err(_) => self.obs.rejected.inc(),
        }
        result
    }

    fn handle_inner(&mut self, env: &Envelope) -> Result<MemberOutput, CoreError> {
        // `GroupBroadcast` and `PathUpdate` are multicast: the identical
        // frame reaches every member, so the envelope recipient is not
        // this user and is not checked — authenticity comes from the inner
        // seals, whose AAD binds the leader and epoch (plus sequence or
        // tree position).
        let multicast = matches!(env.msg_type, MsgType::GroupBroadcast | MsgType::PathUpdate);
        if !multicast && env.recipient != self.user {
            return Err(CoreError::Rejected(RejectReason::WrongIdentity));
        }
        // Cross-enclave traffic is rejected before dispatch. The header
        // tag is unauthenticated, but lying about it cannot help an
        // attacker: every seal binds the tag via the header AAD, and the
        // multicast AADs below are computed from this session's own
        // configured enclave, never from the envelope.
        if env.group != self.enclave {
            return Err(CoreError::Rejected(RejectReason::WrongEnclave));
        }
        match (&mut self.phase, env.msg_type) {
            (Phase::WaitingForKey { n1 }, MsgType::AuthKeyDist) => {
                let n1 = *n1;
                self.accept_key_dist(env, n1)
            }
            (Phase::Connected(_), MsgType::AdminMsg) => self.accept_admin(env),
            (Phase::Connected(_), MsgType::GroupData) => self.accept_group_data(env),
            (Phase::Connected(_), MsgType::GroupBroadcast) => self.accept_broadcast(env),
            (Phase::Connected(_), MsgType::PathUpdate) => self.accept_path_update(env),
            (Phase::Connected(_), MsgType::Heartbeat) => self.accept_heartbeat_pong(env),
            _ => Err(CoreError::Rejected(RejectReason::UnexpectedType)),
        }
    }

    fn accept_key_dist(
        &mut self,
        env: &Envelope,
        n1: ProtocolNonce,
    ) -> Result<MemberOutput, CoreError> {
        let plain: KeyDistPlain = open(self.long_term.as_bytes(), &env.header_aad(), &env.body)?;
        if plain.leader != self.leader || plain.user != self.user {
            return Err(CoreError::Rejected(RejectReason::WrongIdentity));
        }
        if plain.user_nonce != n1 {
            return Err(CoreError::Rejected(RejectReason::StaleNonce));
        }
        let session_key = SessionKey::from_bytes(plain.session_key);
        let n3 = ProtocolNonce::generate(self.rng.as_mut());
        let mut send_seq = NonceSequence::new(SEQ_MEMBER);

        let mut reply = Envelope {
            msg_type: MsgType::AuthAckKey,
            sender: self.user.clone(),
            recipient: self.leader.clone(),
            group: self.enclave.clone(),
            body: Vec::new(),
        };
        let ack = NonceAckPlain {
            user: self.user.clone(),
            leader: self.leader.clone(),
            acked_nonce: plain.leader_nonce,
            next_nonce: n3,
        };
        reply.body = seal(
            session_key.as_bytes(),
            send_seq.next()?,
            &reply.header_aad(),
            &ack,
        );

        self.phase = Phase::Connected(Box::new(Connected {
            session_key,
            my_nonce: n3,
            send_seq,
            group: None,
            prev_group: None,
            bcast_seen_cur: None,
            bcast_seen_prev: None,
            group_seq: NonceSequence::new(group_seq_prefix(&self.user)),
            roster: BTreeSet::new(),
            last_ack: None,
            hb_seq: 0,
            tree: None,
        }));
        self.handshake_pending = Some(reply.clone());
        self.obs.emit(|| EventKind::SessionEstablished {
            member: self.user.to_string(),
        });
        Ok(MemberOutput {
            reply: Some(reply),
            events: vec![MemberEvent::SessionEstablished],
        })
    }

    fn accept_admin(&mut self, env: &Envelope) -> Result<MemberOutput, CoreError> {
        let Phase::Connected(conn) = &mut self.phase else {
            unreachable!("checked by caller");
        };
        let plain: AdminPlain = open(conn.session_key.as_bytes(), &env.header_aad(), &env.body)?;
        if plain.leader != self.leader || plain.user != self.user {
            return Err(CoreError::Rejected(RejectReason::WrongIdentity));
        }
        // The replay defense: the admin message must echo the nonce this
        // member generated most recently (`N_{2i+1}` in the paper).
        if plain.user_nonce != conn.my_nonce {
            // Exception: a verbatim retransmission of the message we just
            // accepted (its ack may have been lost) is re-acknowledged
            // with the cached ack — no state change, no event.
            if let Some((acked, cached)) = &conn.last_ack {
                if *acked == plain.leader_nonce {
                    return Ok(MemberOutput {
                        reply: Some(cached.clone()),
                        events: vec![],
                    });
                }
            }
            return Err(CoreError::Rejected(RejectReason::StaleNonce));
        }

        let next = ProtocolNonce::generate(self.rng.as_mut());
        let mut reply = Envelope {
            msg_type: MsgType::Ack,
            sender: self.user.clone(),
            recipient: self.leader.clone(),
            group: self.enclave.clone(),
            body: Vec::new(),
        };
        let ack = NonceAckPlain {
            user: self.user.clone(),
            leader: self.leader.clone(),
            acked_nonce: plain.leader_nonce,
            next_nonce: next,
        };
        reply.body = seal(
            conn.session_key.as_bytes(),
            conn.send_seq.next()?,
            &reply.header_aad(),
            &ack,
        );
        conn.last_ack = Some((plain.leader_nonce, reply.clone()));
        conn.my_nonce = next;
        self.obs.admin_accepted.inc();
        // The first accepted admin message completes the handshake from
        // the member's perspective.
        self.handshake_pending = None;

        let mut events = Vec::new();
        match plain.payload {
            AdminPayload::Welcome {
                members,
                epoch,
                group_key,
                iv,
            } => {
                conn.roster = members.iter().cloned().collect();
                conn.group = Some(MemberGroupView {
                    epoch,
                    key: GroupKey::from_bytes(group_key),
                    iv,
                });
                // A welcome starts broadcast history from scratch: no
                // previous epoch, no accepted frames yet.
                conn.prev_group = None;
                conn.bcast_seen_cur = None;
                conn.bcast_seen_prev = None;
                self.obs.emit(|| EventKind::Welcomed {
                    member: self.user.to_string(),
                    epoch,
                });
                events.push(MemberEvent::Welcomed {
                    roster: members,
                    epoch,
                });
            }
            AdminPayload::NewGroupKey { epoch, key, iv } => {
                // Keep one epoch of grace for broadcast frames that were
                // sealed before this rekey reached us, along with its
                // replay watermark.
                if conn.install_epoch(epoch, GroupKey::from_bytes(key), iv) {
                    self.obs.emit(|| EventKind::KeyChanged {
                        member: self.user.to_string(),
                        epoch,
                    });
                    events.push(MemberEvent::GroupKeyChanged { epoch });
                }
                // A non-increasing epoch is impossible from the honest
                // leader and unreachable for attackers (they cannot forge
                // AdminMsg); ignoring it is defense in depth.
            }
            AdminPayload::PathSync {
                epoch,
                leaf_index,
                leaf_count,
                path_keys,
            } => {
                // Authenticated full-path resync (join seed, reinit, or a
                // heartbeat-detected missed PathUpdate). A stale epoch is
                // ignored wholesale: an old path must not roll the tree
                // back any more than an old key may roll the epoch back.
                let current = conn.group.as_ref().map_or(0, |g| g.epoch);
                if epoch >= current {
                    if let Some(tree) = MemberTree::from_sync(leaf_index, leaf_count, &path_keys) {
                        let root = *tree.root_key().expect("from_sync paths reach the root");
                        conn.tree = Some(tree);
                        if epoch > current {
                            let (key, iv) = treekdf::derive_group(&root, epoch);
                            if conn.install_epoch(epoch, GroupKey::from_bytes(key), iv) {
                                self.obs.emit(|| EventKind::KeyChanged {
                                    member: self.user.to_string(),
                                    epoch,
                                });
                                events.push(MemberEvent::GroupKeyChanged { epoch });
                            }
                        }
                    }
                }
            }
            AdminPayload::MemberJoined(m) => {
                conn.roster.insert(m.clone());
                events.push(MemberEvent::MemberJoined(m));
            }
            AdminPayload::MemberLeft(m) => {
                conn.roster.remove(&m);
                events.push(MemberEvent::MemberLeft(m));
            }
            AdminPayload::AppData(data) => {
                self.obs.emit(|| EventKind::AdminDeliver {
                    member: self.user.to_string(),
                    payload: data.to_vec(),
                });
                events.push(MemberEvent::AdminData(data.to_vec()));
            }
        }

        Ok(MemberOutput {
            reply: Some(reply),
            events,
        })
    }

    fn accept_group_data(&mut self, env: &Envelope) -> Result<MemberOutput, CoreError> {
        let Phase::Connected(conn) = &mut self.phase else {
            unreachable!("checked by caller");
        };
        let Some(group) = &conn.group else {
            return Err(CoreError::Rejected(RejectReason::WrongEpoch));
        };
        let wire: GroupDataWire = enclaves_wire::codec::decode(&env.body)
            .map_err(|_| CoreError::Rejected(RejectReason::Malformed))?;
        if wire.epoch != group.epoch {
            return Err(CoreError::Rejected(RejectReason::WrongEpoch));
        }
        let aad = group_data_aad(&env.sender, wire.epoch, self.enclave.as_ref());
        let cipher = enclaves_crypto::aead::ChaCha20Poly1305::new(group.key.as_bytes());
        let nonce = enclaves_crypto::nonce::AeadNonce::from_bytes(wire.sealed.nonce);
        let data = cipher
            .open(&nonce, &wire.sealed.ciphertext, &aad)
            .map_err(|_| CoreError::Rejected(RejectReason::BadSeal))?;
        Ok(MemberOutput {
            reply: None,
            events: vec![MemberEvent::GroupData {
                from: env.sender.clone(),
                data,
            }],
        })
    }

    /// Accepts a single-seal leader broadcast.
    ///
    /// The AAD is computed from the *configured* leader identity (not the
    /// envelope sender, which is unauthenticated), so a frame sealed by
    /// anyone but the leader fails verification. The nonce is re-derived
    /// from the epoch IV and on-wire sequence number. Frames sealed under
    /// the immediately previous epoch are still accepted (they may race a
    /// rekey in flight); each epoch keeps its own strictly-increasing
    /// watermark, so no frame — including cross-epoch replays — is ever
    /// delivered twice. No ack is sent: the data plane is fire-and-forget.
    fn accept_broadcast(&mut self, env: &Envelope) -> Result<MemberOutput, CoreError> {
        let Phase::Connected(conn) = &mut self.phase else {
            unreachable!("checked by caller");
        };
        let wire: GroupBroadcastWire = enclaves_wire::codec::decode(&env.body)
            .map_err(|_| CoreError::Rejected(RejectReason::Malformed))?;
        let is_current = matches!(&conn.group, Some(g) if g.epoch == wire.epoch);
        let view = if is_current {
            conn.group.as_ref().expect("matched above")
        } else if matches!(&conn.prev_group, Some(p) if p.epoch == wire.epoch) {
            conn.prev_group.as_ref().expect("matched above")
        } else {
            return Err(CoreError::Rejected(RejectReason::WrongEpoch));
        };
        let seen = if is_current {
            conn.bcast_seen_cur
        } else {
            conn.bcast_seen_prev
        };
        if !self.broadcast_watermark_disabled && seen.is_some_and(|s| wire.seq <= s) {
            return Err(CoreError::Rejected(RejectReason::StaleNonce));
        }
        let aad = group_broadcast_aad(&self.leader, wire.epoch, wire.seq, self.enclave.as_ref());
        let nonce = broadcast_nonce(&view.iv, wire.seq);
        let data = ChaCha20Poly1305::new(view.key.as_bytes())
            .open(&nonce, &wire.ciphertext, &aad)
            .map_err(|_| CoreError::Rejected(RejectReason::BadSeal))?;
        if is_current {
            conn.bcast_seen_cur = Some(wire.seq);
        } else {
            conn.bcast_seen_prev = Some(wire.seq);
        }
        self.obs.emit(|| EventKind::DataDeliver {
            member: self.user.to_string(),
            epoch: wire.epoch,
            seq: wire.seq,
            payload: data.clone(),
        });
        Ok(MemberOutput {
            reply: None,
            events: vec![MemberEvent::Broadcast {
                epoch: wire.epoch,
                seq: wire.seq,
                data,
            }],
        })
    }

    /// Accepts a tree-rekey `PathUpdate` multicast.
    ///
    /// Exactly one of its ciphers is addressed to a node on this member's
    /// direct path; opening it (under the stored key for that node, with
    /// the AAD binding leader, epoch, tree shape, and node) yields the
    /// path secret for the lowest rewritten node above us. Deriving up
    /// from there rewrites our stored keys to the root, and
    /// `derive_group(root, epoch)` is the new group key — installed with
    /// the same one-epoch broadcast grace as a flat `NewGroupKey`.
    ///
    /// The outer frame is plaintext, so every claim in it is verified
    /// cryptographically before any state changes: a stale or repeated
    /// epoch is a silent no-op (multicast duplicates are normal), a
    /// skipped epoch or an unopenable cipher set is rejected (heartbeat
    /// resync recovers the former; forgery is the latter).
    fn accept_path_update(&mut self, env: &Envelope) -> Result<MemberOutput, CoreError> {
        let Phase::Connected(conn) = &mut self.phase else {
            unreachable!("checked by caller");
        };
        let wire: PathUpdateWire = enclaves_wire::codec::decode(&env.body)
            .map_err(|_| CoreError::Rejected(RejectReason::Malformed))?;
        let current = conn.group.as_ref().map_or(0, |g| g.epoch);
        if wire.epoch <= current {
            return Ok(MemberOutput::default());
        }
        let Some(tree) = &mut conn.tree else {
            // No tree yet (pre-PathSync): nothing to derive from. The
            // leader notices our stale heartbeat epoch and resyncs us.
            return Ok(MemberOutput::default());
        };
        if wire.epoch != current + 1 {
            // We missed an epoch: our stored node keys cannot open this
            // update. Leader-driven resync recovers us.
            return Err(CoreError::Rejected(RejectReason::WrongEpoch));
        }
        let path = tree.path_nodes(wire.leaf_count);
        let mut opened: Option<[u8; 32]> = None;
        for (node, sealed) in &wire.ciphers {
            if !path.contains(node) {
                continue;
            }
            let Some(key) = tree.key_of(*node) else {
                continue;
            };
            let aad = path_update_aad(
                &self.leader,
                wire.epoch,
                wire.leaf_count,
                wire.updated_leaf,
                *node,
                self.enclave.as_ref(),
            );
            let nonce = AeadNonce::from_bytes(sealed.nonce);
            if let Ok(plain) = ChaCha20Poly1305::new(key).open(&nonce, &sealed.ciphertext, &aad) {
                if let Ok(secret) = <[u8; 32]>::try_from(plain.as_slice()) {
                    opened = Some(secret);
                    break;
                }
            }
        }
        let Some(secret) = opened else {
            // Nothing on our path opened: a forgery, a corrupt frame, or a
            // desynced tree. Reject without touching state.
            return Err(CoreError::Rejected(RejectReason::BadSeal));
        };
        let target = update_secret_node(tree.leaf_slot, wire.updated_leaf, wire.leaf_count);
        let root = tree.install_secret(target, &secret, wire.leaf_count);
        let (key, iv) = treekdf::derive_group(&root, wire.epoch);
        let epoch = wire.epoch;
        if conn.install_epoch(epoch, GroupKey::from_bytes(key), iv) {
            self.obs.emit(|| EventKind::KeyChanged {
                member: self.user.to_string(),
                epoch,
            });
            return Ok(MemberOutput {
                reply: None,
                events: vec![MemberEvent::GroupKeyChanged { epoch }],
            });
        }
        Ok(MemberOutput::default())
    }

    fn accept_heartbeat_pong(&mut self, env: &Envelope) -> Result<MemberOutput, CoreError> {
        let Phase::Connected(conn) = &mut self.phase else {
            unreachable!("checked by caller");
        };
        let plain: HeartbeatPlain =
            open(conn.session_key.as_bytes(), &env.header_aad(), &env.body)?;
        if plain.user != self.user || plain.leader != self.leader {
            return Err(CoreError::Rejected(RejectReason::WrongIdentity));
        }
        // The pong echoes one of our pings; a sequence we never sent is a
        // forgery attempt (impossible without the session key, but checked
        // anyway — defense in depth).
        if plain.seq > conn.hb_seq {
            return Err(CoreError::Rejected(RejectReason::StaleNonce));
        }
        Ok(MemberOutput::default())
    }

    /// Produces a heartbeat ping for the leader, sealed under the session
    /// key with a strictly increasing sequence. The runtime sends these
    /// when the channel is otherwise idle; any authenticated reply (the
    /// pong included) refreshes the leader-liveness deadline.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadPhase`] if not connected.
    pub fn heartbeat(&mut self) -> Result<Envelope, CoreError> {
        let Phase::Connected(conn) = &mut self.phase else {
            return Err(CoreError::BadPhase {
                operation: "heartbeat",
                phase: "not connected",
            });
        };
        conn.hb_seq += 1;
        let mut env = Envelope {
            msg_type: MsgType::Heartbeat,
            sender: self.user.clone(),
            recipient: self.leader.clone(),
            group: self.enclave.clone(),
            body: Vec::new(),
        };
        env.body = seal(
            conn.session_key.as_bytes(),
            conn.send_seq.next()?,
            &env.header_aad(),
            &HeartbeatPlain {
                user: self.user.clone(),
                leader: self.leader.clone(),
                seq: conn.hb_seq,
                // The authenticated epoch lets the leader detect a missed
                // PathUpdate and push a resync — without giving forgers a
                // way to request one.
                epoch: conn.group.as_ref().map_or(0, |g| g.epoch),
            },
        );
        self.obs.heartbeats.inc();
        Ok(env)
    }

    /// The long-term key this session authenticated with — the runtime's
    /// auto-rejoin starts the replacement session from it without
    /// re-deriving from the password.
    #[must_use]
    pub(crate) fn long_term_key(&self) -> LongTermKey {
        self.long_term.clone()
    }

    /// Re-homes this session's counters onto `registry` (preserving any
    /// attached event stream): a rejoin session keeps recording into the
    /// registry the observer captured when the runtime was spawned, so
    /// `member.*` metrics accumulate across session generations.
    pub(crate) fn adopt_registry(&mut self, registry: Registry) {
        let events = self.obs.events.take();
        self.obs = MemberObs::on_registry(registry);
        self.obs.events = events;
    }

    /// Records one auto-rejoin (a fresh session spawned after leader
    /// loss).
    pub(crate) fn note_rejoin(&self) {
        self.obs.rejoins.inc();
    }

    /// Seals application data for the group and returns the `GroupData`
    /// envelope to send to the leader for relay.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadPhase`] if not connected or not yet welcomed;
    /// [`CoreError::Crypto`] if the nonce sequence is exhausted.
    pub fn send_group_data(&mut self, data: &[u8]) -> Result<Envelope, CoreError> {
        let Phase::Connected(conn) = &mut self.phase else {
            return Err(CoreError::BadPhase {
                operation: "send group data",
                phase: "not connected",
            });
        };
        let Some(group) = &conn.group else {
            return Err(CoreError::BadPhase {
                operation: "send group data",
                phase: "awaiting welcome",
            });
        };
        let aad = group_data_aad(&self.user, group.epoch, self.enclave.as_ref());
        let nonce = conn.group_seq.next()?;
        let cipher = enclaves_crypto::aead::ChaCha20Poly1305::new(group.key.as_bytes());
        let ciphertext = cipher.seal(&nonce, data, &aad);
        let wire = GroupDataWire {
            epoch: group.epoch,
            sealed: SealedBody {
                nonce: *nonce.as_bytes(),
                ciphertext,
            },
        };
        Ok(Envelope {
            msg_type: MsgType::GroupData,
            sender: self.user.clone(),
            recipient: self.leader.clone(),
            group: self.enclave.clone(),
            body: encode(&wire),
        })
    }

    /// Leaves the session: returns the `ReqClose` envelope and transitions
    /// to [`SessionPhase::Closed`].
    ///
    /// # Errors
    ///
    /// [`CoreError::BadPhase`] if not connected.
    pub fn leave(&mut self) -> Result<Envelope, CoreError> {
        let Phase::Connected(conn) = &mut self.phase else {
            return Err(CoreError::BadPhase {
                operation: "leave",
                phase: "not connected",
            });
        };
        let mut env = Envelope {
            msg_type: MsgType::ReqClose,
            sender: self.user.clone(),
            recipient: self.leader.clone(),
            group: self.enclave.clone(),
            body: Vec::new(),
        };
        let plain = enclaves_wire::message::ClosePlain {
            user: self.user.clone(),
            leader: self.leader.clone(),
        };
        env.body = seal(
            conn.session_key.as_bytes(),
            conn.send_seq.next()?,
            &env.header_aad(),
            &plain,
        );
        self.phase = Phase::Closed;
        self.handshake_pending = None;
        self.obs.emit(|| EventKind::CloseRequested {
            member: self.user.to_string(),
        });
        Ok(env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enclaves_crypto::rng::SeededRng;
    use proptest::prelude::*;

    fn id(s: &str) -> ActorId {
        ActorId::new(s).unwrap()
    }

    fn start() -> (MemberSession, Envelope, LongTermKey) {
        let key = LongTermKey::derive_from_password("pw", "alice").unwrap();
        let (session, env) = MemberSession::start_with_key(
            id("alice"),
            id("leader"),
            key.clone(),
            Box::new(SeededRng::from_seed(7)),
        );
        (session, env, key)
    }

    /// Builds the leader's AuthKeyDist answer for a given init envelope.
    fn key_dist_for(
        init: &Envelope,
        long_term: &LongTermKey,
        session_key: [u8; 32],
        leader_nonce: ProtocolNonce,
    ) -> Envelope {
        let plain: AuthInitPlain =
            open(long_term.as_bytes(), &init.header_aad(), &init.body).unwrap();
        let mut env = Envelope {
            msg_type: MsgType::AuthKeyDist,
            sender: id("leader"),
            recipient: id("alice"),
            group: None,
            body: Vec::new(),
        };
        let kd = KeyDistPlain {
            leader: id("leader"),
            user: id("alice"),
            user_nonce: plain.nonce,
            leader_nonce,
            session_key,
        };
        env.body = seal(
            long_term.as_bytes(),
            enclaves_crypto::nonce::AeadNonce::from_bytes([0xEE; 12]),
            &env.header_aad(),
            &kd,
        );
        env
    }

    fn connect() -> (MemberSession, [u8; 32], ProtocolNonce) {
        let (mut session, init, key) = start();
        let sk = [0x42u8; 32];
        let kd = key_dist_for(&init, &key, sk, ProtocolNonce::from_bytes([9; 16]));
        let out = session.handle(&kd).unwrap();
        assert_eq!(out.events, vec![MemberEvent::SessionEstablished]);
        // Extract the member's N3 from the AuthAckKey reply.
        let reply = out.reply.unwrap();
        let ack: NonceAckPlain = open(&sk, &reply.header_aad(), &reply.body).unwrap();
        (session, sk, ack.next_nonce)
    }

    fn admin_env(
        sk: &[u8; 32],
        user_nonce: ProtocolNonce,
        leader_nonce: ProtocolNonce,
        payload: AdminPayload,
    ) -> Envelope {
        let mut env = Envelope {
            msg_type: MsgType::AdminMsg,
            sender: id("leader"),
            recipient: id("alice"),
            group: None,
            body: Vec::new(),
        };
        let plain = AdminPlain {
            leader: id("leader"),
            user: id("alice"),
            user_nonce,
            leader_nonce,
            payload,
        };
        env.body = seal(
            sk,
            enclaves_crypto::nonce::AeadNonce::from_bytes([0xDD; 12]),
            &env.header_aad(),
            &plain,
        );
        env
    }

    #[test]
    fn full_authentication_flow() {
        let (session, _, n3) = connect();
        assert_eq!(session.phase(), SessionPhase::Connected);
        let _ = n3;
    }

    #[test]
    fn key_dist_with_wrong_nonce_rejected() {
        let (mut session, init, key) = start();
        // Tamper: build a key dist echoing the wrong user nonce.
        let plain: AuthInitPlain = open(key.as_bytes(), &init.header_aad(), &init.body).unwrap();
        let mut wrong = plain.nonce.as_bytes().to_owned();
        wrong[0] ^= 1;
        let mut env = Envelope {
            msg_type: MsgType::AuthKeyDist,
            sender: id("leader"),
            recipient: id("alice"),
            group: None,
            body: Vec::new(),
        };
        let kd = KeyDistPlain {
            leader: id("leader"),
            user: id("alice"),
            user_nonce: ProtocolNonce::from_bytes(wrong),
            leader_nonce: ProtocolNonce::from_bytes([9; 16]),
            session_key: [1; 32],
        };
        env.body = seal(
            key.as_bytes(),
            enclaves_crypto::nonce::AeadNonce::from_bytes([0xEE; 12]),
            &env.header_aad(),
            &kd,
        );
        assert!(matches!(
            session.handle(&env),
            Err(CoreError::Rejected(RejectReason::StaleNonce))
        ));
        assert_eq!(session.phase(), SessionPhase::WaitingForKey);
    }

    #[test]
    fn key_dist_under_wrong_key_rejected() {
        let (mut session, init, key) = start();
        // Parse the genuine nonce with the right key, then seal the reply
        // under a *wrong* long-term key: the member must reject the seal.
        let plain: AuthInitPlain = open(key.as_bytes(), &init.header_aad(), &init.body).unwrap();
        let other = LongTermKey::derive_from_password("other", "alice").unwrap();
        let mut kd = Envelope {
            msg_type: MsgType::AuthKeyDist,
            sender: id("leader"),
            recipient: id("alice"),
            group: None,
            body: Vec::new(),
        };
        let kd_plain = KeyDistPlain {
            leader: id("leader"),
            user: id("alice"),
            user_nonce: plain.nonce,
            leader_nonce: ProtocolNonce::from_bytes([9; 16]),
            session_key: [1; 32],
        };
        kd.body = seal(
            other.as_bytes(),
            enclaves_crypto::nonce::AeadNonce::from_bytes([0xEE; 12]),
            &kd.header_aad(),
            &kd_plain,
        );
        assert!(matches!(
            session.handle(&kd),
            Err(CoreError::Rejected(RejectReason::BadSeal))
        ));
    }

    #[test]
    fn admin_with_current_nonce_accepted_and_rolls() {
        let (mut session, sk, n3) = connect();
        let ln = ProtocolNonce::from_bytes([0xAA; 16]);
        let env = admin_env(&sk, n3, ln, AdminPayload::AppData(b"x".to_vec().into()));
        let out = session.handle(&env).unwrap();
        assert_eq!(out.events, vec![MemberEvent::AdminData(b"x".to_vec())]);
        // The ack echoes the leader nonce and supplies a fresh one.
        let reply = out.reply.unwrap();
        assert_eq!(reply.msg_type, MsgType::Ack);
        let ack: NonceAckPlain = open(&sk, &reply.header_aad(), &reply.body).unwrap();
        assert_eq!(ack.acked_nonce, ln);
        assert_ne!(ack.next_nonce, n3);

        // Replaying the same AdminMsg is answered idempotently from the
        // ARQ cache: the identical ack is re-sent, no event fires, the
        // nonce does not roll again.
        let dup = session.handle(&env).unwrap();
        assert!(dup.events.is_empty(), "duplicate must not re-deliver");
        assert_eq!(
            dup.reply.as_ref().map(|e| &e.body),
            Some(&reply.body),
            "cached ack must be byte-identical"
        );
        assert_eq!(session.stats().admin_accepted, 1);

        // A *different* stale message (not the last accepted one) is
        // rejected outright.
        let stale = admin_env(
            &sk,
            n3,
            ProtocolNonce::from_bytes([0xBB; 16]),
            AdminPayload::AppData(b"y".to_vec().into()),
        );
        assert!(matches!(
            session.handle(&stale),
            Err(CoreError::Rejected(RejectReason::StaleNonce))
        ));
        assert_eq!(session.stats().rejected, 1);
    }

    #[test]
    fn welcome_installs_roster_and_group_key() {
        let (mut session, sk, n3) = connect();
        let env = admin_env(
            &sk,
            n3,
            ProtocolNonce::from_bytes([0xAB; 16]),
            AdminPayload::Welcome {
                members: vec![id("alice"), id("bob")],
                epoch: 1,
                group_key: [5; 32],
                iv: [6; 12],
            },
        );
        let out = session.handle(&env).unwrap();
        assert!(matches!(out.events[0], MemberEvent::Welcomed { .. }));
        assert_eq!(session.roster(), vec![id("alice"), id("bob")]);
        assert_eq!(session.group_epoch(), Some(1));
    }

    #[test]
    fn group_key_rollback_ignored() {
        let (mut session, sk, n3) = connect();
        // Welcome at epoch 5.
        let env = admin_env(
            &sk,
            n3,
            ProtocolNonce::from_bytes([0xAB; 16]),
            AdminPayload::Welcome {
                members: vec![id("alice")],
                epoch: 5,
                group_key: [5; 32],
                iv: [6; 12],
            },
        );
        let out = session.handle(&env).unwrap();
        let reply = out.reply.unwrap();
        let ack: NonceAckPlain = open(&sk, &reply.header_aad(), &reply.body).unwrap();
        // A (hypothetical) NewGroupKey with an older epoch is ignored.
        let env = admin_env(
            &sk,
            ack.next_nonce,
            ProtocolNonce::from_bytes([0xAC; 16]),
            AdminPayload::NewGroupKey {
                epoch: 3,
                key: [9; 32],
                iv: [9; 12],
            },
        );
        let out = session.handle(&env).unwrap();
        assert!(out.events.is_empty(), "rollback must not fire an event");
        assert_eq!(session.group_epoch(), Some(5));
    }

    #[test]
    fn group_data_roundtrip_between_members() {
        // Two members sharing a group key exchange data via sealed
        // GroupData envelopes (as relayed by the leader).
        let (mut alice, sk_a, n3_a) = connect();
        let welcome = AdminPayload::Welcome {
            members: vec![id("alice"), id("bob")],
            epoch: 2,
            group_key: [7; 32],
            iv: [1; 12],
        };
        alice
            .handle(&admin_env(
                &sk_a,
                n3_a,
                ProtocolNonce::from_bytes([1; 16]),
                welcome,
            ))
            .unwrap();

        let env = alice.send_group_data(b"hello bob").unwrap();
        assert_eq!(env.msg_type, MsgType::GroupData);

        // Bob's side: simulate with a second session sharing the key. We
        // hand-install the group view by replaying the same welcome.
        let key_b = LongTermKey::derive_from_password("pw", "bob").unwrap();
        let (mut bob, init_b) = MemberSession::start_with_key(
            id("bob"),
            id("leader"),
            key_b.clone(),
            Box::new(SeededRng::from_seed(8)),
        );
        let plain: AuthInitPlain =
            open(key_b.as_bytes(), &init_b.header_aad(), &init_b.body).unwrap();
        let mut kd_env = Envelope {
            msg_type: MsgType::AuthKeyDist,
            sender: id("leader"),
            recipient: id("bob"),
            group: None,
            body: Vec::new(),
        };
        let sk_b = [0x55u8; 32];
        let kd = KeyDistPlain {
            leader: id("leader"),
            user: id("bob"),
            user_nonce: plain.nonce,
            leader_nonce: ProtocolNonce::from_bytes([2; 16]),
            session_key: sk_b,
        };
        kd_env.body = seal(
            key_b.as_bytes(),
            enclaves_crypto::nonce::AeadNonce::from_bytes([0xEE; 12]),
            &kd_env.header_aad(),
            &kd,
        );
        let out = bob.handle(&kd_env).unwrap();
        let ack: NonceAckPlain = open(
            &sk_b,
            &out.reply.as_ref().unwrap().header_aad(),
            &out.reply.as_ref().unwrap().body,
        )
        .unwrap();
        let mut w_env = Envelope {
            msg_type: MsgType::AdminMsg,
            sender: id("leader"),
            recipient: id("bob"),
            group: None,
            body: Vec::new(),
        };
        let w_plain = AdminPlain {
            leader: id("leader"),
            user: id("bob"),
            user_nonce: ack.next_nonce,
            leader_nonce: ProtocolNonce::from_bytes([3; 16]),
            payload: AdminPayload::Welcome {
                members: vec![id("alice"), id("bob")],
                epoch: 2,
                group_key: [7; 32],
                iv: [1; 12],
            },
        };
        w_env.body = seal(
            &sk_b,
            enclaves_crypto::nonce::AeadNonce::from_bytes([0xDC; 12]),
            &w_env.header_aad(),
            &w_plain,
        );
        bob.handle(&w_env).unwrap();

        // The leader relays Alice's envelope to Bob (recipient rewritten).
        let relayed = Envelope {
            recipient: id("bob"),
            ..env
        };
        let out = bob.handle(&relayed).unwrap();
        assert_eq!(
            out.events,
            vec![MemberEvent::GroupData {
                from: id("alice"),
                data: b"hello bob".to_vec()
            }]
        );
    }

    #[test]
    fn group_data_wrong_epoch_rejected() {
        let (mut session, sk, n3) = connect();
        session
            .handle(&admin_env(
                &sk,
                n3,
                ProtocolNonce::from_bytes([1; 16]),
                AdminPayload::Welcome {
                    members: vec![id("alice")],
                    epoch: 2,
                    group_key: [7; 32],
                    iv: [1; 12],
                },
            ))
            .unwrap();
        let mut env = session.send_group_data(b"x").unwrap();
        // Tamper the epoch field.
        let mut wire: GroupDataWire = enclaves_wire::codec::decode(&env.body).unwrap();
        wire.epoch = 1;
        env.body = encode(&wire);
        env.recipient = id("alice");
        assert!(matches!(
            session.handle(&env),
            Err(CoreError::Rejected(RejectReason::WrongEpoch))
        ));
    }

    #[test]
    fn leave_produces_close_and_blocks_further_sends() {
        let (mut session, _, _) = connect();
        let close = session.leave().unwrap();
        assert_eq!(close.msg_type, MsgType::ReqClose);
        assert_eq!(session.phase(), SessionPhase::Closed);
        assert!(matches!(session.leave(), Err(CoreError::BadPhase { .. })));
        assert!(matches!(
            session.send_group_data(b"x"),
            Err(CoreError::BadPhase { .. })
        ));
    }

    #[test]
    fn messages_to_wrong_recipient_rejected() {
        let (mut session, sk, n3) = connect();
        let mut env = admin_env(
            &sk,
            n3,
            ProtocolNonce::from_bytes([1; 16]),
            AdminPayload::AppData(vec![].into()),
        );
        env.recipient = id("bob");
        assert!(matches!(
            session.handle(&env),
            Err(CoreError::Rejected(RejectReason::WrongIdentity))
        ));
    }

    #[test]
    fn admin_before_connection_rejected() {
        let (mut session, _, _) = start();
        let env = admin_env(
            &[0; 32],
            ProtocolNonce::from_bytes([0; 16]),
            ProtocolNonce::from_bytes([1; 16]),
            AdminPayload::AppData(vec![].into()),
        );
        assert!(matches!(
            session.handle(&env),
            Err(CoreError::Rejected(RejectReason::UnexpectedType))
        ));
    }

    #[test]
    fn rejection_does_not_change_state() {
        let (mut session, sk, n3) = connect();
        let before_epoch = session.group_epoch();
        // A barrage of garbage.
        for i in 0..20u8 {
            let mut env = admin_env(
                &sk,
                n3,
                ProtocolNonce::from_bytes([i; 16]),
                AdminPayload::AppData(vec![i].into()),
            );
            env.body[10] ^= 0xFF; // corrupt the seal
            assert!(session.handle(&env).is_err());
        }
        assert_eq!(session.phase(), SessionPhase::Connected);
        assert_eq!(session.group_epoch(), before_epoch);
        assert_eq!(session.stats().rejected, 20);
        // The genuine message still works.
        let env = admin_env(
            &sk,
            n3,
            ProtocolNonce::from_bytes([0xAA; 16]),
            AdminPayload::AppData(b"real".to_vec().into()),
        );
        assert!(session.handle(&env).is_ok());
    }

    /// Seals a single-seal leader broadcast exactly as the leader does
    /// (see `broadcast_group_data`): payload under the epoch group key,
    /// nonce derived from the epoch IV and `seq`, AAD binding leader
    /// identity, epoch, and `seq`.
    fn broadcast_env(epoch: u64, seq: u64, key: &[u8; 32], iv: &[u8; 12], data: &[u8]) -> Envelope {
        let aad = group_broadcast_aad(&id("leader"), epoch, seq, None);
        let nonce = broadcast_nonce(iv, seq);
        let ciphertext = ChaCha20Poly1305::new(key).seal(&nonce, data, &aad);
        Envelope {
            msg_type: MsgType::GroupBroadcast,
            sender: id("leader"),
            recipient: id("leader"),
            group: None,
            body: encode(&GroupBroadcastWire {
                epoch,
                seq,
                ciphertext,
            }),
        }
    }

    /// Connects and welcomes the member into a group at `epoch`, returning
    /// the session, the session key, and the admin nonce to chain from.
    fn connect_welcomed(
        epoch: u64,
        key: [u8; 32],
        iv: [u8; 12],
    ) -> (MemberSession, [u8; 32], ProtocolNonce) {
        let (mut session, sk, n3) = connect();
        let out = session
            .handle(&admin_env(
                &sk,
                n3,
                ProtocolNonce::from_bytes([0xA1; 16]),
                AdminPayload::Welcome {
                    members: vec![id("alice")],
                    epoch,
                    group_key: key,
                    iv,
                },
            ))
            .unwrap();
        let reply = out.reply.unwrap();
        let ack: NonceAckPlain = open(&sk, &reply.header_aad(), &reply.body).unwrap();
        (session, sk, ack.next_nonce)
    }

    /// In-place Fisher–Yates under the test's own RNG (the vendored rand
    /// has no `SliceRandom`).
    fn shuffle<T>(rng: &mut rand::rngs::StdRng, items: &mut [T]) {
        use rand::Rng;
        for i in (1..items.len()).rev() {
            items.swap(i, rng.gen_range(0..i + 1));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The broadcast replay watermark, confronted with arbitrary
        /// seeded interleavings of duplicates and reorders across a rekey:
        /// every `(epoch, seq)` is delivered at most once, acceptance
        /// matches the reference model exactly (current epoch above the
        /// current watermark, previous epoch above the frozen previous
        /// watermark, anything else `WrongEpoch`), rejected frames are
        /// rejected for the modelled reason, and the per-epoch sequence
        /// reset after a rekey does not let epoch-2 `seq 0` collide with
        /// epoch-1 `seq 0`.
        #[test]
        fn broadcast_watermark_at_most_once_across_rekey(seed in 0u64..1 << 48) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            use std::collections::HashSet;

            let (key1, iv1) = ([5u8; 32], [6u8; 12]);
            let (key2, iv2) = ([8u8; 32], [9u8; 12]);
            let (mut session, sk, next) = connect_welcomed(1, key1, iv1);
            let mut rng = StdRng::seed_from_u64(seed);

            let frame = |epoch: u64, seq: u64| {
                let (k, iv) = if epoch == 2 { (&key2, &iv2) } else { (&key1, &iv1) };
                broadcast_env(epoch, seq, k, iv, format!("e{epoch}-s{seq}").as_bytes())
            };

            // Reference model: the per-epoch watermarks the member must
            // enforce. `cur_epoch` flips from 1 to 2 at the rekey; the
            // epoch-1 watermark is then frozen as the grace watermark.
            let mut cur_epoch = 1u64;
            let mut seen_cur: Option<u64> = None;
            let mut seen_prev: Option<u64> = None;
            let mut delivered: HashSet<(u64, u64)> = HashSet::new();

            let deliver = |session: &mut MemberSession,
                               cur_epoch: u64,
                               seen_cur: &mut Option<u64>,
                               seen_prev: &mut Option<u64>,
                               delivered: &mut HashSet<(u64, u64)>,
                               epoch: u64,
                               seq: u64| {
                let outcome = session.handle(&frame(epoch, seq));
                if epoch == cur_epoch {
                    if seen_cur.is_none_or(|s| seq > s) {
                        let out = outcome.expect("fresh current-epoch frame must deliver");
                        prop_assert_eq!(
                            &out.events,
                            &vec![MemberEvent::Broadcast {
                                epoch,
                                seq,
                                data: format!("e{epoch}-s{seq}").into_bytes(),
                            }]
                        );
                        prop_assert!(out.reply.is_none(), "data plane must not ack");
                        prop_assert!(
                            delivered.insert((epoch, seq)),
                            "(epoch {}, seq {}) delivered twice", epoch, seq
                        );
                        *seen_cur = Some(seq);
                    } else {
                        prop_assert!(
                            matches!(outcome, Err(CoreError::Rejected(RejectReason::StaleNonce))),
                            "stale current-epoch frame must be StaleNonce"
                        );
                    }
                } else if cur_epoch == 2 && epoch == 1 {
                    // One epoch of rekey grace, under its frozen watermark.
                    if seen_prev.is_none_or(|s| seq > s) {
                        let out = outcome.expect("fresh grace-epoch frame must deliver");
                        prop_assert_eq!(out.events.len(), 1);
                        prop_assert!(
                            delivered.insert((epoch, seq)),
                            "grace (epoch {}, seq {}) delivered twice", epoch, seq
                        );
                        *seen_prev = Some(seq);
                    } else {
                        prop_assert!(
                            matches!(outcome, Err(CoreError::Rejected(RejectReason::StaleNonce))),
                            "stale grace-epoch frame must be StaleNonce"
                        );
                    }
                } else {
                    prop_assert!(
                        matches!(outcome, Err(CoreError::Rejected(RejectReason::WrongEpoch))),
                        "unknown epoch {} must be WrongEpoch", epoch
                    );
                }
            };

            // Phase A: epoch-1 frames, shuffled, with seeded duplicates
            // and an unknown-epoch probe mixed in.
            let mut stream: Vec<(u64, u64)> = Vec::new();
            for seq in 0..5u64 {
                stream.push((1, seq));
                if rng.gen_bool(0.4) {
                    stream.push((1, seq));
                }
            }
            stream.push((3, 0)); // future epoch: never installed
            shuffle(&mut rng, &mut stream);
            for &(epoch, seq) in &stream {
                deliver(
                    &mut session, cur_epoch, &mut seen_cur, &mut seen_prev,
                    &mut delivered, epoch, seq,
                );
            }

            // Rekey to epoch 2: broadcast seq resets, epoch 1 gets one
            // epoch of grace under its frozen watermark.
            session
                .handle(&admin_env(
                    &sk,
                    next,
                    ProtocolNonce::from_bytes([0xA2; 16]),
                    AdminPayload::NewGroupKey { epoch: 2, key: key2, iv: iv2 },
                ))
                .unwrap();
            cur_epoch = 2;
            seen_prev = seen_cur;
            seen_cur = None;

            // Phase B: epoch-2 frames (seq reset to 0) interleaved with
            // late epoch-1 stragglers, replays of everything phase A
            // delivered, and an ancient-epoch probe.
            let mut stream: Vec<(u64, u64)> = Vec::new();
            for seq in 0..5u64 {
                stream.push((2, seq));
                if rng.gen_bool(0.4) {
                    stream.push((2, seq));
                }
            }
            for seq in 0..7u64 {
                stream.push((1, seq)); // stragglers + replays
            }
            stream.push((0, 0)); // older than the grace epoch
            shuffle(&mut rng, &mut stream);
            for &(epoch, seq) in &stream {
                deliver(
                    &mut session, cur_epoch, &mut seen_cur, &mut seen_prev,
                    &mut delivered, epoch, seq,
                );
            }

            // Whatever the interleaving, delivery happened at most once
            // per (epoch, seq) — the HashSet insert asserts enforced it —
            // and something was actually delivered in both epochs.
            prop_assert!(delivered.iter().any(|&(e, _)| e == 1));
            prop_assert!(delivered.iter().any(|&(e, _)| e == 2));

            // Exact replays of delivered frames are stale, not re-delivered.
            for &(epoch, seq) in delivered.clone().iter() {
                deliver(
                    &mut session, cur_epoch, &mut seen_cur, &mut seen_prev,
                    &mut delivered, epoch, seq,
                );
            }
        }

        /// The same watermark guarantees when the epoch flip arrives as a
        /// tree `PathUpdate` broadcast instead of a per-member
        /// `NewGroupKey` admin seal: a member that has just applied a path
        /// update still opens broadcasts sealed under the previous epoch
        /// (one epoch of grace, frozen watermark), the new epoch's reset
        /// `seq 0` never collides with the old epoch's `seq 0`, and
        /// duplicates — including redelivered copies of the multicast
        /// `PathUpdate` itself — change nothing.
        #[test]
        fn broadcast_watermark_across_tree_rekey(seed in 0u64..1 << 48) {
            use crate::protocol::keytree::KeyTree;
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            use std::collections::HashSet;

            let (key1, iv1) = ([5u8; 32], [6u8; 12]);
            let (mut session, sk, next) = connect_welcomed(1, key1, iv1);
            let mut rng = StdRng::seed_from_u64(seed);

            // Leader-side tree with alice alone (her leaf is the root):
            // sync her path at the current epoch, then refresh it. The
            // refresh seals the fresh secret under her old leaf key.
            let mut tree_rng = SeededRng::from_seed(seed ^ 0xA5A5);
            let mut ltree = KeyTree::new();
            ltree.add(id("alice"), &mut tree_rng);
            let (slot, path_keys) = ltree.path_keys(&id("alice")).unwrap();
            session
                .handle(&admin_env(
                    &sk,
                    next,
                    ProtocolNonce::from_bytes([0xB7; 16]),
                    AdminPayload::PathSync {
                        epoch: 1,
                        leaf_index: slot,
                        leaf_count: ltree.leaf_count(),
                        path_keys,
                    },
                ))
                .unwrap();
            prop_assert_eq!(session.group_epoch(), Some(1), "same-epoch sync keeps the key");

            let plan = ltree.refresh_next(&mut tree_rng);
            let (key2, iv2) = treekdf::derive_group(&plan.root_key, 2);
            let update = Envelope {
                msg_type: MsgType::PathUpdate,
                sender: id("leader"),
                recipient: id("leader"),
                group: None,
                body: encode(&PathUpdateWire {
                    epoch: 2,
                    leaf_count: plan.leaf_count,
                    updated_leaf: plan.updated_leaf,
                    ciphers: plan
                        .seals
                        .iter()
                        .map(|s| {
                            let aad = path_update_aad(
                                &id("leader"),
                                2,
                                plan.leaf_count,
                                plan.updated_leaf,
                                s.node_index,
                                None,
                            );
                            let nonce = [0xC3u8; 12];
                            let ciphertext = ChaCha20Poly1305::new(&s.seal_key).seal(
                                &AeadNonce::from_bytes(nonce),
                                &s.path_secret,
                                &aad,
                            );
                            (s.node_index, SealedBody { nonce, ciphertext })
                        })
                        .collect(),
                }),
            };

            let frame = |epoch: u64, seq: u64| {
                let (k, iv) = if epoch == 2 { (&key2, &iv2) } else { (&key1, &iv1) };
                broadcast_env(epoch, seq, k, iv, format!("e{epoch}-s{seq}").as_bytes())
            };

            // Reference model, identical to the flat-rekey property.
            let mut cur_epoch = 1u64;
            let mut seen_cur: Option<u64> = None;
            let mut seen_prev: Option<u64> = None;
            let mut delivered: HashSet<(u64, u64)> = HashSet::new();

            let deliver = |session: &mut MemberSession,
                               cur_epoch: u64,
                               seen_cur: &mut Option<u64>,
                               seen_prev: &mut Option<u64>,
                               delivered: &mut HashSet<(u64, u64)>,
                               epoch: u64,
                               seq: u64| {
                let outcome = session.handle(&frame(epoch, seq));
                if epoch == cur_epoch {
                    if seen_cur.is_none_or(|s| seq > s) {
                        let out = outcome.expect("fresh current-epoch frame must deliver");
                        prop_assert_eq!(
                            &out.events,
                            &vec![MemberEvent::Broadcast {
                                epoch,
                                seq,
                                data: format!("e{epoch}-s{seq}").into_bytes(),
                            }]
                        );
                        prop_assert!(
                            delivered.insert((epoch, seq)),
                            "(epoch {}, seq {}) delivered twice", epoch, seq
                        );
                        *seen_cur = Some(seq);
                    } else {
                        prop_assert!(
                            matches!(outcome, Err(CoreError::Rejected(RejectReason::StaleNonce))),
                            "stale current-epoch frame must be StaleNonce"
                        );
                    }
                } else if cur_epoch == 2 && epoch == 1 {
                    if seen_prev.is_none_or(|s| seq > s) {
                        let out = outcome.expect("fresh grace-epoch frame must deliver");
                        prop_assert_eq!(out.events.len(), 1);
                        prop_assert!(
                            delivered.insert((epoch, seq)),
                            "grace (epoch {}, seq {}) delivered twice", epoch, seq
                        );
                        *seen_prev = Some(seq);
                    } else {
                        prop_assert!(
                            matches!(outcome, Err(CoreError::Rejected(RejectReason::StaleNonce))),
                            "stale grace-epoch frame must be StaleNonce"
                        );
                    }
                } else {
                    prop_assert!(
                        matches!(outcome, Err(CoreError::Rejected(RejectReason::WrongEpoch))),
                        "unknown epoch {} must be WrongEpoch", epoch
                    );
                }
            };

            // Phase A: epoch-1 traffic with seeded duplicates.
            let mut stream: Vec<(u64, u64)> = Vec::new();
            for seq in 0..5u64 {
                stream.push((1, seq));
                if rng.gen_bool(0.4) {
                    stream.push((1, seq));
                }
            }
            shuffle(&mut rng, &mut stream);
            for &(epoch, seq) in &stream {
                deliver(
                    &mut session, cur_epoch, &mut seen_cur, &mut seen_prev,
                    &mut delivered, epoch, seq,
                );
            }

            // The tree rekey: one PathUpdate broadcast flips the epoch.
            let out = session.handle(&update).expect("path update applies");
            prop_assert!(
                out.events.iter().any(|e| matches!(e, MemberEvent::GroupKeyChanged { epoch: 2 })),
                "path update must install epoch 2"
            );
            prop_assert_eq!(session.group_epoch(), Some(2));
            cur_epoch = 2;
            seen_prev = seen_cur;
            seen_cur = None;

            // A redelivered copy of the multicast is a silent no-op.
            let dup = session.handle(&update).expect("duplicate multicast tolerated");
            prop_assert!(dup.events.is_empty(), "duplicate PathUpdate must change nothing");
            prop_assert_eq!(session.group_epoch(), Some(2));

            // Phase B: epoch-2 frames (seq reset) interleaved with epoch-1
            // stragglers and replays.
            let mut stream: Vec<(u64, u64)> = Vec::new();
            for seq in 0..5u64 {
                stream.push((2, seq));
                if rng.gen_bool(0.4) {
                    stream.push((2, seq));
                }
            }
            for seq in 0..7u64 {
                stream.push((1, seq));
            }
            stream.push((0, 0));
            shuffle(&mut rng, &mut stream);
            for &(epoch, seq) in &stream {
                deliver(
                    &mut session, cur_epoch, &mut seen_cur, &mut seen_prev,
                    &mut delivered, epoch, seq,
                );
            }

            prop_assert!(delivered.iter().any(|&(e, _)| e == 1));
            prop_assert!(delivered.iter().any(|&(e, _)| e == 2));
        }

        /// The planted-violation switch really disarms the watermark: with
        /// it on, the same duplicate is delivered twice (this is what the
        /// chaos oracle is expected to catch).
        #[test]
        fn disabled_watermark_redelivers_duplicates(seq in 0u64..32) {
            let (key, iv) = ([5u8; 32], [6u8; 12]);
            let (mut session, _sk, _next) = connect_welcomed(1, key, iv);
            session.disable_broadcast_watermark_for_tests();
            let env = broadcast_env(1, seq, &key, &iv, b"dup");
            let first = session.handle(&env).expect("first delivery");
            prop_assert_eq!(first.events.len(), 1);
            let second = session.handle(&env).expect("sabotaged member re-accepts");
            prop_assert_eq!(second.events.len(), 1, "watermark off ⇒ duplicate delivered");
        }
    }
}
