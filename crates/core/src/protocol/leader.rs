//! The leader side of the improved protocol — Figure 3, one slot per
//! member — with group state, rekey policy, and leader-mediated multicast.

use crate::config::LeaderConfig;
use crate::directory::Directory;
use crate::error::{CoreError, RejectReason};
use crate::group::GroupState;
use crate::journal::{
    config_from_genesis, JournalError, JournalWriter, ReplayedStream, TapePlayer, TapeRecorder,
};
use crate::protocol::keytree::{KeyTree, NodeKey, PathUpdatePlan};
use crate::protocol::{broadcast_nonce, SEQ_LEADER};
use enclaves_crypto::aead::ChaCha20Poly1305;
use enclaves_crypto::keys::{GroupKey, SessionKey};
use enclaves_crypto::nonce::{AeadNonce, NonceSequence, ProtocolNonce};
use enclaves_crypto::rng::{CryptoRng, OsEntropyRng};
use enclaves_crypto::treekdf;
use enclaves_obs::{Counter, EventKind, EventStream, Histogram, Registry};
use enclaves_wire::codec::{encode, encode_into};
use enclaves_wire::journal::{EpochStamp, JournalOp, JournalPayload, JournalTransition};
use enclaves_wire::message::{
    group_broadcast_aad, group_data_aad, open, path_update_aad, seal, AdminPayload, AdminPlain,
    AuthInitPlain, ClosePlain, Envelope, GroupBroadcastWire, GroupDataWire, HeartbeatPlain,
    KeyDistPlain, MsgType, NonceAckPlain, PathUpdateWire, SealedBody,
};
use enclaves_wire::{ActorId, GroupId};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Below this many seal jobs the parallel path runs inline: spawning a
/// worker pool costs more than sealing a handful of small frames.
const PARALLEL_SEAL_MIN_JOBS: usize = 32;

/// Events surfaced by the leader core.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LeaderEvent {
    /// A user completed authentication and joined the group.
    MemberJoined(ActorId),
    /// A member left (voluntarily or expelled).
    MemberLeft(ActorId),
    /// A member was evicted by the liveness layer (ARQ budget exhausted
    /// or liveness deadline missed) — the timeout-driven `Oops(Ka)` path.
    MemberEvicted(ActorId),
    /// The group key was rotated to this epoch.
    Rekeyed(u64),
    /// Group data from a member was relayed to the rest of the group.
    Relayed {
        /// The sender.
        from: ActorId,
        /// Payload length in bytes.
        len: usize,
    },
    /// An incoming message was rejected.
    Rejected {
        /// Claimed sender of the offending message.
        from: ActorId,
        /// Why it was rejected.
        reason: RejectReason,
    },
}

/// Output of one leader step: envelopes to transmit and events.
#[derive(Debug, Default)]
pub struct LeaderOutput {
    /// Envelopes to send (each addressed to its recipient).
    pub outgoing: Vec<Envelope>,
    /// Sealed-once multicast frames (tree-rekey `PathUpdate`s): the
    /// runtime fans the same refcounted bytes out to every recipient.
    pub broadcasts: Vec<BroadcastFrame>,
    /// Events for the operator.
    pub events: Vec<LeaderEvent>,
}

impl LeaderOutput {
    fn merge(&mut self, other: LeaderOutput) {
        self.outgoing.extend(other.outgoing);
        self.broadcasts.extend(other.broadcasts);
        self.events.extend(other.events);
    }
}

/// Counters describing leader activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LeaderStats {
    /// Messages accepted.
    pub accepted: u64,
    /// Messages rejected.
    pub rejected: u64,
    /// Admin messages sent.
    pub admin_sent: u64,
    /// Group-data frames relayed.
    pub relayed: u64,
    /// Rekeys performed.
    pub rekeys: u64,
    /// Data-plane broadcasts emitted via
    /// [`LeaderCore::broadcast_group_data`].
    pub broadcasts: u64,
    /// AEAD seal operations performed by the data plane. With the
    /// single-seal fan-out this advances in lockstep with `broadcasts` —
    /// exactly one seal per broadcast, independent of group size.
    pub data_seals: u64,
    /// AEAD seal operations performed by the admin control plane (one per
    /// recipient frame actually sealed). A rekey over an n-member group
    /// advances this by exactly n.
    pub admin_seals: u64,
    /// AEAD seal operations performed by tree-mode path updates (one per
    /// copath resolution node). A tree rekey over a dense n-member group
    /// advances this by at most `2·ceil(log2 n) + 1` — the `O(log N)`
    /// bound that replaces the flat fan-out's n admin seals.
    pub rekey_seals: u64,
    /// Wall-clock nanoseconds spent in admin AEAD sealing + envelope
    /// encoding. With the parallel fan-out this work runs *outside* the
    /// runtime's core lock.
    pub admin_seal_ns: u64,
    /// Wall-clock nanoseconds the runtime held the core lock for admin
    /// fan-out staging and commit (the under-lock phases). Reported by the
    /// runtime via [`LeaderCore::note_lock_hold`].
    pub lock_hold_ns: u64,
    /// Frames handed to the retransmission timer by
    /// [`LeaderCore::retransmit_frames`] (handshake replies and
    /// unacknowledged admin messages re-sent after a timeout).
    pub retransmits: u64,
    /// Members evicted by the liveness layer (timeout-driven `Oops(Ka)`:
    /// ARQ budget exhausted or heartbeat deadline missed).
    pub evictions: u64,
    /// Heartbeat pings accepted (each one answered with a pong).
    pub heartbeats: u64,
}

/// Registry-backed leader instrumentation. [`LeaderStats`] remains the
/// public read-side view; the counters themselves live in an
/// `enclaves-obs` [`Registry`] so concurrent writers (seal workers, the
/// retransmit ticker) record through atomics and external observers can
/// snapshot or merge them. The event stream is optional: a detached core
/// pays one branch per would-be event.
struct LeaderObs {
    registry: Registry,
    accepted: Counter,
    rejected: Counter,
    admin_sent: Counter,
    relayed: Counter,
    rekeys: Counter,
    broadcasts: Counter,
    data_seals: Counter,
    admin_seals: Counter,
    rekey_seals: Counter,
    admin_seal_ns: Counter,
    lock_hold_ns: Counter,
    retransmits: Counter,
    evictions: Counter,
    heartbeats: Counter,
    journal_appends: Counter,
    journal_bytes: Counter,
    seal_batch_ns: Histogram,
    lock_hold_batch_ns: Histogram,
    path_depth: Histogram,
    events: Option<EventStream>,
}

impl LeaderObs {
    fn new() -> Self {
        let registry = Registry::new();
        LeaderObs {
            accepted: registry.counter("leader.accepted"),
            rejected: registry.counter("leader.rejected"),
            admin_sent: registry.counter("leader.admin_sent"),
            relayed: registry.counter("leader.relayed"),
            rekeys: registry.counter("leader.rekeys"),
            broadcasts: registry.counter("leader.broadcasts"),
            data_seals: registry.counter("leader.data_seals"),
            admin_seals: registry.counter("leader.admin_seals"),
            rekey_seals: registry.counter("leader.rekey_seals"),
            admin_seal_ns: registry.counter("leader.admin_seal_ns"),
            lock_hold_ns: registry.counter("leader.lock_hold_ns"),
            retransmits: registry.counter("leader.retransmits"),
            evictions: registry.counter("leader.evictions"),
            heartbeats: registry.counter("leader.heartbeats"),
            journal_appends: registry.counter("leader.journal.appends"),
            journal_bytes: registry.counter("leader.journal.bytes"),
            seal_batch_ns: registry.histogram("leader.seal_batch_ns"),
            lock_hold_batch_ns: registry.histogram("leader.lock_hold_batch_ns"),
            path_depth: registry.histogram("leader.path_depth"),
            events: None,
            registry,
        }
    }

    /// Emits onto the attached stream, building the event lazily so a
    /// detached core never pays for payload clones.
    fn emit(&self, kind: impl FnOnce() -> EventKind) {
        if let Some(events) = &self.events {
            events.emit(kind());
        }
    }

    fn stats(&self) -> LeaderStats {
        LeaderStats {
            accepted: self.accepted.get(),
            rejected: self.rejected.get(),
            admin_sent: self.admin_sent.get(),
            relayed: self.relayed.get(),
            rekeys: self.rekeys.get(),
            broadcasts: self.broadcasts.get(),
            data_seals: self.data_seals.get(),
            admin_seals: self.admin_seals.get(),
            rekey_seals: self.rekey_seals.get(),
            admin_seal_ns: self.admin_seal_ns.get(),
            lock_hold_ns: self.lock_hold_ns.get(),
            retransmits: self.retransmits.get(),
            evictions: self.evictions.get(),
            heartbeats: self.heartbeats.get(),
        }
    }
}

/// Output of [`LeaderCore::broadcast_group_data`]: one sealed, encoded
/// `GroupBroadcast` envelope shared by every recipient. The runtime hands
/// the same refcounted frame to each link — fan-out to N members costs N
/// pointer clones, not N seals or N copies.
#[derive(Clone, Debug)]
pub struct BroadcastFrame {
    /// The encoded envelope, ready for any link.
    pub frame: Arc<[u8]>,
    /// The members the frame must be delivered to.
    pub recipients: Vec<ActorId>,
    /// The group-key epoch the payload was sealed under.
    pub epoch: u64,
    /// The per-epoch broadcast sequence number.
    pub seq: u64,
}

/// One per-recipient admin seal job, emitted under the core lock by the
/// staging phase ([`LeaderCore::stage_admin`] and the `begin_*` fan-out
/// entry points). All ordering material — the AEAD sequence nonce, the
/// leader's protocol nonce, and the member's expected nonce inside
/// `plain` — is already fixed, so sealing is a pure function of this
/// struct and can run on any thread, in any order, out of lock.
#[derive(Clone, Debug)]
pub struct SealJob {
    /// The recipient.
    pub member: ActorId,
    session_key: SessionKey,
    seq: AeadNonce,
    aad: Vec<u8>,
    plain: AdminPlain,
    leader_nonce: ProtocolNonce,
    /// Enclave tag for the sealed envelope's header; must match the tag
    /// baked into `aad` at stage time so the receiver's recomputed
    /// header AAD agrees with the seal.
    group: Option<GroupId>,
}

/// A sealed, encoded admin frame produced from a [`SealJob`].
#[derive(Clone, Debug)]
pub struct SealedAdminFrame {
    /// The recipient.
    pub member: ActorId,
    /// The leader nonce the frame carries (matched against the channel's
    /// outstanding slot at commit time).
    leader_nonce: ProtocolNonce,
    /// The decoded envelope (for serial callers that transmit envelopes).
    pub env: Envelope,
    /// The encoded frame, ready for any link and for the retransmit cache.
    pub frame: Arc<[u8]>,
}

/// The under-lock half of an admin fan-out: the seal jobs to run (one per
/// recipient whose channel was free) and the events the operation
/// produced. Recipients with an in-flight admin message had their payload
/// queued instead and appear in no job.
#[derive(Debug, Default)]
pub struct AdminFanout {
    /// Seal jobs, in roster order.
    pub jobs: Vec<SealJob>,
    /// A sealed-once multicast frame (a tree-rekey `PathUpdate`), built
    /// while staging: its `O(log N)` copath seals are cheap enough to run
    /// under the lock, and the runtime fans the refcounted bytes out with
    /// the rest of the batch.
    pub broadcast: Option<BroadcastFrame>,
    /// Events for the operator (e.g. `Rekeyed`, `MemberLeft`).
    pub events: Vec<LeaderEvent>,
}

/// The out-of-lock half of an admin fan-out: the sealed frames (in job
/// order) and how long the sealing took.
#[derive(Debug)]
pub struct SealedBatch {
    /// Sealed frames, in the same order as the jobs they came from.
    pub frames: Vec<SealedAdminFrame>,
    /// Wall-clock nanoseconds spent sealing + encoding.
    pub seal_ns: u64,
}

/// Per-member connection state.
struct Channel {
    session_key: SessionKey,
    /// Latest nonce received from the member (`N_{2i+1}`).
    user_nonce: ProtocolNonce,
    send_seq: NonceSequence,
    /// Leader nonce of the in-flight admin message, if any (stop-and-wait
    /// per member, as the paper's state machine prescribes).
    outstanding: Option<ProtocolNonce>,
    /// The in-flight admin frame, encoded exactly once; the runtime's
    /// retransmission timer redelivers the same refcounted bytes. `None`
    /// while a staged message is being sealed out of lock (the ticker
    /// simply skips it until the commit lands).
    outstanding_frame: Option<Arc<[u8]>>,
    /// Queued payloads awaiting the acknowledgment of the in-flight one.
    pending: VecDeque<AdminPayload>,
    /// Payloads dropped due to queue overflow.
    dropped_admin: u64,
    /// Retransmits of the current outstanding frame (reset on ack).
    arq_attempts: u32,
    /// When the next retransmit of the outstanding frame is due, on the
    /// core clock. `None` when nothing is in flight.
    retransmit_at: Option<Duration>,
    /// Last time an authenticated message arrived from this member (ack,
    /// heartbeat, close, or relayed data) — the liveness deadline anchor.
    last_heard: Duration,
    /// Highest heartbeat ping sequence accepted; replays at or below it
    /// are rejected so a recorded ping cannot keep a dead member alive.
    hb_seq: u64,
    /// Highest epoch a tree-mode `PathSync` has been queued for on this
    /// channel — dedup so a member whose heartbeats keep reporting a
    /// stale epoch gets one resync per epoch, not one per ping.
    synced_epoch: u64,
}

enum Slot {
    WaitingForKeyAck {
        session_key: SessionKey,
        leader_nonce: ProtocolNonce,
        /// The request body answered, for duplicate detection.
        request_body: Vec<u8>,
        /// The reply sent, encoded exactly once; re-sent verbatim (as the
        /// same refcounted bytes) on a duplicate request and by the
        /// retransmission timer (stop-and-wait ARQ for the handshake).
        cached_frame: Arc<[u8]>,
        /// Retransmits of the cached reply so far.
        arq_attempts: u32,
        /// When the next handshake retransmit is due, on the core clock.
        retransmit_at: Duration,
    },
    Connected(Channel),
}

/// How a member's departure was triggered — flavours the events only.
#[derive(Clone, Copy, Debug)]
enum Departure {
    /// The member asked to close (`ReqClose`).
    Close,
    /// The operator expelled it.
    Expel,
    /// The liveness layer timed it out.
    Evict,
}

/// Output of one [`LeaderCore::tick`]: frames whose retransmit deadline
/// passed, and members whose ARQ budget or liveness deadline expired and
/// who must now be evicted (via [`LeaderCore::begin_evict`] or
/// [`LeaderCore::evict_now`]).
#[derive(Debug, Default)]
pub struct LeaderTick {
    /// Due retransmissions, as refcounted encoded frames.
    pub frames: Vec<(ActorId, Arc<[u8]>)>,
    /// Members presumed dead.
    pub evict: Vec<ActorId>,
}

/// The leader core: Figure 3's per-user machines plus group state.
pub struct LeaderCore {
    leader: ActorId,
    directory: Directory,
    config: LeaderConfig,
    rng: Box<dyn CryptoRng>,
    slots: HashMap<ActorId, Slot>,
    group: GroupState,
    /// The enclave this core serves inside a multi-enclave service
    /// (`config.group`). When set, outgoing envelopes carry the group tag
    /// (AEAD-bound via the header) and incoming envelopes tagged for any
    /// other enclave — or untagged — are rejected before dispatch.
    enclave: Option<GroupId>,
    /// The MLS-style rekey tree (`Some` iff `config.tree_rekey`): leaves
    /// hold per-member channel secrets, interior keys are HKDF-derived
    /// from children, and the root feeds `treekdf::derive_group`.
    tree: Option<KeyTree>,
    /// The attached write-ahead journal writer (`None` for an ephemeral
    /// core). When present, every membership/epoch transition is sealed
    /// into the journal *before* its frames are staged or dispatched, so
    /// a crash never loses a transition members may have observed.
    journal: Option<JournalWriter>,
    obs: LeaderObs,
    /// Scratch buffer reused across data-plane broadcasts so a steady
    /// stream of them does not reallocate the envelope encoding each time.
    frame_buf: Vec<u8>,
    /// The core's notion of "now" on the runtime's injected clock,
    /// refreshed by [`LeaderCore::handle_at`] and [`LeaderCore::tick`].
    /// Sans-I/O callers that never tick leave it at zero and the ARQ
    /// deadlines are simply never due.
    now: Duration,
}

impl std::fmt::Debug for LeaderCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeaderCore")
            .field("leader", &self.leader)
            .field("members", &self.group.roster())
            .field("stats", &self.obs.stats())
            .finish()
    }
}

impl LeaderCore {
    /// Creates a leader with OS entropy.
    #[must_use]
    pub fn new(leader: ActorId, directory: Directory, config: LeaderConfig) -> Self {
        Self::with_rng(leader, directory, config, Box::new(OsEntropyRng::new()))
    }

    /// Creates a leader with an explicit RNG (deterministic in tests).
    #[must_use]
    pub fn with_rng(
        leader: ActorId,
        directory: Directory,
        config: LeaderConfig,
        rng: Box<dyn CryptoRng>,
    ) -> Self {
        let tree = config.tree_rekey.then(KeyTree::new);
        let enclave = config.group.clone();
        LeaderCore {
            leader,
            directory,
            config,
            rng,
            slots: HashMap::new(),
            group: GroupState::new(),
            enclave,
            tree,
            journal: None,
            obs: LeaderObs::new(),
            frame_buf: Vec::new(),
            now: Duration::ZERO,
        }
    }

    /// The leader's identity.
    #[must_use]
    pub fn leader_id(&self) -> &ActorId {
        &self.leader
    }

    /// The enclave this core serves, when part of a multi-enclave service.
    #[must_use]
    pub fn group_id(&self) -> Option<&GroupId> {
        self.enclave.as_ref()
    }

    /// Current members.
    #[must_use]
    pub fn roster(&self) -> Vec<ActorId> {
        self.group.roster()
    }

    /// The current group-key epoch (None before the first join).
    #[must_use]
    pub fn epoch(&self) -> Option<u64> {
        self.group.current_epoch().map(|e| e.epoch)
    }

    /// Leader statistics — a compatibility view assembled from the
    /// registry-backed counters.
    #[must_use]
    pub fn stats(&self) -> LeaderStats {
        self.obs.stats()
    }

    /// The metric registry this core records into (`leader.*` names).
    /// Clones share the counters, so a snapshot taken from the clone sees
    /// the live values.
    #[must_use]
    pub fn obs_registry(&self) -> Registry {
        self.obs.registry.clone()
    }

    /// Attaches a protocol event stream. Subsequent protocol actions emit
    /// [`EventKind`]s onto it in happened-before order (emission happens
    /// while the caller still holds whatever lock guards this core).
    pub fn set_event_stream(&mut self, events: EventStream) {
        self.obs.events = Some(events);
    }

    /// Handles one incoming envelope (from any link).
    ///
    /// # Errors
    ///
    /// [`CoreError::Rejected`] for inauthentic/malformed/stale messages
    /// (state unchanged); [`CoreError::UnknownUser`] for unregistered
    /// claimed senders.
    pub fn handle(&mut self, env: &Envelope) -> Result<LeaderOutput, CoreError> {
        let result = self.handle_inner(env);
        match &result {
            Ok(_) => self.obs.accepted.inc(),
            Err(_) => self.obs.rejected.inc(),
        }
        result
    }

    /// [`LeaderCore::handle`] with an explicit clock reading: the runtime
    /// reads its injected [`crate::liveness::Clock`] before taking the
    /// core lock and passes the value here, so ARQ deadlines and liveness
    /// anchors advance on the same timeline as [`LeaderCore::tick`].
    ///
    /// # Errors
    ///
    /// As [`LeaderCore::handle`].
    pub fn handle_at(&mut self, env: &Envelope, now: Duration) -> Result<LeaderOutput, CoreError> {
        self.now = self.now.max(now);
        self.handle(env)
    }

    fn handle_inner(&mut self, env: &Envelope) -> Result<LeaderOutput, CoreError> {
        if env.recipient != self.leader {
            return Err(CoreError::Rejected(RejectReason::WrongIdentity));
        }
        // AAD binding alone cannot stop an *honestly tagged* group-A frame
        // from opening here when the same user+password (hence the same
        // derived P_a) exists in both enclaves: the AAD in the frame and
        // the AAD we would compute from its header agree. The enclave tag
        // must match this core's own configured identity.
        if env.group != self.enclave {
            return Err(CoreError::Rejected(RejectReason::WrongEnclave));
        }
        match env.msg_type {
            MsgType::AuthInitReq => self.accept_auth_init(env),
            MsgType::AuthAckKey => self.accept_key_ack(env),
            MsgType::Ack => self.accept_ack(env),
            MsgType::ReqClose => self.accept_close(env),
            MsgType::GroupData => self.relay_group_data(env),
            MsgType::Heartbeat => self.accept_heartbeat(env),
            _ => Err(CoreError::Rejected(RejectReason::UnexpectedType)),
        }
    }

    /// A stable per-member discriminator for the deterministic jitter
    /// hash (FNV-1a over the name bytes — cheap, pure, no allocation).
    fn channel_tag(user: &ActorId) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in user.as_str().as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    fn accept_auth_init(&mut self, env: &Envelope) -> Result<LeaderOutput, CoreError> {
        let user = env.sender.clone();
        if let Some(slot) = self.slots.get(&user) {
            // A duplicate of the request currently being answered gets the
            // cached reply verbatim (handshake ARQ: the member retransmits
            // its request when the reply was lost). Anything else is a
            // replay and is ignored until the session closes.
            if let Slot::WaitingForKeyAck {
                request_body,
                cached_frame,
                ..
            } = slot
            {
                if *request_body == env.body {
                    let reply: Envelope = enclaves_wire::codec::decode(cached_frame)?;
                    return Ok(LeaderOutput {
                        outgoing: vec![reply],
                        ..LeaderOutput::default()
                    });
                }
            }
            return Err(CoreError::Rejected(RejectReason::UnexpectedType));
        }
        if self.group.len() >= self.config.max_members {
            return Err(CoreError::Rejected(RejectReason::UnexpectedType));
        }
        let Some(long_term) = self.directory.lookup(&user) else {
            return Err(CoreError::UnknownUser(user.to_string()));
        };
        let plain: AuthInitPlain = open(long_term.as_bytes(), &env.header_aad(), &env.body)?;
        if plain.user != user || plain.leader != self.leader {
            return Err(CoreError::Rejected(RejectReason::WrongIdentity));
        }

        let session_key = SessionKey::generate(self.rng.as_mut());
        let leader_nonce = ProtocolNonce::generate(self.rng.as_mut());
        let mut reply = Envelope {
            msg_type: MsgType::AuthKeyDist,
            sender: self.leader.clone(),
            recipient: user.clone(),
            group: self.enclave.clone(),
            body: Vec::new(),
        };
        let kd = KeyDistPlain {
            leader: self.leader.clone(),
            user: user.clone(),
            user_nonce: plain.nonce,
            leader_nonce,
            session_key: *session_key.as_bytes(),
        };
        let mut aead_nonce = [0u8; 12];
        self.rng.fill_bytes(&mut aead_nonce);
        reply.body = seal(
            long_term.as_bytes(),
            enclaves_crypto::nonce::AeadNonce::from_bytes(aead_nonce),
            &reply.header_aad(),
            &kd,
        );

        self.obs.emit(|| EventKind::AuthAccepted {
            member: user.to_string(),
        });
        let retransmit_at = self.now
            + self
                .config
                .liveness
                .jittered_delay(0, Self::channel_tag(&user));
        self.slots.insert(
            user,
            Slot::WaitingForKeyAck {
                session_key,
                leader_nonce,
                request_body: env.body.clone(),
                cached_frame: encode(&reply).into(),
                arq_attempts: 0,
                retransmit_at,
            },
        );
        Ok(LeaderOutput {
            outgoing: vec![reply],
            ..LeaderOutput::default()
        })
    }

    fn accept_key_ack(&mut self, env: &Envelope) -> Result<LeaderOutput, CoreError> {
        let user = env.sender.clone();
        let Some(Slot::WaitingForKeyAck {
            session_key,
            leader_nonce,
            ..
        }) = self.slots.get(&user)
        else {
            return Err(CoreError::Rejected(RejectReason::UnexpectedType));
        };
        let session_key = session_key.clone();
        let expected = *leader_nonce;

        let plain: NonceAckPlain = open(session_key.as_bytes(), &env.header_aad(), &env.body)?;
        if plain.user != user || plain.leader != self.leader {
            return Err(CoreError::Rejected(RejectReason::WrongIdentity));
        }
        if plain.acked_nonce != expected {
            return Err(CoreError::Rejected(RejectReason::StaleNonce));
        }

        // The user is now a member (paper: "L accepts A as a member when
        // the system enters a state where lead_A(q) = Connected").
        self.slots.insert(
            user.clone(),
            Slot::Connected(Channel {
                session_key,
                user_nonce: plain.next_nonce,
                send_seq: NonceSequence::new(SEQ_LEADER),
                outstanding: None,
                outstanding_frame: None,
                pending: VecDeque::new(),
                dropped_admin: 0,
                arq_attempts: 0,
                retransmit_at: None,
                last_heard: self.now,
                hb_seq: 0,
                synced_epoch: 0,
            }),
        );

        let mut output = LeaderOutput {
            events: vec![LeaderEvent::MemberJoined(user.clone())],
            ..LeaderOutput::default()
        };

        // Apply the membership transition over a recorded RNG tape, then
        // commit it to the journal *before* any frame is staged: a crash
        // after this point replays to exactly this state.
        let mut tape = Vec::new();
        let outcome = {
            let mut rec = TapeRecorder::new(self.rng.as_mut(), &mut tape);
            apply_join(
                &mut self.group,
                &mut self.tree,
                &self.config,
                &user,
                &mut rec,
            )
        };
        self.journal_commit(JournalOp::Join(user.clone()), tape)?;
        let rekeyed = match outcome {
            JoinOutcome::Tree { plan, epoch } => {
                self.obs.rekeys.inc();
                output.merge(self.tree_join_fanout(&user, &plan, epoch)?);
                return Ok(output);
            }
            JoinOutcome::Flat { rekeyed } => {
                if rekeyed {
                    self.obs.rekeys.inc();
                }
                rekeyed
            }
        };

        // Welcome the new member with the roster and the (possibly fresh)
        // group key.
        let epoch = self
            .group
            .current_epoch()
            .expect("group key exists after join");
        let welcome = AdminPayload::Welcome {
            members: self.group.roster(),
            epoch: epoch.epoch,
            group_key: *epoch.key.as_bytes(),
            iv: epoch.iv,
        };
        let epoch_num = epoch.epoch;
        let new_key_payload = AdminPayload::NewGroupKey {
            epoch: epoch_num,
            key: *epoch.key.as_bytes(),
            iv: epoch.iv,
        };
        self.obs.emit(|| EventKind::MemberJoined {
            member: user.to_string(),
            epoch: epoch_num,
        });
        output.merge(self.enqueue_admin(&user, welcome)?);

        // Tell everyone else; distribute the new key if we rotated. Key
        // material always goes out; the join notice is skippable by
        // configuration (large benchmark groups).
        let notices = self.config.membership_notices;
        if notices || rekeyed {
            let others: Vec<ActorId> = self
                .group
                .roster()
                .into_iter()
                .filter(|m| *m != user)
                .collect();
            for other in others {
                if notices {
                    output.merge(self.enqueue_admin_connected(
                        &other,
                        AdminPayload::MemberJoined(user.clone()),
                    )?);
                }
                if rekeyed {
                    output.merge(self.enqueue_admin_connected(&other, new_key_payload.clone())?);
                }
            }
        }
        if rekeyed {
            self.obs.emit(|| EventKind::Rekeyed { epoch: epoch_num });
            output.events.push(LeaderEvent::Rekeyed(epoch_num));
        }
        Ok(output)
    }

    /// Tree-mode join fan-out: the member was already placed in the rekey
    /// tree and the epoch advanced (and journaled) by [`apply_join`]. The
    /// joiner learns its direct path from an admin `PathSync` riding
    /// behind its `Welcome`; everyone else learns the rewritten keys from
    /// the `O(log N)` `PathUpdate` broadcast.
    fn tree_join_fanout(
        &mut self,
        user: &ActorId,
        plan: &PathUpdatePlan,
        epoch: u64,
    ) -> Result<LeaderOutput, CoreError> {
        let mut output = LeaderOutput::default();
        // The Welcome carries the fresh epoch's key so the joiner is live
        // on the data plane immediately; the PathSync behind it seeds its
        // member tree for future PathUpdate broadcasts.
        let e = self.group.current_epoch().expect("epoch just advanced");
        let welcome = AdminPayload::Welcome {
            members: self.group.roster(),
            epoch: e.epoch,
            group_key: *e.key.as_bytes(),
            iv: e.iv,
        };
        self.obs.emit(|| EventKind::MemberJoined {
            member: user.to_string(),
            epoch,
        });
        output.merge(self.enqueue_admin(user, welcome)?);
        output.merge(self.stage_path_sync_serial(user)?);

        if self.config.membership_notices {
            let others: Vec<ActorId> = self
                .group
                .roster()
                .into_iter()
                .filter(|m| m != user)
                .collect();
            for other in others {
                output.merge(
                    self.enqueue_admin_connected(&other, AdminPayload::MemberJoined(user.clone()))?,
                );
            }
        }
        if let Some(frame) = self.build_path_update_frame(plan, epoch, Some(user)) {
            output.broadcasts.push(frame);
        }
        self.obs.emit(|| EventKind::Rekeyed { epoch });
        output.events.push(LeaderEvent::Rekeyed(epoch));
        Ok(output)
    }

    /// The `PathSync` payload carrying `user`'s current direct path, with
    /// the epoch it is valid for. `None` outside tree mode or when the
    /// member has no tree leaf.
    fn path_sync_payload(&self, user: &ActorId) -> Option<(u64, AdminPayload)> {
        let tree = self.tree.as_ref()?;
        let (leaf_index, path_keys) = tree.path_keys(user)?;
        let epoch = self.group.current_epoch().map_or(0, |e| e.epoch);
        Some((
            epoch,
            AdminPayload::PathSync {
                epoch,
                leaf_index,
                leaf_count: tree.leaf_count(),
                path_keys,
            },
        ))
    }

    /// Queues a `PathSync` to one member (serial path), recording the
    /// epoch on its channel so heartbeat-driven resyncs do not repeat it.
    fn stage_path_sync_serial(&mut self, user: &ActorId) -> Result<LeaderOutput, CoreError> {
        let Some((epoch, payload)) = self.path_sync_payload(user) else {
            return Ok(LeaderOutput::default());
        };
        if let Some(Slot::Connected(channel)) = self.slots.get_mut(user) {
            channel.synced_epoch = channel.synced_epoch.max(epoch);
        }
        self.enqueue_admin(user, payload)
    }

    /// Seals a path-refresh plan into a single `PathUpdate` multicast
    /// frame: one AEAD seal per copath resolution node (`O(log N)` on a
    /// dense tree), each bound by [`path_update_aad`]. Returns `None` when
    /// nobody would receive it. `exclude` drops the refreshed member from
    /// the recipient list on joins — the joiner holds none of the sealing
    /// node keys; its `PathSync` covers it.
    fn build_path_update_frame(
        &mut self,
        plan: &PathUpdatePlan,
        epoch: u64,
        exclude: Option<&ActorId>,
    ) -> Option<BroadcastFrame> {
        let recipients: Vec<ActorId> = self
            .group
            .roster()
            .into_iter()
            .filter(|m| Some(m) != exclude)
            .collect();
        if recipients.is_empty() {
            return None;
        }
        let mut ciphers = Vec::with_capacity(plan.seals.len());
        for cs in &plan.seals {
            let aad = path_update_aad(
                &self.leader,
                epoch,
                plan.leaf_count,
                plan.updated_leaf,
                cs.node_index,
                self.enclave.as_ref(),
            );
            let mut nonce = [0u8; 12];
            self.rng.fill_bytes(&mut nonce);
            let mut ciphertext = Vec::new();
            ChaCha20Poly1305::new(&cs.seal_key).seal_into(
                &AeadNonce::from_bytes(nonce),
                &cs.path_secret,
                &aad,
                &mut ciphertext,
            );
            ciphers.push((cs.node_index, SealedBody { nonce, ciphertext }));
        }
        self.obs.rekey_seals.add(plan.seals.len() as u64);
        self.obs.path_depth.record(u64::from(plan.path_depth));
        let env = Envelope {
            msg_type: MsgType::PathUpdate,
            sender: self.leader.clone(),
            // Multicast convention (see broadcast_group_data): identical
            // bytes reach every member, so the recipient field names the
            // leader and members skip the recipient check for this type.
            recipient: self.leader.clone(),
            group: self.enclave.clone(),
            body: encode(&PathUpdateWire {
                epoch,
                leaf_count: plan.leaf_count,
                updated_leaf: plan.updated_leaf,
                ciphers,
            }),
        };
        encode_into(&env, &mut self.frame_buf);
        Some(BroadcastFrame {
            frame: self.frame_buf.as_slice().into(),
            recipients,
            epoch,
            seq: 0,
        })
    }

    fn accept_ack(&mut self, env: &Envelope) -> Result<LeaderOutput, CoreError> {
        let user = env.sender.clone();
        let Some(Slot::Connected(channel)) = self.slots.get_mut(&user) else {
            return Err(CoreError::Rejected(RejectReason::UnexpectedType));
        };
        let plain: NonceAckPlain =
            open(channel.session_key.as_bytes(), &env.header_aad(), &env.body)?;
        if plain.user != user || plain.leader != self.leader {
            return Err(CoreError::Rejected(RejectReason::WrongIdentity));
        }
        let Some(expected) = channel.outstanding else {
            return Err(CoreError::Rejected(RejectReason::StaleNonce));
        };
        if plain.acked_nonce != expected {
            return Err(CoreError::Rejected(RejectReason::StaleNonce));
        }
        channel.outstanding = None;
        channel.outstanding_frame = None;
        channel.user_nonce = plain.next_nonce;
        channel.arq_attempts = 0;
        channel.retransmit_at = None;
        channel.last_heard = self.now;
        self.obs.emit(|| EventKind::AdminAcked {
            member: user.to_string(),
        });

        // Drain the next pending payload, if any.
        if let Some(next) = channel.pending.pop_front() {
            return self.enqueue_admin(&user, next);
        }
        Ok(LeaderOutput::default())
    }

    fn accept_close(&mut self, env: &Envelope) -> Result<LeaderOutput, CoreError> {
        let user = env.sender.clone();
        let Some(slot) = self.slots.get(&user) else {
            return Err(CoreError::Rejected(RejectReason::UnexpectedType));
        };
        let session_key = match slot {
            Slot::WaitingForKeyAck { session_key, .. } => session_key,
            Slot::Connected(c) => &c.session_key,
        };
        let plain: ClosePlain = open(session_key.as_bytes(), &env.header_aad(), &env.body)?;
        if plain.user != user || plain.leader != self.leader {
            return Err(CoreError::Rejected(RejectReason::WrongIdentity));
        }
        // Close: discard the session key; no further messages to the user.
        self.slots.remove(&user);
        self.member_departed(&user)
    }

    /// Common departure handling (voluntary close and expulsion): roster
    /// update, notices, policy rekey.
    fn member_departed(&mut self, user: &ActorId) -> Result<LeaderOutput, CoreError> {
        let fanout = self.depart_fanout(user, Departure::Close)?;
        Ok(self.finish_serial(fanout))
    }

    /// The under-lock staging half of a departure: roster update, member
    /// notices, policy rekey — as seal jobs, not sealed frames.
    /// `kind` flavours the operator event and the observability event;
    /// the protocol handling is identical for all three paths (the paper's
    /// `Oops(Ka)` close is one transition however it was triggered).
    fn depart_fanout(&mut self, user: &ActorId, kind: Departure) -> Result<AdminFanout, CoreError> {
        let mut fanout = AdminFanout::default();
        // Apply the transition over a recorded RNG tape; journal it before
        // staging a single frame. A non-member is not a transition and is
        // not journaled.
        let mut tape = Vec::new();
        let outcome = {
            let mut rec = TapeRecorder::new(self.rng.as_mut(), &mut tape);
            apply_depart(
                &mut self.group,
                &mut self.tree,
                &self.config,
                user,
                &mut rec,
            )
        };
        if matches!(outcome, DepartOutcome::NotMember) {
            return Ok(fanout);
        }
        let op = match kind {
            Departure::Close => JournalOp::Leave(user.clone()),
            Departure::Expel => JournalOp::Expel(user.clone()),
            Departure::Evict => JournalOp::Evict(user.clone()),
        };
        self.journal_commit(op, tape)?;
        fanout.events.push(match kind {
            Departure::Close | Departure::Expel => LeaderEvent::MemberLeft(user.clone()),
            Departure::Evict => LeaderEvent::MemberEvicted(user.clone()),
        });
        if matches!(kind, Departure::Evict) {
            self.obs.evictions.inc();
        }
        self.obs.emit(|| {
            let member = user.to_string();
            match kind {
                Departure::Close => EventKind::MemberClosed { member },
                Departure::Expel => EventKind::Expelled { member },
                Departure::Evict => EventKind::Evicted { member },
            }
        });

        match outcome {
            DepartOutcome::NotMember => unreachable!("handled above"),
            // The tree (and group) is now empty: nobody left to rekey.
            DepartOutcome::TreeEmpty => Ok(fanout),
            DepartOutcome::Tree { plan, epoch } => {
                self.obs.rekeys.inc();
                fanout.broadcast = self.build_path_update_frame(&plan, epoch, None);
                self.obs.emit(|| EventKind::Rekeyed { epoch });
                fanout.events.push(LeaderEvent::Rekeyed(epoch));
                Ok(fanout)
            }
            DepartOutcome::TreeReinit { epoch } => {
                self.obs.rekeys.inc();
                self.tree_resync_fanout(epoch, &mut fanout)?;
                Ok(fanout)
            }
            DepartOutcome::Flat { rekeyed } => {
                if rekeyed {
                    self.obs.rekeys.inc();
                }
                let new_key_payload = self.group.current_epoch().map(|e| {
                    (
                        e.epoch,
                        AdminPayload::NewGroupKey {
                            epoch: e.epoch,
                            key: *e.key.as_bytes(),
                            iv: e.iv,
                        },
                    )
                });

                let notices = self.config.membership_notices;
                if notices || rekeyed {
                    for other in self.group.roster() {
                        if notices {
                            fanout.jobs.extend(self.stage_admin_connected(
                                &other,
                                AdminPayload::MemberLeft(user.clone()),
                            )?);
                        }
                        if rekeyed {
                            if let Some((_, payload)) = &new_key_payload {
                                fanout
                                    .jobs
                                    .extend(self.stage_admin_connected(&other, payload.clone())?);
                            }
                        }
                    }
                }
                if rekeyed {
                    if let Some((epoch, _)) = new_key_payload {
                        self.obs.emit(|| EventKind::Rekeyed { epoch });
                        fanout.events.push(LeaderEvent::Rekeyed(epoch));
                    }
                }
                Ok(fanout)
            }
        }
    }

    /// The fan-out half of a full tree reinit: resync every member's
    /// direct path over its reliable admin channel — `O(N)` admin seals
    /// once, restoring the `O(log N)` bound for every subsequent path
    /// update.
    fn tree_resync_fanout(
        &mut self,
        epoch: u64,
        fanout: &mut AdminFanout,
    ) -> Result<(), CoreError> {
        for member in self.group.roster() {
            let Some((e, payload)) = self.path_sync_payload(&member) else {
                continue;
            };
            if let Some(Slot::Connected(channel)) = self.slots.get_mut(&member) {
                channel.synced_epoch = channel.synced_epoch.max(e);
            }
            fanout
                .jobs
                .extend(self.stage_admin_connected(&member, payload)?);
        }
        self.obs.emit(|| EventKind::Rekeyed { epoch });
        fanout.events.push(LeaderEvent::Rekeyed(epoch));
        Ok(())
    }

    fn relay_group_data(&mut self, env: &Envelope) -> Result<LeaderOutput, CoreError> {
        let user = env.sender.clone();
        if !matches!(self.slots.get(&user), Some(Slot::Connected(_))) {
            return Err(CoreError::Rejected(RejectReason::UnexpectedType));
        }
        let wire: GroupDataWire = enclaves_wire::codec::decode(&env.body)
            .map_err(|_| CoreError::Rejected(RejectReason::Malformed))?;
        let Some(epoch) = self.group.current_epoch() else {
            return Err(CoreError::Rejected(RejectReason::WrongEpoch));
        };
        if wire.epoch != epoch.epoch {
            return Err(CoreError::Rejected(RejectReason::WrongEpoch));
        }
        // Verify the seal before relaying (the leader holds the group key),
        // so tampered frames stop here rather than fanning out.
        let aad = group_data_aad(&user, wire.epoch, self.enclave.as_ref());
        let cipher = enclaves_crypto::aead::ChaCha20Poly1305::new(epoch.key.as_bytes());
        let nonce = enclaves_crypto::nonce::AeadNonce::from_bytes(wire.sealed.nonce);
        let data_len = cipher
            .open(&nonce, &wire.sealed.ciphertext, &aad)
            .map_err(|_| CoreError::Rejected(RejectReason::BadSeal))?
            .len();

        // The seal verified under the current group key: authenticated
        // traffic from this member is proof of life. (A forged frame
        // errored out above without touching the slot.)
        let now = self.now;
        if let Some(Slot::Connected(channel)) = self.slots.get_mut(&user) {
            channel.last_heard = now;
        }

        let mut output = LeaderOutput::default();
        for member in self.group.roster() {
            if member == user {
                continue;
            }
            output.outgoing.push(Envelope {
                msg_type: MsgType::GroupData,
                sender: user.clone(),
                recipient: member,
                group: self.enclave.clone(),
                body: env.body.clone(),
            });
        }
        self.obs.relayed.inc();
        output.events.push(LeaderEvent::Relayed {
            from: user,
            len: data_len,
        });

        // Traffic-based rekey policy.
        let count = self.group.count_traffic();
        if self.config.rekey_policy.rekey_on_traffic(count) {
            output.merge(self.rekey_now()?);
        }
        Ok(output)
    }

    fn accept_heartbeat(&mut self, env: &Envelope) -> Result<LeaderOutput, CoreError> {
        let user = env.sender.clone();
        let leader = self.leader.clone();
        let enclave = self.enclave.clone();
        let now = self.now;
        let Some(Slot::Connected(channel)) = self.slots.get_mut(&user) else {
            return Err(CoreError::Rejected(RejectReason::UnexpectedType));
        };
        let plain: HeartbeatPlain =
            open(channel.session_key.as_bytes(), &env.header_aad(), &env.body)?;
        if plain.user != user || plain.leader != leader {
            return Err(CoreError::Rejected(RejectReason::WrongIdentity));
        }
        // Pings carry a strictly increasing sequence: a replayed ping must
        // not refresh a dead member's liveness deadline.
        if plain.seq <= channel.hb_seq {
            return Err(CoreError::Rejected(RejectReason::StaleNonce));
        }
        channel.hb_seq = plain.seq;
        channel.last_heard = now;
        let member_epoch = plain.epoch;
        let leader_epoch = self.group.current_epoch().map_or(0, |e| e.epoch);

        // Pong: echo the ping's sequence, sealed under the session key.
        let mut reply = Envelope {
            msg_type: MsgType::Heartbeat,
            sender: leader.clone(),
            recipient: user.clone(),
            group: enclave,
            body: Vec::new(),
        };
        let seq = channel.send_seq.next()?;
        reply.body = seal(
            channel.session_key.as_bytes(),
            seq,
            &reply.header_aad(),
            &HeartbeatPlain {
                user: user.clone(),
                leader,
                seq: plain.seq,
                epoch: leader_epoch,
            },
        );
        self.obs.heartbeats.inc();
        let mut output = LeaderOutput {
            outgoing: vec![reply],
            ..LeaderOutput::default()
        };
        // A lagging epoch in an authenticated ping is evidence of a missed
        // PathUpdate broadcast. Resync stays leader-driven — the member
        // cannot request one, so forged traffic elicits no state change —
        // and is deduped per epoch via the channel marker.
        if member_epoch < leader_epoch {
            output.merge(self.begin_path_resync(&user, leader_epoch)?);
        }
        Ok(output)
    }

    /// Queues a `PathSync` for a member whose authenticated heartbeat
    /// showed a stale epoch, at most once per epoch per channel. Flat mode
    /// has no tree to sync and returns nothing — the reliable admin ARQ
    /// already guarantees `NewGroupKey` delivery there.
    fn begin_path_resync(&mut self, user: &ActorId, epoch: u64) -> Result<LeaderOutput, CoreError> {
        if self.tree.is_none() {
            return Ok(LeaderOutput::default());
        }
        match self.slots.get_mut(user) {
            Some(Slot::Connected(channel)) if channel.synced_epoch < epoch => {
                channel.synced_epoch = epoch;
            }
            _ => return Ok(LeaderOutput::default()),
        }
        let Some((_, payload)) = self.path_sync_payload(user) else {
            return Ok(LeaderOutput::default());
        };
        self.enqueue_admin(user, payload)
    }

    /// Fan-out variant of [`LeaderCore::stage_admin`]: a roster member
    /// with no connected channel is skipped (`Ok(None)`) instead of an
    /// error. After a journal recovery the whole roster is sessionless
    /// until each member re-authenticates, and a fan-out triggered by the
    /// first re-admission must not abort on the members still in flight —
    /// they learn the current roster and key material from their own
    /// re-admission `Welcome`.
    fn stage_admin_connected(
        &mut self,
        user: &ActorId,
        payload: AdminPayload,
    ) -> Result<Option<SealJob>, CoreError> {
        match self.stage_admin(user, payload) {
            Err(CoreError::UnknownUser(_)) => Ok(None),
            other => other,
        }
    }

    /// [`LeaderCore::enqueue_admin`] with the same skip-if-absent rule as
    /// [`LeaderCore::stage_admin_connected`], for serial fan-out loops.
    fn enqueue_admin_connected(
        &mut self,
        user: &ActorId,
        payload: AdminPayload,
    ) -> Result<LeaderOutput, CoreError> {
        match self.enqueue_admin(user, payload) {
            Err(CoreError::UnknownUser(_)) => Ok(LeaderOutput::default()),
            other => other,
        }
    }

    /// Queues (or immediately sends) an admin payload to one member — the
    /// serial convenience wrapper over [`stage → seal → commit`]. Callers
    /// that fan out to many members should use the staged entry points
    /// (`begin_*`) and run the sealing out of lock instead.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownUser`] if the user has no connected channel.
    pub fn enqueue_admin(
        &mut self,
        user: &ActorId,
        payload: AdminPayload,
    ) -> Result<LeaderOutput, CoreError> {
        let fanout = AdminFanout {
            jobs: self.stage_admin(user, payload)?.into_iter().collect(),
            ..AdminFanout::default()
        };
        Ok(self.finish_serial(fanout))
    }

    /// The under-lock staging phase for one recipient: allocate the
    /// per-member ordering material (AEAD sequence nonce, leader protocol
    /// nonce) and mark the channel's stop-and-wait slot as occupied, but
    /// perform no cryptography. Returns `None` when the channel already
    /// has an in-flight message and the payload was queued instead.
    ///
    /// Because the nonces are drawn here, under the lock and in call
    /// order, the eventual seal is a pure function of the returned job:
    /// running jobs on worker threads produces byte-identical frames to
    /// sealing them inline.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownUser`] if the user has no connected channel.
    pub fn stage_admin(
        &mut self,
        user: &ActorId,
        payload: AdminPayload,
    ) -> Result<Option<SealJob>, CoreError> {
        let max_pending = self.config.max_pending_admin;
        let leader = self.leader.clone();
        let enclave = self.enclave.clone();
        let Some(Slot::Connected(channel)) = self.slots.get_mut(user) else {
            return Err(CoreError::UnknownUser(user.to_string()));
        };
        if channel.outstanding.is_some() {
            if channel.pending.len() >= max_pending {
                channel.pending.pop_front();
                channel.dropped_admin += 1;
            }
            channel.pending.push_back(payload);
            return Ok(None);
        }
        let leader_nonce = ProtocolNonce::generate(self.rng.as_mut());
        let seq = channel.send_seq.next()?;
        let aad = Envelope {
            msg_type: MsgType::AdminMsg,
            sender: leader.clone(),
            recipient: user.clone(),
            group: enclave.clone(),
            body: Vec::new(),
        }
        .header_aad();
        let plain = AdminPlain {
            leader,
            user: user.clone(),
            user_nonce: channel.user_nonce,
            leader_nonce,
            payload,
        };
        // The slot is reserved now; the frame arrives at commit time. The
        // window is invisible to the member: it cannot acknowledge a nonce
        // it has never seen, and the retransmit ticker skips frameless
        // slots.
        channel.outstanding = Some(leader_nonce);
        channel.outstanding_frame = None;
        channel.arq_attempts = 0;
        let liveness = &self.config.liveness;
        channel.retransmit_at =
            Some(self.now + liveness.jittered_delay(0, Self::channel_tag(user)));
        self.obs.admin_sent.inc();
        Ok(Some(SealJob {
            member: user.clone(),
            session_key: channel.session_key.clone(),
            seq,
            aad,
            plain,
            leader_nonce,
            group: enclave,
        }))
    }

    /// Seals one job: AEAD seal of the admin plaintext plus envelope
    /// encoding. Pure — no leader state is read or written.
    fn seal_job(job: &SealJob) -> SealedAdminFrame {
        let mut env = Envelope {
            msg_type: MsgType::AdminMsg,
            sender: job.plain.leader.clone(),
            recipient: job.member.clone(),
            group: job.group.clone(),
            body: Vec::new(),
        };
        env.body = seal(job.session_key.as_bytes(), job.seq, &job.aad, &job.plain);
        let frame: Arc<[u8]> = encode(&env).into();
        SealedAdminFrame {
            member: job.member.clone(),
            leader_nonce: job.leader_nonce,
            env,
            frame,
        }
    }

    /// Seals a batch of jobs serially on the calling thread — the
    /// reference implementation the parallel path must match byte for
    /// byte.
    #[must_use]
    pub fn seal_admin_jobs(jobs: &[SealJob]) -> SealedBatch {
        let start = Instant::now();
        let frames = jobs.iter().map(Self::seal_job).collect();
        SealedBatch {
            frames,
            seal_ns: u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        }
    }

    /// Seals a batch of jobs across `threads` scoped worker threads,
    /// sharded over members. Falls back to the serial path when the batch
    /// is small or only one thread is available. Output order and bytes
    /// are identical to [`LeaderCore::seal_admin_jobs`] — sealing is pure,
    /// the jobs carry all ordering material, and each worker writes its
    /// own disjoint slice of the output (debug builds re-seal serially
    /// and assert frame-for-frame equality).
    #[must_use]
    pub fn seal_admin_jobs_parallel(jobs: &[SealJob], threads: usize) -> SealedBatch {
        if threads <= 1 || jobs.len() < PARALLEL_SEAL_MIN_JOBS {
            return Self::seal_admin_jobs(jobs);
        }
        let start = Instant::now();
        let workers = threads.min(jobs.len());
        let chunk = jobs.len().div_ceil(workers);
        let mut frames: Vec<Option<SealedAdminFrame>> = Vec::new();
        frames.resize_with(jobs.len(), || None);
        std::thread::scope(|scope| {
            for (job_chunk, out_chunk) in jobs.chunks(chunk).zip(frames.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (job, out) in job_chunk.iter().zip(out_chunk.iter_mut()) {
                        *out = Some(Self::seal_job(job));
                    }
                });
            }
        });
        let batch = SealedBatch {
            frames: frames
                .into_iter()
                .map(|f| f.expect("every chunk sealed its slice"))
                .collect(),
            seal_ns: u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        };
        #[cfg(debug_assertions)]
        {
            let serial = Self::seal_admin_jobs(jobs);
            debug_assert!(
                batch
                    .frames
                    .iter()
                    .zip(serial.frames.iter())
                    .all(|(p, s)| p.frame == s.frame && p.member == s.member),
                "parallel seal diverged from the serial reference"
            );
        }
        batch
    }

    /// The under-lock commit phase: cache each sealed frame in its
    /// channel's retransmit slot and account for the seals. A frame whose
    /// channel no longer awaits its nonce (the member acked, departed, or
    /// was expelled between stage and commit) is skipped — its stop-and-
    /// wait exchange is already over.
    pub fn commit_admin_frames(&mut self, batch: &SealedBatch) {
        for sealed in &batch.frames {
            if let Some(Slot::Connected(channel)) = self.slots.get_mut(&sealed.member) {
                if channel.outstanding == Some(sealed.leader_nonce) {
                    channel.outstanding_frame = Some(Arc::clone(&sealed.frame));
                }
            }
        }
        if !batch.frames.is_empty() {
            self.obs.admin_seals.add(batch.frames.len() as u64);
            self.obs.admin_seal_ns.add(batch.seal_ns);
            // The seal time was measured by the sealing phase; recording
            // it here adds no clock reads to the hot path.
            self.obs.seal_batch_ns.record(batch.seal_ns);
            self.obs.emit(|| EventKind::SealBatch {
                frames: batch.frames.len() as u64,
                elapsed_ns: batch.seal_ns,
            });
        }
    }

    /// Completes a staged fan-out inline (seal on this thread, then
    /// commit) — the serial path used by the sans-I/O compatibility
    /// wrappers and by callers that do not care about lock scope.
    fn finish_serial(&mut self, fanout: AdminFanout) -> LeaderOutput {
        let batch = Self::seal_admin_jobs(&fanout.jobs);
        self.commit_admin_frames(&batch);
        LeaderOutput {
            outgoing: batch.frames.into_iter().map(|f| f.env).collect(),
            broadcasts: fanout.broadcast.into_iter().collect(),
            events: fanout.events,
        }
    }

    /// Records nanoseconds the runtime spent holding its core lock for
    /// admin staging/commit, so lock pressure is observable next to
    /// [`LeaderStats::admin_seal_ns`].
    pub fn note_lock_hold(&mut self, ns: u64) {
        self.obs.lock_hold_ns.add(ns);
        self.obs.lock_hold_batch_ns.record(ns);
    }

    /// Number of in-flight messages (pending handshakes plus
    /// unacknowledged admin messages).
    #[must_use]
    pub fn outstanding_count(&self) -> usize {
        self.slots
            .values()
            .filter(|slot| match slot {
                Slot::WaitingForKeyAck { .. } => true,
                Slot::Connected(channel) => channel.outstanding.is_some(),
            })
            .count()
    }

    /// Returns the in-flight frames (handshake replies and unacknowledged
    /// admin messages) for the runtime's retransmission timer, as
    /// refcounted encoded bytes — redelivery clones a pointer, not a
    /// frame. Re-delivery is safe: recipients treat duplicates as replays
    /// (admin) or re-acknowledge idempotently (handshake, last-ack
    /// cache), so retransmission cannot violate the ordering properties.
    /// A staged-but-uncommitted admin message has no frame yet and is
    /// skipped until its commit lands.
    #[must_use]
    pub fn retransmit_frames(&self) -> Vec<(ActorId, Arc<[u8]>)> {
        let mut out = Vec::new();
        for (user, slot) in &self.slots {
            match slot {
                Slot::WaitingForKeyAck { cached_frame, .. } => {
                    out.push((user.clone(), Arc::clone(cached_frame)));
                }
                Slot::Connected(channel) => {
                    if let Some(frame) = &channel.outstanding_frame {
                        out.push((user.clone(), Arc::clone(frame)));
                    }
                }
            }
        }
        if !out.is_empty() {
            // Counting here (the collection point) covers every caller of
            // the retransmission timer; counters are atomic, so `&self`
            // suffices.
            self.obs.retransmits.add(out.len() as u64);
            self.obs.emit(|| EventKind::Retransmit {
                actor: self.leader.to_string(),
                frames: out.len() as u64,
            });
        }
        out
    }

    /// Advances the liveness layer to `now`: collects the in-flight
    /// frames whose (backoff-scheduled) retransmit deadline passed —
    /// bumping each channel's attempt counter and rescheduling it — and
    /// names the members whose ARQ budget is exhausted or whose liveness
    /// deadline (no authenticated traffic for
    /// [`LivenessConfig::liveness_timeout`]) was missed. The caller
    /// transmits the frames and drives [`LeaderCore::begin_evict`] (or
    /// [`LeaderCore::evict_now`]) for each named member.
    ///
    /// Under the default [`LivenessConfig`] this reproduces the historical
    /// behaviour: a flat retransmit cadence, no eviction ever.
    pub fn tick(&mut self, now: Duration) -> LeaderTick {
        self.now = self.now.max(now);
        let now = self.now;
        let liveness = self.config.liveness.clone();
        let mut tick = LeaderTick::default();
        for (user, slot) in &mut self.slots {
            match slot {
                Slot::WaitingForKeyAck {
                    cached_frame,
                    arq_attempts,
                    retransmit_at,
                    ..
                } => {
                    if liveness.exhausted(*arq_attempts) {
                        tick.evict.push(user.clone());
                    } else if now >= *retransmit_at {
                        tick.frames.push((user.clone(), Arc::clone(cached_frame)));
                        *arq_attempts += 1;
                        *retransmit_at =
                            now + liveness.jittered_delay(*arq_attempts, Self::channel_tag(user));
                    }
                }
                Slot::Connected(channel) => {
                    let silent = liveness
                        .liveness_timeout
                        .is_some_and(|t| now > channel.last_heard + t);
                    if liveness.exhausted(channel.arq_attempts) || silent {
                        tick.evict.push(user.clone());
                        continue;
                    }
                    if let (Some(frame), Some(due)) =
                        (&channel.outstanding_frame, channel.retransmit_at)
                    {
                        if now >= due {
                            tick.frames.push((user.clone(), Arc::clone(frame)));
                            channel.arq_attempts += 1;
                            channel.retransmit_at = Some(
                                now + liveness
                                    .jittered_delay(channel.arq_attempts, Self::channel_tag(user)),
                            );
                        }
                    }
                }
            }
        }
        if !tick.frames.is_empty() {
            self.obs.retransmits.add(tick.frames.len() as u64);
            self.obs.emit(|| EventKind::Retransmit {
                actor: self.leader.to_string(),
                frames: tick.frames.len() as u64,
            });
        }
        tick
    }

    /// The under-lock staging half of a timeout eviction: drops the
    /// presumed-dead member's session (freeing its outstanding slot) and
    /// stages the same departure fan-out as an expel — the Fig. 3
    /// `Oops(Ka)` path, driven by the liveness layer instead of the
    /// operator. A half-open handshake slot is freed silently (the user
    /// never became a member, so there is nothing to announce).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownUser`] if the user has no slot (already gone).
    pub fn begin_evict(&mut self, user: &ActorId) -> Result<AdminFanout, CoreError> {
        if self.slots.remove(user).is_none() {
            return Err(CoreError::UnknownUser(user.to_string()));
        }
        self.depart_fanout(user, Departure::Evict)
    }

    /// Evicts a member inline (staging + sealing + commit on this
    /// thread) — the serial convenience wrapper over
    /// [`LeaderCore::begin_evict`].
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownUser`] if the user has no slot.
    pub fn evict_now(&mut self, user: &ActorId) -> Result<LeaderOutput, CoreError> {
        let fanout = self.begin_evict(user)?;
        Ok(self.finish_serial(fanout))
    }

    /// Rotates the group key now and distributes it to every member
    /// (staging + sealing + commit all inline on this thread).
    ///
    /// # Errors
    ///
    /// Propagates admin-queueing failures.
    pub fn rekey_now(&mut self) -> Result<LeaderOutput, CoreError> {
        let fanout = self.begin_rekey()?;
        Ok(self.finish_serial(fanout))
    }

    /// The under-lock staging half of a rekey: rotates the group key and
    /// stages a `NewGroupKey` message per member, drawing every nonce in
    /// roster order. Seal the returned jobs (on any threads) with
    /// [`LeaderCore::seal_admin_jobs_parallel`], then apply
    /// [`LeaderCore::commit_admin_frames`] under the lock again. An empty
    /// group yields an empty fan-out and no rekey.
    ///
    /// # Errors
    ///
    /// Propagates admin-queueing failures.
    pub fn begin_rekey(&mut self) -> Result<AdminFanout, CoreError> {
        let mut fanout = AdminFanout::default();
        if self.group.is_empty() {
            return Ok(fanout);
        }
        let mut tape = Vec::new();
        let outcome = {
            let mut rec = TapeRecorder::new(self.rng.as_mut(), &mut tape);
            apply_rekey(&mut self.group, &mut self.tree, &mut rec)
        };
        self.journal_commit(JournalOp::Rekey, tape)?;
        self.obs.rekeys.inc();
        match outcome {
            RekeyOutcome::Tree { plan, epoch } => {
                // Tree mode: one leaf-to-root path was refreshed (rotating
                // over the roster); multicast the copath seals — zero admin
                // seals, `O(log N)` AEAD work. The refreshed member follows
                // from the broadcast too: its first seal targets its own
                // leaf key.
                fanout.broadcast = self.build_path_update_frame(&plan, epoch, None);
                self.obs.emit(|| EventKind::Rekeyed { epoch });
                fanout.events.push(LeaderEvent::Rekeyed(epoch));
            }
            RekeyOutcome::Flat => {
                let epoch = self.group.current_epoch().expect("nonempty group has key");
                let payload = AdminPayload::NewGroupKey {
                    epoch: epoch.epoch,
                    key: *epoch.key.as_bytes(),
                    iv: epoch.iv,
                };
                let epoch_num = epoch.epoch;
                for member in self.group.roster() {
                    fanout
                        .jobs
                        .extend(self.stage_admin_connected(&member, payload.clone())?);
                }
                self.obs.emit(|| EventKind::Rekeyed { epoch: epoch_num });
                fanout.events.push(LeaderEvent::Rekeyed(epoch_num));
            }
        }
        Ok(fanout)
    }

    /// Broadcasts application data to every member over the authenticated
    /// admin channel (one seal and one stop-and-wait exchange per
    /// recipient, all inline on this thread).
    ///
    /// # Errors
    ///
    /// Propagates admin-queueing failures.
    pub fn broadcast_admin_data(&mut self, data: &[u8]) -> Result<LeaderOutput, CoreError> {
        let fanout = self.begin_admin_broadcast(data)?;
        Ok(self.finish_serial(fanout))
    }

    /// The under-lock staging half of an admin-channel broadcast: one
    /// staged `AppData` message per member, sharing one payload
    /// allocation (each queue entry is a refcount bump, not a copy). The
    /// seal is still per member — that is what
    /// [`LeaderCore::broadcast_group_data`] eliminates — but it runs out
    /// of lock.
    ///
    /// # Errors
    ///
    /// Propagates admin-queueing failures.
    pub fn begin_admin_broadcast(&mut self, data: &[u8]) -> Result<AdminFanout, CoreError> {
        let shared: Arc<[u8]> = data.into();
        let mut fanout = AdminFanout::default();
        let recipients = self.group.roster();
        for member in &recipients {
            fanout.jobs.extend(
                self.stage_admin_connected(member, AdminPayload::AppData(Arc::clone(&shared)))?,
            );
        }
        self.obs.emit(|| EventKind::AdminSend {
            payload: data.to_vec(),
            recipients: recipients.iter().map(ToString::to_string).collect(),
        });
        Ok(fanout)
    }

    /// Seals `data` exactly once under the current group key and returns a
    /// single encoded [`MsgType::GroupBroadcast`] frame for the whole
    /// roster.
    ///
    /// The AEAD nonce is derived from the epoch IV and the per-epoch
    /// sequence number (no nonce bytes travel on the wire) and the AAD
    /// binds the leader identity, epoch, and sequence number, so every
    /// member authenticates origin and position from the shared frame with
    /// no per-recipient material. Leader work per call is one seal plus
    /// one envelope encoding, independent of group size; delivery fans the
    /// same refcounted bytes out to each link.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadPhase`] if the group is empty (no key to seal
    /// under).
    pub fn broadcast_group_data(&mut self, data: &[u8]) -> Result<BroadcastFrame, CoreError> {
        let recipients = self.group.roster();
        if recipients.is_empty() {
            return Err(CoreError::BadPhase {
                operation: "broadcast group data",
                phase: "empty group",
            });
        }
        let seq = self.group.next_broadcast_seq();
        let (epoch, key, iv) = {
            let e = self.group.current_epoch().expect("nonempty group has key");
            (e.epoch, e.key.clone(), e.iv)
        };
        let aad = group_broadcast_aad(&self.leader, epoch, seq, self.enclave.as_ref());
        let mut ciphertext = Vec::new();
        ChaCha20Poly1305::new(key.as_bytes()).seal_into(
            &broadcast_nonce(&iv, seq),
            data,
            &aad,
            &mut ciphertext,
        );
        self.obs.data_seals.inc();

        let env = Envelope {
            msg_type: MsgType::GroupBroadcast,
            sender: self.leader.clone(),
            // Multicast: identical bytes reach every member, so the
            // recipient field names the group's leader and members skip
            // the recipient check for this message type.
            recipient: self.leader.clone(),
            group: self.enclave.clone(),
            body: enclaves_wire::codec::encode(&GroupBroadcastWire {
                epoch,
                seq,
                ciphertext,
            }),
        };
        encode_into(&env, &mut self.frame_buf);
        self.obs.broadcasts.inc();
        self.obs.emit(|| EventKind::DataSend {
            epoch,
            seq,
            payload: data.to_vec(),
            recipients: recipients.iter().map(ToString::to_string).collect(),
        });
        Ok(BroadcastFrame {
            frame: self.frame_buf.as_slice().into(),
            recipients,
            epoch,
            seq,
        })
    }

    /// Expels a member: drops its session immediately and notifies the
    /// rest ("a variation of this protocol can be used to expel some
    /// members of the group"). Staging + sealing + commit all inline.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownUser`] if the user is not connected.
    pub fn expel(&mut self, user: &ActorId) -> Result<LeaderOutput, CoreError> {
        let fanout = self.begin_expel(user)?;
        Ok(self.finish_serial(fanout))
    }

    /// The under-lock staging half of an expulsion: drops the session and
    /// stages the departure fan-out (notices and, per policy, the new
    /// group key).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownUser`] if the user is not connected.
    pub fn begin_expel(&mut self, user: &ActorId) -> Result<AdminFanout, CoreError> {
        if self.slots.remove(user).is_none() {
            return Err(CoreError::UnknownUser(user.to_string()));
        }
        self.depart_fanout(user, Departure::Expel)
    }

    /// Attaches a write-ahead journal writer. Every subsequent
    /// membership/epoch transition is sealed into the journal *before*
    /// its frames are staged or dispatched.
    pub fn attach_journal(&mut self, writer: JournalWriter) {
        self.journal = Some(writer);
    }

    /// True if a journal writer is attached.
    #[must_use]
    pub fn has_journal(&self) -> bool {
        self.journal.is_some()
    }

    /// Seals one transition record — the operation, its RNG tape, and the
    /// resulting epoch stamp — into the attached journal. A no-op for an
    /// ephemeral core. On error the transition was *not* durably
    /// committed; the caller must propagate rather than dispatch frames.
    fn journal_commit(&mut self, op: JournalOp, tape: Vec<u8>) -> Result<(), CoreError> {
        let Some(writer) = self.journal.as_mut() else {
            return Ok(());
        };
        let transition = JournalTransition {
            op,
            tape,
            stamp: stamp_of(&self.group),
        };
        let (_, bytes) = writer.append(&JournalPayload::Transition(transition))?;
        self.obs.journal_appends.inc();
        self.obs.journal_bytes.add(bytes);
        Ok(())
    }

    /// Rebuilds a core from a replayed journal stream: the genesis
    /// configuration plus a deterministic re-execution of every recorded
    /// transition over its RNG tape. The rebuilt core carries the
    /// recorded roster, epoch, and key tree — byte-identical to the
    /// crashed core's durable state — but no live sessions: members
    /// re-authenticate through the auto-rejoin path.
    ///
    /// # Errors
    ///
    /// [`JournalError::ReplayDivergence`] if re-execution does not land
    /// exactly on a record's stamp (wrong epoch or key material, or an
    /// RNG-tape length mismatch): the journal and the code disagree and
    /// the rebuilt state cannot be trusted.
    pub fn recover(replay: &ReplayedStream) -> Result<LeaderCore, JournalError> {
        let (leader, directory, config) = config_from_genesis(&replay.genesis);
        let mut core = LeaderCore::new(leader, directory, config);
        for (i, t) in replay.transitions.iter().enumerate() {
            let seq = i as u64 + 2; // record 1 is the genesis
            let mut player = TapePlayer::new(t.tape.clone());
            match &t.op {
                JournalOp::Join(user) => {
                    apply_join(
                        &mut core.group,
                        &mut core.tree,
                        &core.config,
                        user,
                        &mut player,
                    );
                }
                JournalOp::Leave(user) | JournalOp::Expel(user) | JournalOp::Evict(user) => {
                    apply_depart(
                        &mut core.group,
                        &mut core.tree,
                        &core.config,
                        user,
                        &mut player,
                    );
                }
                JournalOp::Rekey => {
                    if core.group.is_empty() {
                        return Err(JournalError::ReplayDivergence {
                            seq,
                            detail: "rekey recorded for an empty group".into(),
                        });
                    }
                    apply_rekey(&mut core.group, &mut core.tree, &mut player);
                }
                JournalOp::Recover { target_epoch } => {
                    apply_recover(&mut core.group, &mut core.tree, *target_epoch, &mut player);
                }
            }
            let stamp = stamp_of(&core.group);
            if stamp.epoch != t.stamp.epoch {
                return Err(JournalError::ReplayDivergence {
                    seq,
                    detail: format!("epoch {} != recorded {}", stamp.epoch, t.stamp.epoch),
                });
            }
            if stamp != t.stamp {
                return Err(JournalError::ReplayDivergence {
                    seq,
                    detail: "regenerated key material differs from the stamp".into(),
                });
            }
            if player.underrun() || player.leftover() > 0 {
                return Err(JournalError::ReplayDivergence {
                    seq,
                    detail: format!(
                        "rng tape mismatch (underrun: {}, leftover: {} bytes)",
                        player.underrun(),
                        player.leftover()
                    ),
                });
            }
        }
        Ok(core)
    }

    /// Advances a recovered core into a fresh epoch strictly past both
    /// the replayed epoch and the journal fence, and journals the jump.
    /// Members of the old epoch cannot be rewound onto it, and a stale
    /// journal restore (the rewind attack) can never re-issue an epoch
    /// members have already seen — the fence file outlives the stream.
    /// Returns the new epoch number, or `None` for a group that never
    /// established one (nothing to fence).
    ///
    /// # Errors
    ///
    /// Propagates journal append failures.
    pub fn recovery_advance(&mut self, fence: Option<u64>) -> Result<Option<u64>, CoreError> {
        if self.group.current_epoch().is_none() && fence.is_none() {
            return Ok(None);
        }
        let target = self
            .group
            .next_epoch_number()
            .max(fence.unwrap_or(0).saturating_add(1));
        let mut tape = Vec::new();
        {
            let mut rec = TapeRecorder::new(self.rng.as_mut(), &mut tape);
            apply_recover(&mut self.group, &mut self.tree, target, &mut rec);
        }
        self.obs.rekeys.inc();
        self.journal_commit(
            JournalOp::Recover {
                target_epoch: target,
            },
            tape,
        )?;
        Ok(Some(target))
    }

    /// A digest of this core's durable state — roster, epoch stamp, and
    /// key tree. The byte-identity probe for journal-replay tests: a
    /// recovered core must produce exactly the live core's digest.
    #[must_use]
    pub fn durable_digest(&self) -> [u8; 32] {
        let mut bytes = Vec::new();
        for member in self.group.roster() {
            bytes.extend_from_slice(member.as_str().as_bytes());
            bytes.push(0);
        }
        let stamp = stamp_of(&self.group);
        bytes.extend_from_slice(&stamp.epoch.to_be_bytes());
        bytes.extend_from_slice(&stamp.key);
        bytes.extend_from_slice(&stamp.iv);
        match &self.tree {
            Some(tree) => {
                bytes.push(1);
                tree.digest_into(&mut bytes);
            }
            None => bytes.push(0),
        }
        enclaves_crypto::sha256::sha256(&bytes)
    }
}

/// Outcome of the join transition ([`apply_join`]): mutations only, no
/// fan-out.
enum JoinOutcome {
    /// Flat mode; `rekeyed` per the join policy.
    Flat { rekeyed: bool },
    /// Tree mode: the member holds a (fresh or refreshed) leaf and the
    /// epoch advanced to the new root's derivation.
    Tree { plan: PathUpdatePlan, epoch: u64 },
}

/// Outcome of the departure transition ([`apply_depart`]).
enum DepartOutcome {
    /// The user was not a member; nothing changed (and nothing was
    /// journaled).
    NotMember,
    /// Flat mode; `rekeyed` per the leave policy.
    Flat { rekeyed: bool },
    /// Tree mode and the group is now empty: no epoch advance.
    TreeEmpty,
    /// Tree mode: the departed path was rewritten.
    Tree { plan: PathUpdatePlan, epoch: u64 },
    /// Tree mode: churn left the tree pathological and it was rebuilt
    /// from scratch — every member needs an admin path resync.
    TreeReinit { epoch: u64 },
}

/// Outcome of the explicit-rekey transition ([`apply_rekey`]).
enum RekeyOutcome {
    Flat,
    Tree { plan: PathUpdatePlan, epoch: u64 },
}

/// Derives the next epoch's group key from a fresh tree root and commits
/// it. `derive_group` binds the epoch number into the KDF, so distinct
/// epochs always yield distinct keys and IVs.
fn advance_tree_epoch(group: &mut GroupState, root_key: &NodeKey) -> u64 {
    let epoch = group.next_epoch_number();
    let (key, iv) = treekdf::derive_group(root_key, epoch);
    group.advance_epoch_with(GroupKey::from_bytes(key), iv)
}

/// The join transition over explicit state — the *only* mutation path for
/// a join, shared verbatim between live handling (under a [`TapeRecorder`])
/// and journal replay (under a [`TapePlayer`]), which is what makes replay
/// a pure function of the journal bytes.
fn apply_join(
    group: &mut GroupState,
    tree: &mut Option<KeyTree>,
    config: &LeaderConfig,
    user: &ActorId,
    rng: &mut dyn CryptoRng,
) -> JoinOutcome {
    group.join(user.clone(), rng);
    if let Some(tree) = tree.as_mut() {
        // A re-admission — the member survived in the recovered roster
        // and tree while its session died with the old leader — refreshes
        // the existing leaf instead of re-adding it, retiring every key
        // on its possibly compromised old path.
        let plan = if tree.leaf_of(user).is_some() {
            tree.refresh_member(user, rng)
                .expect("member is in the tree")
        } else {
            tree.add(user.clone(), rng)
        };
        let epoch = advance_tree_epoch(group, &plan.root_key);
        return JoinOutcome::Tree { plan, epoch };
    }
    let rekeyed = config.rekey_policy.rekey_on_join() && group.len() > 1;
    if rekeyed {
        group.rekey(rng);
    }
    JoinOutcome::Flat { rekeyed }
}

/// The departure transition over explicit state; see [`apply_join`] for
/// why this is a free function. In tree mode the departed member's leaf
/// is blanked and its former path rewritten, so every key it held is
/// retired; a mostly-blank tree is rebuilt outright.
fn apply_depart(
    group: &mut GroupState,
    tree: &mut Option<KeyTree>,
    config: &LeaderConfig,
    user: &ActorId,
    rng: &mut dyn CryptoRng,
) -> DepartOutcome {
    if !group.leave(user) {
        return DepartOutcome::NotMember;
    }
    if let Some(t) = tree.as_mut() {
        let Some(plan) = t.remove(user, rng) else {
            return DepartOutcome::TreeEmpty;
        };
        if t.is_pathological() {
            let Some(root) = t.reinit(rng) else {
                return DepartOutcome::TreeEmpty;
            };
            let epoch = advance_tree_epoch(group, &root);
            return DepartOutcome::TreeReinit { epoch };
        }
        let epoch = advance_tree_epoch(group, &plan.root_key);
        return DepartOutcome::Tree { plan, epoch };
    }
    let rekeyed = config.rekey_policy.rekey_on_leave() && !group.is_empty();
    if rekeyed {
        group.rekey(rng);
    }
    DepartOutcome::Flat { rekeyed }
}

/// The explicit-rekey transition over explicit state; see [`apply_join`]
/// for why this is a free function. The caller guarantees a non-empty
/// group.
fn apply_rekey(
    group: &mut GroupState,
    tree: &mut Option<KeyTree>,
    rng: &mut dyn CryptoRng,
) -> RekeyOutcome {
    if let Some(t) = tree.as_mut() {
        let plan = t.refresh_next(rng);
        let epoch = advance_tree_epoch(group, &plan.root_key);
        return RekeyOutcome::Tree { plan, epoch };
    }
    group.rekey(rng);
    RekeyOutcome::Flat
}

/// The recovery-epoch transition: installs a caller-chosen epoch number
/// (strictly past everything replayed *and* fenced) with fresh key
/// material — from a refreshed tree root when a populated tree survived
/// replay, from the RNG otherwise.
fn apply_recover(
    group: &mut GroupState,
    tree: &mut Option<KeyTree>,
    target_epoch: u64,
    rng: &mut dyn CryptoRng,
) {
    match tree.as_mut() {
        Some(t) if t.occupied() > 0 => {
            let plan = t.refresh_next(rng);
            let (key, iv) = treekdf::derive_group(&plan.root_key, target_epoch);
            group.install_epoch(target_epoch, GroupKey::from_bytes(key), iv);
        }
        _ => group.install_fresh_epoch(target_epoch, rng),
    }
}

/// The current epoch as a journal [`EpochStamp`] (epoch 0 and zeroed
/// material before the first key is established).
fn stamp_of(group: &GroupState) -> EpochStamp {
    match group.current_epoch() {
        Some(e) => EpochStamp {
            epoch: e.epoch,
            key: *e.key.as_bytes(),
            iv: e.iv,
        },
        None => EpochStamp {
            epoch: 0,
            key: [0; 32],
            iv: [0; 12],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RekeyPolicy;
    use crate::protocol::member::{MemberEvent, MemberSession};
    use enclaves_crypto::keys::LongTermKey;
    use enclaves_crypto::rng::SeededRng;

    fn id(s: &str) -> ActorId {
        ActorId::new(s).unwrap()
    }

    fn directory(users: &[&str]) -> Directory {
        let mut d = Directory::new();
        for u in users {
            d.register_key(
                &id(u),
                LongTermKey::derive_from_password(&format!("pw-{u}"), u).unwrap(),
            );
        }
        d
    }

    fn leader(users: &[&str], policy: RekeyPolicy) -> LeaderCore {
        LeaderCore::with_rng(
            id("leader"),
            directory(users),
            LeaderConfig {
                rekey_policy: policy,
                ..LeaderConfig::default()
            },
            Box::new(SeededRng::from_seed(1)),
        )
    }

    fn member(user: &str, seed: u64) -> (MemberSession, Envelope) {
        MemberSession::start_with_key(
            id(user),
            id("leader"),
            LongTermKey::derive_from_password(&format!("pw-{user}"), user).unwrap(),
            Box::new(SeededRng::from_seed(seed)),
        )
    }

    /// Runs envelopes between a member and the leader until quiescent.
    fn pump(
        leader: &mut LeaderCore,
        session: &mut MemberSession,
        first: Envelope,
    ) -> Vec<MemberEvent> {
        let mut events = Vec::new();
        let mut to_leader = vec![first];
        while !to_leader.is_empty() {
            let mut to_member = Vec::new();
            for env in to_leader.drain(..) {
                if let Ok(out) = leader.handle(&env) {
                    to_member.extend(out.outgoing);
                }
            }
            for env in to_member {
                if env.recipient != *session.user() {
                    continue;
                }
                if let Ok(out) = session.handle(&env) {
                    events.extend(out.events);
                    to_leader.extend(out.reply);
                }
            }
        }
        events
    }

    #[test]
    fn join_flow_produces_welcome() {
        let mut l = leader(&["alice"], RekeyPolicy::Manual);
        let (mut alice, init) = member("alice", 10);
        let events = pump(&mut l, &mut alice, init);
        assert!(events.contains(&MemberEvent::SessionEstablished));
        assert!(events.iter().any(
            |e| matches!(e, MemberEvent::Welcomed { roster, .. } if roster == &vec![id("alice")])
        ));
        assert_eq!(l.roster(), vec![id("alice")]);
        assert_eq!(alice.group_epoch(), Some(1));
    }

    #[test]
    fn unknown_user_rejected() {
        let mut l = leader(&["alice"], RekeyPolicy::Manual);
        let (_, init) = member("mallory", 11);
        assert!(matches!(l.handle(&init), Err(CoreError::UnknownUser(_))));
        assert!(l.roster().is_empty());
    }

    #[test]
    fn wrong_password_rejected() {
        let mut l = leader(&["alice"], RekeyPolicy::Manual);
        // Mallory claims to be alice but seals with the wrong key.
        let (_, mut init) = member("alice", 12);
        let wrong_key = LongTermKey::derive_from_password("wrong", "alice").unwrap();
        let (_, bad_init) = MemberSession::start_with_key(
            id("alice"),
            id("leader"),
            wrong_key,
            Box::new(SeededRng::from_seed(13)),
        );
        init.body = bad_init.body;
        assert!(matches!(
            l.handle(&init),
            Err(CoreError::Rejected(RejectReason::BadSeal))
        ));
    }

    #[test]
    fn second_member_triggers_join_notice_and_rekey() {
        let mut l = leader(&["alice", "bob"], RekeyPolicy::OnJoin);
        let (mut alice, init_a) = member("alice", 20);
        pump(&mut l, &mut alice, init_a);
        assert_eq!(l.epoch(), Some(1));

        // Bob joins; policy rekeys; alice must receive MemberJoined +
        // NewGroupKey.
        let (mut bob, init_b) = member("bob", 21);
        let out = l.handle(&init_b).unwrap();
        let kd = out.outgoing.into_iter().next().unwrap();
        let bob_out = bob.handle(&kd).unwrap();
        let out = l.handle(bob_out.reply.as_ref().unwrap()).unwrap();

        // Envelopes now flow to both members; pump them manually.
        let mut alice_events = Vec::new();
        let mut bob_events = Vec::new();
        let mut queue: VecDeque<Envelope> = out.outgoing.into();
        while let Some(env) = queue.pop_front() {
            let (session, events) = if env.recipient == id("alice") {
                (&mut alice, &mut alice_events)
            } else {
                (&mut bob, &mut bob_events)
            };
            if let Ok(o) = session.handle(&env) {
                events.extend(o.events);
                if let Some(reply) = o.reply {
                    if let Ok(lo) = l.handle(&reply) {
                        queue.extend(lo.outgoing);
                    }
                }
            }
        }

        assert_eq!(l.epoch(), Some(2));
        assert!(alice_events.contains(&MemberEvent::MemberJoined(id("bob"))));
        assert!(alice_events
            .iter()
            .any(|e| matches!(e, MemberEvent::GroupKeyChanged { epoch: 2 })));
        assert!(bob_events
            .iter()
            .any(|e| matches!(e, MemberEvent::Welcomed { epoch: 2, .. })));
        assert_eq!(alice.group_epoch(), Some(2));
        assert_eq!(bob.group_epoch(), Some(2));
        assert_eq!(alice.roster(), vec![id("alice"), id("bob")]);
        assert_eq!(bob.roster(), vec![id("alice"), id("bob")]);
    }

    #[test]
    fn replayed_auth_init_ignored_while_connected() {
        let mut l = leader(&["alice"], RekeyPolicy::Manual);
        let (mut alice, init) = member("alice", 30);
        pump(&mut l, &mut alice, init.clone());
        // Replay the original AuthInitReq.
        assert!(matches!(
            l.handle(&init),
            Err(CoreError::Rejected(RejectReason::UnexpectedType))
        ));
        assert_eq!(l.roster(), vec![id("alice")]);
    }

    #[test]
    fn replayed_ack_rejected() {
        let mut l = leader(&["alice"], RekeyPolicy::Manual);
        let (mut alice, init) = member("alice", 31);
        pump(&mut l, &mut alice, init);

        // Send admin data; capture alice's ack; replay it.
        let out = l.broadcast_admin_data(b"x").unwrap();
        let admin = out.outgoing.into_iter().next().unwrap();
        let alice_out = alice.handle(&admin).unwrap();
        let ack = alice_out.reply.unwrap();
        assert!(l.handle(&ack).is_ok());
        assert!(matches!(
            l.handle(&ack),
            Err(CoreError::Rejected(RejectReason::StaleNonce))
        ));
    }

    #[test]
    fn leave_flow_notifies_and_rekeys() {
        let mut l = leader(&["alice", "bob"], RekeyPolicy::OnLeave);
        let (mut alice, init_a) = member("alice", 40);
        pump(&mut l, &mut alice, init_a);
        let (mut bob, init_b) = member("bob", 41);
        // Drive bob's join, collecting all envelopes.
        let out = l.handle(&init_b).unwrap();
        let bob_out = bob.handle(out.outgoing.first().unwrap()).unwrap();
        let out = l.handle(bob_out.reply.as_ref().unwrap()).unwrap();
        let mut queue: VecDeque<Envelope> = out.outgoing.into();
        while let Some(env) = queue.pop_front() {
            let session = if env.recipient == id("alice") {
                &mut alice
            } else {
                &mut bob
            };
            if let Ok(o) = session.handle(&env) {
                if let Some(reply) = o.reply {
                    if let Ok(lo) = l.handle(&reply) {
                        queue.extend(lo.outgoing);
                    }
                }
            }
        }
        let epoch_before = l.epoch().unwrap();

        // Bob leaves.
        let close = bob.leave().unwrap();
        let out = l.handle(&close).unwrap();
        assert!(out.events.contains(&LeaderEvent::MemberLeft(id("bob"))));
        assert_eq!(l.roster(), vec![id("alice")]);
        assert_eq!(l.epoch(), Some(epoch_before + 1), "rekey on leave");

        // Alice receives MemberLeft + NewGroupKey.
        let mut events = Vec::new();
        let mut queue: VecDeque<Envelope> = out.outgoing.into();
        while let Some(env) = queue.pop_front() {
            if let Ok(o) = alice.handle(&env) {
                events.extend(o.events);
                if let Some(reply) = o.reply {
                    if let Ok(lo) = l.handle(&reply) {
                        queue.extend(lo.outgoing);
                    }
                }
            }
        }
        assert!(events.contains(&MemberEvent::MemberLeft(id("bob"))));
        assert!(events
            .iter()
            .any(|e| matches!(e, MemberEvent::GroupKeyChanged { .. })));
        assert_eq!(alice.roster(), vec![id("alice")]);

        // A replayed close is rejected (slot is gone).
        assert!(matches!(
            l.handle(&close),
            Err(CoreError::Rejected(RejectReason::UnexpectedType))
        ));
    }

    #[test]
    fn group_data_is_relayed_to_others_only() {
        let mut l = leader(&["alice", "bob"], RekeyPolicy::Manual);
        let (mut alice, init_a) = member("alice", 50);
        pump(&mut l, &mut alice, init_a);
        let (mut bob, init_b) = member("bob", 51);
        let out = l.handle(&init_b).unwrap();
        let bob_out = bob.handle(out.outgoing.first().unwrap()).unwrap();
        let out = l.handle(bob_out.reply.as_ref().unwrap()).unwrap();
        let mut queue: VecDeque<Envelope> = out.outgoing.into();
        while let Some(env) = queue.pop_front() {
            let session = if env.recipient == id("alice") {
                &mut alice
            } else {
                &mut bob
            };
            if let Ok(o) = session.handle(&env) {
                if let Some(reply) = o.reply {
                    if let Ok(lo) = l.handle(&reply) {
                        queue.extend(lo.outgoing);
                    }
                }
            }
        }

        let env = alice.send_group_data(b"hi all").unwrap();
        let out = l.handle(&env).unwrap();
        assert_eq!(out.outgoing.len(), 1, "only bob receives the relay");
        assert_eq!(out.outgoing[0].recipient, id("bob"));
        let bob_out = bob.handle(out.outgoing.first().unwrap()).unwrap();
        assert_eq!(
            bob_out.events,
            vec![MemberEvent::GroupData {
                from: id("alice"),
                data: b"hi all".to_vec()
            }]
        );
    }

    #[test]
    fn tampered_group_data_stops_at_leader() {
        let mut l = leader(&["alice"], RekeyPolicy::Manual);
        let (mut alice, init) = member("alice", 60);
        pump(&mut l, &mut alice, init);
        let mut env = alice.send_group_data(b"payload").unwrap();
        let last = env.body.len() - 1;
        env.body[last] ^= 1;
        assert!(matches!(
            l.handle(&env),
            Err(CoreError::Rejected(RejectReason::BadSeal))
        ));
        assert_eq!(l.stats().relayed, 0);
    }

    #[test]
    fn admin_queue_is_stop_and_wait() {
        let mut l = leader(&["alice"], RekeyPolicy::Manual);
        let (mut alice, init) = member("alice", 70);
        pump(&mut l, &mut alice, init);

        // Two broadcasts: only the first goes out immediately.
        let out1 = l.broadcast_admin_data(b"one").unwrap();
        assert_eq!(out1.outgoing.len(), 1);
        let out2 = l.broadcast_admin_data(b"two").unwrap();
        assert!(out2.outgoing.is_empty(), "second is queued");

        // Acking the first releases the second.
        let a_out = alice.handle(out1.outgoing.first().unwrap()).unwrap();
        let released = l.handle(a_out.reply.as_ref().unwrap()).unwrap();
        assert_eq!(released.outgoing.len(), 1);
        let a_out2 = alice.handle(released.outgoing.first().unwrap()).unwrap();
        assert_eq!(a_out2.events, vec![MemberEvent::AdminData(b"two".to_vec())]);
    }

    #[test]
    fn expel_removes_member_and_notifies() {
        let mut l = leader(&["alice", "bob"], RekeyPolicy::OnJoinAndLeave);
        let (mut alice, init_a) = member("alice", 80);
        pump(&mut l, &mut alice, init_a);
        let (mut bob, init_b) = member("bob", 81);
        let out = l.handle(&init_b).unwrap();
        let bob_out = bob.handle(out.outgoing.first().unwrap()).unwrap();
        let out = l.handle(bob_out.reply.as_ref().unwrap()).unwrap();
        let mut queue: VecDeque<Envelope> = out.outgoing.into();
        while let Some(env) = queue.pop_front() {
            let session = if env.recipient == id("alice") {
                &mut alice
            } else {
                &mut bob
            };
            if let Ok(o) = session.handle(&env) {
                if let Some(reply) = o.reply {
                    if let Ok(lo) = l.handle(&reply) {
                        queue.extend(lo.outgoing);
                    }
                }
            }
        }

        let out = l.expel(&id("bob")).unwrap();
        assert!(out.events.contains(&LeaderEvent::MemberLeft(id("bob"))));
        assert_eq!(l.roster(), vec![id("alice")]);
        assert!(matches!(
            l.expel(&id("bob")),
            Err(CoreError::UnknownUser(_))
        ));
    }

    #[test]
    fn duplicate_auth_init_gets_cached_reply() {
        let mut l = leader(&["alice"], RekeyPolicy::Manual);
        let (_, init) = member("alice", 100);
        let first = l.handle(&init).unwrap();
        let second = l.handle(&init).unwrap();
        assert_eq!(
            first.outgoing, second.outgoing,
            "duplicate request must get the byte-identical cached reply"
        );
        // But a *different* request while one is pending is ignored.
        let (_, other_init) = member("alice", 101);
        assert!(matches!(
            l.handle(&other_init),
            Err(CoreError::Rejected(RejectReason::UnexpectedType))
        ));
    }

    /// Decodes retransmit frames back to envelopes for comparison.
    fn retransmit_envelopes(l: &LeaderCore) -> Vec<Envelope> {
        l.retransmit_frames()
            .iter()
            .map(|(_, frame)| enclaves_wire::codec::decode(frame).unwrap())
            .collect()
    }

    #[test]
    fn retransmit_frames_cover_handshakes_and_admin() {
        let mut l = leader(&["alice"], RekeyPolicy::Manual);
        // Pending handshake → one retransmittable frame, addressed to the
        // joining user and byte-identical on every tick (same allocation).
        let (mut alice, init) = member("alice", 110);
        let out = l.handle(&init).unwrap();
        assert_eq!(l.outstanding_count(), 1);
        assert_eq!(retransmit_envelopes(&l), out.outgoing);
        assert_eq!(l.retransmit_frames()[0].0, id("alice"));

        // Complete the join; the welcome admin message is now in flight.
        let alice_out = alice.handle(&out.outgoing[0]).unwrap();
        let welcome_out = l.handle(alice_out.reply.as_ref().unwrap()).unwrap();
        assert_eq!(retransmit_envelopes(&l), welcome_out.outgoing);

        // Acknowledge it: nothing left to retransmit.
        let a_out = alice.handle(&welcome_out.outgoing[0]).unwrap();
        l.handle(a_out.reply.as_ref().unwrap()).unwrap();
        assert!(l.retransmit_frames().is_empty());
        assert_eq!(l.outstanding_count(), 0);
    }

    #[test]
    fn retransmit_frame_is_cached_not_recloned() {
        let mut l = leader(&["alice"], RekeyPolicy::Manual);
        let (mut alice, init) = member("alice", 111);
        pump(&mut l, &mut alice, init);
        l.broadcast_admin_data(b"in flight").unwrap();
        let first = l.retransmit_frames();
        let second = l.retransmit_frames();
        assert_eq!(first.len(), 1);
        assert!(
            Arc::ptr_eq(&first[0].1, &second[0].1),
            "successive ticks must share one encoded allocation"
        );
    }

    #[test]
    fn staged_rekey_parallel_matches_serial_bytes() {
        // Two leaders driven by identical seeded RNGs through identical
        // histories stage identical jobs; sealing them serially vs in
        // parallel must produce byte-identical frames in the same order.
        let mk = || {
            let mut l = LeaderCore::with_rng(
                id("leader"),
                directory(&["alice", "bob", "carol"]),
                LeaderConfig {
                    rekey_policy: RekeyPolicy::Manual,
                    // Notices off so each join is a self-contained welcome
                    // exchange and every channel is free at rekey time.
                    membership_notices: false,
                    ..LeaderConfig::default()
                },
                Box::new(SeededRng::from_seed(9)),
            );
            for (i, name) in ["alice", "bob", "carol"].iter().enumerate() {
                let (mut s, init) = member(name, 300 + i as u64);
                pump(&mut l, &mut s, init);
            }
            l
        };
        let mut serial = mk();
        let mut parallel = mk();

        let fan_s = serial.begin_rekey().unwrap();
        let fan_p = parallel.begin_rekey().unwrap();
        assert_eq!(fan_s.jobs.len(), 3, "one job per member");
        assert_eq!(fan_s.events, vec![LeaderEvent::Rekeyed(2)]);

        let batch_s = LeaderCore::seal_admin_jobs(&fan_s.jobs);
        let batch_p = LeaderCore::seal_admin_jobs_parallel(&fan_p.jobs, 4);
        for (s, p) in batch_s.frames.iter().zip(batch_p.frames.iter()) {
            assert_eq!(s.member, p.member);
            assert_eq!(s.env, p.env);
            assert_eq!(s.frame, p.frame, "parallel frame bytes diverged");
        }
        serial.commit_admin_frames(&batch_s);
        parallel.commit_admin_frames(&batch_p);
        assert_eq!(serial.stats().admin_seals, parallel.stats().admin_seals);
        // Slot iteration order is per-instance hash order; compare the
        // cached retransmit frames keyed by recipient instead.
        let sorted = |l: &LeaderCore| {
            let mut v = l.retransmit_frames();
            v.sort_by_key(|a| a.0.to_string());
            v
        };
        assert_eq!(sorted(&serial), sorted(&parallel));

        // Exercise the actual worker pool (the 3-job batch above falls
        // back to serial below the small-batch threshold): widen the job
        // list past the threshold and demand byte equality per slot.
        let wide: Vec<SealJob> = fan_p
            .jobs
            .iter()
            .cycle()
            .take(PARALLEL_SEAL_MIN_JOBS + 7)
            .cloned()
            .collect();
        let wide_serial = LeaderCore::seal_admin_jobs(&wide);
        let wide_parallel = LeaderCore::seal_admin_jobs_parallel(&wide, 4);
        assert_eq!(wide_serial.frames.len(), wide_parallel.frames.len());
        for (s, p) in wide_serial.frames.iter().zip(wide_parallel.frames.iter()) {
            assert_eq!(s.frame, p.frame, "threaded seal diverged from serial");
        }
    }

    #[test]
    fn rekey_counts_exactly_n_admin_seals() {
        let mut l = leader(&["alice", "bob"], RekeyPolicy::Manual);
        let (mut alice, init_a) = member("alice", 310);
        pump(&mut l, &mut alice, init_a);
        let (mut bob, init_b) = member("bob", 311);
        join_second(&mut l, &mut [("alice", &mut alice)], &mut bob, init_b);

        let before = l.stats().admin_seals;
        let out = l.rekey_now().unwrap();
        assert_eq!(out.outgoing.len(), 2);
        assert_eq!(
            l.stats().admin_seals,
            before + 2,
            "a rekey over n members costs exactly n admin seals"
        );
        assert!(l.stats().admin_seal_ns > 0, "seal time is accounted");
    }

    #[test]
    fn commit_skips_frames_for_departed_or_acked_channels() {
        let mut l = leader(&["alice", "bob"], RekeyPolicy::Manual);
        let (mut alice, init_a) = member("alice", 320);
        pump(&mut l, &mut alice, init_a);
        let (mut bob, init_b) = member("bob", 321);
        join_second(&mut l, &mut [("alice", &mut alice)], &mut bob, init_b);

        let fanout = l.begin_rekey().unwrap();
        let batch = LeaderCore::seal_admin_jobs(&fanout.jobs);
        // Bob departs between stage and commit: his exchange is over, so
        // his frame must not enter the retransmit cache.
        l.expel(&id("bob")).unwrap();
        l.commit_admin_frames(&batch);
        let frames = l.retransmit_frames();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].0, id("alice"));
    }

    #[test]
    fn retransmitted_admin_is_reacked_idempotently() {
        let mut l = leader(&["alice"], RekeyPolicy::Manual);
        let (mut alice, init) = member("alice", 120);
        pump(&mut l, &mut alice, init);

        let out = l.broadcast_admin_data(b"payload").unwrap();
        let admin = out.outgoing.into_iter().next().unwrap();
        let first = alice.handle(&admin).unwrap();
        assert_eq!(first.events.len(), 1);
        // Simulate the ack being lost: the leader retransmits; alice
        // re-acks from the cache with identical bytes and no event.
        let second = alice.handle(&admin).unwrap();
        assert!(second.events.is_empty());
        assert_eq!(
            first.reply.as_ref().map(|e| &e.body),
            second.reply.as_ref().map(|e| &e.body)
        );
        // Either ack copy completes the exchange; the second is rejected
        // as stale (replay defense intact on the leader side).
        assert!(l.handle(first.reply.as_ref().unwrap()).is_ok());
        assert!(l.handle(second.reply.as_ref().unwrap()).is_err());
    }

    /// Joins `user` to a leader that already has members, pumping all
    /// envelopes among the given sessions.
    fn join_second(
        l: &mut LeaderCore,
        existing: &mut [(&str, &mut MemberSession)],
        newcomer: &mut MemberSession,
        init: Envelope,
    ) {
        let out = l.handle(&init).unwrap();
        let new_out = newcomer.handle(out.outgoing.first().unwrap()).unwrap();
        let out = l.handle(new_out.reply.as_ref().unwrap()).unwrap();
        let mut queue: VecDeque<Envelope> = out.outgoing.into();
        while let Some(env) = queue.pop_front() {
            let session = if env.recipient == *newcomer.user() {
                &mut *newcomer
            } else {
                let mut found = None;
                for (name, s) in existing.iter_mut() {
                    if env.recipient == id(name) {
                        found = Some(&mut **s);
                        break;
                    }
                }
                match found {
                    Some(s) => s,
                    None => continue,
                }
            };
            if let Ok(o) = session.handle(&env) {
                if let Some(reply) = o.reply {
                    if let Ok(lo) = l.handle(&reply) {
                        queue.extend(lo.outgoing);
                    }
                }
            }
        }
    }

    #[test]
    fn broadcast_seals_once_and_every_member_decrypts() {
        let mut l = leader(&["alice", "bob"], RekeyPolicy::Manual);
        let (mut alice, init_a) = member("alice", 200);
        pump(&mut l, &mut alice, init_a);
        let (mut bob, init_b) = member("bob", 201);
        join_second(&mut l, &mut [("alice", &mut alice)], &mut bob, init_b);

        let bc = l.broadcast_group_data(b"fan out once").unwrap();
        assert_eq!(bc.recipients, vec![id("alice"), id("bob")]);
        assert_eq!(l.stats().data_seals, 1, "exactly one seal for N members");
        assert_eq!(l.stats().broadcasts, 1);

        // Both members decode and decrypt the *same* frame bytes.
        let env: Envelope = enclaves_wire::codec::decode(&bc.frame).unwrap();
        for session in [&mut alice, &mut bob] {
            let out = session.handle(&env).unwrap();
            assert_eq!(
                out.events,
                vec![MemberEvent::Broadcast {
                    epoch: bc.epoch,
                    seq: bc.seq,
                    data: b"fan out once".to_vec(),
                }]
            );
            assert!(out.reply.is_none(), "data plane is fire-and-forget");
        }
    }

    #[test]
    fn broadcast_replay_and_reorder_rejected() {
        let mut l = leader(&["alice"], RekeyPolicy::Manual);
        let (mut alice, init) = member("alice", 210);
        pump(&mut l, &mut alice, init);

        let bc0 = l.broadcast_group_data(b"zero").unwrap();
        let bc1 = l.broadcast_group_data(b"one").unwrap();
        assert_eq!((bc0.seq, bc1.seq), (0, 1));
        let env0: Envelope = enclaves_wire::codec::decode(&bc0.frame).unwrap();
        let env1: Envelope = enclaves_wire::codec::decode(&bc1.frame).unwrap();

        // Deliver seq 1 first; the straggler seq 0 is then rejected
        // (reordering across the watermark), as is a replay of seq 1.
        assert!(alice.handle(&env1).is_ok());
        assert!(matches!(
            alice.handle(&env0),
            Err(CoreError::Rejected(RejectReason::StaleNonce))
        ));
        assert!(matches!(
            alice.handle(&env1),
            Err(CoreError::Rejected(RejectReason::StaleNonce))
        ));
        // The session is not wedged: the next broadcast is delivered.
        let bc2 = l.broadcast_group_data(b"two").unwrap();
        let env2: Envelope = enclaves_wire::codec::decode(&bc2.frame).unwrap();
        assert!(alice.handle(&env2).is_ok());
    }

    #[test]
    fn broadcast_racing_a_rekey_is_accepted_once() {
        let mut l = leader(&["alice"], RekeyPolicy::Manual);
        let (mut alice, init) = member("alice", 220);
        pump(&mut l, &mut alice, init);

        // Sealed under epoch 1, but the rekey to epoch 2 overtakes it.
        let bc_old = l.broadcast_group_data(b"in flight").unwrap();
        let out = l.rekey_now().unwrap();
        for env in out.outgoing {
            if let Ok(o) = alice.handle(&env) {
                if let Some(reply) = o.reply {
                    let _ = l.handle(&reply);
                }
            }
        }
        assert_eq!(alice.group_epoch(), Some(2));

        // The stale-epoch frame still opens under the previous key...
        let env_old: Envelope = enclaves_wire::codec::decode(&bc_old.frame).unwrap();
        let out = alice.handle(&env_old).unwrap();
        assert!(matches!(
            out.events[0],
            MemberEvent::Broadcast { epoch: 1, .. }
        ));
        // ...but replaying it across the rekey is rejected.
        assert!(matches!(
            alice.handle(&env_old),
            Err(CoreError::Rejected(RejectReason::StaleNonce))
        ));
        // And the new epoch's sequence numbering restarts at zero without
        // colliding with epoch 1's history.
        let bc_new = l.broadcast_group_data(b"fresh").unwrap();
        assert_eq!((bc_new.epoch, bc_new.seq), (2, 0));
        let env_new: Envelope = enclaves_wire::codec::decode(&bc_new.frame).unwrap();
        assert!(alice.handle(&env_new).is_ok());

        // Two epochs back is evicted: after another rekey, epoch-1 frames
        // are rejected outright.
        let out = l.rekey_now().unwrap();
        for env in out.outgoing {
            if let Ok(o) = alice.handle(&env) {
                if let Some(reply) = o.reply {
                    let _ = l.handle(&reply);
                }
            }
        }
        let bc_ancient = Envelope {
            body: env_old.body.clone(),
            ..env_old
        };
        assert!(matches!(
            alice.handle(&bc_ancient),
            Err(CoreError::Rejected(RejectReason::WrongEpoch))
        ));
    }

    #[test]
    fn broadcast_tamper_and_wrong_leader_rejected() {
        let mut l = leader(&["alice"], RekeyPolicy::Manual);
        let (mut alice, init) = member("alice", 230);
        pump(&mut l, &mut alice, init);

        let bc = l.broadcast_group_data(b"secret").unwrap();
        let mut env: Envelope = enclaves_wire::codec::decode(&bc.frame).unwrap();
        let last = env.body.len() - 1;
        env.body[last] ^= 1;
        assert!(matches!(
            alice.handle(&env),
            Err(CoreError::Rejected(RejectReason::BadSeal))
        ));

        // Forging the envelope sender changes nothing: the member computes
        // the AAD from its configured leader, not the header.
        let mut forged: Envelope = enclaves_wire::codec::decode(&bc.frame).unwrap();
        forged.sender = id("mallory");
        assert!(alice.handle(&forged).is_ok());
    }

    #[test]
    fn broadcast_on_empty_group_fails() {
        let mut l = leader(&[], RekeyPolicy::Manual);
        assert!(matches!(
            l.broadcast_group_data(b"x"),
            Err(CoreError::BadPhase { .. })
        ));
        assert_eq!(l.stats().data_seals, 0);
    }

    #[test]
    fn membership_notices_can_be_suppressed() {
        let mut l = LeaderCore::with_rng(
            id("leader"),
            directory(&["alice", "bob"]),
            LeaderConfig {
                rekey_policy: RekeyPolicy::Manual,
                membership_notices: false,
                ..LeaderConfig::default()
            },
            Box::new(SeededRng::from_seed(1)),
        );
        let (mut alice, init_a) = member("alice", 240);
        pump(&mut l, &mut alice, init_a);
        let admin_sent_before = l.stats().admin_sent;

        // Bob joins: alice gets no MemberJoined notice (Manual policy, so
        // no key distribution either); only bob's welcome goes out.
        let (mut bob, init_b) = member("bob", 241);
        join_second(&mut l, &mut [("alice", &mut alice)], &mut bob, init_b);
        assert_eq!(
            l.stats().admin_sent,
            admin_sent_before + 1,
            "only the welcome is sent when notices are suppressed"
        );
        assert_eq!(l.roster(), vec![id("alice"), id("bob")]);
        assert_eq!(bob.group_epoch(), Some(1));
    }

    #[test]
    fn rejection_leaves_leader_state_unchanged() {
        let mut l = leader(&["alice"], RekeyPolicy::Manual);
        let (mut alice, init) = member("alice", 90);
        pump(&mut l, &mut alice, init);
        let roster = l.roster();
        let epoch = l.epoch();
        for i in 0..10u8 {
            let env = Envelope {
                msg_type: MsgType::Ack,
                sender: id("alice"),
                recipient: id("leader"),
                group: None,
                body: vec![i; 40],
            };
            assert!(l.handle(&env).is_err());
        }
        assert_eq!(l.roster(), roster);
        assert_eq!(l.epoch(), epoch);
        assert_eq!(l.stats().rejected, 10);
    }

    // -----------------------------------------------------------------
    // Tree-rekey mode: end-to-end over real envelopes.
    // -----------------------------------------------------------------

    /// A leader plus member sessions wired together in memory, delivering
    /// admin envelopes per recipient and `PathUpdate` broadcast frames to
    /// their whole recipient list.
    struct TreeWorld {
        l: LeaderCore,
        sessions: HashMap<ActorId, MemberSession>,
        events: HashMap<ActorId, Vec<MemberEvent>>,
    }

    impl TreeWorld {
        fn new(users: &[&str]) -> Self {
            TreeWorld {
                l: LeaderCore::with_rng(
                    id("leader"),
                    directory(users),
                    LeaderConfig {
                        rekey_policy: RekeyPolicy::Manual,
                        tree_rekey: true,
                        ..LeaderConfig::default()
                    },
                    Box::new(SeededRng::from_seed(1)),
                ),
                sessions: HashMap::new(),
                events: HashMap::new(),
            }
        }

        fn join(&mut self, user: &str, seed: u64) {
            let (session, init) = member(user, seed);
            self.sessions.insert(id(user), session);
            self.drive(vec![init]);
        }

        fn leave(&mut self, user: &str) {
            let env = self.sessions.get_mut(&id(user)).unwrap().leave().unwrap();
            self.sessions.remove(&id(user));
            self.drive(vec![env]);
        }

        fn rekey(&mut self) {
            let out = self.l.rekey_now().unwrap();
            let replies = self.deliver_collect(out);
            self.drive(replies);
        }

        fn drive(&mut self, to_leader: Vec<Envelope>) {
            let mut queue = to_leader;
            while !queue.is_empty() {
                let mut next = Vec::new();
                for env in queue.drain(..) {
                    if let Ok(out) = self.l.handle(&env) {
                        next.extend(self.deliver_collect(out));
                    }
                }
                queue = next;
            }
        }

        /// Hands one leader output to the member sessions and returns the
        /// replies bound for the leader.
        fn deliver_collect(&mut self, out: LeaderOutput) -> Vec<Envelope> {
            let mut replies = Vec::new();
            for env in out.outgoing {
                if let Some(s) = self.sessions.get_mut(&env.recipient) {
                    if let Ok(o) = s.handle(&env) {
                        self.events
                            .entry(env.recipient.clone())
                            .or_default()
                            .extend(o.events);
                        replies.extend(o.reply);
                    }
                }
            }
            for b in out.broadcasts {
                let env: Envelope = enclaves_wire::codec::decode(&b.frame).unwrap();
                for r in &b.recipients {
                    if let Some(s) = self.sessions.get_mut(r) {
                        if let Ok(o) = s.handle(&env) {
                            self.events.entry(r.clone()).or_default().extend(o.events);
                            replies.extend(o.reply);
                        }
                    }
                }
            }
            replies
        }

        fn assert_converged(&self) {
            let epoch = self.l.epoch();
            for (who, s) in &self.sessions {
                assert_eq!(s.group_epoch(), epoch, "{who} diverged from the leader");
            }
        }
    }

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("m{i}")).collect()
    }

    #[test]
    fn tree_join_leave_rekey_all_members_converge() {
        let users = names(9);
        let refs: Vec<&str> = users.iter().map(String::as_str).collect();
        let mut w = TreeWorld::new(&refs);
        for (i, u) in users.iter().enumerate() {
            w.join(u, 300 + i as u64);
            w.assert_converged();
        }
        // A mid-tree member leaves: everyone rotates to a key the
        // departee cannot derive.
        let before = w.l.epoch().unwrap();
        w.leave("m4");
        assert!(w.l.epoch().unwrap() > before, "leave advances the epoch");
        w.assert_converged();
        // Manual rekeys rotate a different leaf each time; all converge.
        for _ in 0..4 {
            w.rekey();
            w.assert_converged();
        }
    }

    #[test]
    fn tree_rekey_costs_log_seals_and_zero_admin_seals() {
        let users = names(8);
        let refs: Vec<&str> = users.iter().map(String::as_str).collect();
        let mut w = TreeWorld::new(&refs);
        for (i, u) in users.iter().enumerate() {
            w.join(u, 400 + i as u64);
        }
        let before = w.l.stats();
        w.rekey();
        let after = w.l.stats();
        assert_eq!(
            after.admin_seals, before.admin_seals,
            "tree rekey must not touch the per-member admin plane"
        );
        let seals = after.rekey_seals - before.rekey_seals;
        // 2·ceil(log2 8) + 1 = 7.
        assert!(
            (1..=7).contains(&seals),
            "dense 8-leaf tree rekey took {seals} seals"
        );
        w.assert_converged();
    }

    #[test]
    fn tree_member_mid_update_still_opens_previous_epoch_broadcast() {
        let users = names(4);
        let refs: Vec<&str> = users.iter().map(String::as_str).collect();
        let mut w = TreeWorld::new(&refs);
        for (i, u) in users.iter().enumerate() {
            w.join(u, 500 + i as u64);
        }
        // Seal a data-plane broadcast under the current epoch...
        let old = w.l.broadcast_group_data(b"pre-rekey frame").unwrap();
        let old_env: Envelope = enclaves_wire::codec::decode(&old.frame).unwrap();
        // ...then rotate via the tree before anyone sees it.
        w.rekey();
        w.assert_converged();
        // The raced frame still opens under the one-epoch grace window.
        let m0 = w.sessions.get_mut(&id("m0")).unwrap();
        let out = m0.handle(&old_env).expect("grace window admits the frame");
        assert!(
            out.events.iter().any(
                |e| matches!(e, MemberEvent::Broadcast { data, .. } if data == b"pre-rekey frame")
            ),
            "previous-epoch broadcast must still deliver"
        );
    }

    #[test]
    fn tree_expelled_member_cannot_follow_path_updates() {
        let users = names(5);
        let refs: Vec<&str> = users.iter().map(String::as_str).collect();
        let mut w = TreeWorld::new(&refs);
        for (i, u) in users.iter().enumerate() {
            w.join(u, 600 + i as u64);
        }
        // Expel m2 but keep its session alive on the side: it still holds
        // every key it ever learned.
        let mut mallory = w.sessions.remove(&id("m2")).unwrap();
        let expelled_at = mallory.group_epoch().unwrap();
        let out = w.l.expel(&id("m2")).unwrap();
        // Mallory "sniffs" the expulsion PathUpdate and every later one.
        let sniffed: Vec<Envelope> = out
            .broadcasts
            .iter()
            .map(|b| enclaves_wire::codec::decode(&b.frame).unwrap())
            .collect();
        let replies = w.deliver_collect(out);
        w.drive(replies);
        w.rekey();
        let out2 = w.l.rekey_now().unwrap();
        let mut sniffed2: Vec<Envelope> = out2
            .broadcasts
            .iter()
            .map(|b| enclaves_wire::codec::decode(&b.frame).unwrap())
            .collect();
        sniffed2.extend(sniffed);
        let replies = w.deliver_collect(out2);
        w.drive(replies);
        w.assert_converged();
        // None of the sniffed updates let the expelled member advance: no
        // seal in them targets a key it holds.
        for env in &sniffed2 {
            let _ = mallory.handle(env);
        }
        assert_eq!(
            mallory.group_epoch(),
            Some(expelled_at),
            "expelled member derived a post-expel epoch"
        );
    }

    #[test]
    fn stale_heartbeat_epoch_triggers_one_path_sync() {
        let users = names(4);
        let refs: Vec<&str> = users.iter().map(String::as_str).collect();
        let mut w = TreeWorld::new(&refs);
        for (i, u) in users.iter().enumerate() {
            w.join(u, 700 + i as u64);
        }
        // Rekey but "lose" the broadcast: m1 never sees the PathUpdate.
        let out = w.l.rekey_now().unwrap();
        let lost = id("m1");
        let filtered = LeaderOutput {
            outgoing: out.outgoing,
            broadcasts: out
                .broadcasts
                .into_iter()
                .map(|mut b| {
                    b.recipients.retain(|r| *r != lost);
                    b
                })
                .collect(),
            events: out.events,
        };
        let replies = w.deliver_collect(filtered);
        w.drive(replies);
        assert!(
            w.sessions[&lost].group_epoch() < w.l.epoch(),
            "m1 must be stale for this test"
        );

        // An authenticated heartbeat reveals the stale epoch; the leader
        // pushes exactly one PathSync over the reliable admin channel.
        let admin_before = w.l.stats().admin_sent;
        let ping = w.sessions.get_mut(&lost).unwrap().heartbeat().unwrap();
        w.drive(vec![ping]);
        assert_eq!(w.sessions[&lost].group_epoch(), w.l.epoch());
        assert_eq!(w.l.stats().admin_sent, admin_before + 1);

        // A second stale-free heartbeat does not resync again.
        let admin_before = w.l.stats().admin_sent;
        let ping = w.sessions.get_mut(&lost).unwrap().heartbeat().unwrap();
        w.drive(vec![ping]);
        assert_eq!(w.l.stats().admin_sent, admin_before);
        w.assert_converged();
    }

    #[test]
    fn tree_path_update_frame_identical_across_seal_paths() {
        // The PathUpdate multicast is staged under the lock, so the frame
        // must be byte-identical whether the admin jobs around it seal
        // serially or across the worker pool.
        let build = |parallel: bool| {
            let users = names(6);
            let refs: Vec<&str> = users.iter().map(String::as_str).collect();
            let mut w = TreeWorld::new(&refs);
            for (i, u) in users.iter().enumerate() {
                w.join(u, 800 + i as u64);
            }
            let fanout = w.l.begin_rekey().unwrap();
            let batch = if parallel {
                LeaderCore::seal_admin_jobs_parallel(&fanout.jobs, 4)
            } else {
                LeaderCore::seal_admin_jobs(&fanout.jobs)
            };
            w.l.commit_admin_frames(&batch);
            fanout
                .broadcast
                .expect("tree rekey emits a broadcast")
                .frame
        };
        assert_eq!(
            build(false),
            build(true),
            "PathUpdate bytes must not depend on the seal path"
        );
    }

    #[test]
    fn tree_forged_path_update_rejected_without_state_change() {
        let users = names(3);
        let refs: Vec<&str> = users.iter().map(String::as_str).collect();
        let mut w = TreeWorld::new(&refs);
        for (i, u) in users.iter().enumerate() {
            w.join(u, 900 + i as u64);
        }
        let epoch = w.l.epoch().unwrap();
        // A forged PathUpdate claiming the next epoch, with garbage seals.
        let forged = Envelope {
            msg_type: MsgType::PathUpdate,
            sender: id("leader"),
            recipient: id("leader"),
            group: None,
            body: encode(&PathUpdateWire {
                epoch: epoch + 1,
                leaf_count: 3,
                updated_leaf: 0,
                ciphers: (0..5)
                    .map(|i| {
                        (
                            i,
                            SealedBody {
                                nonce: [7; 12],
                                ciphertext: vec![0x55; 48],
                            },
                        )
                    })
                    .collect(),
            }),
        };
        let m0 = w.sessions.get_mut(&id("m0")).unwrap();
        assert!(
            m0.handle(&forged).is_err(),
            "forged update must be rejected"
        );
        assert_eq!(m0.group_epoch(), Some(epoch), "state unchanged");
        // The honest flow still works afterwards.
        w.rekey();
        w.assert_converged();
    }

    // -----------------------------------------------------------------
    // Write-ahead journal: live core vs recovered core.
    // -----------------------------------------------------------------

    /// A scratch journal directory removed on drop.
    struct TempJournal(std::path::PathBuf);

    impl TempJournal {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "enclaves-leader-journal-{}-{tag}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&path);
            TempJournal(path)
        }
    }

    impl Drop for TempJournal {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn journaled_flat_core_recovers_byte_identical() {
        use crate::journal::{genesis_for, label_for, JournalDir, ReadMode};
        let tmp = TempJournal::new("flat");
        let dir = JournalDir::open_or_init(&tmp.0).unwrap();
        let mut l = LeaderCore::with_rng(
            id("leader"),
            directory(&["alice", "bob"]),
            LeaderConfig {
                rekey_policy: RekeyPolicy::OnJoinAndLeave,
                ..LeaderConfig::default()
            },
            Box::new(SeededRng::from_seed(7)),
        );
        let genesis = genesis_for(l.leader_id(), &l.directory, &l.config);
        l.attach_journal(dir.create_stream(&label_for(None), &genesis).unwrap());

        let (mut alice, init_a) = member("alice", 500);
        pump(&mut l, &mut alice, init_a);
        let (mut bob, init_b) = member("bob", 501);
        join_second(&mut l, &mut [("alice", &mut alice)], &mut bob, init_b);
        l.rekey_now().unwrap();
        let env = alice.leave().unwrap();
        l.handle(&env).unwrap();
        assert!(l.stats().rekeys >= 3);

        let replay = dir
            .replay_stream(&label_for(None), ReadMode::Strict)
            .unwrap();
        let recovered = LeaderCore::recover(&replay).unwrap();
        assert_eq!(recovered.roster(), l.roster());
        assert_eq!(recovered.epoch(), l.epoch());
        assert_eq!(
            recovered.durable_digest(),
            l.durable_digest(),
            "replay must land byte-identically on the live state"
        );
    }

    #[test]
    fn journaled_tree_core_recovers_and_advances_past_fence() {
        use crate::journal::{genesis_for, label_for, JournalDir, ReadMode};
        let tmp = TempJournal::new("tree");
        let dir = JournalDir::open_or_init(&tmp.0).unwrap();
        let users = names(6);
        let refs: Vec<&str> = users.iter().map(String::as_str).collect();
        let mut w = TreeWorld::new(&refs);
        let genesis = genesis_for(w.l.leader_id(), &w.l.directory, &w.l.config);
        w.l.attach_journal(dir.create_stream(&label_for(None), &genesis).unwrap());
        for (i, u) in users.iter().enumerate() {
            w.join(u, 520 + i as u64);
        }
        w.leave("m2");
        w.rekey();
        w.assert_converged();
        let live_epoch = w.l.epoch().unwrap();

        let replay = dir
            .replay_stream(&label_for(None), ReadMode::Strict)
            .unwrap();
        assert_eq!(
            replay.fenced_epoch,
            Some(live_epoch),
            "the fence tracks the highest journaled epoch"
        );
        let mut recovered = LeaderCore::recover(&replay).unwrap();
        assert_eq!(recovered.durable_digest(), w.l.durable_digest());

        // The post-recovery epoch jump lands strictly past the fence and
        // is itself journaled: a second replay reproduces it exactly.
        recovered.attach_journal(dir.open_writer(&label_for(None), &replay).unwrap());
        let new_epoch = recovered
            .recovery_advance(replay.fenced_epoch)
            .unwrap()
            .unwrap();
        assert!(new_epoch > live_epoch);
        let replay2 = dir
            .replay_stream(&label_for(None), ReadMode::Strict)
            .unwrap();
        let recovered2 = LeaderCore::recover(&replay2).unwrap();
        assert_eq!(recovered2.epoch(), Some(new_epoch));
        assert_eq!(recovered2.durable_digest(), recovered.durable_digest());
    }

    #[test]
    fn recovery_advance_without_epoch_or_fence_is_a_no_op() {
        let mut l = leader(&["alice"], RekeyPolicy::Manual);
        assert_eq!(l.recovery_advance(None).unwrap(), None);
        assert_eq!(l.epoch(), None);
        // With a fence but no epoch (stale-journal restore of a pre-join
        // stream), the core still jumps past the fence.
        assert_eq!(l.recovery_advance(Some(9)).unwrap(), Some(10));
        assert_eq!(l.epoch(), Some(10));
    }
}
